"""A multi-domain knowledge graph, queried end to end.

Run:  python examples/knowledge_graph.py

The Semantic-Web scenario the paper's introduction motivates: one triple
relation mixing affiliations, a type ontology, an organisational
hierarchy and geography — middles doubling as subjects throughout.
Shows the full toolchain: text query → explain → optimize → engine
choice → evaluation → validation against an independent reference.
"""

from repro.core import HashJoinEngine, evaluate
from repro.core.explain import explain
from repro.core.optimizer import optimize
from repro.core.parser import parse
from repro.bench import format_table
from repro.workloads import knowledge_graph, reference_affiliated_via


def main() -> None:
    kg = knowledge_graph(
        n_people=40, n_orgs=12, n_places=8, n_affiliations=90, seed=11
    )
    print("knowledge graph:", kg)

    # Everyone affiliated (through the subtype ontology) with any org,
    # lifted through the organisational hierarchy — in the text syntax.
    query_text = (
        "select[2='staff']("
        "  join[1,3',3; 2=1']("
        "    E,"
        "    star[1,2,3'; 3=1'](select[2='subtype_of'](E))"
        "  ) | E"
        ") | join[1,2,3'; 3=1']("
        "  select[2='staff']("
        "    join[1,3',3; 2=1'](E, star[1,2,3'; 3=1'](select[2='subtype_of'](E))) | E"
        "  ),"
        "  star[1,2,3'; 3=1'](select[2='part_of'](E))"
        ")"
    )
    expr = parse(query_text)
    report = explain(expr)
    print("\nstatic analysis:")
    print(report.summary())

    optimized = optimize(expr)
    print(f"\noptimised size: {expr.size()} -> {optimized.size()} nodes")

    result = evaluate(optimized, kg, HashJoinEngine())
    people_org = {
        (s, o) for s, _, o in result if str(s).startswith("person")
    }
    reference = reference_affiliated_via(kg, "staff")
    assert people_org == reference, "algebra and reference disagree!"
    print(f"\nstaff affiliations (direct + inherited): {len(people_org)} pairs")

    by_org: dict = {}
    for person, org in sorted(people_org):
        by_org.setdefault(org, set()).add(person)
    rows = [
        (org, len(people)) for org, people in sorted(by_org.items())[:8]
    ]
    print(format_table(rows, headers=("organisation", "staff reach")))
    print("\nvalidated against the independent BFS reference. Done.")


if __name__ == "__main__":
    main()
