"""Query API v2: prepared statements, cursors and structured explain.

Run:  python examples/prepared_statements.py

Walks the v2 facade surface over the paper's Figure 1 database:

* ``db.prepare`` compiles a ``$param``-placeholder query once and binds
  constants per execution — the plan cache counters prove no re-planning
  happens across bindings;
* ad-hoc queries canonicalize their constants, so queries differing only
  in a constant share one cached plan too;
* results are lazy cursors: ``limit`` slices before decode on the
  columnar backends;
* ``explain_report(...).to_json()`` is the structured explain;
* ``db.batch()`` applies several installs as one transactional swap.
"""

from repro import Database
from repro.rdf import figure1


def main() -> None:
    db = Database(figure1(), backend="columnar")
    print("session:", db)

    # -- prepared statements ------------------------------------------- #
    stmt = db.prepare("select[2=$label](E)")
    print("\nprepared:", stmt)
    for label in ("part_of", "Train Op 1", "no_such_label"):
        result = stmt.execute(label=label)
        print(f"  $label={label!r}: {len(result)} triples")
    plans = db.cache_info()["plans"]
    print(f"plan cache: {plans.misses} compile(s), {plans.hits} reuse(s)")
    assert plans.misses == 1, "three bindings must not re-plan"

    # -- cross-parameter plan sharing for ad-hoc queries ---------------- #
    db.query("select[2='part_of'](E)")  # compiles the canonical shape once
    before = db.cache_info()["plans"].misses
    db.query("select[2='Train Op 1'](E)")  # same shape, new constant
    assert db.cache_info()["plans"].misses == before
    print("ad-hoc queries differing only in constants share one plan")

    # -- lazy cursors ---------------------------------------------------- #
    reach = db.query("star[1,2,3'; 3=1'](E)")
    print(f"\nreachability: {reach.total} triples total; first 3 decoded:")
    for s, p, o in reach.limit(3):
        print(f"  {s!r} -[{p!r}]-> {o!r}")
    print("as node pairs:", len(reach.pairs()))

    # -- structured explain ---------------------------------------------- #
    report = db.explain_report("join[1,3',3; 2=1'](E, E)")
    print("\nexplain --json (truncated):")
    print("\n".join(report.to_json().splitlines()[:8]), "\n  ...")

    # -- transactional batches ------------------------------------------- #
    with db.batch():
        # Both evaluate against the pre-batch store and land atomically
        # on exit, invalidating only their own relations.
        db.install("Reach", "star[1,2,3'; 3=1'](E)")
        db.install("Hubs", "join[1,2,3; 2=2'](E, E)")
    print("\nbatch installed:", ", ".join(sorted(db.store.relation_names)))
    print("Reach/Hubs sizes:", len(db.query("Reach")), len(db.query("Hubs")))

    # The old per-language query_* methods still work but warn; the
    # README migration table maps each onto the v2 surface.
    print("\nDone.")


if __name__ == "__main__":
    main()
