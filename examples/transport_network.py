"""Scaled transport integration: query Q on synthetic networks.

Run:  python examples/transport_network.py

The intro's motivating scenario — integrating transport services into a
single ticketing interface — at sizes beyond the paper's 8-triple
figure.  Shows the reachTA= fragment machinery (Proposition 5) paying
off: the FastEngine answers the same query with per-source BFS instead
of a generic fixpoint, and the result is validated against an
independent reference implementation.
"""

import time

from repro import FastEngine, HashJoinEngine, evaluate, query_q
from repro.bench import format_table
from repro.core import in_reach_ta_eq
from repro.workloads import reference_query_q, transport_network


def main() -> None:
    q = query_q()
    print("query Q:", q)
    # Q's outer star is reach-shaped but its inner one is not, so Q sits
    # just outside reachTA= — the FastEngine still accelerates the outer
    # closure and falls back to the generic fixpoint for the inner one.
    print("inside reachTA= (Prop 5 fragment):", in_reach_ta_eq(q))

    rows = []
    for n_cities in (10, 40, 80):
        store = transport_network(
            n_cities=n_cities,
            n_services=max(2, n_cities // 5),
            n_companies=3,
            hierarchy_depth=3,
            extra_routes=n_cities // 2,
            seed=n_cities,
        )
        start = time.perf_counter()
        fast = FastEngine().evaluate(q, store)
        t_fast = time.perf_counter() - start

        start = time.perf_counter()
        generic = HashJoinEngine().evaluate(q, store)
        t_generic = time.perf_counter() - start

        reference = reference_query_q(store)
        assert fast == generic == reference, "engines/reference disagree!"

        rows.append(
            (
                n_cities,
                len(store),
                len(fast),
                f"{t_fast * 1e3:.1f}",
                f"{t_generic * 1e3:.1f}",
            )
        )

    print(
        format_table(
            rows,
            headers=("cities", "|T|", "|Q(T)|", "fast ms", "generic ms"),
        )
    )
    print("\nAll sizes validated against the independent BFS reference.")


if __name__ == "__main__":
    main()
