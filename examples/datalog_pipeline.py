"""The declarative side: TripleDatalog¬ programs end to end (Section 4).

Run:  python examples/datalog_pipeline.py

Parses a hand-written ReachTripleDatalog¬ program, validates its
fragment membership, evaluates it, compiles it to a TriAL* expression
(Theorem 2) and back to Datalog (Proposition 2 direction), checking all
three agree on the Figure 1 database.
"""

from repro import evaluate, query_q
from repro.datalog import (
    datalog_to_trial,
    is_reach_triple_datalog,
    parse_program,
    run_program,
    trial_to_datalog,
)
from repro.rdf import figure1

PROGRAM_TEXT = """
% Travel triples whose service rolls up (transitively) to a company y.
% Sub: one part_of-style hop          (x, y, z) <- E
Sub(x, y, z)   :- E(x, y, z).

% Reach: the inner star of query Q — (x, y, z) such that E(x, w, z)
% holds and y is reachable from w through subject-to-object hops.
Reach(x, y, z) :- Sub(x, y, z).
Reach(x, w, z) :- Reach(x, y, z), Sub(y, u, w).

% Ans: chain same-company segments (the outer star, one level).
Ans(x, y, z)   :- Reach(x, y, z).
Ans(x, y, w)   :- Ans(x, y, z), Reach(z, y2, w), y = y2.
"""


def main() -> None:
    program = parse_program(PROGRAM_TEXT)
    print(f"parsed {len(program)} rules; answer predicate {program.answer!r}")
    print("in ReachTripleDatalog¬:", is_reach_triple_datalog(program))

    store = figure1()
    datalog_answer = run_program(program, store)
    print(f"datalog evaluation: {len(datalog_answer)} triples")

    expr = datalog_to_trial(program)
    print("\nTheorem 2 compilation to TriAL*:")
    print(" ", expr)
    algebra_answer = evaluate(expr, store)
    print("algebra agrees with datalog:", algebra_answer == datalog_answer)

    # And the opposite direction: query Q compiled into rules.
    q_program = trial_to_datalog(query_q())
    print(f"\nquery Q as a Datalog program ({len(q_program)} rules):")
    for rule in q_program:
        print("   ", rule)
    print(
        "Q program evaluates like the algebra:",
        run_program(q_program, store) == evaluate(query_q(), store),
    )

    sample = sorted(datalog_answer)[:5]
    print("\nsample answers:")
    for row in sample:
        print("   ", row)


if __name__ == "__main__":
    main()
