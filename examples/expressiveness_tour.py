"""A tour of the paper's expressiveness results, run live.

Run:  python examples/expressiveness_tour.py

1. Proposition 1/Theorem 1 — the σ encoding collides on D₁/D₂, NREs and
   nSPARQL axes cannot tell them apart, TriAL*'s query Q can.
2. Theorem 4 — the 4/6-distinct-objects queries separate the clique
   stores T₃/T₄ and T₅/T₆; the FO⁴ sentence separates structures A/B.
3. Theorem 7 / Corollary 2 — GXPath/NRE/RPQ queries translated into
   TriAL* agree with their native evaluation.
4. Proposition 6 — register automata count distinct data values; TriAL*
   cannot (and conversely the non-monotone 'no a-edge' query is beyond
   register automata).
"""

from repro import evaluate, project13, query_q
from repro.automata import distinct_values_expr, evaluate_rem
from repro.core import distinct_objects_at_least
from repro.graphdb import evaluate_nre, evaluate_rpq, parse_nre
from repro.logic import answers
from repro.rdf import (
    RDFGraph,
    clique_store,
    evaluate_nsparql_nre,
    proposition1_d1,
    proposition1_d2,
    sigma,
    theorem4_structures,
)
from repro.translations import nre_to_trial, rpq_to_trial
from repro.workloads import clique_graph, random_graph


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    section("Proposition 1 / Theorem 1: the σ encoding is lossy")
    d1 = RDFGraph(proposition1_d1().relation("E"))
    d2 = RDFGraph(proposition1_d2().relation("E"))
    print("D1 == D2:", d1 == d2)
    print("sigma(D1) == sigma(D2):", sigma(d1) == sigma(d2))
    probe = parse_nre("next.[edge.node].next*")
    print(
        "sample NRE agrees on both:",
        evaluate_nre(sigma(d1), probe) == evaluate_nre(sigma(d2), probe),
    )
    print(
        "nSPARQL axes agree on both:",
        evaluate_nsparql_nre(d1, probe) == evaluate_nsparql_nre(d2, probe),
    )
    q1 = project13(evaluate(query_q(), proposition1_d1()))
    q2 = project13(evaluate(query_q(), proposition1_d2()))
    print("(St Andrews, London) in Q(D1):", ("St. Andrews", "London") in q1)
    print("(St Andrews, London) in Q(D2):", ("St. Andrews", "London") in q2)

    section("Theorem 4: counting objects with inequality joins")
    for k in (4, 6):
        expr = distinct_objects_at_least(k)
        below, at = clique_store(k - 1), clique_store(k)
        print(
            f"  >= {k} objects:  T{k-1}: {bool(evaluate(expr, below))}   "
            f"T{k}: {bool(evaluate(expr, at))}"
        )

    section("Theorem 4: the FO4 sentence separates structures A and B")
    a, b = theorem4_structures()
    phi = phi_fo4()
    print("  phi holds in A:", answers(phi, a) == {()})
    print("  phi holds in B:", answers(phi, b) == {()})

    section("Theorem 7 / Corollary 2: graph languages embed into TriAL*")
    g = random_graph(6, 10, seed=42)
    t = g.to_triplestore()
    nre = parse_nre("a.[b].a*")
    print(
        "  NRE == its TriAL* translation:",
        evaluate_nre(g, nre) == project13(evaluate(nre_to_trial(nre), t)),
    )
    print(
        "  RPQ == its TriAL* translation:",
        evaluate_rpq(g, "(a+b)*") == project13(evaluate(rpq_to_trial("(a+b)*"), t)),
    )

    section("Proposition 6: register automata count data values")
    for n in (3, 4, 5):
        g = clique_graph(n)
        e4 = distinct_values_expr(4)
        nonempty = bool(evaluate_rem(e4, g.edges, g.rho_map()))
        print(f"  e_4 nonempty on K{n} (distinct values): {nonempty}")


def phi_fo4():
    from repro.logic import Eq, Exists, Not, RelAtom, Var, and_all, exists

    def psi(x, y, z):
        w = "w2"
        return Exists(
            w,
            and_all(
                [
                    RelAtom("E", (Var(x), Var(w), Var(y))),
                    RelAtom("E", (Var(y), Var(w), Var(x))),
                    RelAtom("E", (Var(y), Var(w), Var(z))),
                    RelAtom("E", (Var(x), Var(w), Var(z))),
                    RelAtom("E", (Var(z), Var(w), Var(x))),
                    Not(Eq(Var(x), Var(z))),
                    Not(Eq(Var(x), Var(y))),
                    Not(Eq(Var(y), Var(z))),
                ]
            ),
        )

    distinct = [
        Not(Eq(Var(a), Var(b)))
        for a, b in (
            ("x", "y"), ("x", "z"), ("x", "w"), ("y", "z"), ("y", "w"), ("z", "w")
        )
    ]
    body = and_all(
        [psi("x", "y", "w"), psi("x", "w", "z"), psi("w", "y", "z"), psi("x", "y", "z")]
        + distinct
    )
    return exists("x", "y", "z", "w", body)


if __name__ == "__main__":
    main()
