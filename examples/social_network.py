"""Social networks as triplestores (Section 2.3).

Run:  python examples/social_network.py

Builds the paper's Mario/Luigi/Donkey Kong network with quintuple data
values, then a larger synthetic network, and runs data-value (η) joins:
"who is reachable through connections of a single type" — the social
analogue of query Q.
"""

from repro import R, Star, evaluate, project13
from repro.core import Cond, Pos
from repro.bench import format_table
from repro.rdf import social_network
from repro.workloads import same_type_reachability_reference, social_network_store


def same_type_reach() -> Star:
    """(E ✶^{1,2,3'}_{3=1', ρ(2)=ρ(2')})* — chains of same-type links."""
    return Star(
        R("E"),
        (0, 1, 5),
        (Cond(Pos(2), Pos(3)), Cond(Pos(1), Pos(4), "=", True)),
    )


def main() -> None:
    paper = social_network()
    print("The paper's network (§2.3):")
    for triple in sorted(paper.relation("E")):
        s, c, o = triple
        print(f"  {s} --{c} {paper.rho(c)[3]!r}--> {o}")

    print("\nρ(o175) =", paper.rho("o175"))

    reach = evaluate(same_type_reach(), paper)
    print("\nSame-type reachability on the paper's network:")
    print(format_table(sorted(reach), headers=("from", "via", "to")))

    big = social_network_store(40, 120, data_mode="type", seed=7)
    result = evaluate(same_type_reach(), big)
    reference = same_type_reachability_reference(big)
    assert result == reference, "algebra and reference disagree!"

    by_type: dict = {}
    for s, conn, o in result:
        by_type.setdefault(big.rho(conn), set()).add((s, o))
    rows = [
        (ctype, len(pairs))
        for ctype, pairs in sorted(by_type.items(), key=lambda kv: str(kv[0]))
    ]
    print("\nSynthetic network (40 users, 120 connections):")
    print(format_table(rows, headers=("connection type", "reachable pairs")))

    direct = project13(evaluate(R("E"), big))
    closure = project13(result)
    print(f"\ndirect pairs: {len(direct)}, same-type closure: {len(closure)}")


if __name__ == "__main__":
    main()
