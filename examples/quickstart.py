"""Quickstart: the paper's Figure 1 database and query Q.

Run:  python examples/quickstart.py

Walks through the opening example of the paper: build the transport
RDF database of Figure 1 as a triplestore, run Example 2's join, then
the full recursive query Q ("cities connected by services operated by
one company"), and show why (St. Andrews, Brussels) is not an answer.
"""

from repro import (
    HashJoinEngine,
    NaiveEngine,
    evaluate,
    example2_expr,
    example2_extended,
    project13,
    query_q,
)
from repro.bench import format_table
from repro.rdf import figure1


def main() -> None:
    store = figure1()
    print("Figure 1 triplestore:", store)
    for triple in sorted(store.relation("E")):
        print("   ", triple)

    print("\nExample 2: e = E JOIN[1,3',3 ; 2=1'] E")
    print("  (cities with the companies operating the connecting service)")
    result = evaluate(example2_expr(), store)
    print(format_table(sorted(result), headers=("from", "operator", "to")))

    print("\nExample 2': e' also climbs one part_of level")
    extra = evaluate(example2_extended(), store) - result
    for triple in sorted(extra):
        print("  new:", triple)

    print("\nQuery Q: ((E ✶[1,3',3; 2=1'])* ✶[1,2,3'; 3=1', 2=2'])*")
    q_result = evaluate(query_q(), store)
    pairs = project13(q_result)
    print(format_table(sorted(q_result), headers=("from", "company", "to")))

    print("\nPaper's checks:")
    print("  (Edinburgh, London) in Q:      ", ("Edinburgh", "London") in pairs)
    print("  (St. Andrews, London) in Q:    ", ("St. Andrews", "London") in pairs)
    print("  (St. Andrews, Brussels) in Q:  ", ("St. Andrews", "Brussels") in pairs,
          " <- needs NatExpress AND Eurostar")

    # Engines share one semantics; the naive engine is the paper's
    # Theorem 3 algorithm.
    assert evaluate(query_q(), store, NaiveEngine()) == q_result
    assert evaluate(query_q(), store, HashJoinEngine()) == q_result
    print("\nNaive (Theorem 3) and hash-join engines agree. Done.")


if __name__ == "__main__":
    main()
