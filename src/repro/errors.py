"""Exception hierarchy for the TriAL reproduction.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing genuine bugs (``TypeError`` etc. propagate untouched).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TriplestoreError(ReproError):
    """Problems with triplestore construction or access."""


class UnknownRelationError(TriplestoreError):
    """A query referenced a relation name the triplestore does not have."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = available
        hint = f" (available: {', '.join(available)})" if available else ""
        super().__init__(f"unknown relation {name!r}{hint}")

    def __reduce__(self):
        # Errors cross process boundaries (shard workers report failures
        # over pipes); rebuild from the constructor arguments so the
        # message is not re-wrapped around the formatted text.
        return (UnknownRelationError, (self.name, self.available))


class MatrixTooLargeError(TriplestoreError):
    """A dense matrix representation was refused by its object-count guard.

    Dense (cubic or quadratic) array representations are refused above a
    configurable object count instead of silently exhausting memory.  The
    error carries the offending ``n_objects`` and the ``limit`` so callers
    — notably the columnar backend's density heuristic — can catch it and
    fall back to a sparse execution strategy.
    """

    def __init__(self, n_objects: int, limit: int, what: str = "matrix"):
        self.n_objects = n_objects
        self.limit = limit
        self.what = what
        super().__init__(
            f"refusing to build a dense {what} representation over "
            f"{n_objects} objects (limit {limit}); raise the limit to override"
        )

    def __reduce__(self):
        return (MatrixTooLargeError, (self.n_objects, self.limit, self.what))


class AlgebraError(ReproError):
    """Malformed Triple Algebra expressions or conditions."""


class FragmentError(AlgebraError):
    """An expression was required to belong to a fragment but does not.

    Raised, e.g., when the Proposition 4/5 fast algorithms are asked to
    evaluate an expression outside TriAL= / reachTA=.
    """


class UnboundParameterError(AlgebraError):
    """A parameterized expression was executed without binding a parameter.

    Raised when a ``$name`` placeholder (:class:`repro.core.positions.Param`)
    reaches evaluation unbound — e.g. ``stmt.execute()`` missing a keyword,
    or an engine handed a parameterized plan directly.
    """

    def __init__(self, name: str, known: tuple[str, ...] = ()):
        self.name = name
        self.known = known
        hint = f" (expression parameters: {', '.join(known)})" if known else ""
        super().__init__(f"parameter ${name} is not bound{hint}")

    def __reduce__(self):
        return (UnboundParameterError, (self.name, self.known))


class PlanVerificationError(AlgebraError):
    """A compiled physical plan failed static verification.

    Raised by :func:`repro.analysis.verify.assert_plan_valid` (and, when
    ``REPRO_PLAN_VERIFY`` is enabled, by ``compile_plan`` itself) when a
    plan violates one of the operator invariants catalogued in
    :mod:`repro.analysis.invariants`.  ``violations`` carries the full
    tuple of :class:`repro.analysis.invariants.Violation` records; the
    message lists every invariant ID so logs stay actionable even where
    only the string survives.
    """

    def __init__(self, message: str, violations: tuple = ()):
        self.violations = tuple(violations)
        super().__init__(message)

    def __reduce__(self):
        return (PlanVerificationError, (self.args[0], self.violations))


class ParseError(ReproError):
    """Syntax errors in any of the small text languages we parse."""

    def __init__(self, message: str, text: str = "", pos: int | None = None):
        self.text = text
        self.pos = pos
        if pos is not None:
            snippet = text[max(0, pos - 20):pos + 20]
            message = f"{message} at position {pos} (near {snippet!r})"
        super().__init__(message)

    def __reduce__(self):
        # args[0] is the already-formatted message; pos=None keeps it as-is.
        return (ParseError, (self.args[0], self.text, None))


class DatalogError(ReproError):
    """Malformed Datalog programs (shape violations, unsafe rules...)."""


class StratificationError(DatalogError):
    """The program uses negation through recursion and cannot be stratified."""


class LogicError(ReproError):
    """Malformed FO / TrCl formulas."""


class TranslationError(ReproError):
    """A language translation was asked for an unsupported construct."""


class GraphError(ReproError):
    """Problems with graph database construction or queries."""


class EvaluationBudgetError(ReproError):
    """An evaluation exceeded an explicit resource budget.

    The universal relation U is cubic in the number of objects; engines
    raise this instead of silently materialising enormous intermediates
    when the caller sets a budget.
    """


class StorageError(ReproError):
    """Problems with the durable storage layer (:mod:`repro.storage`).

    The family base: anything that goes wrong while opening, writing,
    snapshotting or recovering an on-disk store directory and is not
    better described as corruption.
    """


class StoreCorruptionError(StorageError):
    """A durable store directory failed an integrity check.

    Raised when opening a store whose committed state cannot be trusted:
    a segment or WAL record inside the committed region fails its CRC,
    the manifest is unreadable, or a referenced segment file is missing.
    ``findings`` carries the structured
    :class:`repro.analysis.invariants.Finding` records (``STOR-*``
    rules) so ``repro fsck`` and recovery report identically.  A *torn
    WAL tail* — bytes past the committed pointer — is not corruption:
    recovery truncates it and this error is never raised for it.
    """

    def __init__(self, message: str, findings: tuple = ()):
        self.findings = tuple(findings)
        super().__init__(message)

    def __reduce__(self):
        return (StoreCorruptionError, (self.args[0], self.findings))


class ShardWorkerError(ReproError):
    """The process-parallel shard executor lost its workers.

    Raised by the coordinator when a worker process dies (or stops
    heartbeating / misses the query deadline) and the automatic
    restart-and-retry of the query also fails.  A single worker failure
    is *not* surfaced as this error: the coordinator restarts the dead
    worker and replays the query once before giving up.
    """


class ServiceError(ReproError):
    """Base class for the query service layer (:mod:`repro.service`).

    Every service error has a stable wire shape: the error class name
    and message cross HTTP/WebSocket as structured JSON (see
    :func:`repro.service.protocol.error_body`), so clients distinguish
    admission rejections from timeouts from protocol violations without
    parsing message text.
    """


class ProtocolError(ServiceError):
    """A malformed client request: bad JSON, wrong field types, unknown
    routes, or a broken WebSocket frame (truncated, reserved bits,
    unmasked client payload).  Always the client's fault — maps to the
    4xx family on the wire, and never takes the server down."""


class PayloadTooLargeError(ProtocolError):
    """A request body (or WebSocket frame) exceeded the configured size
    limit.  Carries the sizes so clients can adapt."""

    def __init__(self, size: int, limit: int, what: str = "request body"):
        self.size = size
        self.limit = limit
        self.what = what
        super().__init__(f"{what} of {size} bytes exceeds the limit of {limit}")

    def __reduce__(self):
        return (PayloadTooLargeError, (self.size, self.limit, self.what))


class AdmissionRejectedError(ServiceError):
    """The server refused to start a query under admission control.

    ``reason`` is ``"queue_full"`` (the bounded wait queue was already
    at capacity) or ``"queue_timeout"`` (a slot did not free up within
    the queue wait budget).  Rejected queries never executed — clients
    can safely retry with backoff.
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        super().__init__(detail or f"query rejected by admission control ({reason})")

    def __reduce__(self):
        return (AdmissionRejectedError, (self.reason, self.args[0]))


class QueryTimeoutError(ServiceError):
    """A query exceeded its per-query time budget.

    On the process shard executor the underlying deadline machinery
    (``REPRO_SHARD_TIMEOUT`` / :class:`ShardWorkerError`) also aborts
    the workers; on in-process executors the server abandons the
    request while the worker thread drains in the background.
    """

    def __init__(self, seconds: float):
        self.seconds = seconds
        super().__init__(f"query exceeded its {seconds:g}s time budget")

    def __reduce__(self):
        return (QueryTimeoutError, (self.seconds,))


class RemoteError(ServiceError):
    """A structured error relayed by a query server to its client.

    The service client raises this for any non-2xx response carrying a
    structured error body; ``remote_type`` is the server-side exception
    class name (e.g. ``"ShardWorkerError"``), ``status`` the HTTP-level
    code, and ``payload`` the full decoded error object.
    """

    def __init__(self, remote_type: str, message: str, status: int = 500,
                 payload: dict | None = None):
        self.remote_type = remote_type
        self.status = status
        self.payload = payload or {}
        super().__init__(f"{remote_type}: {message}")

    def __reduce__(self):
        return (
            RemoteError,
            (self.remote_type, self.args[0].split(": ", 1)[-1], self.status,
             self.payload),
        )
