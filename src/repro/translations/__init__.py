"""Translations between TriAL(*) and the comparison languages (§6)."""

from repro.translations.fo_to_trial import fo3_to_trial
from repro.translations.graph_to_trial import (
    gxpath_node_to_trial,
    gxpath_to_trial,
    node_pairs,
    nodes_diagonal,
    normalise,
    nre_to_trial,
    regex_to_gxpath,
    rpq_to_trial,
)
from repro.translations.trial_to_fo import POOL, trial_eq_to_fo4, trial_to_fo

__all__ = [
    "POOL",
    "fo3_to_trial",
    "gxpath_node_to_trial",
    "gxpath_to_trial",
    "node_pairs",
    "nodes_diagonal",
    "normalise",
    "nre_to_trial",
    "regex_to_gxpath",
    "rpq_to_trial",
    "trial_eq_to_fo4",
    "trial_to_fo",
]
