"""TriAL → FO⁶ and TriAL* → TrCl⁶ (Theorem 4 part 1, Theorem 6 part 1).

The translation produces a formula over the vocabulary ⟨E₁,…,Eₙ, ∼⟩
whose free variables are ``v1, v2, v3`` (standing for the output triple)
and which reuses variables from the fixed six-name pool
``v1 … v6`` — witnessing the FO⁶ upper bound.  Tests check both the
semantic agreement (``answers(ϕ) == evaluate(e)``) and the variable
count (``ϕ.num_variables() <= 6``).

Kleene stars are translated into :class:`~repro.logic.trcl.Trcl` nodes
following the proof of Theorem 6: for ``e' = (e ✶^{i,j,k}_{θ,η})*`` we
emit::

    ψ_e(v1,v2,v3) ∨ ∃x̄ (ψ_e(x̄) ∧ [trcl_{x̄,ȳ} step(x̄,ȳ)](x̄, (v1,v2,v3)))

where ``step(x̄,ȳ)`` says: some triple t with ψ_e(t) joins with x̄ to
produce ȳ.  (The trcl operator closes over six variables, hence TrCl⁶.)
Note the trcl construct needs six *extra* names for x̄/ȳ; the paper
counts variables with reuse of the argument tuples, a subtlety of the
logic's syntax our AST does not replicate, so for starred expressions we
assert ≤ 12 names and record the nuance in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.core.conditions import Cond
from repro.core.expressions import (
    Diff,
    Expr,
    Intersect,
    Join,
    Rel,
    Select,
    Star,
    Union,
    Universe,
)
from repro.core.positions import Const, Pos
from repro.logic.fo import (
    And,
    ConstT,
    Eq,
    Exists,
    Formula,
    Not,
    Or,
    RelAtom,
    Sim,
    Var,
    and_all,
    exists,
    or_all,
    rename,
)
from repro.logic.trcl import Trcl

#: The six-variable pool of Theorem 4.
POOL = ("v1", "v2", "v3", "v4", "v5", "v6")
OUT_VARS = POOL[:3]


def _adom(var: str, rel_names: tuple[str, ...], helpers: tuple[str, str]) -> Formula:
    """``var`` occurs in some position of some relation (active domain)."""
    a, b = helpers
    disjuncts: list[Formula] = []
    for name in rel_names:
        disjuncts.append(RelAtom(name, (Var(var), Var(a), Var(b))))
        disjuncts.append(RelAtom(name, (Var(a), Var(var), Var(b))))
        disjuncts.append(RelAtom(name, (Var(a), Var(b), Var(var))))
    return exists(a, b, or_all(disjuncts))


def _condition_formula(cond: Cond, slot: dict[int, str]) -> Formula:
    def term(t):
        if isinstance(t, Const):
            return ConstT(t.value)
        return Var(slot[t.index])

    if cond.on_data:
        if isinstance(cond.left, Const) or isinstance(cond.right, Const):
            raise TranslationError(
                "η-conditions against data constants have no counterpart in "
                "the one-sorted ⟨E, ∼⟩ vocabulary (see the paper's remark at "
                "the end of the Lemma 5 proof)"
            )
        atom: Formula = Sim(term(cond.left), term(cond.right))
    else:
        atom = Eq(term(cond.left), term(cond.right))
    return atom if cond.is_equality else Not(atom)


def trial_to_fo(
    expr: Expr,
    rel_names: tuple[str, ...] | None = None,
    fold_equalities: bool = False,
) -> Formula:
    """Translate a TriAL(*) expression to FO/TrCl over ⟨E₁,…, ∼⟩.

    ``rel_names`` is needed when the expression uses U (the active
    domain must be spelled out); defaults to the relation names the
    expression mentions.  With ``fold_equalities``, θ-equated join
    positions share one variable instead of an existential plus an
    equality conjunct — the Lemma 1 trick that (after minimisation)
    brings TriAL= expressions into FO⁴.
    """
    if rel_names is None:
        rel_names = tuple(sorted(expr.relation_names()))

    def go(e: Expr) -> Formula:
        if isinstance(e, Rel):
            return RelAtom(e.name, tuple(Var(v) for v in OUT_VARS))
        if isinstance(e, Universe):
            if not rel_names:
                raise TranslationError("U needs at least one relation name")
            return and_all(
                [_adom(v, rel_names, ("v4", "v5")) for v in OUT_VARS]
            )
        if isinstance(e, Select):
            slot = {i: OUT_VARS[i] for i in range(3)}
            conjuncts: list[Formula] = [go(e.expr)]
            conjuncts += [_condition_formula(c, slot) for c in e.conditions]
            return and_all(conjuncts)
        if isinstance(e, Union):
            return Or(go(e.left), go(e.right))
        if isinstance(e, Diff):
            return And(go(e.left), Not(go(e.right)))
        if isinstance(e, Intersect):
            return And(go(e.left), go(e.right))
        if isinstance(e, Join):
            return _join_formula(go(e.left), go(e.right), e.out, e.conditions)
        if isinstance(e, Star):
            return _star_formula(go(e.expr), e)
        raise TranslationError(f"unknown expression node {type(e).__name__}")

    def _join_formula(
        phi_left: Formula,
        phi_right: Formula,
        out: tuple[int, int, int],
        conditions: tuple[Cond, ...],
    ) -> Formula:
        # Optionally merge positions linked by θ-equalities (Lemma 1's
        # variable-saving move): equated positions share one variable.
        group_of = list(range(6))

        def find(i: int) -> int:
            while group_of[i] != i:
                group_of[i] = group_of[group_of[i]]
                i = group_of[i]
            return i

        folded: set[Cond] = set()
        if fold_equalities:
            for cond in conditions:
                if (
                    cond.is_equality
                    and not cond.on_data
                    and isinstance(cond.left, Pos)
                    and isinstance(cond.right, Pos)
                ):
                    ra, rb = find(cond.left.index), find(cond.right.index)
                    if ra != rb:
                        group_of[ra] = rb
                    folded.add(cond)

        slot: dict[int, str] = {}
        extra_eqs: list[Formula] = []
        for var, pos in zip(OUT_VARS, out):
            root = find(pos)
            if root in slot:
                # Repeated output position (or one equated to an earlier
                # output): vⱼ equals the earlier name.  The equality
                # lives OUTSIDE the quantifier below, which frees vⱼ for
                # reuse as a bound name inside (FOᵏ counts names, not
                # scopes).
                extra_eqs.append(Eq(Var(var), Var(slot[root])))
            else:
                slot[root] = var
        spare = ["v4", "v5", "v6"] + [v for v in OUT_VARS if v not in slot.values()]
        quantified: list[str] = []
        for pos in range(6):
            root = find(pos)
            if root not in slot:
                name = spare.pop(0)
                slot[root] = name
                quantified.append(name)
        position_var = {pos: slot[find(pos)] for pos in range(6)}
        left = rename(
            phi_left,
            {OUT_VARS[i]: position_var[i] for i in range(3)},
            POOL,
        )
        right = rename(
            phi_right,
            {OUT_VARS[i]: position_var[i + 3] for i in range(3)},
            POOL,
        )
        conjuncts = [left, right]
        conjuncts += [
            _condition_formula(c, position_var)
            for c in conditions
            if c not in folded
        ]
        body = exists(*quantified, and_all(conjuncts)) if quantified else and_all(conjuncts)
        return and_all([body] + extra_eqs)

    def _star_formula(phi: Formula, e: Star) -> Formula:
        # Closed-over tuples x̄ = (s1,s2,s3), ȳ = (t1,t2,t3).
        xs = ("s1", "s2", "s3")
        ys = ("t1", "t2", "t3")
        # step(x̄, ȳ): joining x̄ (as the accumulator side) with some
        # ψ_e-triple produces ȳ.
        join_formula = _join_formula(
            _tuple_is(xs) if e.side == "right" else phi,
            phi if e.side == "right" else _tuple_is(xs),
            e.out,
            e.conditions,
        )
        # join_formula's free vars are v1,v2,v3 (the produced triple) and
        # possibly xs; identify the produced triple with ȳ.
        step = rename(join_formula, dict(zip(OUT_VARS, ys)), POOL + xs + ys)
        trcl = Trcl(xs, ys, step, tuple(Var(x) for x in xs), tuple(Var(v) for v in OUT_VARS))
        closure = exists(
            *xs,
            And(rename(phi, dict(zip(OUT_VARS, xs)), POOL + xs), trcl),
        )
        return Or(phi, closure)

    def _tuple_is(names: tuple[str, ...]) -> Formula:
        """A formula whose v1,v2,v3 equal the named tuple (used to inject
        the accumulator tuple into the generic join construction)."""
        return and_all(
            [Eq(Var(OUT_VARS[i]), Var(names[i])) for i in range(3)]
        )

    return go(expr)


def trial_eq_to_fo4(
    expr: Expr, rel_names: tuple[str, ...] | None = None
) -> Formula:
    """Theorem 5 / Lemma 1: a low-variable formula for TriAL= expressions.

    Combines equality folding (θ-equated join positions share one
    variable) with quantifier miniscoping and greedy name reuse
    (:mod:`repro.logic.minimize`).  The tests check both the semantic
    agreement and that the result lands in FO⁴ on the fragment's
    characteristic shapes.  Raises for expressions outside TriAL=.
    """
    from repro.core.expressions import in_trial_eq
    from repro.logic.minimize import minimize_variables

    if not in_trial_eq(expr):
        raise TranslationError(
            "trial_eq_to_fo4 requires a TriAL= expression "
            "(no inequalities, no Kleene stars)"
        )
    phi = trial_to_fo(expr, rel_names, fold_equalities=True)
    return minimize_variables(phi, pool=POOL)
