"""Graph query languages → TriAL* (Theorem 7, Corollaries 2 and 4).

A graph database G is encoded as the triplestore T_G with O = V ∪ Σ and
one triple per edge (``GraphDB.to_triplestore``).  A binary graph query
α is equivalent to a ternary TriAL* expression e when
``π₁,₃(e(T_G)) = α(G)`` — the paper's Section 6.2 convention.

Key derived expressions (all inside the algebra):

* ``N``  — the diagonal (v,v,v) over *graph nodes* (objects occurring as
  a subject or object of an edge triple; labels are excluded as long as
  V ∩ Σ = ∅, which ``to_triplestore`` enforces);
* ``NP`` — all triples (u,v,v) for nodes u,v: the V×V universe used by
  path complement;
* ``norm(e)`` — e with the middle component normalised to the object
  (so complements compare like with like).

Caveat: N is derived from edges, so *isolated nodes* are invisible to
the translation — ε and complements are then taken over the non-isolated
nodes.  The paper's encoding has the same property (its U only contains
objects occurring in triples).  Property tests generate graphs without
isolated nodes.
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.core.builder import join, select, star
from repro.core.conditions import Cond
from repro.core.expressions import Diff, Expr, Intersect, Rel, Union
from repro.core.positions import Const, Pos
from repro.automata import regex as rx
from repro.graphdb import gxpath as gx
from repro.graphdb.nre import Nre, nre_to_gxpath


def nodes_diagonal(relation: str = "E") -> Expr:
    """N: triples (v,v,v) for every edge endpoint v."""
    e = Rel(relation)
    return Union(join(e, e, "1,1,1"), join(e, e, "3,3,3"))


def node_pairs(relation: str = "E") -> Expr:
    """NP: triples (u,v,v) for all node pairs (u,v) — the V×V universe."""
    n = nodes_diagonal(relation)
    return join(n, n, "1,3',3'")


def normalise(expr: Expr, relation: str = "E") -> Expr:
    """norm(e): rewrite each (u,p,v) as (u,v,v) (canonical middle)."""
    return join(expr, nodes_diagonal(relation), "1,3',3", "3=1'")


class _Translator:
    def __init__(self, relation: str) -> None:
        self.relation = relation
        self.rel = Rel(relation)
        self.n = nodes_diagonal(relation)
        self.np = node_pairs(relation)

    # -- path formulas ---------------------------------------------------

    def path(self, expr: gx.PathExpr) -> Expr:
        if isinstance(expr, gx.Eps):
            return self.n
        if isinstance(expr, gx.Axis):
            base = select(self.rel, (Cond(Pos(1), Const(expr.label)),))
            if expr.forward:
                return base
            return join(base, base, "3,2,1", "1=1' & 2=2' & 3=3'")
        if isinstance(expr, gx.Test):
            return self.node(expr.node)
        if isinstance(expr, gx.Concat):
            return join(self.path(expr.left), self.path(expr.right), "1,2,3'", "3=1'")
        if isinstance(expr, gx.PathUnion):
            return Union(self.path(expr.left), self.path(expr.right))
        if isinstance(expr, gx.PathComplement):
            return Diff(self.np, normalise(self.path(expr.inner), self.relation))
        if isinstance(expr, gx.StarPath):
            closure = star(self.path(expr.inner), "1,2,3'", "3=1'")
            return Union(self.n, closure)
        if isinstance(expr, gx.DataPathTest):
            op = "=" if expr.equal else "!="
            return select(
                self.path(expr.inner), (Cond(Pos(0), Pos(2), op, on_data=True),)
            )
        raise TranslationError(f"unknown path formula {type(expr).__name__}")

    # -- node formulas ----------------------------------------------------

    def node(self, expr: gx.NodeExpr) -> Expr:
        if isinstance(expr, gx.Top):
            return self.n
        if isinstance(expr, gx.NodeNot):
            return Diff(self.n, self.node(expr.inner))
        if isinstance(expr, gx.NodeAnd):
            return Intersect(self.node(expr.left), self.node(expr.right))
        if isinstance(expr, gx.NodeOr):
            return Union(self.node(expr.left), self.node(expr.right))
        if isinstance(expr, gx.HasPath):
            e = self.path(expr.path)
            return join(e, e, "1,1,1")
        if isinstance(expr, gx.DataNodeTest):
            op = "=" if expr.equal else "!="
            return join(
                self.path(expr.left),
                self.path(expr.right),
                "1,1,1",
                (Cond(Pos(0), Pos(3)), Cond(Pos(2), Pos(5), op, on_data=True)),
            )
        raise TranslationError(f"unknown node formula {type(expr).__name__}")


def gxpath_to_trial(expr: gx.PathExpr, relation: str = "E") -> Expr:
    """Theorem 7 / Corollary 4: GXPath(∼) path formula → TriAL*.

    Binary semantics via π₁,₃ over T_G.
    """
    return _Translator(relation).path(expr)


def gxpath_node_to_trial(expr: gx.NodeExpr, relation: str = "E") -> Expr:
    """Node formula → TriAL* (diagonal triples (v,v,v))."""
    return _Translator(relation).node(expr)


def nre_to_trial(expr: Nre, relation: str = "E") -> Expr:
    """Corollary 2: nested regular expressions → TriAL*."""
    return gxpath_to_trial(nre_to_gxpath(expr), relation)


def _regex_to_gxpath(expr: rx.Regex) -> gx.PathExpr:
    if isinstance(expr, rx.Epsilon):
        return gx.Eps()
    if isinstance(expr, rx.Label):
        return gx.Axis(expr.label, True)
    if isinstance(expr, rx.Inverse):
        return gx.Axis(expr.label, False)
    if isinstance(expr, rx.Concat):
        return gx.Concat(_regex_to_gxpath(expr.left), _regex_to_gxpath(expr.right))
    if isinstance(expr, rx.Alt):
        return gx.PathUnion(_regex_to_gxpath(expr.left), _regex_to_gxpath(expr.right))
    if isinstance(expr, rx.Star):
        return gx.StarPath(_regex_to_gxpath(expr.inner))
    raise TranslationError(f"unknown regex node {type(expr).__name__}")


def rpq_to_trial(expr: rx.Regex | str, relation: str = "E") -> Expr:
    """Corollary 2: (2)RPQs → TriAL*."""
    if isinstance(expr, str):
        expr = rx.parse_regex(expr)
    return gxpath_to_trial(_regex_to_gxpath(expr), relation)


def regex_to_gxpath(expr: rx.Regex | str) -> gx.PathExpr:
    """Expose the regex → GXPath embedding (RPQs are a GXPath fragment)."""
    if isinstance(expr, str):
        expr = rx.parse_regex(expr)
    return _regex_to_gxpath(expr)
