"""FO³ → TriAL (Theorem 4 part 2) and TrCl³ → TriAL* (Theorem 6 part 2).

Fix three variable names (default ``x, y, z``) corresponding to triple
positions 1, 2, 3.  The translation of a formula ϕ is an expression
``e_ϕ`` with::

    (a, b, c) ∈ e_ϕ(T)   ⟺   T ⊨ ϕ[x→a, y→b, z→c]

for all a, b, c in the active domain — positions of variables that ϕ
does not constrain range over the whole active domain, exactly as in
the proof ("we can just ignore some of the positions in the triples").

The TrCl³ extension translates ``[trcl_{x,y} ϕ(x,y,z)](u1,u2)`` via the
proof's expression ``R = (R_ϕ ✶^{1,2',3}_{3=3' ∧ 2=1'})*`` followed by a
per-case fix-up of the argument terms.
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.core.builder import join, select, star
from repro.core.conditions import Cond
from repro.core.expressions import Diff, Expr, Intersect, Join, Rel, Union, Universe
from repro.core.positions import Const, Pos
from repro.logic.fo import (
    And,
    ConstT,
    Eq,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    RelAtom,
    Sim,
    Var,
)
from repro.logic.trcl import Trcl

#: Primed positions handed out for unconstrained output slots.
_PRIMED = (3, 4, 5)


def fo3_to_trial(
    formula: Formula, variables: tuple[str, str, str] = ("x", "y", "z")
) -> Expr:
    """Translate an FO³/TrCl³ formula into TriAL(*).

    ``variables`` fixes the (position 1, position 2, position 3)
    correspondence.  The formula may only use these three names.
    """
    allowed = set(variables)
    used = formula.all_vars()
    if not used <= allowed:
        raise TranslationError(
            f"formula uses variables {sorted(used - allowed)} outside the "
            f"three-name alphabet {variables}"
        )
    position_of = {name: i for i, name in enumerate(variables)}

    def term_position(t) -> int | None:
        if isinstance(t, Var):
            return position_of[t.name]
        return None

    def go(f: Formula) -> Expr:
        if isinstance(f, RelAtom):
            return _atom(f)
        if isinstance(f, Eq):
            lp, rp = term_position(f.left), term_position(f.right)
            if lp is None and rp is None:
                truth = f.left.value == f.right.value  # type: ignore[union-attr]
                return Universe() if truth else Diff(Universe(), Universe())
            if lp is None or rp is None:
                pos = lp if lp is not None else rp
                const = f.right if lp is not None else f.left
                return select(
                    Universe(), (Cond(Pos(pos), Const(const.value)),)
                )
            if lp == rp:
                return Universe()
            return select(Universe(), (Cond(Pos(lp), Pos(rp)),))
        if isinstance(f, Sim):
            lp, rp = term_position(f.left), term_position(f.right)
            if lp is None or rp is None:
                raise TranslationError(
                    "∼ against constants is outside the one-sorted vocabulary"
                )
            if lp == rp:
                return Universe()
            return select(Universe(), (Cond(Pos(lp), Pos(rp), "=", True),))
        if isinstance(f, Not):
            return Diff(Universe(), go(f.formula))
        if isinstance(f, And):
            return Intersect(go(f.left), go(f.right))
        if isinstance(f, Or):
            return Union(go(f.left), go(f.right))
        if isinstance(f, Exists):
            return _project_out(go(f.formula), position_of[f.var])
        if isinstance(f, Forall):
            return go(Not(Exists(f.var, Not(f.formula))))
        if isinstance(f, Trcl):
            return _trcl(f)
        raise TranslationError(f"unknown formula node {type(f).__name__}")

    def _atom(f: RelAtom) -> Expr:
        base: Expr = Rel(f.name)
        conds: list[Cond] = []
        first_at: dict[str, int] = {}
        for i, t in enumerate(f.terms):
            if isinstance(t, ConstT):
                conds.append(Cond(Pos(i), Const(t.value)))
            else:
                if t.name in first_at:
                    conds.append(Cond(Pos(first_at[t.name]), Pos(i)))
                else:
                    first_at[t.name] = i
        if conds:
            base = select(base, tuple(conds))
        out: list[int] = []
        primed = list(_PRIMED)
        for name in variables:
            if name in first_at:
                out.append(first_at[name])
            else:
                out.append(primed.pop(0))
        return join(base, Universe(), tuple(out))

    def _project_out(expr: Expr, position: int) -> Expr:
        out = [0, 1, 2]
        out[position] = 3 + position  # replace with U's matching primed slot
        return join(expr, Universe(), tuple(out))

    def _trcl(f: Trcl) -> Expr:
        if len(f.xs) != 1 or len(f.ys) != 1:
            raise TranslationError(
                "TrCl³ supports unary closures [trcl_{x,y} ϕ](u1, u2) only"
            )
        x, y = f.xs[0], f.ys[0]
        if x not in position_of or y not in position_of:
            raise TranslationError("trcl variables must come from the alphabet")
        inner_free = f.formula.free_vars()
        param = inner_free - {x, y}
        r_phi = go(f.formula)
        # Normalise so that x sits at position 1, y at position 2 and the
        # parameter (if any) at position 3, by permuting through a join
        # with U.  r_phi positions follow `variables` order already.
        perm = _normalising_permutation(position_of[x], position_of[y])
        if perm is not None:
            r_phi = join(r_phi, Universe(), perm)
        # R = (R_ϕ ✶^{1,2',3}_{3=3' ∧ 2=1'})*: chains (a,b1,c),(b1,b2,c)…
        closed = star(r_phi, "1,2',3", "3=3' & 2=1'")
        return _apply_argument_terms(closed, f, position_of, bool(param))

    def _normalising_permutation(
        px: int, py: int
    ) -> tuple[int, int, int] | None:
        """out-spec moving position px → 1, py → 2, the rest → 3."""
        if (px, py) == (0, 1):
            return None
        rest = ({0, 1, 2} - {px, py}).pop()
        return (px, py, rest)

    def _apply_argument_terms(
        closed: Expr,
        f: Trcl,
        position_of: dict[str, int],
        has_param: bool,
    ) -> Expr:
        """Place the closure's endpoints at the positions of u1/u2.

        ``closed`` holds triples (a, b, c) with b reachable from a via
        ϕ(·,·,c)-edges.  The result must hold at position(u1) the start,
        at position(u2) the end, and (when ϕ has the third variable as a
        parameter) at the parameter's position the value c.
        """
        u1, u2 = f.t1s[0], f.t2s[0]
        if not isinstance(u1, Var) or not isinstance(u2, Var):
            raise TranslationError("trcl arguments must be variables in TrCl³")
        p1, p2 = position_of[u1.name], position_of[u2.name]
        param_pos = None
        if has_param:
            param_name = next(iter(f.formula.free_vars() - set(f.xs) - set(f.ys)))
            param_pos = position_of[param_name]
        # The closure triples are (start, end, param).  Argument identities
        # become selections — the paper's per-case σ's, done uniformly.
        conds: list[Cond] = []
        if u1.name == u2.name:
            conds.append(Cond(Pos(0), Pos(1)))
        if param_pos == p1:
            conds.append(Cond(Pos(0), Pos(2)))
        if param_pos == p2:
            conds.append(Cond(Pos(1), Pos(2)))
        filtered = select(closed, tuple(conds)) if conds else closed
        # Rearrange (start, end, param) onto the output positions; unused
        # output positions range over U.
        out: list[int | None] = [None, None, None]
        out[p1] = 0
        if out[p2] is None:
            out[p2] = 1
        if param_pos is not None and out[param_pos] is None:
            out[param_pos] = 2
        primed = [3, 4, 5]
        for i in range(3):
            if out[i] is None:
                out[i] = primed.pop(0)
        return join(filtered, Universe(), tuple(out))  # type: ignore[arg-type]

    return go(formula)
