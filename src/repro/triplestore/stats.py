"""Relation statistics backing the cost-based physical planner.

A :class:`TriplestoreStats` catalog holds, per relation,

* the cardinality ``|R|`` and
* the number of distinct objects at each of the three positions
  (subject, predicate, object),

computed lazily and cached alongside the store's lazy index cache —
stores are immutable by convention, so neither cache ever invalidates.
The planner (:mod:`repro.core.plan`) uses these numbers to pick hash
join build sides, estimate equality selectivities and decide between a
full scan and an index lookup.

When planning without a store (e.g. ``repro explain --physical`` with no
data file), :data:`DEFAULT_STATS` supplies fixed textbook assumptions so
cost estimates are still well-defined, just unanchored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, typing only
    from repro.triplestore.model import Triplestore

__all__ = ["RelationStats", "TriplestoreStats", "DEFAULT_STATS"]

#: Assumed relation size when no store is available at planning time.
DEFAULT_CARDINALITY = 1000
#: Assumed distinct count per position under the same circumstances.
DEFAULT_DISTINCT = 100


@dataclass(frozen=True)
class RelationStats:
    """Statistics of one ternary relation."""

    name: str
    cardinality: int
    #: Distinct objects at positions 0 (subject), 1 (predicate), 2 (object).
    distinct: tuple[int, int, int]

    def distinct_at(self, position: int) -> int:
        """Distinct objects at one position (0-based)."""
        return self.distinct[position]

    def eq_selectivity(self, position: int) -> float:
        """Estimated fraction of triples matching ``position = const``.

        The uniform-distribution estimate ``1 / distinct`` of classical
        optimizers; 1.0 for an empty relation (no information).
        """
        d = self.distinct[position]
        return 1.0 / d if d else 1.0


class TriplestoreStats:
    """Lazy, cached per-relation statistics of one triplestore.

    Obtained from :meth:`repro.triplestore.model.Triplestore.stats`;
    also constructible directly for testing.
    """

    __slots__ = ("_store", "_cache")

    def __init__(self, store: "Triplestore") -> None:
        self._store = store
        self._cache: dict[str, RelationStats] = {}

    def relation(self, name: str) -> RelationStats:
        """Statistics for ``name``, computed on first use."""
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        triples = self._store.relation(name)
        distinct = tuple(len({t[i] for t in triples}) for i in range(3))
        stats = RelationStats(name, len(triples), distinct)  # type: ignore[arg-type]
        self._cache[name] = stats
        return stats

    def computed(self) -> dict[str, RelationStats]:
        """Snapshot of the statistics computed so far (persisted by the
        durable-store catalog at close time)."""
        return dict(self._cache)

    def seed(self, entries: "Iterable[RelationStats]") -> None:
        """Prefill the cache — warm reopen from a persisted catalog.

        Seeded entries are trusted as-is; the durable-store catalog only
        offers entries whose relation version still matches.
        """
        for stats in entries:
            self._cache[stats.name] = stats

    # -- tolerant accessors used by the planner ------------------------ #

    def cardinality(self, name: str) -> int:
        """``|R|``, or :data:`DEFAULT_CARDINALITY` for unknown relations.

        Unknown names are *not* an error here: the planner must be able
        to build (and cost) a plan whose execution will then raise the
        proper :class:`~repro.errors.UnknownRelationError`.
        """
        if name not in self._store.relation_names:
            return DEFAULT_CARDINALITY
        return self.relation(name).cardinality

    def distinct(self, name: str, position: int) -> int:
        """Distinct count at a position, with the same unknown-name default."""
        if name not in self._store.relation_names:
            return DEFAULT_DISTINCT
        return self.relation(name).distinct_at(position)

    @property
    def n_objects(self) -> int:
        """The store's ``|O|``."""
        return self._store.n_objects

    @property
    def total_triples(self) -> int:
        """The store's ``|T|`` (all relations)."""
        return len(self._store)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{s.name}:|R|={s.cardinality},d={s.distinct}" for s in self._cache.values()
        )
        return f"TriplestoreStats({parts or 'nothing computed yet'})"


class _DefaultStats:
    """Store-free statistics: fixed assumptions for every relation."""

    n_objects = DEFAULT_DISTINCT
    total_triples = DEFAULT_CARDINALITY

    @staticmethod
    def cardinality(name: str) -> int:
        return DEFAULT_CARDINALITY

    @staticmethod
    def distinct(name: str, position: int) -> int:
        return DEFAULT_DISTINCT

    def __repr__(self) -> str:  # pragma: no cover — cosmetic
        return "DEFAULT_STATS"


#: Shared store-free catalog for planning without data.
DEFAULT_STATS = _DefaultStats()
