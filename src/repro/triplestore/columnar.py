"""Array-backed ("columnar") representation of triplestores.

The paper's complexity results are stated over array representations of a
triplestore (Section 5's cubic matrices); :class:`MatrixStore` realises
the dense cubic form verbatim.  This module is its *sparse* sibling and
the storage layer of the vectorised execution backend
(:mod:`repro.core.engines.vectorized`):

* the object universe is sorted and dictionary-encoded to contiguous
  integer codes (``objects[i]`` has code ``i``);
* data values are dictionary-encoded the same way, with ``dv_codes``
  mapping object codes to data-value codes (the array form of ρ — the
  paper's ``DV`` array);
* each relation is a deduplicated, lexicographically sorted ``(N, 3)``
  ``int64`` column-triple array, equivalently a sorted 1-D array of
  *packed keys* ``(s·n + p)·n + o``.

Packed keys make relations totally ordered, so the set operations of the
algebra become sorted-array merges (``np.union1d`` and friends) and hash
joins become ``np.searchsorted`` merge joins — no Python-level loops over
triples.  Everything here is derived data: a :class:`ColumnarStore` is a
read-only view of an immutable :class:`Triplestore`, built lazily and
cached on the store like its hash indexes and statistics
(:meth:`Triplestore.columnar`).
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.errors import TriplestoreError
from repro.triplestore.model import Obj, Triple, Triplestore

__all__ = ["ColumnarStore", "sorted_unique"]

#: Packed keys are ``(s·n + p)·n + o`` in int64; n³ must stay below 2^63.
_MAX_ENCODABLE_OBJECTS = 2_097_151


def sorted_unique(keys: np.ndarray) -> np.ndarray:
    """Sort an int64 key array and drop duplicates.

    The canonical form of every columnar relation and intermediate
    result.  Deliberately *not* ``np.unique``: numpy ≥ 2.4 routes that
    through a hash table which is an order of magnitude slower than
    sort + mask on packed integer keys.
    """
    if len(keys) <= 1:
        return keys
    keys = np.sort(keys)
    keep = np.empty(len(keys), dtype=bool)
    keep[0] = True
    np.not_equal(keys[1:], keys[:-1], out=keep[1:])
    return keys[keep]


class ColumnarStore:
    """Sorted integer-encoded column-triple view of a :class:`Triplestore`.

    Attributes
    ----------
    objects:
        The sorted object universe; code ``i`` denotes ``objects[i]``.
    n:
        ``len(objects)`` — the code range.
    radix:
        The packing radix, ``max(n, 1)``.  A store whose relations are
        all empty has ``n == 0``; packing with radix 0 would divide by
        zero in :meth:`unpack`, so the degenerate store packs (its
        vacuously empty arrays) with radix 1 instead.
    dv_values:
        The sorted distinct data values; ``dv_codes[i]`` indexes into it.
    dv_codes:
        ``int64`` array of length ``n``: the data-value code of each
        object code (the encoded ρ).
    """

    __slots__ = (
        "objects",
        "n",
        "radix",
        "_code_of",
        "_obj_array",
        "dv_values",
        "dv_codes",
        "_dv_code_of",
        "_relations",
        "_columns",
        "_active",
    )

    def __init__(self, store: Triplestore) -> None:
        objs = sorted(store.objects, key=repr)
        if len(objs) > _MAX_ENCODABLE_OBJECTS:
            raise TriplestoreError(
                f"cannot pack triples over {len(objs)} objects into int64 keys "
                f"(limit {_MAX_ENCODABLE_OBJECTS})"
            )
        self.objects: list[Obj] = objs
        self.n: int = len(objs)
        self.radix: int = max(len(objs), 1)
        self._code_of: dict[Obj, int] = {o: i for i, o in enumerate(objs)}
        # An object-dtype array for vectorised decoding (code → object).
        self._obj_array = np.empty(len(objs), dtype=object)
        self._obj_array[:] = objs

        values = sorted({store.rho(o) for o in objs}, key=repr)
        self.dv_values: list[Any] = values
        self._dv_code_of: dict[Any, int] = {v: i for i, v in enumerate(values)}
        self.dv_codes = np.array(
            [self._dv_code_of[store.rho(o)] for o in objs], dtype=np.int64
        )

        self._relations: dict[str, np.ndarray] = {}
        for name in store.relation_names:
            self._relations[name] = self.encode_triples(store.relation(name))
        self._columns: dict[str, np.ndarray] = {}
        self._active: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Encoding and decoding
    # ------------------------------------------------------------------ #

    @property
    def n_data_values(self) -> int:
        """Number of distinct data values (the η-key radix)."""
        return len(self.dv_values)

    def code_of(self, obj: Obj, default: int = -1) -> int:
        """The integer code of ``obj`` (``default`` when absent)."""
        return self._code_of.get(obj, default)

    def dv_code_of(self, value: Any, default: int = -1) -> int:
        """The integer code of a data value (``default`` when absent)."""
        return self._dv_code_of.get(value, default)

    def pack(self, columns: np.ndarray) -> np.ndarray:
        """Pack an ``(N, 3)`` code array into 1-D int64 keys."""
        n = self.radix
        return (columns[:, 0] * n + columns[:, 1]) * n + columns[:, 2]

    def unpack(self, keys: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`pack`: keys back into ``(N, 3)`` code columns."""
        n = self.radix
        out = np.empty((len(keys), 3), dtype=np.int64)
        out[:, 2] = keys % n
        rest = keys // n
        out[:, 1] = rest % n
        out[:, 0] = rest // n
        return out

    def encode_triples(self, triples: Iterable[Triple]) -> np.ndarray:
        """Encode object triples into a sorted unique packed-key array.

        Every object must belong to the store's universe — results of
        TriAL expressions always do (the closure property).
        """
        code = self._code_of
        try:
            flat = [code[c] for t in triples for c in t]
        except KeyError as exc:
            raise TriplestoreError(
                f"cannot encode triples: object {exc.args[0]!r} is not in "
                f"the store's universe of {self.n} objects"
            ) from None
        if not flat:
            return np.empty(0, dtype=np.int64)
        columns = np.array(flat, dtype=np.int64).reshape(-1, 3)
        return sorted_unique(self.pack(columns))

    def decode_triples(self, keys: np.ndarray) -> frozenset[Triple]:
        """Decode a packed-key array back into a set of object triples."""
        columns = self.unpack(keys)
        arr = self._obj_array
        return frozenset(
            zip(
                arr[columns[:, 0]].tolist(),
                arr[columns[:, 1]].tolist(),
                arr[columns[:, 2]].tolist(),
            )
        )

    def decode_list(self, keys: np.ndarray) -> list[Triple]:
        """Decode packed keys into object triples, *preserving key order*.

        The streaming counterpart of :meth:`decode_triples`: cursors
        hand it one window of keys at a time, so a ``limit``-style read
        decodes only the rows it actually yields.
        """
        columns = self.unpack(keys)
        arr = self._obj_array
        return list(
            zip(
                arr[columns[:, 0]].tolist(),
                arr[columns[:, 1]].tolist(),
                arr[columns[:, 2]].tolist(),
            )
        )

    def decode_pairs(self, keys: np.ndarray) -> frozenset[tuple[Obj, Obj]]:
        """π₁,₃ of a packed-key array, deduplicated *before* decoding.

        The pair projection happens on integer codes (pack with radix
        ``n``, sorted-unique, then decode), so heavily duplicated
        subject/object pairs never reach the Python-object layer.
        """
        columns = self.unpack(keys)
        pair_keys = sorted_unique(columns[:, 0] * self.radix + columns[:, 2])
        arr = self._obj_array
        return frozenset(
            zip(
                arr[(pair_keys // self.radix)].tolist(),
                arr[(pair_keys % self.radix)].tolist(),
            )
        )

    def encode_triple_key(self, triple: Triple) -> int:
        """The packed key of one triple, or ``-1`` when any component is
        outside the store's universe (no stored key is negative)."""
        code = self._code_of
        s = code.get(triple[0], -1)
        p = code.get(triple[1], -1)
        o = code.get(triple[2], -1)
        if s < 0 or p < 0 or o < 0:
            return -1
        return (s * self.radix + p) * self.radix + o

    # ------------------------------------------------------------------ #
    # Relations
    # ------------------------------------------------------------------ #

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def relation_keys(self, name: str) -> np.ndarray:
        """Relation ``name`` as a sorted unique packed-key array."""
        try:
            return self._relations[name]
        except KeyError:
            from repro.errors import UnknownRelationError

            raise UnknownRelationError(name, self.relation_names) from None

    def relation_columns(self, name: str) -> np.ndarray:
        """Relation ``name`` as an ``(N, 3)`` code-column array (cached)."""
        cached = self._columns.get(name)
        if cached is None:
            cached = self.unpack(self.relation_keys(name))
            self._columns[name] = cached
        return cached

    def active_codes(self) -> np.ndarray:
        """Codes of objects occurring in some stored triple (domain of U)."""
        if self._active is None:
            if self._relations:
                pieces = [c.ravel() for c in map(self.unpack, self._relations.values())]
                self._active = (
                    sorted_unique(np.concatenate(pieces))
                    if pieces
                    else np.empty(0, np.int64)
                )
            else:  # pragma: no cover — stores always have ≥1 relation
                self._active = np.empty(0, dtype=np.int64)
        return self._active

    def __repr__(self) -> str:
        rels = ", ".join(f"{n}:{len(k)}" for n, k in self._relations.items())
        return f"ColumnarStore(|O|={self.n}, {rels})"
