"""Hash-sharded view of the columnar triplestore encoding.

The ROADMAP's scale-out item: partition each relation's sorted
packed-key array (:mod:`repro.triplestore.columnar`) into ``k`` shards
by hash of one triple position — the *partition key*, subject by
default — so that joins, set operations and fixpoints can run
shard-wise (:mod:`repro.core.engines.sharded`).

Design rules, shared with the executor:

* A :class:`ShardedColumnarStore` wraps — never copies — the parent
  :class:`~repro.triplestore.columnar.ColumnarStore`.  Dictionary
  encoding lives on the parent, so integer codes are comparable across
  shards and a shard-wise merge join needs no re-encoding.
* The shard of a triple is ``code(position) % k`` on the partition key
  position.  Hashing integer codes directly is enough: codes are dense
  and the partitioner only needs *consistency*, not uniformity.
* Each shard is itself a sorted unique packed-key array (partitioning a
  sorted array by a row predicate preserves order), so the per-shard
  algebra is exactly the parent's sorted-array algebra
  (:func:`~repro.triplestore.columnar.sorted_unique` and friends).
* Because equal triples agree on every position, a relation partitioned
  on *any* position has pairwise-disjoint shards whose union is the
  relation — the invariant the executor maintains for every
  intermediate result.

Everything here is derived data over an immutable store, built lazily
and cached per ``(shards, key_pos)`` via :meth:`Triplestore.sharded`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TriplestoreError
from repro.triplestore.columnar import ColumnarStore

__all__ = ["ShardedColumnarStore"]

#: Triple positions a relation can be partitioned on (0=s, 1=p, 2=o).
PARTITION_POSITIONS = (0, 1, 2)


class ShardedColumnarStore:
    """A ``k``-way hash partition of every relation's packed-key array.

    Attributes
    ----------
    cs:
        The parent columnar store (owns the dictionary encoding).
    k:
        Number of shards.
    key_pos:
        The triple position stored relations are partitioned on
        (0 = subject by default).
    """

    __slots__ = ("cs", "k", "key_pos", "_shards", "_columns", "_shm")

    def __init__(self, cs: ColumnarStore, shards: int, key_pos: int = 0) -> None:
        if shards < 1:
            raise TriplestoreError(f"shard count must be >= 1, got {shards}")
        if key_pos not in PARTITION_POSITIONS:
            raise TriplestoreError(
                f"partition key position must be one of {PARTITION_POSITIONS}, "
                f"got {key_pos}"
            )
        self.cs = cs
        self.k = int(shards)
        self.key_pos = int(key_pos)
        self._shards: dict[str, list[np.ndarray]] = {}
        self._columns: dict[str, list[np.ndarray]] = {}
        #: Shared-memory publication of this view, if any — owned by
        #: :mod:`repro.triplestore.shm` (cached there like every other
        #: derived artifact of the immutable store).
        self._shm = None

    # ------------------------------------------------------------------ #
    # Partitioning primitives (shared with the executor)
    # ------------------------------------------------------------------ #

    def component(self, keys: np.ndarray, pos: int) -> np.ndarray:
        """The code column at triple position ``pos`` of packed ``keys``."""
        n = self.cs.radix
        if pos == 2:
            return keys % n
        if pos == 1:
            return (keys // n) % n
        return keys // (n * n)

    def shard_ids(self, keys: np.ndarray, pos: int) -> np.ndarray:
        """The shard of each packed key when partitioning on ``pos``."""
        return self.component(keys, pos) % self.k

    def partition(self, keys: np.ndarray, pos: int) -> list[np.ndarray]:
        """Split a sorted unique key array into ``k`` shards on ``pos``.

        Each output shard is again sorted unique (filtering preserves
        order), and the shards are pairwise disjoint by construction.
        """
        if self.k == 1:
            return [keys]
        ids = self.shard_ids(keys, pos)
        return [keys[ids == s] for s in range(self.k)]

    # ------------------------------------------------------------------ #
    # Relations
    # ------------------------------------------------------------------ #

    @property
    def relation_names(self) -> tuple[str, ...]:
        return self.cs.relation_names

    def relation_shards(self, name: str) -> list[np.ndarray]:
        """Relation ``name`` as ``k`` sorted key arrays, cached.

        Raises :class:`~repro.errors.UnknownRelationError` for missing
        names (via the parent store).
        """
        cached = self._shards.get(name)
        if cached is None:
            cached = self.partition(self.cs.relation_keys(name), self.key_pos)
            self._shards[name] = cached
        return cached

    def shard_columns(self, name: str) -> list[np.ndarray]:
        """Relation ``name`` as per-shard ``(N, 3)`` code-column blocks.

        Cached like :meth:`ColumnarStore.relation_columns`, so repeated
        base-relation lookups do not re-unpack the packed keys.
        """
        cached = self._columns.get(name)
        if cached is None:
            cached = [self.cs.unpack(shard) for shard in self.relation_shards(name)]
            self._columns[name] = cached
        return cached

    def active_codes(self) -> np.ndarray:
        """Codes of objects occurring in some stored triple (domain of U).

        The union of a relation's shards is the relation, so this is
        exactly the parent's (cached, :func:`sorted_unique`-merged)
        active set — delegating avoids re-unpacking every shard and a
        duplicate cached array per ``(shards, key_pos)`` view.
        """
        return self.cs.active_codes()

    def __repr__(self) -> str:
        rels = ", ".join(
            f"{name}:{len(self.cs.relation_keys(name))}"
            for name in self.relation_names
        )
        return (
            f"ShardedColumnarStore(k={self.k}, key_pos={self.key_pos}, "
            f"|O|={self.cs.n}, {rels})"
        )
