"""Plain-text serialisation for triplestores.

The format is a tiny line-oriented language, sufficient for examples and
for shipping the paper's datasets as readable fixtures:

.. code-block:: text

    # comment
    @rho Edinburgh "scotland"
    @rho o175 ("Mario", "m@nes.com", 23, null, null)
    E StAndrews BusOp1 Edinburgh
    part_of BusOp1 NatExpress      # relation name first, then s p o

Tokens are whitespace-separated; quoted strings may contain spaces.
Data values may be quoted strings, integers, floats, ``null`` (maps to
``None``) or parenthesised tuples of those.
"""

from __future__ import annotations

import io
from typing import Any, TextIO

from repro.errors import ParseError
from repro.triplestore.model import Triple, Triplestore


def _tokenize(line: str) -> list[str]:
    tokens: list[str] = []
    i, n = 0, len(line)
    while i < n:
        ch = line[i]
        if ch.isspace():
            i += 1
        elif ch == "#":
            break
        elif ch == '"':
            j = line.find('"', i + 1)
            if j < 0:
                raise ParseError("unterminated string", line, i)
            tokens.append(line[i:j + 1])
            i = j + 1
        elif ch in "(),":
            tokens.append(ch)
            i += 1
        else:
            j = i
            while j < n and not line[j].isspace() and line[j] not in '(),"#':
                j += 1
            tokens.append(line[i:j])
            i = j
    return tokens


def _parse_value(tokens: list[str], start: int) -> tuple[Any, int]:
    """Parse one data value starting at ``tokens[start]``; return (value, next)."""
    tok = tokens[start]
    if tok == "(":
        items: list[Any] = []
        i = start + 1
        while i < len(tokens) and tokens[i] != ")":
            if tokens[i] == ",":
                i += 1
                continue
            value, i = _parse_value(tokens, i)
            items.append(value)
        if i >= len(tokens):
            raise ParseError("unterminated tuple value")
        return tuple(items), i + 1
    if tok.startswith('"'):
        return tok[1:-1], start + 1
    if tok == "null":
        return None, start + 1
    try:
        return int(tok), start + 1
    except ValueError:
        pass
    try:
        return float(tok), start + 1
    except ValueError:
        pass
    return tok, start + 1


def loads(text: str) -> Triplestore:
    """Parse the text format into a :class:`Triplestore`."""
    relations: dict[str, set[Triple]] = {}
    rho: dict[Any, Any] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        tokens = _tokenize(raw)
        if not tokens:
            continue
        if tokens[0] == "@rho":
            if len(tokens) < 3:
                raise ParseError(f"line {lineno}: @rho needs an object and a value")
            obj, _ = _parse_value(tokens, 1)
            value, _ = _parse_value(tokens, 2)
            rho[obj] = value
            continue
        if len(tokens) != 4:
            raise ParseError(
                f"line {lineno}: expected 'REL s p o', got {len(tokens)} tokens"
            )
        name = tokens[0]
        parts = []
        for tok in tokens[1:]:
            value, _ = _parse_value([tok], 0)
            parts.append(value)
        relations.setdefault(name, set()).add(tuple(parts))
    return Triplestore(relations, rho)


def load(fp: TextIO) -> Triplestore:
    """Read a triplestore from an open text file."""
    return loads(fp.read())


def load_path(path: str) -> Triplestore:
    """Read a triplestore from a file path."""
    with open(path, encoding="utf-8") as fp:
        return load(fp)


def _format_value(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, tuple):
        return "(" + ", ".join(_format_value(v) for v in value) + ")"
    if isinstance(value, str):
        return f'"{value}"' if (" " in value or value == "null") else value
    return repr(value)


def dumps(store: Triplestore) -> str:
    """Serialise ``store`` into the text format (sorted, deterministic)."""
    out = io.StringIO()
    for obj in sorted(store.objects, key=repr):
        value = store.rho(obj)
        if value is not None:
            out.write(f"@rho {_format_value(obj)} {_format_value(value)}\n")
    for name in store.relation_names:
        for triple in sorted(store.relation(name), key=repr):
            s, p, o = (_format_value(x) for x in triple)
            out.write(f"{name} {s} {p} {o}\n")
    return out.getvalue()


def dump(store: Triplestore, fp: TextIO) -> None:
    """Write ``store`` to an open text file."""
    fp.write(dumps(store))


def dump_path(store: Triplestore, path: str) -> None:
    """Write ``store`` to a file path."""
    with open(path, "w", encoding="utf-8") as fp:
        dump(store, fp)
