"""Triplestore data model (Definition 1) and its array representation."""

from repro.triplestore.io import dump, dump_path, dumps, load, load_path, loads
from repro.triplestore.matrix import MatrixStore
from repro.triplestore.model import DEFAULT_RELATION, Obj, Triple, Triplestore

__all__ = [
    "DEFAULT_RELATION",
    "MatrixStore",
    "Obj",
    "Triple",
    "Triplestore",
    "dump",
    "dump_path",
    "dumps",
    "load",
    "load_path",
    "loads",
]
