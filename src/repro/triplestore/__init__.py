"""Triplestore data model (Definition 1) and its array representation."""

from repro.triplestore.columnar import ColumnarStore
from repro.triplestore.io import dump, dump_path, dumps, load, load_path, loads
from repro.triplestore.matrix import MatrixStore
from repro.triplestore.model import DEFAULT_RELATION, Obj, Triple, Triplestore
from repro.triplestore.sharded import ShardedColumnarStore
from repro.triplestore.stats import DEFAULT_STATS, RelationStats, TriplestoreStats

__all__ = [
    "ColumnarStore",
    "DEFAULT_RELATION",
    "DEFAULT_STATS",
    "MatrixStore",
    "ShardedColumnarStore",
    "Obj",
    "RelationStats",
    "Triple",
    "Triplestore",
    "TriplestoreStats",
    "dump",
    "dump_path",
    "dumps",
    "load",
    "load_path",
    "loads",
]
