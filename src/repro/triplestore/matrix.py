"""The array ("matrix") representation of triplestores used in Section 5.

The paper's complexity analysis (Theorem 3 and onwards) assumes each
relation is a three-dimensional ``n x n x n`` 0/1 matrix over the sorted
object universe, plus a one-dimensional array ``DV`` of data values.  The
:class:`MatrixStore` realises exactly that representation, backed by numpy
boolean arrays, and is what the paper-faithful :class:`~repro.core.engines.naive.NaiveEngine`
operates on.

Only small stores should be materialised this way — the representation is
cubic in ``|O|`` by design (that is the point of the paper's cost model:
``|T|`` in Theorem 3 is the size of the array, i.e. ``|O|^3``; see the
proof of Proposition 4 which uses ``|T| = |O|^3``).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import MatrixTooLargeError, TriplestoreError, UnknownRelationError
from repro.triplestore.model import Obj, Triple, Triplestore


class MatrixStore:
    """Dense cubic-array view of a :class:`Triplestore`.

    Attributes
    ----------
    objects:
        The sorted object universe; index ``i`` in any matrix refers to
        ``objects[i]``.
    dv:
        The data-value array: ``dv[i] == rho(objects[i])``.
    """

    __slots__ = ("objects", "_pos", "_matrices", "dv")

    #: Refuse to materialise matrices above this object count by default —
    #: a 200^3 boolean array is already 8 MB per relation.
    DEFAULT_MAX_OBJECTS = 512

    def __init__(self, store: Triplestore, max_objects: int | None = None) -> None:
        limit = self.DEFAULT_MAX_OBJECTS if max_objects is None else max_objects
        objs = sorted(store.objects, key=repr)
        if len(objs) > limit:
            raise MatrixTooLargeError(len(objs), limit, what="cubic matrix")
        self.objects: list[Obj] = objs
        self._pos: dict[Obj, int] = {o: i for i, o in enumerate(objs)}
        n = len(objs)
        self._matrices: dict[str, np.ndarray] = {}
        for name in store.relation_names:
            mat = np.zeros((n, n, n), dtype=bool)
            for s, p, o in store.relation(name):
                mat[self._pos[s], self._pos[p], self._pos[o]] = True
            self._matrices[name] = mat
        self.dv: list[Any] = [store.rho(o) for o in objs]

    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of objects (matrix side length)."""
        return len(self.objects)

    def matrix(self, name: str) -> np.ndarray:
        """The ``n x n x n`` boolean matrix of relation ``name``."""
        try:
            return self._matrices[name]
        except KeyError:
            raise UnknownRelationError(name, tuple(self._matrices)) from None

    def index_of(self, obj: Obj) -> int:
        """Matrix index of ``obj``."""
        try:
            return self._pos[obj]
        except KeyError:
            raise TriplestoreError(f"object {obj!r} not in the matrix universe") from None

    def triples_of(self, matrix: np.ndarray) -> frozenset[Triple]:
        """Decode a boolean matrix back into a set of object triples."""
        out = set()
        for i, j, k in zip(*np.nonzero(matrix)):
            out.add((self.objects[i], self.objects[j], self.objects[k]))
        return frozenset(out)

    def encode(self, triples: frozenset[Triple] | set[Triple]) -> np.ndarray:
        """Encode a set of triples as a boolean matrix over this universe."""
        mat = np.zeros((self.n, self.n, self.n), dtype=bool)
        for s, p, o in triples:
            mat[self._pos[s], self._pos[p], self._pos[o]] = True
        return mat

    def empty(self) -> np.ndarray:
        """A fresh all-zero matrix."""
        return np.zeros((self.n, self.n, self.n), dtype=bool)

    def universal(self) -> np.ndarray:
        """The matrix of U: all triples over objects occurring in some triple.

        Following Section 3, U contains every combination of objects that
        occur *somewhere* in the stored relations (the active domain).
        Objects added via ``extra_objects`` but never mentioned in a triple
        are excluded, mirroring the paper's definition of U via joins.
        """
        active = np.zeros(self.n, dtype=bool)
        for mat in self._matrices.values():
            active |= mat.any(axis=(1, 2))
            active |= mat.any(axis=(0, 2))
            active |= mat.any(axis=(0, 1))
        return np.einsum("i,j,k->ijk", active, active, active).astype(bool)
