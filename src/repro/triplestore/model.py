"""The triplestore data model (Definition 1 of the paper).

A *triplestore database* is a tuple ``T = (O, E1, ..., En, rho)`` where

* ``O`` is a finite set of objects,
* each ``Ei`` is a set of triples over ``O x O x O``, and
* ``rho : O -> D`` assigns a data value to each object.

Objects may be any hashable Python values (strings in all the paper's
examples).  Data values likewise; the paper also allows tuples of values
(the social network of Section 2.3 uses quintuples) and our ``rho`` does
too since tuples are hashable.

The model is deliberately closed under query evaluation: the result of a
TriAL expression is a plain ``frozenset`` of triples over ``O`` that can be
installed back into a store with :meth:`Triplestore.with_relation`, making
composition (the paper's closure property) a one-liner.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Any

from repro.errors import TriplestoreError, UnknownRelationError

Obj = Hashable
Triple = tuple[Any, Any, Any]

#: Default relation name used throughout the paper ("often we have just a
#: single ternary relation E").
DEFAULT_RELATION = "E"


def _as_triple(item: Iterable[Any]) -> Triple:
    """Coerce ``item`` into a 3-tuple, raising a helpful error otherwise."""
    triple = tuple(item)
    if len(triple) != 3:
        raise TriplestoreError(f"triples must have exactly 3 components, got {triple!r}")
    return triple


class Triplestore:
    """An immutable-by-convention triplestore database.

    Parameters
    ----------
    relations:
        Either an iterable of triples (installed under
        :data:`DEFAULT_RELATION`) or a mapping ``name -> iterable of
        triples`` for multi-relation stores.
    rho:
        Optional mapping from objects to data values.  Objects without an
        entry have data value ``None`` (the paper's ``⊥``).
    extra_objects:
        Objects that belong to ``O`` without occurring in any triple (the
        model permits this; e.g. isolated graph nodes).

    Examples
    --------
    >>> t = Triplestore([("a", "p", "b")], rho={"a": 1, "b": 1})
    >>> ("a", "p", "b") in t.relation("E")
    True
    >>> sorted(t.objects)
    ['a', 'b', 'p']
    """

    __slots__ = (
        "_relations",
        "_rho",
        "_objects",
        "_indexes",
        "_stats",
        "_columnar",
        "_sharded",
    )

    def __init__(
        self,
        relations: Mapping[str, Iterable[Triple]] | Iterable[Triple] | None = None,
        rho: Mapping[Obj, Any] | None = None,
        extra_objects: Iterable[Obj] = (),
    ) -> None:
        if relations is None:
            rel_map: dict[str, frozenset[Triple]] = {DEFAULT_RELATION: frozenset()}
        elif isinstance(relations, Mapping):
            rel_map = {
                str(name): frozenset(_as_triple(t) for t in triples)
                for name, triples in relations.items()
            }
        else:
            rel_map = {DEFAULT_RELATION: frozenset(_as_triple(t) for t in relations)}
        if not rel_map:
            rel_map = {DEFAULT_RELATION: frozenset()}

        objects: set[Obj] = set(extra_objects)
        for triples in rel_map.values():
            for s, p, o in triples:
                objects.add(s)
                objects.add(p)
                objects.add(o)

        self._relations: dict[str, frozenset[Triple]] = rel_map
        self._rho: dict[Obj, Any] = dict(rho or {})
        self._objects: frozenset[Obj] = frozenset(objects)
        self._indexes: dict[tuple[str, tuple[int, ...]], dict[tuple, list[Triple]]] = {}
        self._stats = None
        self._columnar = None
        self._sharded: dict = {}

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def objects(self) -> frozenset[Obj]:
        """The finite object set ``O``."""
        return self._objects

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Names of the ternary relations, in insertion order."""
        return tuple(self._relations)

    def relation(self, name: str = DEFAULT_RELATION) -> frozenset[Triple]:
        """The set of triples of relation ``name``.

        Raises :class:`UnknownRelationError` for missing names.
        """
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name, self.relation_names) from None

    def rho(self, obj: Obj) -> Any:
        """The data value ρ(obj); ``None`` when unassigned (paper's ⊥)."""
        return self._rho.get(obj)

    def rho_map(self) -> dict[Obj, Any]:
        """A copy of the full data-value assignment."""
        return dict(self._rho)

    def all_triples(self) -> frozenset[Triple]:
        """Union of all relations (used for the active domain of U)."""
        out: set[Triple] = set()
        for triples in self._relations.values():
            out.update(triples)
        return frozenset(out)

    def __contains__(self, triple: Triple) -> bool:
        return any(triple in rel for rel in self._relations.values())

    def __iter__(self) -> Iterator[Triple]:
        for triples in self._relations.values():
            yield from triples

    def __len__(self) -> int:
        """Total number of triples, the paper's ``|T|``."""
        return sum(len(rel) for rel in self._relations.values())

    @property
    def size(self) -> int:
        """Alias for ``len(self)`` matching the paper's ``|T|`` notation."""
        return len(self)

    @property
    def n_objects(self) -> int:
        """The paper's ``|O|``."""
        return len(self._objects)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Triplestore):
            return NotImplemented
        return (
            self._relations == other._relations
            and self._objects == other._objects
            and self._rho == other._rho
        )

    def __hash__(self) -> int:
        return hash(
            (
                frozenset(self._relations.items()),
                self._objects,
                frozenset(self._rho.items()),
            )
        )

    def __repr__(self) -> str:
        rels = ", ".join(f"{n}:{len(t)}" for n, t in self._relations.items())
        return f"Triplestore(|O|={len(self._objects)}, {rels})"

    # ------------------------------------------------------------------ #
    # Derived stores (closure / composition support)
    # ------------------------------------------------------------------ #

    def with_relation(self, name: str, triples: Iterable[Triple]) -> "Triplestore":
        """A new store with ``name`` (re)bound to ``triples``.

        This is how query results are composed back into stores: the
        closure property of TriAL means any expression result is a valid
        relation for a new store.
        """
        rels: dict[str, Iterable[Triple]] = dict(self._relations)
        rels[name] = frozenset(_as_triple(t) for t in triples)
        return Triplestore(rels, self._rho, self._objects)

    def add_triple(self, triple: Triple, name: str = DEFAULT_RELATION) -> "Triplestore":
        """A new store with ``triple`` added to relation ``name``.

        Mutation-by-derivation: the original store — and its cached
        indexes, statistics and columnar view — is untouched; the derived
        store starts with fresh (empty) caches, so nothing can go stale.

        >>> t = Triplestore([("a", "p", "b")])
        >>> t2 = t.add_triple(("b", "p", "c"))
        >>> len(t), len(t2)
        (1, 2)
        """
        existing = self._relations.get(name, frozenset())
        return self.with_relation(name, existing | {_as_triple(triple)})

    def with_rho(self, rho: Mapping[Obj, Any]) -> "Triplestore":
        """A new store with the data-value function replaced."""
        return Triplestore(self._relations, rho, self._objects)

    def restrict(self, names: Iterable[str]) -> "Triplestore":
        """A new store keeping only the given relations (objects retained).

        Raises :class:`UnknownRelationError` for missing names, like
        :meth:`relation` and :meth:`index`.
        """
        keep = {n: self.relation(n) for n in names}
        return Triplestore(keep, self._rho, self._objects)

    # ------------------------------------------------------------------ #
    # Indexes
    # ------------------------------------------------------------------ #

    def index(self, name: str, positions: tuple[int, ...]) -> dict[tuple, list[Triple]]:
        """A hash index of relation ``name`` keyed on the given positions.

        Positions are 0-based (0 = subject, 1 = predicate, 2 = object).
        Indexes are built lazily and cached; stores are treated as
        immutable so the cache never invalidates.

        >>> t = Triplestore([("a", "p", "b"), ("a", "q", "c")])
        >>> sorted(t.index("E", (0,))[("a",)])
        [('a', 'p', 'b'), ('a', 'q', 'c')]
        """
        key = (name, positions)
        cached = self._indexes.get(key)
        if cached is not None:
            return cached
        idx: dict[tuple, list[Triple]] = {}
        for triple in self.relation(name):
            idx.setdefault(tuple(triple[p] for p in positions), []).append(triple)
        self._indexes[key] = idx
        return idx

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def stats(self) -> "TriplestoreStats":
        """The store's statistics catalog (lazy, cached like indexes).

        >>> t = Triplestore([("a", "p", "b"), ("a", "q", "c")])
        >>> t.stats().cardinality("E"), t.stats().distinct("E", 0)
        (2, 1)
        """
        if self._stats is None:
            from repro.triplestore.stats import TriplestoreStats

            self._stats = TriplestoreStats(self)
        return self._stats

    def columnar(self) -> "ColumnarStore":
        """The store's columnar (array-encoded) view, built lazily.

        Like indexes and statistics this is derived, cached data over an
        immutable store — shared by every vectorised execution against it.
        """
        if self._columnar is None:
            from repro.triplestore.columnar import ColumnarStore

            self._columnar = ColumnarStore(self)
        return self._columnar

    def sharded(self, shards: int, key_pos: int = 0) -> "ShardedColumnarStore":
        """A hash-partitioned view of the columnar encoding, built lazily.

        Shares the dictionary encoding of :meth:`columnar` (codes are
        comparable across shards) and is cached per ``(shards, key_pos)``
        like every other derived view of the immutable store.
        """
        cached = self._sharded.get((shards, key_pos))
        if cached is None:
            from repro.triplestore.sharded import ShardedColumnarStore

            cached = ShardedColumnarStore(self.columnar(), shards, key_pos)
            self._sharded[(shards, key_pos)] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_pairs_of_relations(
        cls, **relations: Iterable[Triple]
    ) -> "Triplestore":
        """Keyword-argument constructor: ``Triplestore.from_pairs_of_relations(E=[...], F=[...])``."""
        return cls(dict(relations))

    @classmethod
    def empty(cls) -> "Triplestore":
        """A store with one empty relation and no objects."""
        return cls()
