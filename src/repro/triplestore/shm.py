"""Shared-memory publication of the sharded columnar encoding.

The process-parallel shard executor (:mod:`repro.core.engines.procpool`)
needs every worker to see the store — the per-shard sorted packed-key
arrays, the ρ encoding and the dictionary — without pickling relations
over pipes.  This module publishes one ``multiprocessing.shared_memory``
segment per ``(store, shards, key_pos)`` view:

* a small pickled *manifest* (offsets, lengths, shard geometry) at the
  head of the segment;
* the raw ``int64`` bytes of every per-relation per-shard key array,
  ``dv_codes`` and the active-code set — workers map these zero-copy as
  numpy views over the segment buffer;
* the pickled object and data-value dictionaries (the only Python-object
  payload; decoded once per worker attach).

Workers rebuild a :class:`~repro.triplestore.sharded.ShardedColumnarStore`
over a :class:`_ShmColumnarView` whose arrays alias the segment, so the
merge-join/set-algebra kernels run against shared pages.

Lifecycle hygiene (the part that keeps ``/dev/shm`` clean):

* a :class:`SharedStoreHandle` owns each published segment; it unlinks
  on :meth:`~SharedStoreHandle.close` and on garbage collection, and
  every live handle is tracked so an ``atexit`` sweep unlinks anything
  still mapped at interpreter shutdown;
* the ``resource_tracker`` ledger stays balanced: the creating process
  registers on create and unregisters via ``unlink``, and attachers
  leave the ledger alone (the pool's spawned workers share the parent's
  tracker, so an attach-side unregister would remove the creator's
  entry and trigger spurious tracker errors).
"""

from __future__ import annotations

import atexit
import os
import pickle
import secrets
import struct
import threading
import weakref
from multiprocessing import shared_memory
from typing import Any, Callable, Optional

import numpy as np

from repro.triplestore.columnar import ColumnarStore, sorted_unique
from repro.triplestore.sharded import ShardedColumnarStore

__all__ = [
    "SharedStoreHandle",
    "attach_worker_store",
    "live_segment_names",
    "publish_sharded_store",
]

#: Header: little-endian u64 byte length of the pickled manifest.
_HEADER = struct.Struct("<Q")

_ITEMSIZE = np.dtype(np.int64).itemsize

_REGISTRY_LOCK = threading.Lock()
#: name -> weakref to the owning handle; swept at exit for stragglers.
_LIVE_HANDLES: dict[str, "weakref.ref[SharedStoreHandle]"] = {}


def _segment_name(prefix: str) -> str:
    """A collision-resistant segment name (``/dev/shm`` is global)."""
    return f"{prefix}-{os.getpid():x}-{secrets.token_hex(4)}"


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting its lifetime.

    On Python < 3.13 attaching re-registers the segment with the
    resource tracker; worker processes spawned by the pool share the
    parent's tracker, so the duplicate registration is a set no-op and
    the creator's eventual ``unlink`` keeps the ledger balanced —
    unregistering here would instead *unbalance* it and make the
    tracker warn about names it no longer knows.
    """
    return shared_memory.SharedMemory(name=name, create=False)


class SharedStoreHandle:
    """Owner of one published store segment (created-side lifetime).

    ``close()`` is idempotent and unlinks the segment; dropping the last
    reference does the same via ``__del__``, and an ``atexit`` sweep
    catches anything still live at interpreter shutdown — repeated store
    builds in one process must never leak ``/dev/shm`` entries.
    """

    def __init__(self, shm: shared_memory.SharedMemory, nbytes: int) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.name = shm.name
        self.nbytes = nbytes
        with _REGISTRY_LOCK:
            _LIVE_HANDLES[self.name] = weakref.ref(self)

    @property
    def closed(self) -> bool:
        return self._shm is None

    def close(self) -> None:
        """Unlink the segment (idempotent; safe under GC and atexit)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        with _REGISTRY_LOCK:
            _LIVE_HANDLES.pop(self.name, None)
        # Tell live worker pools to drop their mappings first (best
        # effort; imported lazily to keep the layers acyclic).
        try:
            from repro.core.engines import procpool

            procpool.notify_store_closed(self.name)
        except Exception:
            pass
        try:
            shm.close()
        except Exception:  # pragma: no cover — buffer already released
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover — already gone
            pass

    def __del__(self) -> None:  # pragma: no cover — GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{self.nbytes}B"
        return f"SharedStoreHandle({self.name!r}, {state})"


def live_segment_names() -> tuple[str, ...]:
    """Names of segments this process has published and not yet unlinked."""
    with _REGISTRY_LOCK:
        return tuple(
            name for name, ref in _LIVE_HANDLES.items() if ref() is not None
        )


@atexit.register
def _sweep() -> None:  # pragma: no cover — exercised at interpreter exit
    with _REGISTRY_LOCK:
        refs = list(_LIVE_HANDLES.values())
    for ref in refs:
        handle = ref()
        if handle is not None:
            try:
                handle.close()
            except Exception:
                pass


# --------------------------------------------------------------------- #
# Publish (parent side)
# --------------------------------------------------------------------- #


def publish_sharded_store(ss: ShardedColumnarStore) -> SharedStoreHandle:
    """Publish ``ss`` into one shared-memory segment, cached on the view.

    The segment holds every relation's per-shard packed-key array, the
    ρ encoding and the pickled dictionaries; repeated calls return the
    cached handle, so a store is copied into shared memory at most once
    per ``(shards, key_pos)`` view.
    """
    handle = ss._shm
    if handle is not None and not handle.closed:
        return handle

    cs = ss.cs
    arrays: dict[str, np.ndarray] = {
        "dv_codes": cs.dv_codes,
        "active": cs.active_codes(),
    }
    for name in ss.relation_names:
        for s, shard in enumerate(ss.relation_shards(name)):
            arrays[f"rel:{name}:{s}"] = np.ascontiguousarray(shard, dtype=np.int64)
    pickles = {
        "objects": pickle.dumps(cs.objects, protocol=pickle.HIGHEST_PROTOCOL),
        "dv_values": pickle.dumps(cs.dv_values, protocol=pickle.HIGHEST_PROTOCOL),
    }

    manifest: dict[str, Any] = {
        "n": cs.n,
        "radix": cs.radix,
        "k": ss.k,
        "key_pos": ss.key_pos,
        "relations": tuple(ss.relation_names),
        "arrays": {},
        "pickles": {},
    }
    # Lay out: header | manifest pickle | 8-aligned array/pickle region.
    # Manifest offsets are relative to the region start, so the manifest
    # can be pickled before the final header length is known.
    offset = 0
    for key, arr in arrays.items():
        manifest["arrays"][key] = (offset, len(arr))
        offset += len(arr) * _ITEMSIZE
    for key, blob in pickles.items():
        manifest["pickles"][key] = (offset, len(blob))
        offset += len(blob) + (-len(blob)) % _ITEMSIZE
    region_size = offset

    blob = pickle.dumps(manifest, protocol=pickle.HIGHEST_PROTOCOL)
    head = _HEADER.size + len(blob)
    region_start = head + (-head) % _ITEMSIZE
    total = max(region_start + region_size, 1)

    shm = shared_memory.SharedMemory(
        name=_segment_name("repro-store"), create=True, size=total
    )
    buf = shm.buf
    buf[: _HEADER.size] = _HEADER.pack(len(blob))
    buf[_HEADER.size : _HEADER.size + len(blob)] = blob
    for key, arr in arrays.items():
        off, length = manifest["arrays"][key]
        if length:
            view = np.ndarray(
                (length,), dtype=np.int64, buffer=buf,
                offset=region_start + off,
            )
            view[:] = arr
    for key, data in pickles.items():
        off, nbytes = manifest["pickles"][key]
        buf[region_start + off : region_start + off + nbytes] = data

    handle = SharedStoreHandle(shm, total)
    ss._shm = handle
    return handle


# --------------------------------------------------------------------- #
# Attach (worker side)
# --------------------------------------------------------------------- #


class _ShmColumnarView(ColumnarStore):
    """A :class:`ColumnarStore` whose arrays alias a shared segment.

    Built by :func:`attach_worker_store` via slot-filling — the parent
    ``__init__`` (which encodes from a :class:`Triplestore`) never runs.
    Only :meth:`relation_keys` needs overriding: relations live in the
    segment as per-shard arrays, so the flat form is merged on demand.
    """

    __slots__ = ("_shard_keys",)

    def relation_keys(self, name: str) -> np.ndarray:
        cached = self._relations.get(name)
        if cached is None:
            try:
                shards = self._shard_keys[name]
            except KeyError:
                from repro.errors import UnknownRelationError

                raise UnknownRelationError(
                    name, tuple(self._shard_keys)
                ) from None
            cached = (
                shards[0]
                if len(shards) == 1
                else sorted_unique(np.concatenate(shards))
            )
            self._relations[name] = cached
        return cached

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._shard_keys)


class AttachedStore:
    """A worker's view of one published store segment.

    Bundles the rebuilt :class:`ShardedColumnarStore`, a ρ lookup
    compatible with :meth:`Triplestore.rho`, and the mapped segment
    (held open for as long as the arrays alias it).
    """

    __slots__ = ("ss", "rho", "_shm")

    def __init__(
        self,
        ss: ShardedColumnarStore,
        rho: Callable[[Any], Any],
        shm: shared_memory.SharedMemory,
    ) -> None:
        self.ss = ss
        self.rho = rho
        self._shm = shm

    def close(self) -> None:
        """Drop the mapping (best effort: live array views block it)."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover — views still exported
            pass


def attach_worker_store(name: str) -> AttachedStore:
    """Attach a published segment and rebuild the sharded store view."""
    shm = attach_segment(name)
    buf = shm.buf
    (blob_len,) = _HEADER.unpack(buf[: _HEADER.size])
    manifest = pickle.loads(bytes(buf[_HEADER.size : _HEADER.size + blob_len]))
    head = _HEADER.size + blob_len
    region_start = head + (-head) % _ITEMSIZE

    def array(key: str) -> np.ndarray:
        off, length = manifest["arrays"][key]
        if not length:
            return np.empty(0, dtype=np.int64)
        return np.ndarray(
            (length,), dtype=np.int64, buffer=buf, offset=region_start + off
        )

    def unpickle(key: str) -> Any:
        off, nbytes = manifest["pickles"][key]
        return pickle.loads(bytes(buf[region_start + off : region_start + off + nbytes]))

    objects = unpickle("objects")
    dv_values = unpickle("dv_values")

    cs = object.__new__(_ShmColumnarView)
    cs.objects = objects
    cs.n = manifest["n"]
    cs.radix = manifest["radix"]
    cs._code_of = {o: i for i, o in enumerate(objects)}
    obj_array = np.empty(len(objects), dtype=object)
    obj_array[:] = objects
    cs._obj_array = obj_array
    cs.dv_values = dv_values
    cs._dv_code_of = {v: i for i, v in enumerate(dv_values)}
    cs.dv_codes = array("dv_codes")
    cs._relations = {}
    cs._columns = {}
    cs._active = array("active")
    cs._shard_keys = {
        rel: [array(f"rel:{rel}:{s}") for s in range(manifest["k"])]
        for rel in manifest["relations"]
    }

    ss = ShardedColumnarStore(cs, manifest["k"], manifest["key_pos"])
    ss._shards = dict(cs._shard_keys)

    dv_codes = cs.dv_codes
    code_of = cs._code_of

    def rho(obj: Any) -> Any:
        code = code_of.get(obj)
        if code is None:
            return None
        return dv_values[dv_codes[code]]

    return AttachedStore(ss, rho, shm)
