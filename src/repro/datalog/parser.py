"""Text syntax for TripleDatalog¬ programs.

Example::

    % query Q, Section 4 style
    Sub(x, y, z)  :- E(x, y, z).
    Reach(x, y, z) :- Sub(x, y, z).
    Reach(x, y, w) :- Reach(x, y, z), Sub(z, u, w), y = u.
    Ans(x, y, z)  :- Reach(x, y, z), not Noise(x, y, z), ~(x, z), x != z.

* comments: ``%`` or ``#`` to end of line;
* constants: single- or double-quoted strings, or numbers;
* literals: ``P(t, …)``, ``not P(t, …)``, ``~(t, t)``, ``not ~(t, t)``,
  ``t = t``, ``t != t``;
* each rule ends with a period.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.datalog.ast import Atom, DConst, DVar, EqLit, Program, RelLit, Rule, SimLit

_TOKEN = re.compile(
    r"""\s*(?:
        (?P<name>[A-Za-z_][A-Za-z_0-9]*)
      | '(?P<sq>[^']*)'
      | "(?P<dq>[^"]*)"
      | (?P<num>-?\d+(?:\.\d+)?)
      | (?P<neq>!=)
      | (?P<arrow>:-)
      | (?P<punct>[(),.~=])
    )""",
    re.VERBOSE,
)


class _Lexer:
    def __init__(self, text: str) -> None:
        # Strip comments.
        lines = []
        for line in text.splitlines():
            for marker in ("%", "#"):
                idx = line.find(marker)
                if idx >= 0:
                    line = line[:idx]
            lines.append(line)
        self.text = "\n".join(lines)
        self.pos = 0

    def next(self) -> tuple[str, object] | None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1
        if self.pos >= len(self.text):
            return None
        m = _TOKEN.match(self.text, self.pos)
        if not m or m.end() == self.pos:
            raise ParseError("bad datalog token", self.text, self.pos)
        self.pos = m.end()
        if m.group("name") is not None:
            return ("name", m.group("name"))
        if m.group("sq") is not None:
            return ("const", m.group("sq"))
        if m.group("dq") is not None:
            return ("const", m.group("dq"))
        if m.group("num") is not None:
            raw = m.group("num")
            return ("const", float(raw) if "." in raw else int(raw))
        if m.group("neq") is not None:
            return ("punct", "!=")
        if m.group("arrow") is not None:
            return ("punct", ":-")
        return ("punct", m.group("punct"))


class _DatalogParser:
    def __init__(self, text: str) -> None:
        lexer = _Lexer(text)
        self.tokens: list[tuple[str, object]] = []
        while True:
            tok = lexer.next()
            if tok is None:
                break
            self.tokens.append(tok)
        self.i = 0

    def _peek(self) -> tuple[str, object] | None:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def _next(self) -> tuple[str, object]:
        tok = self._peek()
        if tok is None:
            raise ParseError("unexpected end of program")
        self.i += 1
        return tok

    def _expect_punct(self, value: str) -> None:
        tok = self._next()
        if tok != ("punct", value):
            raise ParseError(f"expected {value!r}, got {tok!r}")

    def parse(self, answer: str = "Ans") -> Program:
        rules = []
        while self._peek() is not None:
            rules.append(self._rule())
        return Program(tuple(rules), answer=answer)

    def _rule(self) -> Rule:
        head = self._atom()
        self._expect_punct(":-")
        body = [self._literal()]
        while self._peek() == ("punct", ","):
            self.i += 1
            body.append(self._literal())
        self._expect_punct(".")
        return Rule(head, tuple(body))

    def _term(self):
        kind, value = self._next()
        if kind == "name":
            return DVar(str(value))
        if kind == "const":
            return DConst(value)
        raise ParseError(f"expected a term, got {value!r}")

    def _atom(self) -> Atom:
        kind, name = self._next()
        if kind != "name":
            raise ParseError(f"expected a predicate name, got {name!r}")
        self._expect_punct("(")
        args = [self._term()]
        while self._peek() == ("punct", ","):
            self.i += 1
            args.append(self._term())
        self._expect_punct(")")
        return Atom(str(name), tuple(args))

    def _sim(self, negated: bool) -> SimLit:
        self._expect_punct("~")
        self._expect_punct("(")
        left = self._term()
        self._expect_punct(",")
        right = self._term()
        self._expect_punct(")")
        return SimLit(left, right, negated)

    def _literal(self):
        tok = self._peek()
        if tok == ("punct", "~"):
            return self._sim(negated=False)
        if tok == ("name", "not"):
            self.i += 1
            if self._peek() == ("punct", "~"):
                return self._sim(negated=True)
            atom = self._atom()
            return RelLit(atom, negated=True)
        # Could be an atom P(...) or an (in)equality t op t.
        start = self.i
        first = self._term_or_none()
        if first is not None:
            nxt = self._peek()
            if nxt in (("punct", "="), ("punct", "!=")):
                self.i += 1
                right = self._term()
                return EqLit(first, right, negated=(nxt[1] == "!="))
            self.i = start
        atom = self._atom()
        return RelLit(atom, negated=False)

    def _term_or_none(self):
        tok = self._peek()
        if tok is None:
            return None
        kind, value = tok
        if kind in ("name", "const"):
            # A name followed by '(' is a predicate, not a term.
            nxt = self.tokens[self.i + 1] if self.i + 1 < len(self.tokens) else None
            if kind == "name" and nxt == ("punct", "("):
                return None
            self.i += 1
            return DVar(str(value)) if kind == "name" else DConst(value)
        return None


def parse_program(text: str, answer: str = "Ans") -> Program:
    """Parse a textual TripleDatalog¬ program.

    >>> p = parse_program("Ans(x,y,z) :- E(x,y,z), x != z.")
    >>> len(p)
    1
    """
    return _DatalogParser(text).parse(answer=answer)
