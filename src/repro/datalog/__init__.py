"""TripleDatalog¬ / ReachTripleDatalog¬ (Section 4) and translations."""

from repro.datalog.ast import (
    Atom,
    DConst,
    DVar,
    EqLit,
    Literal,
    Program,
    RelLit,
    Rule,
    SimLit,
)
from repro.datalog.evaluator import DatalogEvaluator, run_program, stratify
from repro.datalog.parser import parse_program
from repro.datalog.translate import datalog_to_trial, trial_to_datalog
from repro.datalog.validate import (
    is_nonrecursive,
    is_reach_triple_datalog,
    is_triple_datalog,
    is_triple_datalog_rule,
    recursive_predicates,
    validate_fragment,
)

__all__ = [
    "Atom",
    "DConst",
    "DVar",
    "DatalogEvaluator",
    "EqLit",
    "Literal",
    "Program",
    "RelLit",
    "Rule",
    "SimLit",
    "datalog_to_trial",
    "is_nonrecursive",
    "is_reach_triple_datalog",
    "is_triple_datalog",
    "is_triple_datalog_rule",
    "parse_program",
    "recursive_predicates",
    "run_program",
    "stratify",
    "trial_to_datalog",
    "validate_fragment",
]
