"""Stratified fixpoint evaluation of TripleDatalog¬ programs.

The evaluator is generic over the AST of :mod:`repro.datalog.ast`:

1. build the predicate dependency graph and its strongly connected
   components (Tarjan);
2. refuse programs with negation inside a cycle (not stratifiable —
   the paper's fragments never produce these);
3. evaluate SCCs in topological order; recursive components iterate
   their rules to a fixpoint (the least-fixpoint semantics of §4).

Rule bodies are evaluated by backtracking joins over the positive
relational literals, with equality/∼/negative literals applied as soon
as their variables are bound.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import DatalogError, StratificationError
from repro.datalog.ast import Atom, DConst, DVar, EqLit, Program, RelLit, Rule, SimLit
from repro.triplestore.model import Triplestore


# --------------------------------------------------------------------- #
# Dependency analysis
# --------------------------------------------------------------------- #

def dependency_edges(program: Program) -> set[tuple[str, str, bool]]:
    """Edges (head, body_pred, negated) between IDB predicates."""
    idb = program.idb_predicates()
    edges: set[tuple[str, str, bool]] = set()
    for rule in program.rules:
        for lit in rule.rel_literals():
            if lit.atom.pred in idb:
                edges.add((rule.head.pred, lit.atom.pred, lit.negated))
    return edges


def _tarjan_sccs(nodes: Iterable[str], succ: dict[str, set[str]]) -> list[list[str]]:
    """Strongly connected components in reverse topological order."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        # Iterative Tarjan to dodge recursion limits on deep programs.
        work = [(v, iter(sorted(succ.get(v, ()))))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(succ.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                sccs.append(component)

    for v in sorted(nodes):
        if v not in index:
            strongconnect(v)
    return sccs


def stratify(program: Program) -> list[list[str]]:
    """SCCs of IDB predicates in evaluation (topological) order.

    Raises :class:`StratificationError` when a negated IDB literal
    occurs inside a cycle.
    """
    idb = program.idb_predicates()
    succ: dict[str, set[str]] = {p: set() for p in idb}
    for head, body, _ in dependency_edges(program):
        succ[head].add(body)
    sccs = _tarjan_sccs(idb, succ)  # reverse topological = dependencies first
    component_of = {p: i for i, comp in enumerate(sccs) for p in comp}
    for head, body, negated in dependency_edges(program):
        if negated and component_of[head] == component_of[body]:
            raise StratificationError(
                f"negation of {body} inside the recursive component of {head}"
            )
    return sccs


# --------------------------------------------------------------------- #
# Evaluation
# --------------------------------------------------------------------- #

class _CanonicalRule:
    """Rule-shaped value produced by equality canonicalisation.

    Skips :class:`Rule`'s constructor checks (substitution can place
    constants in the head, which plain rules disallow); exposes just the
    interface the matcher uses.
    """

    __slots__ = ("head", "body")

    def __init__(self, head: Atom, body: tuple) -> None:
        self.head = head
        self.body = body

    def rel_literals(self) -> tuple:
        return tuple(l for l in self.body if isinstance(l, RelLit))

    def __repr__(self) -> str:
        return f"{self.head!r} :- {', '.join(map(repr, self.body))}."


class DatalogEvaluator:
    """Evaluates programs over triplestores (EDB = store relations)."""

    def __init__(self, store: Triplestore) -> None:
        self.store = store
        self._canonical_cache: dict[Any, _CanonicalRule] = {}

    def run(self, program: Program) -> dict[str, frozenset[tuple]]:
        """All IDB relations as a dict ``pred -> set of tuples``."""
        relations: dict[str, set[tuple]] = {
            p: set() for p in program.idb_predicates()
        }
        for pred in program.edb_predicates():
            # Fail fast on unknown EDB names (raises UnknownRelationError).
            self.store.relation(pred)
        for component in stratify(program):
            rules = [
                r for r in program.rules if r.head.pred in component
            ]
            self._fixpoint(rules, relations)
        return {p: frozenset(ts) for p, ts in relations.items()}

    def answer(self, program: Program) -> frozenset[tuple]:
        """The relation of the program's answer predicate."""
        results = self.run(program)
        try:
            return results[program.answer]
        except KeyError:
            raise DatalogError(
                f"program defines no answer predicate {program.answer!r}"
            ) from None

    # ------------------------------------------------------------------ #

    def _fixpoint(self, rules: list[Rule], relations: dict[str, set[tuple]]) -> None:
        """Semi-naive fixpoint for one SCC (Corollary 1's cost regime).

        Round 0 applies every rule as-is.  Later rounds only apply
        *delta variants*: for each rule and each positive body literal
        whose predicate belongs to this SCC, re-evaluate with that one
        literal restricted to the previous round's new tuples.  This is
        the standard optimisation that keeps recursive Datalog on the
        same asymptotics as the algebra's fixpoints.
        """
        rules = [self._canonicalise(rule) for rule in rules]
        component = {rule.head.pred for rule in rules}
        deltas: dict[str, set[tuple]] = {p: set() for p in component}
        for rule in rules:
            for derived in self._apply_rule(rule, relations):
                head_rel = relations[rule.head.pred]
                if derived not in head_rel:
                    head_rel.add(derived)
                    deltas[rule.head.pred].add(derived)

        while any(deltas.values()):
            next_deltas: dict[str, set[tuple]] = {p: set() for p in component}
            for rule in rules:
                recursive_positions = [
                    i
                    for i, lit in enumerate(rule.body)
                    if isinstance(lit, RelLit)
                    and not lit.negated
                    and lit.atom.pred in component
                ]
                for pos in recursive_positions:
                    pred = rule.body[pos].atom.pred
                    if not deltas[pred]:
                        continue
                    for derived in self._apply_rule(
                        rule, relations, delta=(pos, deltas[pred])
                    ):
                        head_rel = relations[rule.head.pred]
                        if derived not in head_rel:
                            head_rel.add(derived)
                            next_deltas[rule.head.pred].add(derived)
            deltas = next_deltas

    def _relation_tuples(
        self, pred: str, relations: dict[str, set[tuple]]
    ) -> Iterable[tuple]:
        if pred in relations:
            return relations[pred]
        return self.store.relation(pred)

    def _apply_rule(
        self,
        rule: Rule,
        relations: dict[str, set[tuple]],
        delta: tuple[int, set[tuple]] | None = None,
    ) -> Iterable[tuple]:
        """Derive head tuples; ``delta`` optionally pins one body literal
        (by its index in ``rule.body``) to an explicit tuple set."""
        rule = self._canonicalise(rule)
        positives = []
        delta_index = None
        for i, lit in enumerate(rule.body):
            if isinstance(lit, RelLit) and not lit.negated:
                if delta is not None and i == delta[0]:
                    delta_index = len(positives)
                positives.append(lit)
        checks = [l for l in rule.body if not (isinstance(l, RelLit) and not l.negated)]
        delta_rows = delta[1] if delta is not None else None

        # Join-order heuristic: the (small) delta literal leads, then
        # greedily prefer literals sharing variables with what is bound.
        order = list(range(len(positives)))
        if delta_index is not None:
            order.remove(delta_index)
            order.insert(0, delta_index)
        if len(order) > 1:
            bound: set[str] = set(positives[order[0]].variables())
            rest = order[1:]
            reordered = [order[0]]
            while rest:
                best = max(
                    range(len(rest)),
                    key=lambda j: len(positives[rest[j]].variables() & bound),
                )
                chosen = rest.pop(best)
                reordered.append(chosen)
                bound |= positives[chosen].variables()
            order = reordered
        positives = [positives[i] for i in order]
        if delta_index is not None:
            delta_index = 0

        def check_ready(asg: dict[str, Any], pending: list) -> tuple[bool, list]:
            """Apply every check whose variables are bound; return leftovers."""
            still = []
            for lit in pending:
                if lit.variables() <= asg.keys():
                    if not self._check(lit, asg, relations):
                        return False, still
                else:
                    still.append(lit)
            return True, still

        # With the join order fixed, the variables bound before literal i
        # are known statically; index each literal's relation on the arg
        # positions those variables (and constants) pin down, so matching
        # is a hash probe instead of a relation scan.
        bound_before: list[frozenset[str]] = []
        bound: set[str] = set()
        for lit in positives:
            bound_before.append(frozenset(bound))
            bound |= lit.variables()

        indexes: list[tuple[tuple[int, ...], dict]] = []
        for i, lit in enumerate(positives):
            if delta_rows is not None and i == delta_index:
                rows: Iterable[tuple] = delta_rows
            else:
                rows = self._relation_tuples(lit.atom.pred, relations)
            key_positions = tuple(
                pos
                for pos, term in enumerate(lit.atom.args)
                if isinstance(term, DConst)
                or (isinstance(term, DVar) and term.name in bound_before[i])
            )
            index: dict = {}
            for row in rows:
                if len(row) != lit.atom.arity:
                    continue
                index.setdefault(tuple(row[p] for p in key_positions), []).append(row)
            indexes.append((key_positions, index))

        results: list[tuple] = []

        def extend(i: int, asg: dict[str, Any], pending: list) -> None:
            if i == len(positives):
                if pending:
                    raise DatalogError(
                        f"literals {pending} have unbound variables in {rule!r}"
                    )
                results.append(
                    tuple(
                        asg[a.name] if isinstance(a, DVar) else a.value
                        for a in rule.head.args
                    )
                )
                return
            lit = positives[i]
            key_positions, index = indexes[i]
            key = tuple(
                lit.atom.args[p].value
                if isinstance(lit.atom.args[p], DConst)
                else asg[lit.atom.args[p].name]
                for p in key_positions
            )
            for row in index.get(key, ()):
                new = self._unify(lit.atom, row, asg)
                if new is None:
                    continue
                ok, still = check_ready(new, pending)
                if ok:
                    extend(i + 1, new, still)

        ok, pending = check_ready({}, checks)
        if ok:
            extend(0, {}, pending)
        return results

    def _canonicalise(self, rule: Rule) -> Rule:
        """Turn positive ``x = y`` / ``x = c`` literals into substitutions.

        The Prop 2 translation emits joins as distinct variables plus
        equality literals; folding those equalities into the atoms lets
        the matcher unify (and index) instead of generate-and-filter.
        Results are cached per rule — rules are immutable.
        """
        if isinstance(rule, _CanonicalRule):
            return rule
        cached = self._canonical_cache.get(rule)
        if cached is not None:
            return cached

        rep: dict[str, DTerm] = {}
        const_of: dict[str, Any] = {}
        # Union-find over variables; constants are sink values.
        groups: dict[str, set[str]] = {}

        def union(a: str, b: str) -> None:
            ga = groups.setdefault(a, {a})
            gb = groups.setdefault(b, {b})
            if ga is gb:
                return
            ga |= gb
            for member in gb:
                groups[member] = ga

        kept: list = []
        pinned: list[tuple[str, Any]] = []
        for lit in rule.body:
            if isinstance(lit, EqLit) and not lit.negated:
                lv, rv = lit.left, lit.right
                if isinstance(lv, DVar) and isinstance(rv, DVar):
                    union(lv.name, rv.name)
                    continue
                if isinstance(lv, DVar) and isinstance(rv, DConst):
                    pinned.append((lv.name, rv.value))
                    groups.setdefault(lv.name, {lv.name})
                    continue
                if isinstance(rv, DVar) and isinstance(lv, DConst):
                    pinned.append((rv.name, lv.value))
                    groups.setdefault(rv.name, {rv.name})
                    continue
            kept.append(lit)

        for name, value in pinned:
            for member in groups.get(name, {name}):
                if member in const_of and const_of[member] != value:
                    # Contradictory pins: the rule derives nothing; encode
                    # with an unsatisfiable kept literal.
                    kept.append(EqLit(DConst(value), DConst(const_of[member])))
                const_of[member] = value
        # Variables mentioned by any η-similarity literal: a SimLit
        # compares ρ(object) for variables but takes constants as raw
        # *data* values, so folding an object-constant pin into one
        # would silently change its meaning (ρ('b') vs the value 'b').
        # Those groups keep their variable and re-emit the pin as an
        # ordinary equality filter instead.
        sim_vars = {
            t.name
            for lit in rule.body
            if isinstance(lit, SimLit)
            for t in (lit.left, lit.right)
            if isinstance(t, DVar)
        }
        for members in {id(g): g for g in groups.values()}.values():
            representative = sorted(members)[0]
            pinned_value = next(
                (const_of[m] for m in members if m in const_of), _MISSING
            )
            if pinned_value is not _MISSING and members & sim_vars:
                kept.append(EqLit(DVar(representative), DConst(pinned_value)))
                pinned_value = _MISSING
            for member in members:
                if pinned_value is not _MISSING:
                    rep[member] = DConst(pinned_value)
                else:
                    rep[member] = DVar(representative)

        def sub_term(t: DTerm) -> DTerm:
            if isinstance(t, DVar):
                return rep.get(t.name, t)
            return t

        def sub_atom(atom: Atom) -> Atom:
            return Atom(atom.pred, tuple(sub_term(a) for a in atom.args))

        new_body = []
        for lit in kept:
            if isinstance(lit, RelLit):
                new_body.append(RelLit(sub_atom(lit.atom), lit.negated))
            elif isinstance(lit, SimLit):
                new_body.append(SimLit(sub_term(lit.left), sub_term(lit.right), lit.negated))
            else:
                new_body.append(EqLit(sub_term(lit.left), sub_term(lit.right), lit.negated))
        # Head constants are not supported by Rule safety for DConst args,
        # so substitute only variables that stay variables... but pinned
        # head variables become constants in the derived tuples, which
        # the result construction handles (DConst branch).
        new_head_args = tuple(sub_term(a) for a in rule.head.args)
        canonical = _CanonicalRule(Atom(rule.head.pred, new_head_args), tuple(new_body))
        self._canonical_cache[rule] = canonical
        return canonical

    @staticmethod
    def _unify(atom: Atom, row: tuple, asg: dict[str, Any]) -> dict[str, Any] | None:
        if len(row) != atom.arity:
            return None
        new = dict(asg)
        for term, value in zip(atom.args, row):
            if isinstance(term, DConst):
                if term.value != value:
                    return None
            else:
                bound = new.get(term.name, _MISSING)
                if bound is _MISSING:
                    new[term.name] = value
                elif bound != value:
                    return None
        return new

    def _check(
        self, lit, asg: dict[str, Any], relations: dict[str, set[tuple]]
    ) -> bool:
        def val(term):
            return term.value if isinstance(term, DConst) else asg[term.name]

        if isinstance(lit, EqLit):
            equal = val(lit.left) == val(lit.right)
            return not equal if lit.negated else equal
        if isinstance(lit, SimLit):
            # A variable contributes ρ(object); a constant IS the data
            # value (matching the η-condition semantics of the algebra,
            # where data constants come from D, not O).
            def data(term):
                if isinstance(term, DConst):
                    return term.value
                return self.store.rho(asg[term.name])

            same = data(lit.left) == data(lit.right)
            return not same if lit.negated else same
        if isinstance(lit, RelLit):  # negated by construction here
            row = tuple(val(a) for a in lit.atom.args)
            return row not in self._relation_tuples(lit.atom.pred, relations)
        raise DatalogError(f"unknown literal {lit!r}")  # pragma: no cover


_MISSING = object()


def run_program(program: Program, store: Triplestore) -> frozenset[tuple]:
    """Convenience: evaluate and return the answer relation."""
    return DatalogEvaluator(store).answer(program)
