"""Translations between TriAL(*) and the Datalog fragments.

``trial_to_datalog`` implements the constructions in the proofs of
Proposition 2 and Theorem 2: one fresh predicate per AST node, a
two-literal rule per join, two rules per Kleene star.  The resulting
programs are verified (in tests) to lie in the exact fragments and to
evaluate to the same relations.

``datalog_to_trial`` is the converse direction: nonrecursive
TripleDatalog¬ programs become TriAL expressions, ReachTripleDatalog¬
programs become TriAL* expressions.  Following the paper, predicates are
ternary here (arity < 3 has no canonical triple encoding; we reject it
with :class:`TranslationError`), and negated body literals become
complements ``eᶜ = U − e``.
"""

from __future__ import annotations

import itertools

from repro.errors import DatalogError, TranslationError
from repro.core.conditions import Cond
from repro.core.expressions import (
    Diff,
    Expr,
    Intersect,
    Join,
    Rel,
    Select,
    Star,
    Union,
    Universe,
)
from repro.core.builder import complement, intersect_as_join
from repro.core.positions import Const, Pos
from repro.datalog.ast import (
    Atom,
    DConst,
    DTerm,
    DVar,
    EqLit,
    Literal,
    Program,
    RelLit,
    Rule,
    SimLit,
)
from repro.datalog.validate import recursive_predicates

_VARS6 = tuple(DVar(f"x{i}") for i in range(1, 7))


# --------------------------------------------------------------------- #
# TriAL(*)  ->  Datalog
# --------------------------------------------------------------------- #

class _ToDatalog:
    def __init__(self) -> None:
        self.rules: list[Rule] = []
        self.names = (f"P{i}" for i in itertools.count())
        self.memo: dict[Expr, str] = {}

    def fresh(self) -> str:
        return next(self.names)

    def translate(self, expr: Expr) -> str:
        cached = self.memo.get(expr)
        if cached is not None:
            return cached
        pred = self._dispatch(expr)
        self.memo[expr] = pred
        return pred

    def _head(self, pred: str) -> Atom:
        return Atom(pred, _VARS6[:3])

    def _cond_literals(
        self, conditions: tuple[Cond, ...], var_of: dict[int, DTerm]
    ) -> list[Literal]:
        out: list[Literal] = []
        for cond in conditions:
            def term(t) -> DTerm:
                if isinstance(t, Const):
                    return DConst(t.value)
                return var_of[t.index]
            left, right = term(cond.left), term(cond.right)
            if cond.on_data:
                out.append(SimLit(left, right, negated=not cond.is_equality))
            else:
                out.append(EqLit(left, right, negated=not cond.is_equality))
        return out

    def _dispatch(self, expr: Expr) -> str:
        pred = self.fresh()
        if isinstance(expr, Rel):
            self.rules.append(
                Rule(self._head(pred), (RelLit(Atom(expr.name, _VARS6[:3])),))
            )
            return pred
        if isinstance(expr, Universe):
            raise TranslationError(
                "U has no Datalog counterpart in the paper's vocabulary; "
                "rewrite it with universe_as_joins() first"
            )
        if isinstance(expr, Union):
            left = self.translate(expr.left)
            right = self.translate(expr.right)
            self.rules.append(
                Rule(self._head(pred), (RelLit(Atom(left, _VARS6[:3])),))
            )
            self.rules.append(
                Rule(self._head(pred), (RelLit(Atom(right, _VARS6[:3])),))
            )
            return pred
        if isinstance(expr, Diff):
            left = self.translate(expr.left)
            right = self.translate(expr.right)
            self.rules.append(
                Rule(
                    self._head(pred),
                    (
                        RelLit(Atom(left, _VARS6[:3])),
                        RelLit(Atom(right, _VARS6[:3]), negated=True),
                    ),
                )
            )
            return pred
        if isinstance(expr, Intersect):
            left = self.translate(expr.left)
            right = self.translate(expr.right)
            self.rules.append(
                Rule(
                    self._head(pred),
                    (
                        RelLit(Atom(left, _VARS6[:3])),
                        RelLit(Atom(right, _VARS6[:3])),
                    ),
                )
            )
            return pred
        if isinstance(expr, Select):
            inner = self.translate(expr.expr)
            var_of = {i: _VARS6[i] for i in range(3)}
            body: list[Literal] = [RelLit(Atom(inner, _VARS6[:3]))]
            body += self._cond_literals(expr.conditions, var_of)
            self.rules.append(Rule(self._head(pred), tuple(body)))
            return pred
        if isinstance(expr, Join):
            left = self.translate(expr.left)
            right = self.translate(expr.right)
            var_of = {i: _VARS6[i] for i in range(6)}
            head = Atom(pred, tuple(_VARS6[i] for i in expr.out))
            body = [
                RelLit(Atom(left, _VARS6[:3])),
                RelLit(Atom(right, _VARS6[3:6])),
            ] + self._cond_literals(expr.conditions, var_of)
            self.rules.append(Rule(head, tuple(body)))
            return pred
        if isinstance(expr, Star):
            inner = self.translate(expr.expr)
            var_of = {i: _VARS6[i] for i in range(6)}
            head = Atom(pred, tuple(_VARS6[i] for i in expr.out))
            # Base rule: S(x1,x2,x3) <- R(x1,x2,x3).
            self.rules.append(
                Rule(self._head(pred), (RelLit(Atom(inner, _VARS6[:3])),))
            )
            # Step rule: accumulator joins the base on the star's side.
            if expr.side == "right":
                first, second = pred, inner
            else:
                first, second = inner, pred
            body = [
                RelLit(Atom(first, _VARS6[:3])),
                RelLit(Atom(second, _VARS6[3:6])),
            ] + self._cond_literals(expr.conditions, var_of)
            self.rules.append(Rule(head, tuple(body)))
            return pred
        raise TranslationError(f"unknown expression node {type(expr).__name__}")


def trial_to_datalog(expr: Expr, answer: str = "Ans") -> Program:
    """Compile a TriAL(*) expression to a Datalog program (Prop 2 / Thm 2).

    The answer predicate is a final copy rule onto ``answer``.
    """
    compiler = _ToDatalog()
    result = compiler.translate(expr)
    compiler.rules.append(
        Rule(Atom(answer, _VARS6[:3]), (RelLit(Atom(result, _VARS6[:3])),))
    )
    return Program(tuple(compiler.rules), answer=answer)


# --------------------------------------------------------------------- #
# Datalog  ->  TriAL(*)
# --------------------------------------------------------------------- #

def _partition_literals(rule: Rule) -> tuple[list[RelLit], list[Literal]]:
    rels = [l for l in rule.body if isinstance(l, RelLit)]
    others = [l for l in rule.body if not isinstance(l, RelLit)]
    return rels, others


def _positions_of_vars(atoms: list[Atom]) -> dict[str, int]:
    """First occurrence of each variable among the ≤ 6 join positions."""
    var_pos: dict[str, int] = {}
    for base, atom in zip((0, 3), atoms):
        for offset, term in enumerate(atom.args):
            if isinstance(term, DVar) and term.name not in var_pos:
                var_pos[term.name] = base + offset
    return var_pos


def _local_conditions(atoms: list[Atom]) -> list[Cond]:
    """Equalities induced by repeated variables / constants inside atoms."""
    conds: list[Cond] = []
    seen: dict[str, int] = {}
    for base, atom in zip((0, 3), atoms):
        for offset, term in enumerate(atom.args):
            pos = base + offset
            if isinstance(term, DConst):
                conds.append(Cond(Pos(pos), Const(term.value)))
            else:
                if term.name in seen:
                    conds.append(Cond(Pos(seen[term.name]), Pos(pos)))
                else:
                    seen[term.name] = pos
    return conds


def _check_literal_conds(
    others: list[Literal], var_pos: dict[str, int]
) -> list[Cond]:
    conds: list[Cond] = []
    for lit in others:
        def term(t: DTerm):
            if isinstance(t, DConst):
                return Const(t.value)
            try:
                return Pos(var_pos[t.name])
            except KeyError:
                raise TranslationError(
                    f"variable {t.name} of {lit!r} unbound by relational atoms"
                ) from None
        op = "!=" if lit.negated else "="
        if isinstance(lit, SimLit):
            conds.append(Cond(term(lit.left), term(lit.right), op, on_data=True))
        elif isinstance(lit, EqLit):
            conds.append(Cond(term(lit.left), term(lit.right), op))
        else:  # pragma: no cover
            raise TranslationError(f"unexpected literal {lit!r}")
    return conds


def _head_out(rule: Rule, var_pos: dict[str, int]) -> tuple[int, int, int]:
    if rule.head.arity != 3:
        raise TranslationError(
            "datalog_to_trial supports ternary predicates only (the paper's "
            f"triple encoding); {rule.head.pred} has arity {rule.head.arity}"
        )
    out = []
    for term in rule.head.args:
        if isinstance(term, DConst):
            raise TranslationError("constants in rule heads are not supported")
        out.append(var_pos[term.name])
    return tuple(out)  # type: ignore[return-value]


def _rule_to_join(rule: Rule, operand: dict[str, Expr]) -> Expr:
    """One TripleDatalog¬ rule as a join expression."""
    rels, others = _partition_literals(rule)
    if not 1 <= len(rels) <= 2:
        raise TranslationError(
            f"rule must have one or two relational literals: {rule!r}"
        )

    def expr_of(lit: RelLit) -> Expr:
        base = operand[lit.atom.pred]
        return complement(base) if lit.negated else base

    if len(rels) == 1:
        # Duplicate the single atom so the rule becomes a self-join; the
        # full-equality condition pins both copies to the same triple.
        atoms = [rels[0].atom, rels[0].atom]
        exprs = [expr_of(rels[0]), expr_of(rels[0])]
        conds = [Cond(Pos(i), Pos(i + 3)) for i in range(3)]
    else:
        atoms = [rels[0].atom, rels[1].atom]
        exprs = [expr_of(rels[0]), expr_of(rels[1])]
        conds = []
        # Shared variables across the two atoms become join equalities.
        left_pos: dict[str, int] = {}
        for offset, term in enumerate(atoms[0].args):
            if isinstance(term, DVar) and term.name not in left_pos:
                left_pos[term.name] = offset
        for offset, term in enumerate(atoms[1].args):
            if isinstance(term, DVar) and term.name in left_pos:
                conds.append(Cond(Pos(left_pos[term.name]), Pos(3 + offset)))

    conds += _local_conditions(atoms)
    var_pos = _positions_of_vars(atoms)
    conds += _check_literal_conds(others, var_pos)
    out = _head_out(rule, var_pos)
    return Join(exprs[0], exprs[1], out, tuple(dict.fromkeys(conds)))


def _star_from_rules(
    pred: str,
    base_rule: Rule,
    step_rule: Rule,
    operand: dict[str, Expr],
) -> Expr:
    """The Theorem 2 construction: recursive S becomes ``(e_R ✶)*``."""
    base_lit = base_rule.rel_literals()[0]
    if base_rule.head.args != base_lit.atom.args or base_lit.negated:
        raise TranslationError(
            f"base rule for {pred} must be S(x̄) ← R(x̄) with identical "
            f"variable tuples, got {base_rule!r}"
        )
    base_expr = operand[base_lit.atom.pred]
    rels, others = _partition_literals(step_rule)
    first, second = rels[0].atom, rels[1].atom
    if first.pred == pred:
        side = "right"
        atoms = [first, second]
    else:
        side = "left"
        atoms = [first, second]
    conds = _local_conditions(atoms)
    left_pos: dict[str, int] = {}
    for offset, term in enumerate(atoms[0].args):
        if isinstance(term, DVar) and term.name not in left_pos:
            left_pos[term.name] = offset
    for offset, term in enumerate(atoms[1].args):
        if isinstance(term, DVar) and term.name in left_pos:
            conds.append(Cond(Pos(left_pos[term.name]), Pos(3 + offset)))
    var_pos = _positions_of_vars(atoms)
    conds += _check_literal_conds(others, var_pos)
    out = _head_out(step_rule, var_pos)
    return Star(base_expr, out, tuple(dict.fromkeys(conds)), side)


def datalog_to_trial(program: Program) -> Expr:
    """Compile a (Reach)TripleDatalog¬ program back to TriAL(*).

    Nonrecursive predicates become unions of joins (Prop 2); recursive
    predicates must match the ReachTripleDatalog¬ two-rule shape and
    become Kleene stars (Thm 2).
    """
    recursive = recursive_predicates(program)
    operand: dict[str, Expr] = {
        pred: Rel(pred) for pred in program.edb_predicates()
    }

    # Evaluation order: dependencies first (reuse the stratifier).
    from repro.datalog.evaluator import stratify

    for component in stratify(program):
        if len(component) > 1:
            raise TranslationError(
                f"mutually recursive predicates {component} are outside "
                "ReachTripleDatalog¬"
            )
        pred = component[0]
        rules = program.rules_for(pred)
        if pred in recursive:
            if len(rules) != 2:
                raise TranslationError(
                    f"recursive predicate {pred} must have exactly two rules"
                )
            base = [
                r
                for r in rules
                if all(
                    l.atom.pred != pred
                    for l in r.rel_literals()
                )
            ]
            step = [r for r in rules if r not in base]
            if len(base) != 1 or len(step) != 1:
                raise TranslationError(
                    f"recursive predicate {pred} does not match the "
                    "base-plus-step shape of ReachTripleDatalog¬"
                )
            operand[pred] = _star_from_rules(pred, base[0], step[0], operand)
        else:
            exprs = [_rule_to_join(rule, operand) for rule in rules]
            if not exprs:
                raise TranslationError(f"predicate {pred} has no rules")
            acc = exprs[0]
            for e in exprs[1:]:
                acc = Union(acc, e)
            operand[pred] = acc

    try:
        return operand[program.answer]
    except KeyError:
        raise TranslationError(
            f"answer predicate {program.answer!r} is not defined"
        ) from None
