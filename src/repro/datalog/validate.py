"""Membership checks for the paper's exact Datalog fragments.

*TripleDatalog¬* (Section 4, rule shape (1)): every rule has at most two
relational body literals (arity ≤ 3), plus ∼-literals and (in)equality
literals, all possibly negated; head variables come from the body.  A
program must additionally be *nonrecursive* for Proposition 2.

*ReachTripleDatalog¬* (Theorem 2): TripleDatalog¬ where each recursive
predicate S is the head of exactly two rules::

    S(x̄) ← R(x̄)
    S(x̄) ← S(x̄1), R(x̄2), V(y1,z1), …, V(yk,zk)

with R nonrecursive and each V an (in)equality or (¬)∼ literal.

Note on "R is a nonrecursive predicate": read literally this would make
nested Kleene stars untranslatable, contradicting Theorem 2 (query Q
itself nests two stars).  We therefore read it as "R is defined in a
strictly earlier stratum than S" — R may itself be recursive, as long
as it does not depend on S.  This is exactly what the Theorem 2 proof
produces when translating nested stars.
"""

from __future__ import annotations

from repro.errors import DatalogError
from repro.datalog.ast import Atom, DVar, EqLit, Program, RelLit, Rule, SimLit
from repro.datalog.evaluator import dependency_edges, stratify


def is_triple_datalog_rule(rule: Rule) -> bool:
    """Does the rule match shape (1) (≤ 2 relational literals, arity ≤ 3)?"""
    rels = rule.rel_literals()
    if len(rels) > 2:
        return False
    if any(lit.atom.arity > 3 for lit in rels) or rule.head.arity > 3:
        return False
    body_vars = frozenset().union(
        *(lit.variables() for lit in rels), frozenset()
    )
    for lit in rule.body:
        if not isinstance(lit, RelLit) and not lit.variables() <= body_vars:
            return False
    return rule.head.variables() <= body_vars


def is_nonrecursive(program: Program) -> bool:
    """No IDB predicate depends on itself (directly or transitively)."""
    try:
        sccs = stratify(program)
    except DatalogError:
        return False  # negation through recursion is in particular recursion
    edges = dependency_edges(program)
    self_loop = {h for h, b, _ in edges if h == b}
    if self_loop:
        return False
    return all(len(component) == 1 for component in sccs)


def is_triple_datalog(program: Program) -> bool:
    """Nonrecursive TripleDatalog¬ (the Proposition 2 class)."""
    return all(is_triple_datalog_rule(r) for r in program) and is_nonrecursive(program)


def recursive_predicates(program: Program) -> frozenset[str]:
    """IDB predicates participating in a dependency cycle."""
    sccs = stratify(program)
    edges = dependency_edges(program)
    self_loop = {h for h, b, _ in edges if h == b}
    cyclic = set(self_loop)
    for component in sccs:
        if len(component) > 1:
            cyclic.update(component)
    return frozenset(cyclic)


def _is_reach_step_rule(rule: Rule, pred: str, earlier: frozenset[str]) -> bool:
    """``S(x̄) ← S(x̄1), R(x̄2), V…`` with R from an earlier stratum."""
    rels = rule.rel_literals()
    if len(rels) != 2 or any(l.negated for l in rels):
        return False
    preds = [l.atom.pred for l in rels]
    if preds.count(pred) != 1:
        return False
    other = preds[0] if preds[1] == pred else preds[1]
    if other not in earlier:
        return False
    return all(
        isinstance(l, (EqLit, SimLit)) for l in rule.body if not isinstance(l, RelLit)
    )


def _is_reach_base_rule(rule: Rule, earlier: frozenset[str]) -> bool:
    """``S(x̄) ← R(x̄)`` — one positive earlier-stratum literal, same variables."""
    rels = rule.rel_literals()
    if len(rels) != 1 or rels[0].negated:
        return False
    if rels[0].atom.pred not in earlier:
        return False
    if any(not isinstance(l, RelLit) for l in rule.body):
        return False
    head_args = rule.head.args
    body_args = rels[0].atom.args
    return (
        len(head_args) == len(body_args)
        and all(isinstance(a, DVar) for a in head_args)
        and head_args == body_args
    )


def is_reach_triple_datalog(program: Program) -> bool:
    """Membership in ReachTripleDatalog¬ (the Theorem 2 class)."""
    if not all(is_triple_datalog_rule(r) for r in program):
        return False
    try:
        recursive = recursive_predicates(program)
        strata = stratify(program)
    except DatalogError:
        return False
    if any(len(component) > 1 for component in strata):
        return False  # mutual recursion is outside the fragment
    earlier: set[str] = set(program.edb_predicates())
    for component in strata:
        pred = component[0]
        if pred in recursive:
            rules = program.rules_for(pred)
            if len(rules) != 2:
                return False
            base = [r for r in rules if _is_reach_base_rule(r, frozenset(earlier))]
            step = [
                r for r in rules if _is_reach_step_rule(r, pred, frozenset(earlier))
            ]
            if len(base) != 1 or len(step) != 1 or base[0] is step[0]:
                return False
        earlier.add(pred)
    return True


def validate_fragment(program: Program, fragment: str) -> None:
    """Raise :class:`DatalogError` unless the program is in the fragment.

    ``fragment`` is ``"TripleDatalog"`` or ``"ReachTripleDatalog"``.
    """
    if fragment == "TripleDatalog":
        if not is_triple_datalog(program):
            raise DatalogError("program is not nonrecursive TripleDatalog¬")
    elif fragment == "ReachTripleDatalog":
        if not is_reach_triple_datalog(program):
            raise DatalogError("program is not ReachTripleDatalog¬")
    else:
        raise DatalogError(f"unknown fragment {fragment!r}")
