"""Membership checks for the paper's exact Datalog fragments.

*TripleDatalog¬* (Section 4, rule shape (1)): every rule has at most two
relational body literals (arity ≤ 3), plus ∼-literals and (in)equality
literals, all possibly negated; head variables come from the body.  A
program must additionally be *nonrecursive* for Proposition 2.

*ReachTripleDatalog¬* (Theorem 2): TripleDatalog¬ where each recursive
predicate S is the head of exactly two rules::

    S(x̄) ← R(x̄)
    S(x̄) ← S(x̄1), R(x̄2), V(y1,z1), …, V(yk,zk)

with R nonrecursive and each V an (in)equality or (¬)∼ literal.

Note on "R is a nonrecursive predicate": read literally this would make
nested Kleene stars untranslatable, contradicting Theorem 2 (query Q
itself nests two stars).  We therefore read it as "R is defined in a
strictly earlier stratum than S" — R may itself be recursive, as long
as it does not depend on S.  This is exactly what the Theorem 2 proof
produces when translating nested stars.
"""

from __future__ import annotations

from repro.errors import DatalogError
from repro.datalog.ast import (
    Atom,
    DConst,
    DTerm,
    DVar,
    EqLit,
    Program,
    RelLit,
    Rule,
    SimLit,
)
from repro.datalog.evaluator import dependency_edges, stratify


def is_triple_datalog_rule(rule: Rule) -> bool:
    """Does the rule match shape (1) (≤ 2 relational literals, arity ≤ 3)?"""
    rels = rule.rel_literals()
    if len(rels) > 2:
        return False
    if any(lit.atom.arity > 3 for lit in rels) or rule.head.arity > 3:
        return False
    body_vars = frozenset().union(
        *(lit.variables() for lit in rels), frozenset()
    )
    for lit in rule.body:
        if not isinstance(lit, RelLit) and not lit.variables() <= body_vars:
            return False
    return rule.head.variables() <= body_vars


def is_nonrecursive(program: Program) -> bool:
    """No IDB predicate depends on itself (directly or transitively)."""
    try:
        sccs = stratify(program)
    except DatalogError:
        return False  # negation through recursion is in particular recursion
    edges = dependency_edges(program)
    self_loop = {h for h, b, _ in edges if h == b}
    if self_loop:
        return False
    return all(len(component) == 1 for component in sccs)


def is_triple_datalog(program: Program) -> bool:
    """Nonrecursive TripleDatalog¬ (the Proposition 2 class)."""
    return all(is_triple_datalog_rule(r) for r in program) and is_nonrecursive(program)


def recursive_predicates(program: Program) -> frozenset[str]:
    """IDB predicates participating in a dependency cycle."""
    sccs = stratify(program)
    edges = dependency_edges(program)
    self_loop = {h for h, b, _ in edges if h == b}
    cyclic = set(self_loop)
    for component in sccs:
        if len(component) > 1:
            cyclic.update(component)
    return frozenset(cyclic)


def _is_reach_step_rule(rule: Rule, pred: str, earlier: frozenset[str]) -> bool:
    """``S(x̄) ← S(x̄1), R(x̄2), V…`` with R from an earlier stratum."""
    rels = rule.rel_literals()
    if len(rels) != 2 or any(l.negated for l in rels):
        return False
    preds = [l.atom.pred for l in rels]
    if preds.count(pred) != 1:
        return False
    other = preds[0] if preds[1] == pred else preds[1]
    if other not in earlier:
        return False
    return all(
        isinstance(l, (EqLit, SimLit)) for l in rule.body if not isinstance(l, RelLit)
    )


def _is_reach_base_rule(rule: Rule, earlier: frozenset[str]) -> bool:
    """``S(x̄) ← R(x̄)`` — one positive earlier-stratum literal, same variables."""
    rels = rule.rel_literals()
    if len(rels) != 1 or rels[0].negated:
        return False
    if rels[0].atom.pred not in earlier:
        return False
    if any(not isinstance(l, RelLit) for l in rule.body):
        return False
    head_args = rule.head.args
    body_args = rels[0].atom.args
    return (
        len(head_args) == len(body_args)
        and all(isinstance(a, DVar) for a in head_args)
        and head_args == body_args
    )


def is_reach_triple_datalog(program: Program) -> bool:
    """Membership in ReachTripleDatalog¬ (the Theorem 2 class)."""
    if not all(is_triple_datalog_rule(r) for r in program):
        return False
    try:
        recursive = recursive_predicates(program)
        strata = stratify(program)
    except DatalogError:
        return False
    if any(len(component) > 1 for component in strata):
        return False  # mutual recursion is outside the fragment
    earlier: set[str] = set(program.edb_predicates())
    for component in strata:
        pred = component[0]
        if pred in recursive:
            rules = program.rules_for(pred)
            if len(rules) != 2:
                return False
            base = [r for r in rules if _is_reach_base_rule(r, frozenset(earlier))]
            step = [
                r for r in rules if _is_reach_step_rule(r, pred, frozenset(earlier))
            ]
            if len(base) != 1 or len(step) != 1 or base[0] is step[0]:
                return False
        earlier.add(pred)
    return True


# --------------------------------------------------------------------- #
# Semantic analysis: per-rule satisfiability and dead rules
# --------------------------------------------------------------------- #


class _RuleSolver:
    """Union-find over one rule body's comparison literals.

    Mirrors the TriAL condition solver
    (:mod:`repro.analysis.semantics`) on Datalog terms: object
    (in)equality literals live in the θ space, ``∼`` literals in the η
    space, and θ-equality propagates into η (ρ is a function, so
    object-equal terms have equal data values).  Variables are opaque
    fixed values; only distinct constants are known-distinct, and *no*
    two η nodes are known-distinct a priori (ρ may collide).
    """

    def __init__(self, rule: Rule) -> None:
        self._parent: dict[tuple, tuple] = {}
        self._disequalities: list[tuple[tuple, tuple]] = []
        self.static_false = False
        terms: list[DTerm] = []
        for lit in rule.body:
            if isinstance(lit, RelLit):
                continue
            terms += [lit.left, lit.right]
            space = "data" if isinstance(lit, SimLit) else "obj"
            left, right = self._node(lit.left, space), self._node(lit.right, space)
            if (
                isinstance(lit, EqLit)
                and isinstance(lit.left, DConst)
                and isinstance(lit.right, DConst)
            ):
                # Statically decided; a false one kills the whole body.
                if (lit.left.value == lit.right.value) == lit.negated:
                    self.static_false = True
                continue
            if lit.negated:
                self._disequalities.append((left, right))
            else:
                self._union(left, right)
        # θ → η congruence over every term the body mentions.
        uniq = list(dict.fromkeys(terms))
        for i, a in enumerate(uniq):
            for b in uniq[i + 1:]:
                if self._find(self._node(a, "obj")) == self._find(
                    self._node(b, "obj")
                ):
                    self._union(self._node(a, "data"), self._node(b, "data"))

    @staticmethod
    def _node(term: DTerm, space: str) -> tuple:
        kind = "var" if isinstance(term, DVar) else "const"
        key = term.name if isinstance(term, DVar) else term.value
        return (space, kind, key)

    def _find(self, node: tuple) -> tuple:
        parent = self._parent.setdefault(node, node)
        if parent == node:
            return node
        root = self._find(parent)
        self._parent[node] = root
        return root

    def _union(self, a: tuple, b: tuple) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            self._parent[ra] = rb

    def is_unsat(self) -> bool:
        if self.static_false:
            return True
        # Two distinct object constants forced into one θ class.
        by_root: dict[tuple, set] = {}
        for node in list(self._parent):
            space, kind, key = node
            if space == "obj" and kind == "const":
                by_root.setdefault(self._find(node), set()).add(key)
        if any(len(consts) > 1 for consts in by_root.values()):
            return True
        return any(
            self._find(a) == self._find(b) for a, b in self._disequalities
        )


def rule_body_unsat(rule: Rule) -> bool:
    """Is the rule's comparison-literal conjunction unsatisfiable?"""
    return _RuleSolver(rule).is_unsat()


def _reachable_predicates(program: Program) -> frozenset[str]:
    """Predicates the answer predicate transitively depends on."""
    bodies: dict[str, set[str]] = {}
    for rule in program.rules:
        deps = bodies.setdefault(rule.head.pred, set())
        deps.update(lit.atom.pred for lit in rule.rel_literals())
    reachable: set[str] = set()
    stack = [program.answer]
    while stack:
        pred = stack.pop()
        if pred in reachable:
            continue
        reachable.add(pred)
        stack.extend(bodies.get(pred, ()))
    return frozenset(reachable)


def analyze_program(program: Program) -> list:
    """Semantic findings for a Datalog program (``SEM-*`` rule IDs).

    ``SEM-UNSAT`` — a rule body's (in)equality/∼ literals contradict
    each other, so the rule can never fire; ``SEM-DEAD-RULE`` — a
    rule's head predicate is unreachable from the program's answer
    predicate, so the rule cannot contribute to the result.  Advisory:
    the program still evaluates (the verdicts describe work, not
    errors).
    """
    from repro.analysis.invariants import Finding

    findings: list = []
    reachable = _reachable_predicates(program)
    for rule in program.rules:
        if rule_body_unsat(rule):
            findings.append(
                Finding(
                    "SEM-UNSAT",
                    "rule body's comparison literals are unsatisfiable; "
                    "the rule never fires",
                    op=repr(rule),
                )
            )
        if rule.head.pred not in reachable:
            findings.append(
                Finding(
                    "SEM-DEAD-RULE",
                    f"head predicate {rule.head.pred!r} is unreachable "
                    f"from answer predicate {program.answer!r}",
                    op=repr(rule),
                )
            )
    return findings


def validate_fragment(program: Program, fragment: str) -> None:
    """Raise :class:`DatalogError` unless the program is in the fragment.

    ``fragment`` is ``"TripleDatalog"`` or ``"ReachTripleDatalog"``.
    """
    if fragment == "TripleDatalog":
        if not is_triple_datalog(program):
            raise DatalogError("program is not nonrecursive TripleDatalog¬")
    elif fragment == "ReachTripleDatalog":
        if not is_reach_triple_datalog(program):
            raise DatalogError("program is not ReachTripleDatalog¬")
    else:
        raise DatalogError(f"unknown fragment {fragment!r}")
