"""Datalog AST for the paper's TripleDatalog¬ fragments (Section 4).

Rules have the shape (1) of the paper::

    S(x̄) ← S1(x̄1), S2(x̄2), ∼(y1,z1), …, u1 = v1, …

with relational literals of arity ≤ 3 (possibly negated), data-equality
literals ``∼`` (possibly negated) and (in)equality literals.  The
generic evaluator accepts arbitrary stratified programs built from
these pieces; the validators in :mod:`repro.datalog.validate` check
membership in the exact paper fragments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Union

from repro.errors import DatalogError


@dataclass(frozen=True)
class DVar:
    """A Datalog variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class DConst:
    """A constant (object or data value, depending on the literal)."""

    value: Any

    def __repr__(self) -> str:
        return repr(self.value)


DTerm = Union[DVar, DConst]


def _as_dterm(t: "DTerm | str") -> DTerm:
    return DVar(t) if isinstance(t, str) else t


@dataclass(frozen=True, repr=False)
class Atom:
    """``pred(t1, …, tk)`` with k ≤ 3."""

    pred: str
    args: tuple[DTerm, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(_as_dterm(a) for a in self.args))
        if not 1 <= len(self.args) <= 3:
            raise DatalogError(
                f"predicates have arity 1..3 in this fragment, got {len(self.args)}"
            )

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> frozenset[str]:
        return frozenset(a.name for a in self.args if isinstance(a, DVar))

    def __repr__(self) -> str:
        return f"{self.pred}({', '.join(map(repr, self.args))})"


@dataclass(frozen=True, repr=False)
class RelLit:
    """A (possibly negated) relational body literal."""

    atom: Atom
    negated: bool = False

    def variables(self) -> frozenset[str]:
        return self.atom.variables()

    def __repr__(self) -> str:
        return f"not {self.atom!r}" if self.negated else repr(self.atom)


@dataclass(frozen=True, repr=False)
class SimLit:
    """``∼(l, r)`` — equal data values (ρ(l) = ρ(r)); possibly negated."""

    left: DTerm
    right: DTerm
    negated: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "left", _as_dterm(self.left))
        object.__setattr__(self, "right", _as_dterm(self.right))

    def variables(self) -> frozenset[str]:
        return frozenset(
            t.name for t in (self.left, self.right) if isinstance(t, DVar)
        )

    def __repr__(self) -> str:
        body = f"~({self.left!r}, {self.right!r})"
        return f"not {body}" if self.negated else body


@dataclass(frozen=True, repr=False)
class EqLit:
    """``l = r`` or ``l != r`` over objects."""

    left: DTerm
    right: DTerm
    negated: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "left", _as_dterm(self.left))
        object.__setattr__(self, "right", _as_dterm(self.right))

    def variables(self) -> frozenset[str]:
        return frozenset(
            t.name for t in (self.left, self.right) if isinstance(t, DVar)
        )

    def __repr__(self) -> str:
        op = "!=" if self.negated else "="
        return f"{self.left!r} {op} {self.right!r}"


Literal = Union[RelLit, SimLit, EqLit]


@dataclass(frozen=True, repr=False)
class Rule:
    """``head ← body``."""

    head: Atom
    body: tuple[Literal, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        self._check_safety()

    def _check_safety(self) -> None:
        positive = frozenset().union(
            *(
                lit.variables()
                for lit in self.body
                if isinstance(lit, RelLit) and not lit.negated
            ),
            frozenset(),
        )
        # Variables bound by a positive equality with a constant also count.
        for lit in self.body:
            if isinstance(lit, EqLit) and not lit.negated:
                if isinstance(lit.left, DVar) and isinstance(lit.right, DConst):
                    positive |= {lit.left.name}
                if isinstance(lit.right, DVar) and isinstance(lit.left, DConst):
                    positive |= {lit.right.name}
        unsafe = self.head.variables() - positive
        if unsafe:
            raise DatalogError(
                f"unsafe rule: head variables {sorted(unsafe)} not bound by a "
                f"positive body atom in {self!r}"
            )
        for lit in self.body:
            if isinstance(lit, (SimLit, EqLit)) or (
                isinstance(lit, RelLit) and lit.negated
            ):
                loose = lit.variables() - positive
                if loose:
                    raise DatalogError(
                        f"unsafe rule: variables {sorted(loose)} of {lit!r} not "
                        "bound by a positive body atom"
                    )

    def rel_literals(self) -> tuple[RelLit, ...]:
        return tuple(l for l in self.body if isinstance(l, RelLit))

    def __repr__(self) -> str:
        return f"{self.head!r} :- {', '.join(map(repr, self.body))}."


@dataclass(frozen=True, repr=False)
class Program:
    """A finite set of rules with a designated answer predicate."""

    rules: tuple[Rule, ...]
    answer: str = "Ans"

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def idb_predicates(self) -> frozenset[str]:
        """Predicates defined by some rule head."""
        return frozenset(r.head.pred for r in self.rules)

    def edb_predicates(self) -> frozenset[str]:
        """Predicates only read (must come from the triplestore)."""
        idb = self.idb_predicates()
        out: set[str] = set()
        for rule in self.rules:
            for lit in rule.rel_literals():
                if lit.atom.pred not in idb:
                    out.add(lit.atom.pred)
        return frozenset(out)

    def rules_for(self, pred: str) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if r.head.pred == pred)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def size(self) -> int:
        """A node-count measure |Π| used in Corollary 1 benchmarks."""
        return sum(1 + len(r.body) for r in self.rules)

    def __repr__(self) -> str:
        return "\n".join(repr(r) for r in self.rules)
