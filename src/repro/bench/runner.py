"""Timing helpers for the scaling experiments (Theorem 3, Props 4–5).

The benchmarks assert *shapes*, not absolute numbers: we time an
operation over a size sweep and fit the log–log slope.  A slope near 1
is linear scaling, near 2 quadratic, and so on.  ``fit_loglog_slope``
does an ordinary least-squares fit; tests allow generous tolerances
because constant factors and Python overheads bend small-n curves.

``compare`` / ``write_bench_json`` support A/B records — notably the
planner-on vs planner-off (legacy interpreter) comparison of
``benchmarks/bench_engines.py``, whose results are written to
``BENCH_PLANNER.json`` so speedups are tracked across PRs.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence


@dataclass(frozen=True)
class Measurement:
    """One (size, seconds) point of a sweep."""

    size: int
    seconds: float


def time_callable(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn`` (best-of reduces scheduler noise)."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


def sweep(
    make_input: Callable[[int], object],
    run: Callable[[object], object],
    sizes: Iterable[int],
    repeats: int = 3,
) -> list[Measurement]:
    """Time ``run`` over inputs of growing size (setup excluded)."""
    out: list[Measurement] = []
    for size in sizes:
        payload = make_input(size)
        out.append(Measurement(size, time_callable(lambda: run(payload), repeats)))
    return out


def fit_loglog_slope(measurements: Sequence[Measurement]) -> float:
    """OLS slope of log(seconds) against log(size).

    >>> pts = [Measurement(n, 1e-6 * n ** 2) for n in (10, 20, 40, 80)]
    >>> round(fit_loglog_slope(pts), 3)
    2.0
    """
    if len(measurements) < 2:
        raise ValueError("need at least two measurements to fit a slope")
    xs = [math.log(m.size) for m in measurements]
    ys = [math.log(max(m.seconds, 1e-9)) for m in measurements]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var = sum((x - mean_x) ** 2 for x in xs)
    return cov / var


@dataclass(frozen=True)
class Comparison:
    """One A/B timing: a baseline implementation against a candidate."""

    name: str
    baseline_seconds: float
    candidate_seconds: float

    @property
    def speedup(self) -> float:
        """baseline / candidate — above 1.0 means the candidate wins."""
        return self.baseline_seconds / max(self.candidate_seconds, 1e-9)


def compare(
    name: str,
    baseline: Callable[[], object],
    candidate: Callable[[], object],
    repeats: int = 3,
) -> Comparison:
    """Best-of-N times for two implementations of the same operation.

    Best-of-N discards cold runs on both sides, so this measures the
    *steady state* (warm caches — the regime that matters for repeated
    queries against one store).  The candidate still runs first, so any
    one-time setup it is supposed to amortise (plan compilation, store
    index builds) lands in its own repeat sequence, never the baseline's.
    """
    candidate_seconds = time_callable(candidate, repeats)
    baseline_seconds = time_callable(baseline, repeats)
    return Comparison(name, baseline_seconds, candidate_seconds)


def write_bench_json(
    path: str,
    comparisons: Sequence[Comparison],
    meta: dict | None = None,
) -> None:
    """Record comparisons as a ``BENCH_*.json`` file (sorted, stable keys)."""
    payload = {
        "meta": dict(meta or {}),
        "results": [
            {
                "name": c.name,
                "baseline_seconds": round(c.baseline_seconds, 6),
                "candidate_seconds": round(c.candidate_seconds, 6),
                "speedup": round(c.speedup, 3),
            }
            for c in comparisons
        ],
    }
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")


def format_table(
    rows: Iterable[Sequence[object]], headers: Sequence[str]
) -> str:
    """A plain fixed-width table for EXPERIMENTS.md-style reports."""
    rows = [tuple(str(c) for c in row) for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines += [fmt(row) for row in rows]
    return "\n".join(lines)
