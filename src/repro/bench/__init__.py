"""Benchmark harness utilities."""

from repro.bench.runner import (
    Measurement,
    fit_loglog_slope,
    format_table,
    sweep,
    time_callable,
)

__all__ = [
    "Measurement",
    "fit_loglog_slope",
    "format_table",
    "sweep",
    "time_callable",
]
