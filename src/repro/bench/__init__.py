"""Benchmark harness utilities."""

from repro.bench.runner import (
    Comparison,
    Measurement,
    compare,
    fit_loglog_slope,
    format_table,
    sweep,
    time_callable,
    write_bench_json,
)

__all__ = [
    "Comparison",
    "Measurement",
    "compare",
    "fit_loglog_slope",
    "format_table",
    "sweep",
    "time_callable",
    "write_bench_json",
]
