"""The service wire protocol: request schemas and structured errors.

One module owns what crosses the wire, for both transports:

* request validation — :func:`parse_request` enforces field presence
  and types *before* anything touches a session, so malformed input is
  a structured 4xx, never a stack trace;
* the error envelope — :func:`error_body` renders any exception as
  ``{"error": {"type", "message", ...}}`` and :func:`status_for` maps
  it onto an HTTP status.  Library errors (:mod:`repro.errors`) cross
  with their class name and detail fields intact (e.g.
  ``UnknownRelationError`` carries ``relation`` and ``available``), so
  clients can dispatch on ``error.type`` without parsing messages;
* row serialization — store objects are arbitrary Python values;
  :func:`jsonable_row` keeps JSON-native scalars as themselves and
  falls back to ``repr`` for the rest, matching the CLI's display
  convention.

Unexpected exceptions (genuine bugs) still produce a *structured* 500
body — the contract under fuzzing is "never a 500 without a body, never
a crash".
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import (
    AdmissionRejectedError,
    AlgebraError,
    DatalogError,
    EvaluationBudgetError,
    FragmentError,
    GraphError,
    LogicError,
    MatrixTooLargeError,
    ParseError,
    PayloadTooLargeError,
    PlanVerificationError,
    ProtocolError,
    QueryTimeoutError,
    RemoteError,
    ReproError,
    ServiceError,
    ShardWorkerError,
    StorageError,
    StoreCorruptionError,
    StratificationError,
    TranslationError,
    TriplestoreError,
    UnboundParameterError,
    UnknownRelationError,
)

__all__ = [
    "error_body",
    "jsonable_row",
    "parse_request",
    "status_for",
]

#: Languages a request may name (validated against the live registry at
#: execution time; this guard exists so the error is a protocol error
#: with the known names, not a KeyError shape).
_REQUEST_FIELDS = {
    "query": str,
    "lang": str,
    "tenant": str,
    "params": dict,
    "limit": int,
    "offset": int,
    "page_size": int,
    "id": (str, int),
}


def parse_request(payload: Any, *, require_query: bool = True) -> dict:
    """Validate one decoded query-request object into canonical form.

    Returns a dict with ``query``, ``lang``, ``tenant``, ``params``,
    ``limit``, ``offset``, ``page_size`` and ``id`` keys (defaults
    filled in).  Raises :class:`ProtocolError` on any shape violation.
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    unknown = set(payload) - set(_REQUEST_FIELDS) - {"statement"}
    if unknown:
        raise ProtocolError(
            f"unknown request field(s): {', '.join(sorted(map(str, unknown)))}"
        )
    for name, types in _REQUEST_FIELDS.items():
        if name not in payload:
            continue
        value = payload[name]
        # bool is an int subclass; reject it wherever int is expected.
        bad = not isinstance(value, types) or (
            types is int and isinstance(value, bool)
        )
        if bad:
            wanted = (
                types.__name__
                if isinstance(types, type)
                else " or ".join(t.__name__ for t in types)
            )
            raise ProtocolError(
                f"field {name!r} must be {wanted}, "
                f"got {type(value).__name__}"
            )
    if require_query and "query" not in payload and "statement" not in payload:
        raise ProtocolError("request is missing the 'query' field")
    params = payload.get("params", {})
    for key, value in params.items():
        if not isinstance(key, str):
            raise ProtocolError("parameter names must be strings")
        if not isinstance(value, (str, int, float)) or isinstance(value, bool):
            raise ProtocolError(
                f"parameter ${key} must be a scalar, "
                f"got {type(value).__name__}"
            )
    for bound in ("limit", "offset", "page_size"):
        if bound in payload and payload[bound] < 0:
            raise ProtocolError(f"field {bound!r} must be non-negative")
    statement = payload.get("statement")
    if statement is not None and not isinstance(statement, str):
        raise ProtocolError(
            f"field 'statement' must be a str, got {type(statement).__name__}"
        )
    return {
        "query": payload.get("query"),
        "statement": statement,
        "lang": payload.get("lang", "trial"),
        "tenant": payload.get("tenant", "default"),
        "params": dict(params),
        "limit": payload.get("limit"),
        "offset": payload.get("offset", 0),
        "page_size": payload.get("page_size"),
        "id": payload.get("id"),
    }


# --------------------------------------------------------------------- #
# The error envelope
# --------------------------------------------------------------------- #

#: Exception class -> HTTP status.  First match wins, so subclasses are
#: listed before their families.  Every concrete leaf class in
#: :mod:`repro.errors` appears explicitly (the ERR-MAP lint rule), so
#: adding an error type forces a deliberate wire-status decision here.
_STATUS_MAP: tuple[tuple[type, int], ...] = (
    (PayloadTooLargeError, 413),
    (AdmissionRejectedError, 429),
    (QueryTimeoutError, 504),
    (ShardWorkerError, 503),
    (ProtocolError, 400),
    # A relayed remote failure surfaced by a proxying server: the
    # upstream, not this request, is at fault — Bad Gateway.
    (RemoteError, 502),
    (UnknownRelationError, 404),
    (MatrixTooLargeError, 400),
    (ParseError, 400),
    (FragmentError, 400),
    (UnboundParameterError, 400),
    (PlanVerificationError, 400),
    (AlgebraError, 400),
    (StratificationError, 400),
    (DatalogError, 400),
    (LogicError, 400),
    (GraphError, 400),
    (TranslationError, 400),
    (TriplestoreError, 400),
    # Durable-storage failures are the server's disk, not the client's
    # request: corruption and I/O problems both answer 500.
    (StoreCorruptionError, 500),
    (StorageError, 500),
    (EvaluationBudgetError, 400),
    (ServiceError, 400),
    (ReproError, 400),
)


def status_for(exc: BaseException) -> int:
    """The HTTP status an exception maps to (500 for genuine bugs)."""
    for cls, status in _STATUS_MAP:
        if isinstance(exc, cls):
            return status
    return 500


def error_body(exc: BaseException) -> dict:
    """The structured error envelope for any exception.

    Library errors keep their class name and machine-readable detail
    fields; unexpected exceptions are flattened to ``InternalError``
    with their class named in ``detail`` — typed for the client, but
    without promising stability for bugs.
    """
    if isinstance(exc, ReproError):
        error: dict[str, Any] = {
            "type": type(exc).__name__,
            "message": str(exc),
        }
        for attr in (
            "reason",
            "seconds",
            "size",
            "limit",
            "name",
            "available",
            "known",
        ):
            value = getattr(exc, attr, None)
            if value is not None and value != ():
                error[attr if attr != "name" else "relation"] = (
                    list(value) if isinstance(value, tuple) else value
                )
        return {"error": error}
    return {
        "error": {
            "type": "InternalError",
            "message": str(exc) or type(exc).__name__,
            "detail": type(exc).__name__,
        }
    }


# --------------------------------------------------------------------- #
# Row serialization
# --------------------------------------------------------------------- #


def jsonable_row(row: Any) -> list:
    """One result row as a JSON array (repr for non-native objects)."""
    out = []
    for value in row:
        if value is None or isinstance(value, (str, int, float, bool)):
            out.append(value)
        else:
            out.append(repr(value))
    return out
