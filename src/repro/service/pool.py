"""Tenant sessions: per-tenant ``Database`` instances and statements.

A *tenant* is one isolation unit: its own store, its own
:class:`~repro.db.Database` session (so plan/result caches, mutation
versions and prepared statements never leak across tenants), created
once and reused for every request naming it.  The pool is built from
either ready ``Database`` objects (tests, embedding) or store paths
(the CLI), and owns their lifecycle: ``close()`` tears every session
down — including the shared-memory segments of process-sharded
tenants — via :meth:`repro.db.Database.close`.

Prepared statements are server-side session state: ``prepare`` stores
the compiled :class:`~repro.api.PreparedStatement` under an opaque id
and ``execute`` binds per call, so the plan really is compiled once per
statement no matter how many clients execute it.  The statement
registry is registered as a session close hook — closing the session
drops its statements.
"""

from __future__ import annotations

import itertools
import threading
from typing import Iterator, Mapping

from repro.api import PreparedStatement
from repro.db import Database
from repro.errors import ProtocolError, ReproError, ServiceError

__all__ = ["TenantPool", "TenantSession"]


class TenantSession:
    """One tenant's session: a database plus its statement registry."""

    __slots__ = ("name", "db", "_statements", "_ids", "_lock", "max_statements")

    def __init__(self, name: str, db: Database, max_statements: int) -> None:
        self.name = name
        self.db = db
        self.max_statements = max_statements
        self._statements: dict[str, PreparedStatement] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        # Session lifecycle hook: closing the session drops its
        # statements, so a pooled tenant never resurrects stale plans.
        db.add_close_hook(lambda _db: self._statements.clear())

    def prepare(self, query, lang: str) -> tuple[str, PreparedStatement]:
        stmt = self.db.prepare(query, lang=lang)
        with self._lock:
            if len(self._statements) >= self.max_statements:
                raise ServiceError(
                    f"tenant {self.name!r} already holds "
                    f"{self.max_statements} prepared statements"
                )
            sid = f"stmt-{next(self._ids)}"
            self._statements[sid] = stmt
        return sid, stmt

    def statement(self, sid: str) -> PreparedStatement:
        with self._lock:
            stmt = self._statements.get(sid)
        if stmt is None:
            raise ProtocolError(
                f"unknown statement {sid!r} for tenant {self.name!r} "
                "(statements are per-tenant and dropped on session close)"
            )
        return stmt

    def statement_count(self) -> int:
        with self._lock:
            return len(self._statements)

    def close(self) -> None:
        self.db.close()


class TenantPool:
    """The server's tenant sessions, by name."""

    def __init__(
        self,
        tenants: Mapping[str, Database],
        *,
        max_statements: int = 1024,
    ) -> None:
        if not tenants:
            raise ReproError("a query server needs at least one tenant")
        self._sessions = {
            name: TenantSession(name, db, max_statements)
            for name, db in tenants.items()
        }

    def session(self, name: str) -> TenantSession:
        session = self._sessions.get(name)
        if session is None:
            raise ProtocolError(
                f"unknown tenant {name!r} (tenants: "
                + ", ".join(sorted(self._sessions))
                + ")"
            )
        return session

    def __iter__(self) -> Iterator[TenantSession]:
        return iter(self._sessions.values())

    def names(self) -> list[str]:
        return sorted(self._sessions)

    def close(self) -> None:
        for session in self._sessions.values():
            session.close()
