"""A minimal RFC 6455 WebSocket codec: handshake, frames, both sides.

No third-party WebSocket library is a dependency of this project, so
the service speaks the protocol directly over the handler's socket.
Only what the streaming endpoint needs is implemented — text, close,
ping/pong, single-frame messages up to a size limit — but what is
implemented is *strict*: reserved bits, bad opcodes, unmasked client
frames, oversized or truncated frames all raise
:class:`~repro.errors.ProtocolError` (and the server answers with a
1002/1009 close, never a crash).  The protocol fuzz suite drives byte
mutations straight at this codec through a live server.

Frame layout (RFC 6455 §5.2)::

    0                   1                   2                   3
    0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
   +-+-+-+-+-------+-+-------------+-------------------------------+
   |F|R|R|R| opcode|M| Payload len |    Extended payload length    |
   |I|S|S|S|  (4)  |A|     (7)     |           (16/64)             |
   |N|V|V|V|       |S|             |                               |
   +-+-+-+-+-------+-+-------------+- - - - - - - - - - - - - - - -+
"""

from __future__ import annotations

import base64
import hashlib
import os
import socket
import struct
from dataclasses import dataclass

from repro.errors import PayloadTooLargeError, ProtocolError

__all__ = [
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "OP_TEXT",
    "Frame",
    "accept_key",
    "read_frame",
    "send_close",
    "send_frame",
]

#: RFC 6455 §1.3: the fixed GUID appended to the client key.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_KNOWN_OPCODES = {OP_CONT, OP_TEXT, OP_BINARY, OP_CLOSE, OP_PING, OP_PONG}
_CONTROL_OPCODES = {OP_CLOSE, OP_PING, OP_PONG}


def accept_key(client_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's key."""
    digest = hashlib.sha1((client_key.strip() + _WS_GUID).encode()).digest()
    return base64.b64encode(digest).decode()


@dataclass(frozen=True)
class Frame:
    opcode: int
    payload: bytes
    fin: bool = True


def _read_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ProtocolError on truncation."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket,
    *,
    max_payload: int,
    require_mask: bool,
) -> Frame:
    """Read and validate one frame; strict about everything.

    ``require_mask`` is True on the server side (clients MUST mask,
    §5.1) and False on the client side (servers MUST NOT mask).
    """
    b1, b2 = _read_exact(sock, 2)
    fin = bool(b1 & 0x80)
    if b1 & 0x70:
        raise ProtocolError("reserved frame bits set without an extension")
    opcode = b1 & 0x0F
    if opcode not in _KNOWN_OPCODES:
        raise ProtocolError(f"unknown opcode 0x{opcode:x}")
    masked = bool(b2 & 0x80)
    if require_mask and not masked:
        raise ProtocolError("client frames must be masked")
    if not require_mask and masked:
        raise ProtocolError("server frames must not be masked")
    length = b2 & 0x7F
    if opcode in _CONTROL_OPCODES:
        if not fin:
            raise ProtocolError("control frames cannot be fragmented")
        if length > 125:
            raise ProtocolError("control frames carry at most 125 bytes")
    if length == 126:
        (length,) = struct.unpack(">H", _read_exact(sock, 2))
    elif length == 127:
        (length,) = struct.unpack(">Q", _read_exact(sock, 8))
        if length >> 63:
            raise ProtocolError("frame length high bit set")
    if length > max_payload:
        raise PayloadTooLargeError(length, max_payload, "WebSocket frame")
    mask = _read_exact(sock, 4) if masked else b""
    payload = _read_exact(sock, length) if length else b""
    if masked and payload:
        payload = bytes(
            b ^ mask[i % 4] for i, b in enumerate(payload)
        )
    return Frame(opcode, payload, fin)


def send_frame(
    sock: socket.socket,
    opcode: int,
    payload: bytes,
    *,
    mask: bool,
) -> None:
    """Send one (FIN) frame; masks iff ``mask`` (the client side)."""
    header = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length <= 125:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if mask:
        key = os.urandom(4)
        header += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    sock.sendall(bytes(header) + payload)


def send_close(
    sock: socket.socket, code: int = 1000, reason: str = "", *, mask: bool
) -> None:
    """Send a close frame (best effort — the peer may already be gone)."""
    payload = struct.pack(">H", code) + reason.encode()[:123]
    try:
        send_frame(sock, OP_CLOSE, payload, mask=mask)
    except OSError:
        pass
