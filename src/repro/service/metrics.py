"""A small Prometheus-style metrics registry (no external deps).

Counters, gauges and histograms, optionally labeled, rendered in the
Prometheus text exposition format (version 0.0.4) by
:meth:`MetricsRegistry.expose`.  The output is deterministic — metric
families render in registration order, children in sorted label order,
values through one formatter — so the golden test can pin the full
exposition of a fresh server byte for byte.

The registry is intentionally minimal: no timestamps, no exemplars, no
process collectors.  Everything the service exports is either updated
inline on the request path or refreshed at scrape time from the tenant
sessions' own counters (see ``QueryServer._refresh_metrics``), which is
what lets the soak test reconcile ``/metrics`` against
``Database.cache_info()`` exactly.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable, Iterator, Optional

from repro.errors import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Latency buckets (seconds) for query/request histograms: sub-ms to
#: tens of seconds, roughly ×4 per step — wide because backends span
#: sub-ms set lookups to multi-second sharded fixpoints.
DEFAULT_BUCKETS = (0.001, 0.004, 0.016, 0.064, 0.25, 1.0, 4.0, 16.0, 64.0)


def _fmt(value: float) -> str:
    """Prometheus-style number: integers bare, floats via repr."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(labelnames: tuple[str, ...], labelvalues: tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{n}="{_escape(v)}"' for n, v in zip(labelnames, labelvalues)
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


class _Metric:
    """One metric family: a name, help text, label names, children.

    An unlabeled family has exactly one child (the empty label tuple);
    ``labels(...)`` materialises children on demand.  Children share
    the family's lock — scrape volume is tiny next to query work.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Iterable[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], "_Metric"] = {}
        self._lock = threading.Lock()
        self._value = 0.0

    # -- labels --------------------------------------------------------- #

    def labels(self, *values, **kv) -> "_Metric":
        if kv:
            if values:
                raise ReproError("pass label values positionally or by name")
            try:
                values = tuple(str(kv[n]) for n in self.labelnames)
            except KeyError as missing:
                raise ReproError(
                    f"metric {self.name} is missing label {missing}"
                ) from None
            if len(kv) != len(self.labelnames):
                raise ReproError(
                    f"metric {self.name} takes labels {self.labelnames}, "
                    f"got {tuple(kv)}"
                )
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ReproError(
                f"metric {self.name} takes {len(self.labelnames)} label(s), "
                f"got {len(values)}"
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._make_child()
                child._lock = self._lock
                self._children[values] = child
            return child

    def _make_child(self) -> "_Metric":
        return type(self)(self.name, self.help)

    def _own_series(self) -> bool:
        """Whether this family renders its own value (no labels)."""
        return not self.labelnames

    # -- values --------------------------------------------------------- #

    def value(self) -> float:
        with self._lock:
            return self._value

    # -- exposition ----------------------------------------------------- #

    def _series(
        self, labelnames: tuple[str, ...], labelvalues: tuple[str, ...]
    ) -> Iterator[str]:
        yield (
            f"{self.name}{_label_str(labelnames, labelvalues)}"
            f" {_fmt(self._value)}"
        )

    def expose(self) -> Iterator[str]:
        yield f"# HELP {self.name} {self.help}"
        yield f"# TYPE {self.name} {self.kind}"
        with self._lock:
            if self._own_series():
                yield from self._series((), ())
            for labelvalues in sorted(self._children):
                yield from self._children[labelvalues]._series(
                    self.labelnames, labelvalues
                )


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Mirror an externally maintained cumulative counter.

        Used at scrape time for counters owned elsewhere (the session
        caches' hit/miss totals) — the source is itself monotone.
        """
        with self._lock:
            self._value = float(value)


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount


class Histogram(_Metric):
    """Cumulative-bucket histogram (the Prometheus shape)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help, (), self.buckets)

    def observe(self, value: float) -> None:
        with self._lock:
            self._counts[bisect_left(self.buckets, value)] += 1
            self._sum += value
            self._count += 1

    def _series(
        self, labelnames: tuple[str, ...], labelvalues: tuple[str, ...]
    ) -> Iterator[str]:
        cumulative = 0
        for bound, count in zip(self.buckets, self._counts):
            cumulative += count
            le = _label_str(
                labelnames + ("le",), labelvalues + (_fmt(bound),)
            )
            yield f"{self.name}_bucket{le} {cumulative}"
        cumulative += self._counts[-1]
        le = _label_str(labelnames + ("le",), labelvalues + ("+Inf",))
        yield f"{self.name}_bucket{le} {cumulative}"
        suffix = _label_str(labelnames, labelvalues)
        yield f"{self.name}_sum{suffix} {_fmt(self._sum)}"
        yield f"{self.name}_count{suffix} {self._count}"


class MetricsRegistry:
    """An ordered collection of metric families with one text renderer."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help: str, labelnames=()) -> Counter:
        return self._register(Counter(name, help, labelnames))

    def gauge(self, name: str, help: str, labelnames=()) -> Gauge:
        return self._register(Gauge(name, help, labelnames))

    def histogram(
        self, name: str, help: str, labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._register(Histogram(name, help, labelnames, buckets))

    def _register(self, metric: _Metric) -> "_Metric":
        with self._lock:
            if metric.name in self._metrics:
                raise ReproError(f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def expose(self) -> str:
        """The full registry in the Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            families = list(self._metrics.values())
        for metric in families:
            lines.extend(metric.expose())
        return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict[str, float]:
    """Parse an exposition back into ``{series-with-labels: value}``.

    The test suite's reconciliation helper — not a general parser, but
    exact for what :meth:`MetricsRegistry.expose` emits.
    """
    out: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        out[series] = float(value)
    return out
