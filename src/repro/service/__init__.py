"""The query service layer: a long-running server over Query API v2.

Nothing in the core library serves traffic; this package does.  It
layers a long-running query server on the session/prepared-statement
API of :class:`repro.db.Database`:

* :class:`~repro.service.server.QueryServer` — HTTP for
  request/response (``/v1/query``, ``/v1/prepare``, ``/v1/execute``,
  ``/v1/explain``) plus WebSocket streaming of result pages
  (``/v1/ws``), a Prometheus-style ``/metrics`` endpoint and
  ``/healthz``;
* :class:`~repro.service.pool.TenantPool` — per-tenant ``Database``
  sessions with per-session prepared-statement registries;
* :class:`~repro.service.admission.AdmissionController` — bounded
  in-flight queries with a bounded wait queue (backpressure instead of
  collapse);
* :class:`~repro.service.client.ServiceClient` — the matching client,
  used by ``repro connect`` and the test suite.

Errors cross the wire as structured JSON (``{"error": {"type": ...,
"message": ...}}``) reusing the :mod:`repro.errors` classes, so a
worker crash under the process shard executor degrades to a clean,
typed client error while the server keeps serving.
"""

from repro.service.admission import AdmissionController
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.pool import TenantPool
from repro.service.server import QueryServer

__all__ = [
    "AdmissionController",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryServer",
    "ServiceClient",
    "ServiceConfig",
    "TenantPool",
]
