"""The matching client for the query service (stdlib only).

:class:`ServiceClient` speaks both transports:

* HTTP for request/response — ``query``, ``prepare``, ``execute``,
  ``explain``, ``metrics``, ``health``;
* WebSocket for streaming — :meth:`stream` yields result pages as the
  server sends them, so a million-row result is consumed page by page
  on both sides.

Non-2xx responses carrying the structured error envelope raise
:class:`~repro.errors.RemoteError` with the server-side exception class
name on ``remote_type`` — a client sees a worker crash as
``RemoteError(remote_type="ShardWorkerError")``, typed and catchable,
not as a dead connection.

One client holds one HTTP connection and is **not** thread-safe; give
each thread its own client (they are cheap).
"""

from __future__ import annotations

import base64
import json
import os
import socket
from http.client import HTTPConnection
from typing import Any, Iterator, Mapping, Optional
from urllib.parse import urlparse

from repro.errors import ProtocolError, RemoteError, ServiceError
from repro.service import ws as wsproto

__all__ = ["ServiceClient"]


class ServiceClient:
    """A session against one query server.

    ``url`` is the server base (``http://host:port``); ``tenant`` the
    default tenant for every call (overridable per call).
    """

    def __init__(
        self,
        url: str,
        tenant: str = "default",
        timeout: float = 60.0,
    ) -> None:
        parsed = urlparse(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("http", "ws", ""):
            raise ServiceError(f"unsupported scheme {parsed.scheme!r}")
        if not parsed.hostname or not parsed.port:
            raise ServiceError(f"client needs host:port, got {url!r}")
        self.host = parsed.hostname
        self.port = parsed.port
        self.tenant = tenant
        self.timeout = timeout
        self._conn: Optional[HTTPConnection] = None

    # -- HTTP plumbing -------------------------------------------------- #

    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _request(self, method: str, path: str, payload=None):
        conn = self._connection()
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"} if body else {}
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except OSError:
            # One reconnect: the pooled connection may have been closed
            # by a keep-alive timeout on the server side.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("text/plain"):
            if response.status >= 400:
                raise RemoteError(
                    "HTTPError", raw.decode(errors="replace"), response.status
                )
            return raw.decode()
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise RemoteError(
                "ProtocolError",
                f"server sent a non-JSON body (status {response.status})",
                response.status,
            ) from None
        if response.status >= 400 or (
            isinstance(decoded, dict) and "error" in decoded
        ):
            error = (decoded.get("error") or {}) if isinstance(decoded, dict) else {}
            raise RemoteError(
                error.get("type", "InternalError"),
                error.get("message", f"HTTP {response.status}"),
                response.status,
                error,
            )
        return decoded

    # -- the API -------------------------------------------------------- #

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The raw Prometheus text exposition."""
        return self._request("GET", "/metrics")

    def query(
        self,
        query: str,
        lang: str = "trial",
        params: Optional[Mapping[str, Any]] = None,
        limit: Optional[int] = None,
        offset: int = 0,
        tenant: Optional[str] = None,
    ) -> dict:
        """Run an ad-hoc query; returns ``{rows, total, returned}``."""
        return self._request("POST", "/v1/query", self._payload(
            query=query, lang=lang, params=params, limit=limit,
            offset=offset, tenant=tenant,
        ))

    def prepare(
        self,
        query: str,
        lang: str = "trial",
        tenant: Optional[str] = None,
    ) -> dict:
        """Compile server-side; returns ``{statement, params, ...}``."""
        return self._request("POST", "/v1/prepare", self._payload(
            query=query, lang=lang, tenant=tenant,
        ))

    def execute(
        self,
        statement: str,
        params: Optional[Mapping[str, Any]] = None,
        limit: Optional[int] = None,
        offset: int = 0,
        tenant: Optional[str] = None,
    ) -> dict:
        """Run a prepared statement under a parameter binding."""
        payload = self._payload(
            params=params, limit=limit, offset=offset, tenant=tenant,
        )
        payload["statement"] = statement
        return self._request("POST", "/v1/execute", payload)

    def explain(
        self,
        query: str,
        lang: str = "trial",
        tenant: Optional[str] = None,
    ) -> dict:
        """The structured explain report for a query."""
        return self._request("POST", "/v1/explain", self._payload(
            query=query, lang=lang, tenant=tenant,
        ))

    def _payload(self, **fields) -> dict:
        payload: dict = {}
        for name, value in fields.items():
            if name == "tenant":
                payload["tenant"] = value or self.tenant
            elif name == "params":
                if value:
                    payload["params"] = dict(value)
            elif name == "offset":
                if value:
                    payload["offset"] = value
            elif value is not None:
                payload[name] = value
        return payload

    # -- WebSocket streaming -------------------------------------------- #

    def stream(
        self,
        query: Optional[str] = None,
        lang: str = "trial",
        params: Optional[Mapping[str, Any]] = None,
        page_size: Optional[int] = None,
        tenant: Optional[str] = None,
        statement: Optional[str] = None,
    ) -> Iterator[dict]:
        """Stream one query's result pages over WebSocket.

        Yields the server's page messages (``{"id", "seq", "rows"}``)
        and finally the summary (``{"id", "done": True, "total",
        "pages"}``).  A structured server error raises
        :class:`~repro.errors.RemoteError`.
        """
        request = self._payload(
            query=query, lang=lang, params=params, tenant=tenant,
        )
        if page_size is not None:
            request["page_size"] = page_size
        if statement is not None:
            request["statement"] = statement
            request.pop("lang", None)
        request["id"] = "q1"
        with self._ws_socket() as sock:
            wsproto.send_frame(
                sock,
                wsproto.OP_TEXT,
                json.dumps(request).encode(),
                mask=True,
            )
            while True:
                frame = wsproto.read_frame(
                    sock, max_payload=1 << 30, require_mask=False
                )
                if frame.opcode == wsproto.OP_CLOSE:
                    raise ProtocolError(
                        "server closed the stream before completion"
                    )
                if frame.opcode == wsproto.OP_PING:
                    wsproto.send_frame(
                        sock, wsproto.OP_PONG, frame.payload, mask=True
                    )
                    continue
                message = json.loads(frame.payload.decode("utf-8"))
                if "error" in message:
                    error = message["error"]
                    raise RemoteError(
                        error.get("type", "InternalError"),
                        error.get("message", "stream failed"),
                        payload=error,
                    )
                yield message
                if message.get("done"):
                    wsproto.send_close(sock, 1000, mask=True)
                    return

    def _ws_socket(self) -> socket.socket:
        """A socket with the WebSocket handshake completed."""
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        try:
            key = base64.b64encode(os.urandom(16)).decode()
            handshake = (
                f"GET /v1/ws HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n\r\n"
            )
            sock.sendall(handshake.encode())
            response = _read_http_head(sock)
            status_line = response.split("\r\n", 1)[0]
            if " 101 " not in status_line + " ":
                raise ProtocolError(
                    f"WebSocket upgrade refused: {status_line!r}"
                )
            expected = wsproto.accept_key(key)
            if f"Sec-WebSocket-Accept: {expected}" not in response:
                raise ProtocolError("bad Sec-WebSocket-Accept from server")
            return sock
        except BaseException:
            sock.close()
            raise


def _read_http_head(sock: socket.socket) -> str:
    """Read an HTTP response head (through the blank line)."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(1024)
        if not chunk:
            raise ProtocolError("connection closed during WebSocket handshake")
        data += chunk
        if len(data) > 64 * 1024:
            raise ProtocolError("oversized WebSocket handshake response")
    return data.split(b"\r\n\r\n", 1)[0].decode(errors="replace")
