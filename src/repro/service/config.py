"""Service configuration: one dataclass, env-var overridable.

Every knob has a ``REPRO_SERVICE_*`` environment override (applied by
:meth:`ServiceConfig.from_env`) so a deployment can be tuned without
code; explicit constructor arguments always win.  The same object is
shared by the server, the admission controller and the CLI.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields

from repro.errors import ReproError

__all__ = ["ServiceConfig"]

#: Environment-variable prefix for every override.
_ENV_PREFIX = "REPRO_SERVICE_"

#: field name -> (env suffix, parser)
_ENV_FIELDS = {
    "host": ("HOST", str),
    "port": ("PORT", int),
    "max_inflight": ("MAX_INFLIGHT", int),
    "queue_depth": ("QUEUE_DEPTH", int),
    "queue_timeout": ("QUEUE_TIMEOUT", float),
    "query_timeout": ("TIMEOUT", float),
    "max_body_bytes": ("MAX_BODY", int),
    "page_size": ("PAGE_SIZE", int),
    "max_statements": ("MAX_STATEMENTS", int),
}


@dataclass
class ServiceConfig:
    """Tunables for one :class:`~repro.service.server.QueryServer`.

    Attributes
    ----------
    host, port:
        The bind address.  Port 0 picks an ephemeral port (the bound
        address is on ``QueryServer.address`` after ``start()``).
    max_inflight:
        Queries executing at once, across all tenants.  Requests beyond
        this wait in the admission queue.
    queue_depth:
        Waiting requests tolerated before immediate rejection
        (``queue_full``).  0 disables queueing: a busy server rejects.
    queue_timeout:
        Seconds a request may wait for an execution slot before
        rejection (``queue_timeout``).
    query_timeout:
        Per-query time budget in seconds (``None`` disables).  On the
        process shard executor this is mapped onto the worker pool's
        deadline machinery (``REPRO_SHARD_TIMEOUT``), so expiry aborts
        the workers; on in-process executors the request is abandoned
        with a structured :class:`~repro.errors.QueryTimeoutError`.
    max_body_bytes:
        Largest accepted request body / WebSocket message.
    page_size:
        Default rows per WebSocket streaming page (client-overridable
        per request, capped at 8× this value).
    max_statements:
        Prepared statements retained per tenant before ``prepare``
        is refused.
    """

    host: str = "127.0.0.1"
    port: int = 8377
    max_inflight: int = 8
    queue_depth: int = 32
    queue_timeout: float = 10.0
    query_timeout: float | None = 60.0
    max_body_bytes: int = 4 * 1024 * 1024
    page_size: int = 256
    max_statements: int = 1024

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ReproError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.queue_depth < 0:
            raise ReproError(f"queue_depth must be >= 0, got {self.queue_depth}")
        if self.page_size < 1:
            raise ReproError(f"page_size must be >= 1, got {self.page_size}")
        if self.query_timeout is not None and self.query_timeout <= 0:
            raise ReproError(
                f"query_timeout must be positive (or None), got {self.query_timeout}"
            )

    @classmethod
    def from_env(cls, **overrides) -> "ServiceConfig":
        """A config from ``REPRO_SERVICE_*`` variables; kwargs win."""
        values: dict = {}
        for name, (suffix, parse) in _ENV_FIELDS.items():
            raw = os.environ.get(_ENV_PREFIX + suffix)
            if raw is None:
                continue
            try:
                values[name] = parse(raw)
            except ValueError:
                raise ReproError(
                    f"{_ENV_PREFIX}{suffix} must be a {parse.__name__}, "
                    f"got {raw!r}"
                ) from None
        known = {f.name for f in fields(cls)}
        for name in overrides:
            if name not in known:
                raise ReproError(f"unknown service config field {name!r}")
        values.update(
            {k: v for k, v in overrides.items() if v is not None}
        )
        return cls(**values)
