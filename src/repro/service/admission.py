"""Admission control: bounded in-flight queries, bounded wait queue.

The server must degrade by *refusing* work it cannot start, not by
stacking unbounded threads on the executors.  The controller enforces
two limits:

* ``max_inflight`` — queries executing at once; further arrivals wait;
* ``queue_depth`` — arrivals allowed to wait.  A full queue rejects
  immediately (``queue_full``); a queued arrival whose wait exceeds
  ``queue_timeout`` rejects with ``queue_timeout``.

Both rejections surface as a structured
:class:`~repro.errors.AdmissionRejectedError` (HTTP 429) — the query
never started, so clients may retry with backoff.  Gauges for the
in-flight and queued counts are updated inline so ``/metrics`` shows
saturation as it happens.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.errors import AdmissionRejectedError

__all__ = ["AdmissionController"]


class AdmissionController:
    """A semaphore with a bounded, timed wait queue and live gauges."""

    def __init__(
        self,
        max_inflight: int,
        queue_depth: int,
        queue_timeout: float,
        *,
        inflight_gauge=None,
        queue_gauge=None,
        rejection_counter=None,
    ) -> None:
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.queue_timeout = queue_timeout
        self._slots = threading.Semaphore(max_inflight)
        self._lock = threading.Lock()
        self._inflight = 0
        self._queued = 0
        self._inflight_gauge = inflight_gauge
        self._queue_gauge = queue_gauge
        self._rejections = rejection_counter

    def _reject(self, reason: str, detail: str) -> None:
        if self._rejections is not None:
            self._rejections.labels(reason=reason).inc()
        raise AdmissionRejectedError(reason, detail)

    @contextmanager
    def admit(self):
        """Hold one execution slot for the duration of the block."""
        if not self._slots.acquire(blocking=False):
            with self._lock:
                if self._queued >= self.queue_depth:
                    self._reject(
                        "queue_full",
                        f"server is at {self.max_inflight} in-flight "
                        f"queries with {self._queued} already waiting",
                    )
                self._queued += 1
                if self._queue_gauge is not None:
                    self._queue_gauge.set(self._queued)
            try:
                ok = self._slots.acquire(timeout=self.queue_timeout)
            finally:
                with self._lock:
                    self._queued -= 1
                    if self._queue_gauge is not None:
                        self._queue_gauge.set(self._queued)
            if not ok:
                self._reject(
                    "queue_timeout",
                    f"no execution slot freed up within "
                    f"{self.queue_timeout:g}s",
                )
        with self._lock:
            self._inflight += 1
            if self._inflight_gauge is not None:
                self._inflight_gauge.set(self._inflight)
        try:
            yield
        finally:
            with self._lock:
                self._inflight -= 1
                if self._inflight_gauge is not None:
                    self._inflight_gauge.set(self._inflight)
            self._slots.release()