"""The query server: HTTP request/response + WebSocket streaming.

:class:`QueryServer` serves one :class:`~repro.service.pool.TenantPool`
over a threading HTTP server (stdlib only):

* ``POST /v1/query``    — ad-hoc query in any registered language;
* ``POST /v1/prepare``  — compile once server-side, get a statement id;
* ``POST /v1/execute``  — bind and run a prepared statement;
* ``POST /v1/explain``  — the structured explain report as JSON;
* ``GET  /v1/ws``       — WebSocket: stream result pages;
* ``GET  /metrics``     — Prometheus text exposition;
* ``GET  /healthz``     — liveness.

Execution discipline: every query passes the
:class:`~repro.service.admission.AdmissionController` (bounded
in-flight, bounded queue → structured 429s under overload), runs under
the per-query time budget (a worker thread join; on process-sharded
tenants the budget is *also* mapped onto the worker pool's
``REPRO_SHARD_TIMEOUT`` deadline machinery, so expiry aborts the shard
workers rather than orphaning them), and streams rows off the lazy
:class:`~repro.api.ResultSet` cursor — an HTTP ``limit`` or a WebSocket
page decodes only the rows it returns, never the full result.

Failure discipline: *every* response has a structured JSON body (see
:mod:`repro.service.protocol`), including 500s; a
:class:`~repro.errors.ShardWorkerError` from a crashed worker crosses
the wire typed, and the server keeps serving the next request.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Mapping, Union

from repro.api import get_language
from repro.db import Database
from repro.errors import (
    AdmissionRejectedError,
    PayloadTooLargeError,
    ProtocolError,
    QueryTimeoutError,
    ReproError,
    ShardWorkerError,
)
from repro.service import ws as wsproto
from repro.service.admission import AdmissionController
from repro.service.config import ServiceConfig
from repro.service.metrics import MetricsRegistry
from repro.service.pool import TenantPool, TenantSession
from repro.service.protocol import (
    error_body,
    jsonable_row,
    parse_request,
    status_for,
)

__all__ = ["QueryServer"]

#: Known routes, for the bounded ``route`` metric label.
_ROUTES = {
    "/healthz",
    "/metrics",
    "/v1/query",
    "/v1/prepare",
    "/v1/execute",
    "/v1/explain",
    "/v1/ws",
}


def _status_label(exc: BaseException) -> str:
    """The bounded ``status`` label for the per-query counter."""
    if isinstance(exc, AdmissionRejectedError):
        return "rejected"
    if isinstance(exc, QueryTimeoutError):
        return "timeout"
    if isinstance(exc, ShardWorkerError):
        return "worker_error"
    if isinstance(exc, ProtocolError):
        return "protocol_error"
    return "error"


class QueryServer:
    """A long-running query service over one or more tenant sessions.

    ``tenants`` is either a single :class:`~repro.db.Database` (served
    as tenant ``"default"``) or a mapping of tenant name to session.
    The server owns the sessions: :meth:`stop` closes them (releasing
    any shared-memory segments of process-sharded tenants).

    Usage::

        server = QueryServer(Database(store), ServiceConfig(port=0))
        server.start()
        ...  # server.url is the base URL
        server.stop()
    """

    def __init__(
        self,
        tenants: Union[Database, Mapping[str, Database]],
        config: ServiceConfig | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        if isinstance(tenants, Database):
            tenants = {"default": tenants}
        self.pool = TenantPool(
            tenants, max_statements=self.config.max_statements
        )
        # Per-query budget → the shard worker pool's deadline machinery,
        # so a timeout on a process-sharded tenant aborts the workers.
        for session in self.pool:
            engine = session.db.engine
            if getattr(engine, "executor", None) == "process":
                if getattr(engine, "query_timeout", None) is None:
                    engine.query_timeout = self.config.query_timeout
        self.registry = MetricsRegistry()
        self._build_metrics()
        self.admission = AdmissionController(
            self.config.max_inflight,
            self.config.queue_depth,
            self.config.queue_timeout,
            inflight_gauge=self._m_inflight,
            queue_gauge=self._m_queued,
            rejection_counter=self._m_rejections,
        )
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #

    def _build_metrics(self) -> None:
        r = self.registry
        self._m_http = r.counter(
            "repro_http_requests_total",
            "HTTP requests served, by route and status code.",
            ("route", "status"),
        )
        self._m_queries = r.counter(
            "repro_queries_total",
            "Queries executed, by tenant, language and outcome.",
            ("tenant", "lang", "status"),
        )
        self._m_latency = r.histogram(
            "repro_query_seconds",
            "Query latency in seconds (admission wait included).",
        )
        self._m_inflight = r.gauge(
            "repro_admission_inflight",
            "Queries executing right now.",
        )
        self._m_queued = r.gauge(
            "repro_admission_queued",
            "Queries waiting for an execution slot.",
        )
        self._m_rejections = r.counter(
            "repro_admission_rejections_total",
            "Queries refused by admission control, by reason.",
            ("reason",),
        )
        # Pre-create the rejection reasons so the exposition names them
        # at zero — dashboards should not discover label values late.
        self._m_rejections.labels(reason="queue_full")
        self._m_rejections.labels(reason="queue_timeout")
        self._m_ws_conns = r.gauge(
            "repro_ws_connections",
            "Open WebSocket connections.",
        )
        self._m_ws_pages = r.counter(
            "repro_ws_pages_total",
            "Result pages streamed over WebSocket.",
        )
        self._m_cache = r.counter(
            "repro_cache_events_total",
            "Session cache hits/misses, by tenant and cache "
            "(mirrors Database.cache_info at scrape time).",
            ("tenant", "cache", "event"),
        )
        self._m_statements = r.gauge(
            "repro_prepared_statements",
            "Prepared statements held, by tenant.",
            ("tenant",),
        )
        self._m_tenant_info = r.gauge(
            "repro_tenant_info",
            "One series per tenant: backend and shard executor.",
            ("tenant", "backend", "executor"),
        )
        self._m_shard_workers = r.gauge(
            "repro_shard_workers",
            "Shard worker processes serving the tenant (0 = in-process).",
            ("tenant",),
        )
        for session in self.pool:
            engine = session.db.engine
            executor = getattr(engine, "executor", None) or "inline"
            self._m_tenant_info.labels(
                tenant=session.name,
                backend=session.db.backend,
                executor=executor,
            ).set(1)
            workers = (
                engine.worker_count() if executor == "process" else 0
            )
            self._m_shard_workers.labels(tenant=session.name).set(workers)

    def _refresh_metrics(self) -> None:
        """Pull scrape-time values from the tenant sessions."""
        for session in self.pool:
            info = session.db.cache_info()
            for cache, counters in info.items():
                for event, value in (
                    ("hit", counters.hits),
                    ("miss", counters.misses),
                ):
                    self._m_cache.labels(
                        tenant=session.name, cache=cache, event=event
                    ).set_total(value)
            self._m_statements.labels(tenant=session.name).set(
                session.statement_count()
            )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "QueryServer":
        """Bind and serve in a background thread; returns self."""
        if self._httpd is not None:
            raise ReproError("server is already running")
        handler = type("_BoundHandler", (_Handler,), {"qs": self})
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves ephemeral port requests."""
        if self._httpd is None:
            raise ReproError("server is not running")
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def stop(self) -> None:
        """Stop serving and close every tenant session (idempotent)."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
            if self._thread is not None:
                self._thread.join(timeout=5.0)
                self._thread = None
        self.pool.close()

    def __enter__(self) -> "QueryServer":
        return self.start() if self._httpd is None else self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------ #
    # Query execution (shared by HTTP and WebSocket)
    # ------------------------------------------------------------------ #

    def _run_with_budget(self, fn):
        """Run ``fn`` under the per-query time budget.

        The budget is enforced by joining a worker thread: on expiry the
        request is answered with a structured
        :class:`~repro.errors.QueryTimeoutError` while the worker drains
        in the background (on process-sharded tenants the mapped shard
        deadline also aborts the workers, so nothing keeps computing).
        """
        timeout = self.config.query_timeout
        if timeout is None:
            return fn()
        box: dict = {}
        done = threading.Event()

        def target() -> None:
            try:
                box["value"] = fn()
            except BaseException as exc:  # reported, not swallowed
                box["error"] = exc
            finally:
                done.set()

        worker = threading.Thread(target=target, daemon=True)
        worker.start()
        if not done.wait(timeout):
            raise QueryTimeoutError(timeout)
        if "error" in box:
            raise box["error"]
        return box["value"]

    def _render_rows(self, rs, lang: str, limit, offset: int) -> dict:
        """Serialize one window of a result, decoding only that window."""
        if get_language(lang).pairs:
            pairs = sorted(rs.pairs(), key=repr)
            total = len(pairs)
            stop = total if limit is None else offset + limit
            rows = [jsonable_row(p) for p in pairs[offset:stop]]
        else:
            total = rs.total
            window = rs.offset(offset) if offset else rs
            if limit is not None:
                window = window.limit(limit)
            rows = [jsonable_row(t) for t in window]
        return {"rows": rows, "total": total, "returned": len(rows)}

    def _execute_request(self, req: dict) -> dict:
        """The full admission → budget → execute → serialize path."""
        session = self.pool.session(req["tenant"])
        lang = req["lang"]
        started = perf_counter()
        try:
            with self.admission.admit():
                payload = self._run_with_budget(
                    lambda: self._do_execute(session, req)
                )
        except BaseException as exc:
            self._m_queries.labels(
                tenant=req["tenant"], lang=lang, status=_status_label(exc)
            ).inc()
            raise
        finally:
            self._m_latency.observe(perf_counter() - started)
        self._m_queries.labels(
            tenant=req["tenant"], lang=lang, status="ok"
        ).inc()
        return payload

    def _do_execute(self, session: TenantSession, req: dict) -> dict:
        if req["statement"] is not None:
            stmt = session.statement(req["statement"])
            rs = stmt.execute(**req["params"])
            lang = stmt.lang
            warnings = self._analysis_warnings(session, stmt.expr, "trial")
        else:
            rs = session.db.query(
                req["query"], lang=req["lang"], **req["params"]
            )
            lang = req["lang"]
            warnings = self._analysis_warnings(session, req["query"], lang)
        payload = self._render_rows(rs, lang, req["limit"], req["offset"])
        if warnings:
            payload["analysis"] = warnings
        return payload

    @staticmethod
    def _analysis_warnings(session: TenantSession, query, lang: str) -> list:
        """Non-fatal semantic-analyzer findings for a query envelope.

        Advisory only — an analyzer failure must never fail a query
        that executed, so everything is swallowed here.
        """
        try:
            return [f.to_dict() for f in session.db.analyze(query, lang)]
        except Exception:
            return []

    # -- non-query endpoints ------------------------------------------- #

    def _prepare(self, req: dict) -> dict:
        if req["query"] is None:
            raise ProtocolError("prepare needs a 'query' field")
        session = self.pool.session(req["tenant"])
        sid, stmt = session.prepare(req["query"], req["lang"])
        return {
            "statement": sid,
            "tenant": req["tenant"],
            "lang": req["lang"],
            "params": list(stmt.params),
        }

    def _explain(self, req: dict) -> dict:
        if req["query"] is None:
            raise ProtocolError("explain needs a 'query' field")
        session = self.pool.session(req["tenant"])
        return session.db.explain_report(
            req["query"], lang=req["lang"]
        ).to_dict()

    # -- WebSocket streaming ------------------------------------------- #

    def _stream_query(self, session: TenantSession, req: dict):
        """Yield response messages for one WebSocket query request.

        Admission and the time budget cover query execution; the page
        loop after it is client-paced and decodes one page at a time
        off the lazy cursor.
        """
        page_size = req["page_size"] or self.config.page_size
        page_size = min(page_size, self.config.page_size * 8)
        qid = req["id"]
        stmt = None
        if req["statement"] is not None:
            stmt = session.statement(req["statement"])
        lang = stmt.lang if stmt is not None else req["lang"]
        with self.admission.admit():
            rs = self._run_with_budget(
                lambda: stmt.execute(**req["params"])
                if stmt is not None
                else session.db.query(
                    req["query"], lang=req["lang"], **req["params"]
                )
            )
        if get_language(lang).pairs:
            rows = [jsonable_row(p) for p in sorted(rs.pairs(), key=repr)]
            total = len(rows)
            pages = [
                rows[i : i + page_size] for i in range(0, total, page_size)
            ]
            for seq, page in enumerate(pages):
                self._m_ws_pages.inc()
                yield {"id": qid, "seq": seq, "rows": page}
            npages = len(pages)
        else:
            total = rs.total
            npages = 0
            for seq, page in enumerate(rs.pages(page_size)):
                self._m_ws_pages.inc()
                yield {
                    "id": qid,
                    "seq": seq,
                    "rows": [jsonable_row(t) for t in page],
                }
                npages += 1
        yield {"id": qid, "done": True, "total": total, "pages": npages}


# --------------------------------------------------------------------- #
# The request handler
# --------------------------------------------------------------------- #


class _Handler(BaseHTTPRequestHandler):
    """One HTTP connection; ``qs`` is bound per server via a subclass."""

    qs: QueryServer
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"
    #: Socket timeout: a stalled peer (e.g. a deliberately truncated
    #: body) cannot pin a handler thread forever.
    timeout = 60.0

    # -- plumbing ------------------------------------------------------- #

    def log_message(self, format: str, *args) -> None:
        """Silence the default stderr access log (metrics cover it)."""

    def _route_label(self, path: str) -> str:
        return path if path in _ROUTES else "other"

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _finish(self, path: str, status: int, payload: dict) -> None:
        self.qs._m_http.labels(
            route=self._route_label(path), status=str(status)
        ).inc()
        self._respond(status, payload)

    def _read_body(self) -> bytes:
        length = self.headers.get("Content-Length")
        if length is None:
            raise ProtocolError("request needs a Content-Length header")
        try:
            length = int(length)
        except ValueError:
            raise ProtocolError("Content-Length must be an integer") from None
        limit = self.qs.config.max_body_bytes
        if length > limit:
            # Not draining the oversized body; the connection dies with
            # the response.
            self.close_connection = True
            raise PayloadTooLargeError(length, limit)
        return self.rfile.read(length)

    def _decode_json(self, raw: bytes):
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from None

    # -- dispatch ------------------------------------------------------- #

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        try:
            if self.path == "/healthz":
                self._finish(
                    self.path,
                    200,
                    {"status": "ok", "tenants": self.qs.pool.names()},
                )
            elif self.path == "/metrics":
                self.qs._refresh_metrics()
                self.qs._m_http.labels(route="/metrics", status="200").inc()
                self._respond_text(
                    200,
                    self.qs.registry.expose(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif self.path == "/v1/ws":
                self._websocket()
            else:
                self._finish(
                    self.path,
                    404,
                    error_body(ProtocolError(f"no such route: {self.path}")),
                )
        except Exception as exc:  # never crash the connection thread
            self._safe_error(exc)

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        path = self.path
        try:
            if path not in ("/v1/query", "/v1/prepare", "/v1/execute",
                            "/v1/explain"):
                self._finish(
                    path,
                    404,
                    error_body(ProtocolError(f"no such route: {path}")),
                )
                return
            payload = self._decode_json(self._read_body())
            req = parse_request(
                payload, require_query=(path != "/v1/execute")
            )
            if path == "/v1/query":
                body = self.qs._execute_request(req)
            elif path == "/v1/execute":
                if req["statement"] is None:
                    raise ProtocolError("execute needs a 'statement' field")
                body = self.qs._execute_request(req)
            elif path == "/v1/prepare":
                body = self.qs._prepare(req)
            else:
                body = self.qs._explain(req)
            self._finish(path, 200, body)
        except Exception as exc:
            self._safe_error(exc)

    def do_PUT(self) -> None:  # noqa: N802
        self._method_not_allowed()

    def do_DELETE(self) -> None:  # noqa: N802
        self._method_not_allowed()

    def _method_not_allowed(self) -> None:
        self._finish(
            self.path,
            405,
            error_body(ProtocolError(f"method {self.command} not allowed")),
        )

    def _safe_error(self, exc: Exception) -> None:
        """Answer any failure with a structured body, best effort."""
        try:
            self._finish(self.path, status_for(exc), error_body(exc))
        except OSError:
            self.close_connection = True

    # -- the WebSocket endpoint ---------------------------------------- #

    def _websocket(self) -> None:
        key = self.headers.get("Sec-WebSocket-Key")
        upgrade = (self.headers.get("Upgrade") or "").lower()
        if upgrade != "websocket" or not key:
            self._finish(
                self.path,
                400,
                error_body(
                    ProtocolError(
                        "/v1/ws needs a WebSocket upgrade "
                        "(Upgrade/Sec-WebSocket-Key headers)"
                    )
                ),
            )
            return
        self.send_response(101, "Switching Protocols")
        self.send_header("Upgrade", "websocket")
        self.send_header("Connection", "Upgrade")
        self.send_header("Sec-WebSocket-Accept", wsproto.accept_key(key))
        self.end_headers()
        self.wfile.flush()
        self.close_connection = True
        self.qs._m_http.labels(route="/v1/ws", status="101").inc()
        self.qs._m_ws_conns.inc()
        try:
            self._ws_loop()
        finally:
            self.qs._m_ws_conns.dec()

    def _ws_loop(self) -> None:
        sock = self.connection
        limit = self.qs.config.max_body_bytes
        while True:
            try:
                frame = wsproto.read_frame(
                    sock, max_payload=limit, require_mask=True
                )
            except PayloadTooLargeError:
                wsproto.send_close(sock, 1009, "frame too large", mask=False)
                return
            except (ProtocolError, OSError):
                # Truncated/garbled frame or a vanished peer: close the
                # transport — there is no frame boundary to recover to.
                wsproto.send_close(sock, 1002, "protocol error", mask=False)
                return
            if frame.opcode == wsproto.OP_CLOSE:
                wsproto.send_close(sock, 1000, mask=False)
                return
            if frame.opcode == wsproto.OP_PING:
                wsproto.send_frame(
                    sock, wsproto.OP_PONG, frame.payload, mask=False
                )
                continue
            if frame.opcode != wsproto.OP_TEXT or not frame.fin:
                wsproto.send_close(
                    sock, 1003, "expected single text frames", mask=False
                )
                return
            try:
                self._ws_message(sock, frame.payload)
            except OSError:
                return  # peer went away mid-stream

    def _ws_message(self, sock, payload: bytes) -> None:
        """One query request message → a stream of page messages.

        Application errors (bad query, unknown tenant, worker death,
        timeout, admission rejection) answer with a structured error
        *message* and keep the connection open; only transport-level
        violations close it.
        """
        qid = None
        try:
            decoded = json.loads(payload.decode("utf-8"))
            if isinstance(decoded, dict):
                qid = decoded.get("id")
            req = parse_request(decoded)
            session = self.qs.pool.session(req["tenant"])
            started = perf_counter()
            try:
                for message in self.qs._stream_query(session, req):
                    wsproto.send_frame(
                        sock,
                        wsproto.OP_TEXT,
                        json.dumps(message).encode(),
                        mask=False,
                    )
            except BaseException as exc:
                self.qs._m_queries.labels(
                    tenant=req["tenant"],
                    lang=req["lang"],
                    status=_status_label(exc),
                ).inc()
                raise
            finally:
                self.qs._m_latency.observe(perf_counter() - started)
            self.qs._m_queries.labels(
                tenant=req["tenant"], lang=req["lang"], status="ok"
            ).inc()
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._ws_error(sock, qid, ProtocolError(f"bad JSON message: {exc}"))
        except OSError:
            raise
        except Exception as exc:
            self._ws_error(sock, qid, exc)

    def _ws_error(self, sock, qid, exc: Exception) -> None:
        body = error_body(exc)
        body["id"] = qid
        try:
            wsproto.send_frame(
                sock, wsproto.OP_TEXT, json.dumps(body).encode(), mask=False
            )
        except OSError:
            pass
