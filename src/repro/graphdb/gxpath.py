"""GXPath — graph XPath with path complement and data tests (§6.2).

Node formulas::

    ϕ, ψ := ⊤ | ¬ϕ | ϕ∧ψ | ϕ∨ψ | ⟨α⟩ | ⟨α = β⟩ | ⟨α ≠ β⟩

Path formulas::

    α, β := ε | a | a⁻ | [ϕ] | α·β | α∪β | ᾱ | α* | α₌ | α₍≠₎

The semantics follows the paper (and Libkin–Martens–Vrgoč): node
formulas denote sets of nodes, path formulas sets of node pairs; the
complement ``ᾱ`` is taken w.r.t. V × V; ``α*`` is the
reflexive-transitive closure (it contains the diagonal); ``α₌``
keeps the pairs of α whose endpoints carry equal data values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import GraphError
from repro.graphdb.model import GraphDB, Node


class NodeExpr:
    """Base class of node formulas."""

    __slots__ = ()

    def __and__(self, other: "NodeExpr") -> "NodeAnd":
        return NodeAnd(self, other)

    def __or__(self, other: "NodeExpr") -> "NodeOr":
        return NodeOr(self, other)

    def __invert__(self) -> "NodeNot":
        return NodeNot(self)

    def walk(self) -> Iterator[object]:
        yield self
        for child in getattr(self, "children", lambda: ())():
            yield from child.walk()


class PathExpr:
    """Base class of path formulas."""

    __slots__ = ()

    def __mul__(self, other: "PathExpr") -> "Concat":
        return Concat(self, other)

    def __or__(self, other: "PathExpr") -> "PathUnion":
        return PathUnion(self, other)

    def walk(self) -> Iterator[object]:
        yield self
        for child in getattr(self, "children", lambda: ())():
            yield from child.walk()


# -- node formulas ------------------------------------------------------ #

@dataclass(frozen=True, repr=False)
class Top(NodeExpr):
    def __repr__(self) -> str:
        return "⊤"


@dataclass(frozen=True, repr=False)
class NodeNot(NodeExpr):
    inner: NodeExpr

    def children(self) -> tuple:
        return (self.inner,)

    def __repr__(self) -> str:
        return f"¬{self.inner!r}"


@dataclass(frozen=True, repr=False)
class NodeAnd(NodeExpr):
    left: NodeExpr
    right: NodeExpr

    def children(self) -> tuple:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r}∧{self.right!r})"


@dataclass(frozen=True, repr=False)
class NodeOr(NodeExpr):
    left: NodeExpr
    right: NodeExpr

    def children(self) -> tuple:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r}∨{self.right!r})"


@dataclass(frozen=True, repr=False)
class HasPath(NodeExpr):
    """``⟨α⟩`` — nodes with an outgoing α-pair."""

    path: PathExpr

    def children(self) -> tuple:
        return (self.path,)

    def __repr__(self) -> str:
        return f"⟨{self.path!r}⟩"


@dataclass(frozen=True, repr=False)
class DataNodeTest(NodeExpr):
    """``⟨α = β⟩`` / ``⟨α ≠ β⟩`` — XPath-style data comparison."""

    left: PathExpr
    right: PathExpr
    equal: bool = True

    def children(self) -> tuple:
        return (self.left, self.right)

    def __repr__(self) -> str:
        op = "=" if self.equal else "≠"
        return f"⟨{self.left!r} {op} {self.right!r}⟩"


# -- path formulas ------------------------------------------------------ #

@dataclass(frozen=True, repr=False)
class Eps(PathExpr):
    def __repr__(self) -> str:
        return "ε"


@dataclass(frozen=True, repr=False)
class Axis(PathExpr):
    """A forward (``a``) or backward (``a⁻``) edge step."""

    label: str
    forward: bool = True

    def __repr__(self) -> str:
        return self.label if self.forward else f"{self.label}⁻"


@dataclass(frozen=True, repr=False)
class Test(PathExpr):
    """``[ϕ]`` — the diagonal restricted to nodes satisfying ϕ."""

    #: Keep pytest from collecting this class as a test case.
    __test__ = False

    node: NodeExpr

    def children(self) -> tuple:
        return (self.node,)

    def __repr__(self) -> str:
        return f"[{self.node!r}]"


@dataclass(frozen=True, repr=False)
class Concat(PathExpr):
    left: PathExpr
    right: PathExpr

    def children(self) -> tuple:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r}·{self.right!r})"


@dataclass(frozen=True, repr=False)
class PathUnion(PathExpr):
    left: PathExpr
    right: PathExpr

    def children(self) -> tuple:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r}∪{self.right!r})"


@dataclass(frozen=True, repr=False)
class PathComplement(PathExpr):
    """``ᾱ`` — V × V minus α."""

    inner: PathExpr

    def children(self) -> tuple:
        return (self.inner,)

    def __repr__(self) -> str:
        return f"compl({self.inner!r})"


@dataclass(frozen=True, repr=False)
class StarPath(PathExpr):
    """``α*`` — reflexive-transitive closure."""

    inner: PathExpr

    def children(self) -> tuple:
        return (self.inner,)

    def __repr__(self) -> str:
        return f"{self.inner!r}*"


@dataclass(frozen=True, repr=False)
class DataPathTest(PathExpr):
    """``α₌`` / ``α₍≠₎`` — endpoint data comparison (regexes with equality)."""

    inner: PathExpr
    equal: bool = True

    def children(self) -> tuple:
        return (self.inner,)

    def __repr__(self) -> str:
        return f"{self.inner!r}{'₌' if self.equal else '≠'}"


def uses_data(expr: PathExpr | NodeExpr) -> bool:
    """Does the expression belong to GXPath(∼) proper (data tests used)?"""
    return any(isinstance(n, (DataPathTest, DataNodeTest)) for n in expr.walk())


# -- evaluation ---------------------------------------------------------- #

def _transitive_closure(
    pairs: frozenset[tuple[Node, Node]], nodes: frozenset[Node]
) -> frozenset[tuple[Node, Node]]:
    succ: dict[Node, set[Node]] = {}
    for u, v in pairs:
        succ.setdefault(u, set()).add(v)
    closure: set[tuple[Node, Node]] = {(v, v) for v in nodes}
    for source in nodes:
        seen: set[Node] = set()
        frontier = set(succ.get(source, ()))
        while frontier:
            seen |= frontier
            frontier = {
                w for v in frontier for w in succ.get(v, ()) if w not in seen
            }
        closure.update((source, v) for v in seen)
    return frozenset(closure)


class GXPathEvaluator:
    """Evaluates node and path formulas over one graph, with memoisation."""

    def __init__(self, graph: GraphDB) -> None:
        self.graph = graph
        self._node_cache: dict[NodeExpr, frozenset[Node]] = {}
        self._path_cache: dict[PathExpr, frozenset[tuple[Node, Node]]] = {}

    # -- node formulas ------------------------------------------------- #

    def nodes(self, expr: NodeExpr) -> frozenset[Node]:
        cached = self._node_cache.get(expr)
        if cached is not None:
            return cached
        result = self._nodes(expr)
        self._node_cache[expr] = result
        return result

    def _nodes(self, expr: NodeExpr) -> frozenset[Node]:
        g = self.graph
        if isinstance(expr, Top):
            return g.nodes
        if isinstance(expr, NodeNot):
            return g.nodes - self.nodes(expr.inner)
        if isinstance(expr, NodeAnd):
            return self.nodes(expr.left) & self.nodes(expr.right)
        if isinstance(expr, NodeOr):
            return self.nodes(expr.left) | self.nodes(expr.right)
        if isinstance(expr, HasPath):
            return frozenset(u for u, _ in self.pairs(expr.path))
        if isinstance(expr, DataNodeTest):
            left = self.pairs(expr.left)
            right = self.pairs(expr.right)
            left_vals: dict[Node, set] = {}
            for u, v in left:
                left_vals.setdefault(u, set()).add(g.rho(v))
            right_vals: dict[Node, set] = {}
            for u, v in right:
                right_vals.setdefault(u, set()).add(g.rho(v))
            out = set()
            for u in left_vals.keys() & right_vals.keys():
                lv, rv = left_vals[u], right_vals[u]
                if expr.equal:
                    if lv & rv:
                        out.add(u)
                else:
                    if len(lv) > 1 or len(rv) > 1 or lv != rv:
                        out.add(u)
            return frozenset(out)
        raise GraphError(f"unknown node formula {type(expr).__name__}")

    # -- path formulas --------------------------------------------------- #

    def pairs(self, expr: PathExpr) -> frozenset[tuple[Node, Node]]:
        cached = self._path_cache.get(expr)
        if cached is not None:
            return cached
        result = self._pairs(expr)
        self._path_cache[expr] = result
        return result

    def _pairs(self, expr: PathExpr) -> frozenset[tuple[Node, Node]]:
        g = self.graph
        if isinstance(expr, Eps):
            return frozenset((v, v) for v in g.nodes)
        if isinstance(expr, Axis):
            pairs = g.label_pairs(expr.label)
            if expr.forward:
                return pairs
            return frozenset((v, u) for u, v in pairs)
        if isinstance(expr, Test):
            return frozenset((v, v) for v in self.nodes(expr.node))
        if isinstance(expr, Concat):
            left = self.pairs(expr.left)
            right = self.pairs(expr.right)
            by_source: dict[Node, set[Node]] = {}
            for u, v in right:
                by_source.setdefault(u, set()).add(v)
            return frozenset(
                (u, w) for u, v in left for w in by_source.get(v, ())
            )
        if isinstance(expr, PathUnion):
            return self.pairs(expr.left) | self.pairs(expr.right)
        if isinstance(expr, PathComplement):
            return g.all_pairs() - self.pairs(expr.inner)
        if isinstance(expr, StarPath):
            return _transitive_closure(self.pairs(expr.inner), g.nodes)
        if isinstance(expr, DataPathTest):
            pairs = self.pairs(expr.inner)
            if expr.equal:
                return frozenset((u, v) for u, v in pairs if g.rho(u) == g.rho(v))
            return frozenset((u, v) for u, v in pairs if g.rho(u) != g.rho(v))
        raise GraphError(f"unknown path formula {type(expr).__name__}")


def evaluate_gxpath(graph: GraphDB, expr: PathExpr) -> frozenset[tuple[Node, Node]]:
    """Evaluate a path formula over a graph."""
    return GXPathEvaluator(graph).pairs(expr)


def evaluate_gxpath_nodes(graph: GraphDB, expr: NodeExpr) -> frozenset[Node]:
    """Evaluate a node formula over a graph."""
    return GXPathEvaluator(graph).nodes(expr)
