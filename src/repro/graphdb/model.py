"""Graph databases (Section 2.1): edge-labelled graphs with data values.

``G = (V, E, ρ)`` where ``E ⊆ V × Σ × V`` and ``ρ : V → D``.  The class
also records the finite alphabet Σ explicitly (it may include labels not
currently used by any edge, which matters for complement semantics in
GXPath only through *edges*, and for the encoding into triplestores).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from typing import Any

from repro.errors import GraphError
from repro.triplestore.model import Triplestore

Node = Hashable
Edge = tuple[Any, str, Any]


class GraphDB:
    """An edge-labelled graph with optional data values on nodes."""

    __slots__ = ("nodes", "edges", "sigma", "_rho", "_fwd", "_bwd")

    def __init__(
        self,
        nodes: Iterable[Node],
        edges: Iterable[Edge],
        rho: Mapping[Node, Any] | None = None,
        sigma: Iterable[str] | None = None,
    ) -> None:
        self.nodes: frozenset[Node] = frozenset(nodes)
        edge_set = frozenset((u, str(a), v) for u, a, v in edges)
        for u, a, v in edge_set:
            if u not in self.nodes or v not in self.nodes:
                raise GraphError(f"edge ({u!r}, {a!r}, {v!r}) uses unknown nodes")
        self.edges: frozenset[Edge] = edge_set
        labels = {a for _, a, _ in edge_set}
        if sigma is not None:
            sigma = frozenset(str(s) for s in sigma)
            if not labels <= sigma:
                raise GraphError(f"edges use labels outside sigma: {labels - sigma}")
            self.sigma = sigma
        else:
            self.sigma = frozenset(labels)
        self._rho: dict[Node, Any] = dict(rho or {})
        self._fwd: dict[tuple[Node, str], set[Node]] = {}
        self._bwd: dict[tuple[Node, str], set[Node]] = {}
        for u, a, v in edge_set:
            self._fwd.setdefault((u, a), set()).add(v)
            self._bwd.setdefault((v, a), set()).add(u)

    # ------------------------------------------------------------------ #

    def rho(self, node: Node) -> Any:
        """Data value of a node (None when unassigned)."""
        return self._rho.get(node)

    def rho_map(self) -> dict[Node, Any]:
        return dict(self._rho)

    def successors(self, node: Node, label: str) -> frozenset[Node]:
        """Targets of ``label``-edges out of ``node``."""
        return frozenset(self._fwd.get((node, label), ()))

    def predecessors(self, node: Node, label: str) -> frozenset[Node]:
        """Sources of ``label``-edges into ``node``."""
        return frozenset(self._bwd.get((node, label), ()))

    def label_pairs(self, label: str) -> frozenset[tuple[Node, Node]]:
        """All (u, v) with a ``label``-edge."""
        return frozenset((u, v) for u, a, v in self.edges if a == label)

    def all_pairs(self) -> frozenset[tuple[Node, Node]]:
        """V × V — the complement universe for GXPath path negation."""
        return frozenset((u, v) for u in self.nodes for v in self.nodes)

    def __len__(self) -> int:
        return len(self.edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphDB):
            return NotImplemented
        return (
            self.nodes == other.nodes
            and self.edges == other.edges
            and self._rho == other._rho
            and self.sigma == other.sigma
        )

    def __hash__(self) -> int:
        return hash((self.nodes, self.edges, frozenset(self._rho.items()), self.sigma))

    def __repr__(self) -> str:
        return f"GraphDB(|V|={len(self.nodes)}, |E|={len(self.edges)}, Σ={sorted(self.sigma)})"

    # ------------------------------------------------------------------ #

    def to_triplestore(self, relation: str = "E") -> Triplestore:
        """The paper's encoding T_G (Section 6.2): O = V ∪ Σ.

        Each edge (u, a, v) becomes the triple (u, a, v); node data
        values are carried over (labels get none).  Isolated nodes are
        preserved through ``extra_objects``.
        """
        overlap = self.nodes & self.sigma
        if overlap:
            raise GraphError(
                f"nodes and labels must be disjoint for the T_G encoding: {overlap}"
            )
        return Triplestore(
            {relation: self.edges},
            rho=self._rho,
            extra_objects=self.nodes | self.sigma,
        )
