"""Nested regular expressions (NREs), Section 2.1.

Grammar::

    e := ε | a | a⁻ | e·e | e* | e+e | [e]

The nesting operator ``[e]`` is the XPath-style node test: pairs (u, u)
such that (u, v) is in the semantics of e for some v.  NREs embed into
GXPath's positive fragment; we provide both a native evaluator (used by
nSPARQL over RDF encodings) and the embedding (used by the translation
to TriAL*).

A compact text syntax is provided::

    parse_nre("next.[edge.part_of].next*")
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ParseError
from repro.graphdb import gxpath
from repro.graphdb.model import GraphDB, Node


class Nre:
    """Base class of nested regular expressions."""

    __slots__ = ()

    def walk(self) -> Iterator["Nre"]:
        yield self
        for child in getattr(self, "children", lambda: ())():
            yield from child.walk()


@dataclass(frozen=True, repr=False)
class NEps(Nre):
    def __repr__(self) -> str:
        return "ε"


@dataclass(frozen=True, repr=False)
class NLabel(Nre):
    label: str
    forward: bool = True

    def __repr__(self) -> str:
        return self.label if self.forward else f"{self.label}⁻"


@dataclass(frozen=True, repr=False)
class NConcat(Nre):
    left: Nre
    right: Nre

    def children(self) -> tuple:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r}.{self.right!r})"


@dataclass(frozen=True, repr=False)
class NAlt(Nre):
    left: Nre
    right: Nre

    def children(self) -> tuple:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r}+{self.right!r})"


@dataclass(frozen=True, repr=False)
class NStar(Nre):
    inner: Nre

    def children(self) -> tuple:
        return (self.inner,)

    def __repr__(self) -> str:
        return f"{self.inner!r}*"


@dataclass(frozen=True, repr=False)
class NTest(Nre):
    """``[e]`` — nodes with an outgoing e-path, as a diagonal relation."""

    inner: Nre

    def children(self) -> tuple:
        return (self.inner,)

    def __repr__(self) -> str:
        return f"[{self.inner!r}]"


def nre_to_gxpath(expr: Nre) -> gxpath.PathExpr:
    """Embed an NRE into GXPath's positive fragment.

    ``[e]`` becomes ``[⟨e⟩]`` (a node-test of a has-path formula); the
    star becomes GXPath's reflexive-transitive star, matching the NRE
    convention that ``e*`` includes the empty path.
    """
    if isinstance(expr, NEps):
        return gxpath.Eps()
    if isinstance(expr, NLabel):
        return gxpath.Axis(expr.label, expr.forward)
    if isinstance(expr, NConcat):
        return gxpath.Concat(nre_to_gxpath(expr.left), nre_to_gxpath(expr.right))
    if isinstance(expr, NAlt):
        return gxpath.PathUnion(nre_to_gxpath(expr.left), nre_to_gxpath(expr.right))
    if isinstance(expr, NStar):
        return gxpath.StarPath(nre_to_gxpath(expr.inner))
    if isinstance(expr, NTest):
        return gxpath.Test(gxpath.HasPath(nre_to_gxpath(expr.inner)))
    raise TypeError(f"unknown NRE node {type(expr).__name__}")


def evaluate_nre(graph: GraphDB, expr: Nre) -> frozenset[tuple[Node, Node]]:
    """Evaluate an NRE over a graph database (binary relation on V)."""
    return gxpath.evaluate_gxpath(graph, nre_to_gxpath(expr))


# --------------------------------------------------------------------- #
# Text syntax
# --------------------------------------------------------------------- #

_LABEL_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*|'[^']*'")


class _NreParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def _skip(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self) -> str:
        self._skip()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def parse(self) -> Nre:
        node = self.alt()
        self._skip()
        if self.pos != len(self.text):
            raise ParseError("trailing NRE input", self.text, self.pos)
        return node

    def alt(self) -> Nre:
        node = self.concat()
        while self._peek() == "+":
            self.pos += 1
            node = NAlt(node, self.concat())
        return node

    def concat(self) -> Nre:
        node = self.postfix()
        while self._peek() == ".":
            self.pos += 1
            node = NConcat(node, self.postfix())
        return node

    def postfix(self) -> Nre:
        node = self.atom()
        while True:
            ch = self._peek()
            if ch == "*":
                self.pos += 1
                node = NStar(node)
            elif ch == "-" and isinstance(node, NLabel) and node.forward:
                self.pos += 1
                node = NLabel(node.label, forward=False)
            else:
                return node

    def atom(self) -> Nre:
        self._skip()
        ch = self._peek()
        if ch == "(":
            self.pos += 1
            if self._peek() == ")":
                self.pos += 1
                return NEps()
            node = self.alt()
            if self._peek() != ")":
                raise ParseError("expected ')'", self.text, self.pos)
            self.pos += 1
            return node
        if ch == "[":
            self.pos += 1
            node = self.alt()
            if self._peek() != "]":
                raise ParseError("expected ']'", self.text, self.pos)
            self.pos += 1
            return NTest(node)
        m = _LABEL_RE.match(self.text, self.pos)
        if not m:
            raise ParseError("expected a label", self.text, self.pos)
        self.pos = m.end()
        label = m.group()
        if label.startswith("'"):
            label = label[1:-1]
        return NLabel(label)


def parse_nre(text: str) -> Nre:
    """Parse the NRE text syntax.

    >>> parse_nre("next.[edge.a].next*")
    ((next.[(edge.a)]).next*)
    """
    return _NreParser(text).parse()
