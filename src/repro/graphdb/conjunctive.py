"""Conjunctive queries over graph databases: CRPQs and CNREs (§6.2).

A CNRE has the form ``ϕ(x̄) = ∃ȳ ⋀ᵢ (xᵢ --eᵢ--> yᵢ)`` where each ``eᵢ``
is a nested regular expression and all variables come from ``x̄ ∪ ȳ``.
CRPQs are the special case where each ``eᵢ`` is a plain regular
expression.  Evaluation materialises each atom's binary relation and
joins them by backtracking over variable assignments.

These classes are monotone (Theorem 8 exploits this: adding edges never
removes answers), which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.automata.regex import Regex, parse_regex
from repro.errors import GraphError
from repro.graphdb.model import GraphDB, Node
from repro.graphdb.nre import Nre, evaluate_nre, parse_nre
from repro.graphdb.rpq import evaluate_rpq


@dataclass(frozen=True)
class Atom:
    """One conjunct ``x --e--> y``; ``expr`` is an NRE or a regex."""

    x: str
    expr: Nre | Regex
    y: str


class ConjunctiveQuery:
    """A CNRE/CRPQ: atoms plus the tuple of free (output) variables.

    >>> q = ConjunctiveQuery([Atom("x", parse_nre("a"), "y"),
    ...                       Atom("y", parse_nre("b"), "z")], free=("x", "z"))
    """

    def __init__(self, atoms: Sequence[Atom], free: tuple[str, ...]) -> None:
        if not atoms:
            raise GraphError("conjunctive queries need at least one atom")
        self.atoms = tuple(atoms)
        all_vars = {v for a in self.atoms for v in (a.x, a.y)}
        if not set(free) <= all_vars:
            raise GraphError(f"free variables {set(free) - all_vars} not used in atoms")
        self.free = tuple(free)
        self.variables = frozenset(all_vars)

    def num_variables(self) -> int:
        """Distinct variables — Theorem 8 treats the ≤3-variable case."""
        return len(self.variables)

    def evaluate(self, graph: GraphDB) -> frozenset[tuple[Node, ...]]:
        """All tuples for the free variables under some extension to ȳ."""
        relations: list[tuple[str, str, frozenset[tuple[Node, Node]]]] = []
        for atom in self.atoms:
            if isinstance(atom.expr, Nre):
                pairs = evaluate_nre(graph, atom.expr)
            else:
                pairs = evaluate_rpq(graph, atom.expr)
            relations.append((atom.x, atom.y, pairs))

        # Order atoms greedily: prefer ones sharing a bound variable.
        solutions: list[dict[str, Node]] = [{}]
        remaining = list(relations)
        while remaining:
            bound = set(solutions[0]) if solutions else set()
            idx = next(
                (
                    i
                    for i, (x, y, _) in enumerate(remaining)
                    if x in bound or y in bound
                ),
                0,
            )
            x, y, pairs = remaining.pop(idx)
            next_solutions: list[dict[str, Node]] = []
            for sol in solutions:
                for u, v in pairs:
                    if x in sol and sol[x] != u:
                        continue
                    if y in sol and sol[y] != v:
                        continue
                    new = dict(sol)
                    new[x] = u
                    new[y] = v
                    next_solutions.append(new)
            solutions = next_solutions
            if not solutions:
                return frozenset()
        return frozenset(tuple(sol[v] for v in self.free) for sol in solutions)


def crpq(atoms: Sequence[tuple[str, str, str]], free: tuple[str, ...]) -> ConjunctiveQuery:
    """Build a CRPQ from (x, regex_text, y) triples.

    >>> q = crpq([("x", "a.b*", "y")], free=("x", "y"))
    """
    return ConjunctiveQuery(
        [Atom(x, parse_regex(e), y) for x, e, y in atoms], free
    )


def cnre(atoms: Sequence[tuple[str, str, str]], free: tuple[str, ...]) -> ConjunctiveQuery:
    """Build a CNRE from (x, nre_text, y) triples."""
    return ConjunctiveQuery(
        [Atom(x, parse_nre(e), y) for x, e, y in atoms], free
    )
