"""Text syntax for GXPath(∼) path and node formulas.

Grammar (whitespace-insensitive)::

    path     := concat ("|" concat)*                 # union
    concat   := postfix ("/" postfix)*               # composition
    postfix  := atom ("*" | "{=}" | "{!=}")*         # star, data tests α₌ / α₍≠₎
    atom     := LABEL | LABEL "-"                    # forward / backward axis
              | "_"                                  # ε
              | "!" atom                             # path complement ᾱ
              | "[" node "]"                         # node test
              | "(" path ")"
    node     := nodeand ("or" nodeand)*
    nodeand  := nodeatom ("and" nodeatom)*
    nodeatom := "top" | "not" nodeatom
              | "<" path ">"                         # ⟨α⟩
              | "<" path "=" path ">"                # ⟨α = β⟩
              | "<" path "!=" path ">"               # ⟨α ≠ β⟩
              | "(" node ")"

Examples::

    parse_gxpath("a/[<b>]/a*")          # a·[⟨b⟩]·a*
    parse_gxpath("!(a/b) | c-")         # complement and inverse
    parse_gxpath("(a/b){=}")            # data-equality test on endpoints
    parse_gxpath_node("<a> and not <b{!=}>")
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.graphdb.gxpath import (
    Axis,
    Concat,
    DataNodeTest,
    DataPathTest,
    Eps,
    HasPath,
    NodeAnd,
    NodeExpr,
    NodeNot,
    NodeOr,
    PathComplement,
    PathExpr,
    PathUnion,
    StarPath,
    Test,
    Top,
)

_LABEL_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*|'[^']*'")
_KEYWORDS = {"or", "and", "not", "top"}


class _GXParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # -- plumbing -------------------------------------------------------

    def _skip(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self) -> str:
        self._skip()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _match(self, token: str) -> bool:
        self._skip()
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    def _expect(self, token: str) -> None:
        if not self._match(token):
            raise ParseError(f"expected {token!r}", self.text, self.pos)

    def _keyword(self, word: str) -> bool:
        self._skip()
        end = self.pos + len(word)
        if self.text.startswith(word, self.pos):
            after = self.text[end:end + 1]
            if not (after.isalnum() or after == "_"):
                self.pos = end
                return True
        return False

    def _label(self) -> str | None:
        self._skip()
        m = _LABEL_RE.match(self.text, self.pos)
        if not m:
            return None
        word = m.group()
        if word in _KEYWORDS:
            return None
        self.pos = m.end()
        return word[1:-1] if word.startswith("'") else word

    # -- paths ------------------------------------------------------------

    def parse_path(self) -> PathExpr:
        node = self.path()
        self._skip()
        if self.pos != len(self.text):
            raise ParseError("trailing GXPath input", self.text, self.pos)
        return node

    def path(self) -> PathExpr:
        node = self.concat()
        while self._peek() == "|":
            self.pos += 1
            node = PathUnion(node, self.concat())
        return node

    def concat(self) -> PathExpr:
        node = self.postfix()
        while self._peek() == "/":
            self.pos += 1
            node = Concat(node, self.postfix())
        return node

    def postfix(self) -> PathExpr:
        node = self.atom()
        while True:
            if self._match("*"):
                node = StarPath(node)
            elif self._match("{=}"):
                node = DataPathTest(node, True)
            elif self._match("{!=}"):
                node = DataPathTest(node, False)
            else:
                return node

    def atom(self) -> PathExpr:
        ch = self._peek()
        if ch == "!":
            self.pos += 1
            return PathComplement(self.atom())
        if ch == "(":
            self.pos += 1
            inner = self.path()
            self._expect(")")
            return inner
        if ch == "[":
            self.pos += 1
            inner = self.node()
            self._expect("]")
            return Test(inner)
        if ch == "_":
            self.pos += 1
            return Eps()
        label = self._label()
        if label is None:
            raise ParseError("expected a path atom", self.text, self.pos)
        if self._peek() == "-":
            self.pos += 1
            return Axis(label, forward=False)
        return Axis(label, forward=True)

    # -- node formulas ------------------------------------------------------

    def parse_node(self) -> NodeExpr:
        node = self.node()
        self._skip()
        if self.pos != len(self.text):
            raise ParseError("trailing GXPath node input", self.text, self.pos)
        return node

    def node(self) -> NodeExpr:
        left = self.node_and()
        while self._keyword("or"):
            left = NodeOr(left, self.node_and())
        return left

    def node_and(self) -> NodeExpr:
        left = self.node_atom()
        while self._keyword("and"):
            left = NodeAnd(left, self.node_atom())
        return left

    def node_atom(self) -> NodeExpr:
        if self._keyword("not"):
            return NodeNot(self.node_atom())
        if self._keyword("top"):
            return Top()
        ch = self._peek()
        if ch == "(":
            self.pos += 1
            inner = self.node()
            self._expect(")")
            return inner
        if ch == "<":
            self.pos += 1
            alpha = self.path()
            if self._match("!="):
                beta = self.path()
                self._expect(">")
                return DataNodeTest(alpha, beta, False)
            if self._match("="):
                beta = self.path()
                self._expect(">")
                return DataNodeTest(alpha, beta, True)
            self._expect(">")
            return HasPath(alpha)
        raise ParseError("expected a node formula", self.text, self.pos)


def parse_gxpath(text: str) -> PathExpr:
    """Parse a GXPath(∼) path formula.

    >>> parse_gxpath("a/[<b>]/a*")
    ((a·[⟨b⟩])·a*)
    """
    return _GXParser(text).parse_path()


def parse_gxpath_node(text: str) -> NodeExpr:
    """Parse a GXPath(∼) node formula.

    >>> parse_gxpath_node("<a> and not top")
    (⟨a⟩∧¬⊤)
    """
    return _GXParser(text).parse_node()
