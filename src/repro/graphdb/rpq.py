"""Regular path queries (RPQs and 2RPQs) over graph databases.

An RPQ ``x -L-> y`` selects node pairs connected by a path whose label
is in the regular language L (Section 2.1).  Evaluation is the classic
product-automaton BFS from :mod:`repro.automata.nfa`; a naive
path-enumeration evaluator is included for cross-validation on small
acyclic inputs.
"""

from __future__ import annotations

from repro.automata.nfa import compile_regex, product_reachable_pairs
from repro.automata.regex import Regex, parse_regex
from repro.graphdb.model import GraphDB, Node


def evaluate_rpq(graph: GraphDB, regex: Regex | str) -> frozenset[tuple[Node, Node]]:
    """All (u, v) with a path from u to v labelled in L(regex).

    >>> g = GraphDB("uvw", [("u", "a", "v"), ("v", "b", "w")])
    >>> sorted(evaluate_rpq(g, "a.b"))
    [('u', 'w')]
    """
    if isinstance(regex, str):
        regex = parse_regex(regex)
    nfa = compile_regex(regex)
    return product_reachable_pairs(nfa, set(graph.edges), set(graph.nodes))


def evaluate_rpq_by_enumeration(
    graph: GraphDB, regex: Regex | str
) -> frozenset[tuple[Node, Node]]:
    """Reference evaluator: per-source DFS simulating the NFA state *set*.

    Structured differently from the product-automaton BFS (subset
    simulation instead of per-state product; DFS instead of BFS) so the
    two act as independent implementations for cross-validation.
    Visited (node, state-set) configurations are pruned — acceptance
    only depends on configuration reachability, and without the pruning
    cyclic graphs explode exponentially.
    """
    if isinstance(regex, str):
        regex = parse_regex(regex)
    nfa = compile_regex(regex)

    result: set[tuple[Node, Node]] = set()
    for source in graph.nodes:
        start = (source, nfa.epsilon_closure({nfa.start}))
        seen = {start}
        stack = [start]
        while stack:
            node, states = stack.pop()
            if states & nfa.accepting:
                result.add((source, node))
            for label in graph.sigma:
                moved_fwd = nfa.move(states, (label, True))
                if moved_fwd:
                    for nxt in graph.successors(node, label):
                        conf = (nxt, moved_fwd)
                        if conf not in seen:
                            seen.add(conf)
                            stack.append(conf)
                moved_bwd = nfa.move(states, (label, False))
                if moved_bwd:
                    for prev in graph.predecessors(node, label):
                        conf = (prev, moved_bwd)
                        if conf not in seen:
                            seen.add(conf)
                            stack.append(conf)
    return frozenset(result)
