"""Graph query frontends routed through the :class:`~repro.db.Database` facade.

The native evaluators in this package (:func:`~repro.graphdb.rpq.evaluate_rpq`,
:func:`~repro.graphdb.gxpath.evaluate_gxpath`) remain the semantic
reference implementations; these helpers are the *production* path — a
graph query is translated to TriAL* (Theorem 7 / Corollary 2) and
executed by the cost-based planner, with the session's plan/result
caches shared across queries on the same graph::

    from repro.graphdb import graph_database

    db = graph_database(graph)
    db.query("a/b-", lang="gxpath").pairs()   # node pairs, planner + cache
    db.query("a.(b)*", lang="rpq").pairs()

Cross-validation against the native evaluators lives in the test suite.
"""

from __future__ import annotations

from typing import Any

from repro.graphdb.model import GraphDB

__all__ = ["graph_database", "gxpath_pairs", "rpq_pairs"]


def graph_database(graph: GraphDB, relation: str = "E", **kwargs: Any):
    """A :class:`~repro.db.Database` session over ``graph``'s encoding T_G."""
    from repro.db import Database

    return Database.from_graph(graph, relation, **kwargs)


def gxpath_pairs(graph_or_db: Any, path: Any) -> frozenset:
    """Evaluate a GXPath expression via the facade — ``α(G)`` as node pairs.

    Accepts a :class:`GraphDB` (a throwaway session is created) or an
    existing :class:`~repro.db.Database` (its caches are reused).
    """
    db = graph_or_db if hasattr(graph_or_db, "query") else graph_database(graph_or_db)
    return db.query(path, lang="gxpath").pairs()


def rpq_pairs(graph_or_db: Any, regex: Any) -> frozenset:
    """Evaluate a regular path query via the facade."""
    db = graph_or_db if hasattr(graph_or_db, "query") else graph_database(graph_or_db)
    return db.query(regex, lang="rpq").pairs()
