"""The unified ``Database`` session facade — public query API v2.

One object ties the whole pipeline together — store → statistics →
logical optimizer → physical planner → executor — and fronts it with
thread-safe LRU plan/result caches, so every frontend language
evaluates through one seam::

    from repro.db import Database

    db = Database.open("store.tstore")              # or Database(store)
    db.query("join[1,3',3; 2=1'](E, E)")            # lazy ResultSet
    db.query("a/b-", lang="gxpath").pairs()         # any registered language
    stmt = db.prepare("select[2=$label](E)")        # compiled once
    stmt.execute(label="part_of")                   # bound per execution
    report = db.explain_report("star[1,2,3'; 3=1'](E)")
    report.to_json()                                # structured explain

    with db.batch():                                # transactional mutations
        db.install("Closure", "star[1,2,3'; 3=1'](E)")
        db.install("Friends", triples)

Caching is *relation-aware*: every plan/result cache key embeds the
version of each relation the expression mentions (its dependency set),
so :meth:`Database.install` invalidates exactly the entries that read
the mutated relation — queries over unrelated relations keep their warm
plans and results.  Constants are canonicalized into parameters before
planning (:mod:`repro.core.params`), which turns the plan cache into a
cross-parameter cache: ``select[2='a'](E)`` and ``select[2='b'](E)``
share one compiled plan, bound per execution.

The pre-v2 per-language ``query_*`` methods remain as thin deprecation
shims over ``query(source, lang=...)``; see the migration table in the
README.
"""

from __future__ import annotations

import os
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Union as TypingUnion

from repro.api import (
    ExplainReport,
    NativeQuery,
    PreparedStatement,
    ResultSet,
    _ColumnarRows,
    _SetRows,
    explain_report as _build_explain_report,
    get_language,
)
from repro.core.engines.base import Engine, TripleSet
from repro.core.engines.fast import FastEngine
from repro.core.engines.sharded import ShardedEngine
from repro.core.engines.vectorized import VectorEngine
from repro.core.expressions import Expr, Universe
from repro.core.optimizer import optimize as optimize_expr
from repro.core.params import (
    bind_plan,
    canonicalize_constants,
    check_bindings,
    expr_params,
    substitute_params,
)
from repro.core.parser import parse as parse_expr
from repro.core.plan import PlanOp
from repro.errors import EvaluationBudgetError, ReproError
from repro.triplestore.model import Triple, Triplestore

__all__ = ["BACKENDS", "CacheInfo", "Database", "MutationBatch"]

Query = TypingUnion[Expr, str]

#: Execution backends a session can run on: ``"set"`` executes plans
#: tuple-at-a-time over Python sets (HashJoin/Fast engines), ``"columnar"``
#: array-at-a-time over the store's packed numpy encoding (VectorEngine),
#: ``"sharded"`` shard-wise over its k-way hash partition (ShardedEngine).
BACKENDS = ("set", "columnar", "sharded")

#: Environment override for the default backend (used by CI to run the
#: whole suite on the columnar executor: ``REPRO_BACKEND=columnar``).
_BACKEND_ENV = "REPRO_BACKEND"


@dataclass(frozen=True)
class CacheInfo:
    """A snapshot of one LRU cache's counters."""

    hits: int
    misses: int
    size: int
    maxsize: int


class _LRU:
    """A small thread-safe LRU map with hit/miss counters (no external deps).

    The sharded backend runs thread-pool tasks against a shared
    ``Database``, so get/insert/evict hold a lock; the ``compute``
    callback runs *outside* it (a racing pair may both compute — the
    first insert wins, which is harmless for our pure computations —
    but no lock is ever held across planning or execution).
    """

    __slots__ = ("maxsize", "hits", "misses", "_data", "_lock")

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Any, compute: Callable[[], Any]) -> Any:
        if self.maxsize <= 0:
            with self._lock:
                self.misses += 1
            return compute()
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
            else:
                self.hits += 1
                self._data.move_to_end(key)
                return value
        value = compute()
        with self._lock:
            existing = self._data.get(key, _MISSING)
            if existing is not _MISSING:
                return existing
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
        return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def snapshot(self) -> list[tuple[Any, Any]]:
        """The cached ``(key, value)`` pairs, LRU→MRU order.

        Used by the durable-store catalog to persist the plan cache at
        close time; counters are not part of the snapshot.
        """
        with self._lock:
            return list(self._data.items())

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(self.hits, self.misses, len(self._data), self.maxsize)


_MISSING = object()


class MutationBatch:
    """A transactional group of :meth:`Database.install` mutations.

    Entered via ``with db.batch():`` — installs inside the block are
    *staged*: queries keep seeing the pre-batch store, and on successful
    exit all staged relations are swapped in as one store replacement
    with one relation-aware invalidation.  If the block raises, nothing
    is applied.
    """

    __slots__ = ("db", "_staged")

    def __init__(self, db: "Database") -> None:
        self.db = db
        self._staged: "OrderedDict[str, frozenset]" = OrderedDict()

    def stage(self, name: str, triples: Iterable[Triple]) -> None:
        self._staged[name] = frozenset(triples)

    def __enter__(self) -> "MutationBatch":
        if self.db._batch is not None:
            raise ReproError("already inside a mutation batch")
        self.db._batch = self
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.db._batch = None
        if exc_type is not None:
            return False  # discard the staged mutations, propagate
        if self._staged:
            db = self.db
            if db._storage is not None:
                # One WAL record per batch — the unit of crash atomicity.
                # fsync'd before the in-memory swap, so a query can never
                # observe state the log would not reproduce.
                db._storage.commit(self._staged)
            store = db.store
            for name, triples in self._staged.items():
                store = store.with_relation(name, triples)
            db.store = store
            db._invalidate(self._staged)
            if db._storage is not None:
                db._storage.maybe_compact(db)
        return False


class Database:
    """A query session over one triplestore.

    Parameters
    ----------
    store:
        The triplestore to query.  Mutually exclusive with ``path``.
    path:
        A durable store directory (:mod:`repro.storage`) to open — or
        initialise, if empty.  The session then serves queries from the
        mmap'd segments, every ``install``/``batch`` commits through
        the write-ahead log before becoming visible, and :meth:`close`
        folds the WAL into a fresh snapshot and persists the
        statistics/plan catalog so the next open starts warm.
    engine:
        Any :class:`~repro.core.engines.base.Engine`; defaults to the
        ``backend``'s engine — a
        :class:`~repro.core.engines.fast.FastEngine` for ``"set"``
        (planner on, Proposition 4/5 reach operators enabled), a
        :class:`~repro.core.engines.vectorized.VectorEngine` for
        ``"columnar"``, a
        :class:`~repro.core.engines.sharded.ShardedEngine` for
        ``"sharded"``.
    backend:
        One of :data:`BACKENDS`.  ``None`` (default) means: the given
        engine's backend if an engine was passed, else the
        ``REPRO_BACKEND`` environment variable, else ``"set"``.  Plan and
        result caches are keyed per backend.
    shards:
        With ``backend="sharded"``: the shard count for the default
        :class:`~repro.core.engines.sharded.ShardedEngine` (``None``
        defers to ``REPRO_SHARDS``, then the engine default).  Invalid
        with any other backend.
    executor:
        With ``backend="sharded"``: the shard executor — ``"thread"``
        (in-process) or ``"process"`` (plans dispatched to a worker
        pool over shared memory; see
        :mod:`repro.core.engines.procpool`).  ``None`` defers to
        ``REPRO_SHARD_EXECUTOR``, then ``"thread"``.  Invalid with any
        other backend.
    workers:
        With ``executor="process"``: the worker-process count (``None``
        defers to ``REPRO_SHARD_WORKERS``, then one worker per shard
        bounded by the host's cores).
    optimize:
        Apply the logical rewrites of :mod:`repro.core.optimizer` before
        planning (default True).
    cache_size:
        Max entries in each of the plan and result LRU caches; 0 disables
        caching.
    """

    def __init__(
        self,
        store: Triplestore | None = None,
        engine: Engine | None = None,
        *,
        path: str | os.PathLike | None = None,
        backend: str | None = None,
        shards: int | None = None,
        executor: str | None = None,
        workers: int | None = None,
        optimize: bool = True,
        cache_size: int = 128,
    ) -> None:
        # Lifecycle attributes first, so close() after a failed open (or
        # on a partially-constructed object via __del__) is a no-op.
        self._close_hooks: list[Callable[["Database"], None]] = []
        self._storage = None
        if path is not None:
            if store is not None:
                raise ReproError("pass either a store or path=, not both")
            from repro.storage import DurableStore

            storage = DurableStore(path)
            store = storage.open()
            self._storage = storage
        elif store is None:
            raise ReproError("Database needs a store (or a path= to open one)")
        if backend is None:
            if engine is not None:
                backend = getattr(engine, "backend", "set")
            elif shards is not None or executor is not None:
                backend = "sharded"
            else:
                backend = os.environ.get(_BACKEND_ENV, "set")
        if backend not in BACKENDS:
            raise ReproError(
                f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
            )
        if shards is not None and backend != "sharded":
            raise ReproError(
                f"shards={shards} only applies to the sharded backend, not {backend!r}"
            )
        if executor is not None and backend != "sharded":
            raise ReproError(
                f"executor={executor!r} only applies to the sharded backend, "
                f"not {backend!r}"
            )
        if workers is not None and backend != "sharded":
            raise ReproError(
                f"workers={workers} only applies to the sharded backend, "
                f"not {backend!r}"
            )
        if engine is None:
            if backend == "columnar":
                engine = VectorEngine()
            elif backend == "sharded":
                engine = ShardedEngine(
                    shards=shards, executor=executor, workers=workers
                )
            else:
                engine = FastEngine()
        elif shards is not None and getattr(engine, "shards", shards) != shards:
            raise ReproError(
                f"engine runs {engine.shards} shards, not {shards}; "
                "drop one of the two arguments"
            )
        elif executor is not None and getattr(engine, "executor", executor) != executor:
            raise ReproError(
                f"engine runs the {engine.executor!r} shard executor, not "
                f"{executor!r}; drop one of the two arguments"
            )
        elif getattr(engine, "backend", "set") != backend:
            # An explicit engine/backend pair must agree — otherwise the
            # repr, explain output and cache keys would all mislabel what
            # actually executes.
            raise ReproError(
                f"engine {type(engine).__name__} runs the "
                f"{getattr(engine, 'backend', 'set')!r} backend, not {backend!r}; "
                "drop one of the two arguments"
            )
        self.store = store
        self.engine = engine
        self.backend = backend
        self.optimize = optimize
        self._results = _LRU(cache_size)
        self._plans = _LRU(cache_size)
        self._aux = _LRU(cache_size)
        #: Per-relation versions: bumped by :meth:`install` for exactly
        #: the mutated relations.  Every cache key embeds the versions of
        #: the relations its expression mentions (its dependency set), so
        #: a mutation invalidates precisely the dependent entries.
        self._rel_versions: dict[str, int] = {}
        #: Bumped on *every* mutation — the dependency token of
        #: Universe-using expressions (U spans the whole active domain)
        #: and of the auxiliary frontend cache.
        self._store_version = 0
        if self._storage is not None:
            # Versions are re-derived deterministically on every open
            # (manifest + WAL replay), so persisted plan-cache keys —
            # which embed dependency tokens — stay valid across restarts.
            self._rel_versions.update(self._storage.rel_versions)
            self._store_version = self._storage.store_version
        #: The active :class:`MutationBatch`, if any.
        self._batch: MutationBatch | None = None
        #: Set by :meth:`from_rdf`; used by the nSPARQL frontend.
        self.document = None
        # (Close hooks — the service's per-session teardown seam — were
        # initialised first, before the durable open could raise.)
        if self._storage is not None:
            self._storage.load_warm(self)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def open(cls, path: str, **kwargs: Any) -> "Database":
        """Open a store: a durable directory or an ``io``-format text file.

        A directory (existing or not-yet-existing durable store) opens
        through :mod:`repro.storage`; anything else is read as a
        :mod:`repro.triplestore.io` text file into a purely in-memory
        session.
        """
        if os.path.isdir(path) or (
            not os.path.exists(path) and str(path).endswith(os.sep)
        ):
            return cls(path=path, **kwargs)
        from repro.triplestore.io import load_path

        return cls(load_path(path), **kwargs)

    @classmethod
    def from_triples(
        cls, triples: Iterable[Triple], rho: dict | None = None, **kwargs: Any
    ) -> "Database":
        """A session over a fresh single-relation store."""
        return cls(Triplestore(triples, rho), **kwargs)

    @classmethod
    def from_graph(cls, graph: Any, relation: str = "E", **kwargs: Any) -> "Database":
        """A session over a graph database's triplestore encoding
        (Section 6.2's ``T_G``); accepts anything with ``to_triplestore``."""
        return cls(graph.to_triplestore(relation), **kwargs)

    @classmethod
    def from_rdf(cls, document: Any, relation: str = "E", **kwargs: Any) -> "Database":
        """A session over an RDF document; keeps the document around so
        the nSPARQL frontend can use the Theorem 1 axis semantics."""
        db = cls(document.to_triplestore(relation), **kwargs)
        db.document = document
        return db

    # ------------------------------------------------------------------ #
    # Core query path: compile → canonicalize → plan → bind → execute
    # ------------------------------------------------------------------ #

    def _coerce(self, query: Query) -> Expr:
        if isinstance(query, str):
            return parse_expr(query)
        return query

    def _logical(self, query: Query) -> Expr:
        """The (optionally optimised) logical expression for ``query``."""
        expr = self._coerce(query)
        return optimize_expr(expr) if self.optimize else expr

    def _dep_token(self, expr: Expr) -> tuple:
        """The expression's dependency versions — part of every cache key.

        An entry keyed with a stale token is simply never hit again
        (and ages out of the LRU); entries whose relations were not
        mutated keep matching.  ``U`` reads the whole active domain, so
        Universe-using expressions depend on every mutation.
        """
        if any(isinstance(n, Universe) for n in expr.walk()):
            return ("U", self._store_version)
        return tuple(
            (name, self._rel_versions.get(name, 0))
            for name in sorted(expr.relation_names())
        )

    def query(self, query: Any, lang: str = "trial", **bindings: Any) -> ResultSet:
        """Evaluate a query in any registered language — the v2 front door.

        ``query`` is language source text (or the language's AST — a
        TriAL :class:`Expr`, a parsed Datalog program, a GXPath path,
        …); ``lang`` selects the compile step from the language
        registry (:data:`repro.api.LANGUAGES`).  ``$name`` parameters in
        the query are bound from keyword arguments.  Returns a lazy
        :class:`~repro.api.ResultSet`; binary-convention languages
        (gxpath/rpq/nre) conventionally read ``.pairs()`` off it.
        """
        compiled = get_language(lang).compile(self, query)
        if isinstance(compiled, NativeQuery):
            if bindings:
                raise ReproError(f"{lang} queries take no $parameters")
            return ResultSet.from_set(compiled.run(self))
        fallback: NativeQuery | None = None
        if isinstance(compiled, tuple):
            compiled, fallback = compiled
        try:
            return self._run_expr(compiled, bindings)
        except EvaluationBudgetError:
            if fallback is None:
                raise
            # Negated Datalog literals translate to U-based complements,
            # which materialise cubically; the native evaluator negates
            # per-rule instead, so large stores fall back to it.
            return ResultSet.from_set(fallback.run(self))

    def prepare(self, query: Any, lang: str = "trial") -> PreparedStatement:
        """Compile a (possibly ``$param``-placeholder) query once.

        The returned :class:`~repro.api.PreparedStatement` binds
        constants into the cached physical plan per
        :meth:`~repro.api.PreparedStatement.execute` — no re-parsing,
        no re-planning, on any backend.  Languages without an algebraic
        translation (nSPARQL, non-fragment Datalog) cannot be prepared.
        """
        compiled = get_language(lang).compile(self, query)
        if isinstance(compiled, tuple):
            compiled = compiled[0]
        if isinstance(compiled, NativeQuery):
            raise ReproError(
                f"{lang} query has no algebraic translation and cannot be "
                "prepared; run it with query(...)"
            )
        expr = optimize_expr(compiled) if self.optimize else compiled
        return PreparedStatement(self, expr, lang)

    def _run_expr(self, expr: Expr, bindings: Mapping[str, Any]) -> ResultSet:
        """Execute a TriAL expression with ``bindings`` for its parameters."""
        check_bindings(expr_params(expr), bindings)
        key = (
            expr,
            tuple(sorted(bindings.items(), key=lambda kv: kv[0])),
            self._dep_token(expr),
            self.backend,
        )
        payload = self._results.get(key, lambda: self._compute_payload(expr, bindings))
        return self._wrap(payload)

    def _compute_payload(self, expr: Expr, bindings: Mapping[str, Any]):
        prepared = optimize_expr(expr) if self.optimize else expr
        canonical, consts = canonicalize_constants(prepared)
        return self._execute_payload(canonical, {**consts, **bindings})

    def _execute_payload(self, canonical: Expr, all_bindings: Mapping[str, Any]):
        """Run a canonical (parameterized) expression under a full binding.

        Planner engines execute the cached parameterized plan with the
        constants bound in (:func:`repro.core.params.bind_plan`);
        columnar/sharded engines return the undecoded packed keys so
        the :class:`ResultSet` can decode lazily.  Non-planner engines
        evaluate the substituted constant expression directly.
        """
        engine = self.engine
        if getattr(engine, "use_planner", False) and hasattr(engine, "execute_plan"):
            plan = self._plan_canonical(canonical)
            bound = bind_plan(plan, all_bindings)
            if hasattr(engine, "execute_plan_keys"):
                cs, keys = engine.execute_plan_keys(bound, self.store)
                return _ColumnarRows(cs, keys)
            return _SetRows(engine.execute_plan(bound, self.store))
        return _SetRows(
            engine.evaluate(substitute_params(canonical, all_bindings), self.store)
        )

    def _plan_canonical(self, canonical: Expr) -> PlanOp:
        """The cached parameterized plan for one canonical expression."""
        key = (canonical, self._dep_token(canonical), self.backend)
        compiler = getattr(self.engine, "compile", None)
        if compiler is None:
            from repro.core.plan import compile_plan

            return self._plans.get(
                key, lambda: compile_plan(canonical, self.store, backend=self.backend)
            )
        return self._plans.get(key, lambda: compiler(canonical, self.store))

    def _execute_canonical(
        self,
        expr: Expr,
        canonical: Expr,
        all_bindings: Mapping[str, Any],
    ) -> ResultSet:
        """Prepared-statement execution: cached per (statement, binding).

        The key carries the *full* binding — user parameters plus the
        canonicalized constants — because statements differing only in
        embedded constants share one canonical expression.
        """
        key = (
            "stmt",
            canonical,
            tuple(sorted(all_bindings.items(), key=lambda kv: kv[0])),
            self._dep_token(expr),
            self.backend,
        )
        payload = self._results.get(
            key, lambda: self._execute_payload(canonical, all_bindings)
        )
        return self._wrap(payload)

    @staticmethod
    def _wrap(payload) -> ResultSet:
        # The rows payload object itself is what the result cache holds,
        # so its lazily-decoded state (sort order, decoded frozenset) is
        # shared across repeated queries; only the window state of the
        # ResultSet view is per-call.
        return ResultSet(payload)

    def plan(self, query: Query) -> PlanOp:
        """The physical plan the session's engine would execute — cached.

        Shown with the query's own constants (the execution path shares
        one canonicalized plan across constants; see :meth:`prepare`).
        Raises :class:`~repro.errors.ReproError` subclasses on parse
        errors; engines without a planner (e.g. NaiveEngine) are
        planned with the default compiler for inspection purposes.
        """
        expr = self._logical(query)
        key = (expr, self._dep_token(expr), self.backend)
        compiler = getattr(self.engine, "compile", None)
        if compiler is None:
            from repro.core.plan import compile_plan

            return self._plans.get(
                key, lambda: compile_plan(expr, self.store, backend=self.backend)
            )
        return self._plans.get(key, lambda: compiler(expr, self.store))

    def explain(self, query: Query, physical: bool = False) -> str:
        """A logical analysis of ``query``, or the physical plan text."""
        from repro.core.explain import explain, explain_physical

        expr = self._logical(query)
        if physical:
            return explain_physical(
                expr, self.store, engine=self.engine, backend=self.backend
            )
        return explain(expr).summary()

    def explain_report(self, query: Any, lang: str = "trial") -> ExplainReport:
        """The structured explain — logical tree, physical ops, costs,
        backend and shard strategies — with ``.to_json()``."""
        compiled = get_language(lang).compile(self, query)
        if isinstance(compiled, tuple):
            compiled = compiled[0]
        if isinstance(compiled, NativeQuery):
            raise ReproError(
                f"{lang} query has no algebraic translation to explain"
            )
        expr = optimize_expr(compiled) if self.optimize else compiled
        return _build_explain_report(
            expr, self.store, engine=self.engine, backend=self.backend
        )

    def analyze(self, query: Any, lang: str = "trial") -> tuple:
        """Semantic findings (``SEM-*`` rules) for a query, unexecuted.

        Runs :func:`repro.analysis.semantics.analyze_expr` over the
        *un-optimized* translation, so verdicts the pruning rewrites
        would consume (unsatisfiable conditions, provably-empty
        subexpressions, redundant conditions) are still reported.
        Languages without an algebraic translation yield no findings.
        """
        from repro.analysis.semantics import analyze_expr

        compiled = get_language(lang).compile(self, query)
        if isinstance(compiled, tuple):
            compiled = compiled[0]
        if isinstance(compiled, NativeQuery):
            return ()
        return tuple(analyze_expr(compiled, self.store))

    # ------------------------------------------------------------------ #
    # Session lifecycle
    # ------------------------------------------------------------------ #

    def add_close_hook(self, hook: Callable[["Database"], None]) -> None:
        """Register a callback run (once) by the next :meth:`close`.

        Hooks run before the session's own resource release, in
        registration order; a hook that raises does not stop the
        others, and the exception is swallowed — close is teardown, not
        a failure path.
        """
        self._close_hooks.append(hook)

    def close(self) -> None:
        """Release session resources (idempotent).

        Runs registered close hooks first (each at most once); on a
        durable session (``path=``) it then folds any outstanding WAL
        records into a fresh snapshot and persists the statistics/plan
        catalog, so the next open serves straight from mmap'd segments
        with warm caches.  Finally it unlinks any shared-memory segments
        the process shard executor published for this session's store —
        worker pools are told to drop their mappings first.  The session
        object stays usable afterwards (shm segments are republished on
        demand, and durable commits reopen their log handle); calling
        close again — or on a session whose open failed partway — is a
        no-op.
        """
        hooks = getattr(self, "_close_hooks", None) or []
        self._close_hooks = []
        for hook in hooks:
            try:
                hook(self)
            except Exception:
                pass
        storage = getattr(self, "_storage", None)
        if storage is not None:
            try:
                storage.flush(self)
            except Exception:
                # Close is teardown, not a failure path: a store that
                # cannot flush its catalog still closes (the WAL already
                # holds every committed batch).
                pass
            storage.close()
        for ss in getattr(getattr(self, "store", None), "_sharded", {}).values():
            handle = getattr(ss, "_shm", None)
            if handle is not None:
                handle.close()
                ss._shm = None

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __del__(self) -> None:  # pragma: no cover — GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Mutations / cache lifecycle
    # ------------------------------------------------------------------ #

    def install(self, name: str, triples_or_query: Query | Iterable[Triple]) -> None:
        """Bind a relation in the session's store (closure in practice).

        Accepts either raw triples or a query whose *result* is
        installed.  The store object is replaced (stores stay immutable)
        and exactly the cache entries depending on ``name`` are
        invalidated.  Inside a :meth:`batch`, the mutation is staged —
        queries see it only after the batch commits.
        """
        if isinstance(triples_or_query, (Expr, str)):
            triples: Iterable[Triple] = self.query(triples_or_query).to_set()
        else:
            triples = triples_or_query
        if self._batch is not None:
            self._batch.stage(name, triples)
            return
        if self._storage is not None:
            triples = frozenset(triples)  # logged and applied: freeze once
            self._storage.commit({name: triples})
        self.store = self.store.with_relation(name, triples)
        self._invalidate((name,))
        if self._storage is not None:
            self._storage.maybe_compact(self)

    def batch(self) -> MutationBatch:
        """A transactional mutation batch::

            with db.batch():
                db.install("A", ...)
                db.install("B", ...)

        Staged installs apply (and invalidate, relation-aware) once on
        exit; an exception inside the block discards them all.
        """
        return MutationBatch(self)

    def _invalidate(self, names: Iterable[str]) -> None:
        """Relation-aware invalidation: age the mutated relations' versions.

        Dependent cache entries (recorded in each key as the dependency
        token captured at compile time) stop matching and age out of
        the LRU; everything else stays warm.
        """
        self._store_version += 1
        for name in names:
            self._rel_versions[name] = self._rel_versions.get(name, 0) + 1

    def clear_cache(self) -> None:
        """Drop all cached plans and results (counters are kept)."""
        self._results.clear()
        self._plans.clear()
        self._aux.clear()

    def cache_info(self) -> dict[str, CacheInfo]:
        """Hit/miss counters for the result, plan and auxiliary caches."""
        return {
            "results": self._results.info(),
            "plans": self._plans.info(),
            "aux": self._aux.info(),
        }

    def cached(self, key: Any, compute: Callable[[], Any]) -> Any:
        """Memoise an arbitrary frontend computation against this session.

        Used by frontends whose semantics does not factor through TriAL
        (e.g. per-pattern NRE pair sets in nSPARQL evaluation) so they
        still benefit from — and are invalidated with — the session cache.
        """
        return self._aux.get((key, self._store_version), compute)

    # ------------------------------------------------------------------ #
    # Deprecated pre-v2 surface (thin shims; see README migration table)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _deprecated(old: str, new: str) -> None:
        warnings.warn(
            f"Database.{old} is deprecated; use {new} instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def query_pairs(self, query: Query) -> frozenset:
        """Deprecated: use ``query(...).pairs()``."""
        self._deprecated("query_pairs(q)", "query(q).pairs()")
        return self.query(query).pairs()

    def query_gxpath(self, path: Any) -> frozenset:
        """Deprecated: use ``query(path, lang="gxpath").pairs()``."""
        self._deprecated("query_gxpath(p)", 'query(p, lang="gxpath").pairs()')
        return self.query(path, lang="gxpath").pairs()

    def query_rpq(self, regex: Any) -> frozenset:
        """Deprecated: use ``query(regex, lang="rpq").pairs()``."""
        self._deprecated("query_rpq(r)", 'query(r, lang="rpq").pairs()')
        return self.query(regex, lang="rpq").pairs()

    def query_nre(self, nre: Any) -> frozenset:
        """Deprecated: use ``query(nre, lang="nre").pairs()``."""
        self._deprecated("query_nre(n)", 'query(n, lang="nre").pairs()')
        return self.query(nre, lang="nre").pairs()

    def query_nsparql(self, nsparql_query: Any) -> frozenset:
        """Deprecated: use ``query(q, lang="nsparql").to_set()``."""
        self._deprecated("query_nsparql(q)", 'query(q, lang="nsparql").to_set()')
        return self.query(nsparql_query, lang="nsparql").to_set()

    def query_datalog(self, program: Any, answer: str | None = None) -> TripleSet:
        """Deprecated: use ``query(program, lang="datalog").to_set()``."""
        self._deprecated("query_datalog(p)", 'query(p, lang="datalog").to_set()')
        if isinstance(program, str) and answer is not None:
            from repro.datalog import parse_program

            program = parse_program(program, answer=answer)
        return self.query(program, lang="datalog").to_set()

    def __repr__(self) -> str:
        info = self._results.info()
        return (
            f"Database({self.store!r}, engine={type(self.engine).__name__}, "
            f"backend={self.backend}, cache={info.size}/{info.maxsize})"
        )
