"""The unified ``Database`` session facade.

One object ties the whole pipeline together — store → statistics →
logical optimizer → physical planner → executor — and fronts it with an
LRU plan/result cache, so every frontend (TriAL text, GXPath, RPQs,
NREs, nSPARQL, Datalog, the CLI) evaluates through one seam::

    from repro.db import Database

    db = Database.open("store.tstore")          # or Database(store)
    db.query("join[1,3',3; 2=1'](E, E)")        # parsed, optimized, planned
    db.query_pairs("star[1,2,3'; 3=1'](E)")     # π₁,₃ of the result
    print(db.explain("(E | E)", physical=True)) # the chosen physical plan

Caches are keyed on ``(expression, store)``: the store is immutable by
convention, so entries never go stale; :meth:`Database.install` swaps in
a derived store (the paper's composition/closure story) and invalidates
everything in one step.  Repeated queries — and repeated *sub*-queries
via the planner's shared-scan indexes — then hit warm state instead of
recomputing.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Union as TypingUnion

from repro.core import project13
from repro.core.engines.base import Engine, TripleSet
from repro.core.engines.fast import FastEngine
from repro.core.engines.sharded import ShardedEngine
from repro.core.engines.vectorized import VectorEngine
from repro.core.expressions import Expr
from repro.core.optimizer import optimize as optimize_expr
from repro.core.parser import parse as parse_expr
from repro.core.plan import ExecContext, PlanOp
from repro.errors import EvaluationBudgetError, ReproError
from repro.triplestore.model import Triple, Triplestore

__all__ = ["BACKENDS", "CacheInfo", "Database"]

Query = TypingUnion[Expr, str]

#: Execution backends a session can run on: ``"set"`` executes plans
#: tuple-at-a-time over Python sets (HashJoin/Fast engines), ``"columnar"``
#: array-at-a-time over the store's packed numpy encoding (VectorEngine),
#: ``"sharded"`` shard-wise over its k-way hash partition (ShardedEngine).
BACKENDS = ("set", "columnar", "sharded")

#: Environment override for the default backend (used by CI to run the
#: whole suite on the columnar executor: ``REPRO_BACKEND=columnar``).
_BACKEND_ENV = "REPRO_BACKEND"


@dataclass(frozen=True)
class CacheInfo:
    """A snapshot of one LRU cache's counters."""

    hits: int
    misses: int
    size: int
    maxsize: int


class _LRU:
    """A small LRU map with hit/miss counters (no external deps)."""

    __slots__ = ("maxsize", "hits", "misses", "_data")

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[Any, Any] = OrderedDict()

    def get(self, key: Any, compute: Callable[[], Any]) -> Any:
        if self.maxsize <= 0:
            self.misses += 1
            return compute()
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            value = compute()
            self._data[key] = value
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
            return value
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def clear(self) -> None:
        self._data.clear()

    def info(self) -> CacheInfo:
        return CacheInfo(self.hits, self.misses, len(self._data), self.maxsize)


class Database:
    """A query session over one triplestore.

    Parameters
    ----------
    store:
        The triplestore to query.
    engine:
        Any :class:`~repro.core.engines.base.Engine`; defaults to the
        ``backend``'s engine — a
        :class:`~repro.core.engines.fast.FastEngine` for ``"set"``
        (planner on, Proposition 4/5 reach operators enabled), a
        :class:`~repro.core.engines.vectorized.VectorEngine` for
        ``"columnar"``, a
        :class:`~repro.core.engines.sharded.ShardedEngine` for
        ``"sharded"``.
    backend:
        One of :data:`BACKENDS`.  ``None`` (default) means: the given
        engine's backend if an engine was passed, else the
        ``REPRO_BACKEND`` environment variable, else ``"set"``.  Plan and
        result caches are keyed per backend.
    shards:
        With ``backend="sharded"``: the shard count for the default
        :class:`~repro.core.engines.sharded.ShardedEngine` (``None``
        defers to ``REPRO_SHARDS``, then the engine default).  Invalid
        with any other backend.
    optimize:
        Apply the logical rewrites of :mod:`repro.core.optimizer` before
        planning (default True).
    cache_size:
        Max entries in each of the plan and result LRU caches; 0 disables
        caching.
    """

    def __init__(
        self,
        store: Triplestore,
        engine: Engine | None = None,
        *,
        backend: str | None = None,
        shards: int | None = None,
        optimize: bool = True,
        cache_size: int = 128,
    ) -> None:
        if backend is None:
            if engine is not None:
                backend = getattr(engine, "backend", "set")
            elif shards is not None:
                backend = "sharded"
            else:
                backend = os.environ.get(_BACKEND_ENV, "set")
        if backend not in BACKENDS:
            raise ReproError(
                f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
            )
        if shards is not None and backend != "sharded":
            raise ReproError(
                f"shards={shards} only applies to the sharded backend, not {backend!r}"
            )
        if engine is None:
            if backend == "columnar":
                engine = VectorEngine()
            elif backend == "sharded":
                engine = ShardedEngine(shards=shards)
            else:
                engine = FastEngine()
        elif shards is not None and getattr(engine, "shards", shards) != shards:
            raise ReproError(
                f"engine runs {engine.shards} shards, not {shards}; "
                "drop one of the two arguments"
            )
        elif getattr(engine, "backend", "set") != backend:
            # An explicit engine/backend pair must agree — otherwise the
            # repr, explain output and cache keys would all mislabel what
            # actually executes.
            raise ReproError(
                f"engine {type(engine).__name__} runs the "
                f"{getattr(engine, 'backend', 'set')!r} backend, not {backend!r}; "
                "drop one of the two arguments"
            )
        self.store = store
        self.engine = engine
        self.backend = backend
        self.optimize = optimize
        self._results = _LRU(cache_size)
        self._plans = _LRU(cache_size)
        self._aux = _LRU(cache_size)
        #: Bumped on :meth:`install`; part of every cache key, so keys
        #: are semantically ``(expr, store)`` without hashing the store.
        self._epoch = 0
        #: Set by :meth:`from_rdf`; used by :meth:`query_nsparql`.
        self.document = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def open(cls, path: str, **kwargs: Any) -> "Database":
        """Open a store file in the :mod:`repro.triplestore.io` format."""
        from repro.triplestore.io import load_path

        return cls(load_path(path), **kwargs)

    @classmethod
    def from_triples(
        cls, triples: Iterable[Triple], rho: dict | None = None, **kwargs: Any
    ) -> "Database":
        """A session over a fresh single-relation store."""
        return cls(Triplestore(triples, rho), **kwargs)

    @classmethod
    def from_graph(cls, graph: Any, relation: str = "E", **kwargs: Any) -> "Database":
        """A session over a graph database's triplestore encoding
        (Section 6.2's ``T_G``); accepts anything with ``to_triplestore``."""
        return cls(graph.to_triplestore(relation), **kwargs)

    @classmethod
    def from_rdf(cls, document: Any, relation: str = "E", **kwargs: Any) -> "Database":
        """A session over an RDF document; keeps the document around so
        :meth:`query_nsparql` can use the Theorem 1 axis semantics."""
        db = cls(document.to_triplestore(relation), **kwargs)
        db.document = document
        return db

    # ------------------------------------------------------------------ #
    # Core query path: parse → optimize → plan → execute, all cached
    # ------------------------------------------------------------------ #

    def _coerce(self, query: Query) -> Expr:
        if isinstance(query, str):
            return parse_expr(query)
        return query

    def prepare(self, query: Query) -> Expr:
        """The (optionally optimised) logical expression for ``query``."""
        expr = self._coerce(query)
        return optimize_expr(expr) if self.optimize else expr

    def plan(self, query: Query) -> PlanOp:
        """The cached physical plan the session's engine would execute.

        Raises :class:`~repro.errors.ReproError` subclasses on parse
        errors; engines without a planner (e.g. NaiveEngine) are
        planned with the default compiler for inspection purposes.
        """
        expr = self.prepare(query)
        compiler = getattr(self.engine, "compile", None)
        if compiler is None:
            from repro.core.plan import compile_plan

            return self._plans.get(
                (expr, self._epoch, self.backend),
                lambda: compile_plan(expr, self.store, backend=self.backend),
            )
        return self._plans.get(
            (expr, self._epoch, self.backend), lambda: compiler(expr, self.store)
        )

    def query(self, query: Query) -> TripleSet:
        """Evaluate a TriAL(*) expression (or its text syntax) — cached."""
        expr = self._coerce(query)
        return self._results.get(
            (expr, self._epoch, self.backend), lambda: self._evaluate(expr)
        )

    def _evaluate(self, expr: Expr) -> TripleSet:
        prepared = optimize_expr(expr) if self.optimize else expr
        use_planner = getattr(self.engine, "use_planner", False)
        if use_planner and hasattr(self.engine, "execute_plan"):
            plan = self._plans.get(
                (prepared, self._epoch, self.backend),
                lambda: self.engine.compile(prepared, self.store),
            )
            return self.engine.execute_plan(plan, self.store)
        return self.engine.evaluate(prepared, self.store)

    def query_pairs(self, query: Query) -> frozenset:
        """π₁,₃ of :meth:`query` — the binary-query convention of §6.2."""
        return project13(self.query(query))

    def explain(self, query: Query, physical: bool = False) -> str:
        """A logical analysis of ``query``, or the physical plan text."""
        from repro.core.explain import explain, explain_physical

        expr = self.prepare(query)
        if physical:
            return explain_physical(
                expr, self.store, engine=self.engine, backend=self.backend
            )
        return explain(expr).summary()

    # ------------------------------------------------------------------ #
    # Composition / cache lifecycle
    # ------------------------------------------------------------------ #

    def install(self, name: str, triples_or_query: Query | Iterable[Triple]) -> None:
        """Bind a relation in the session's store (closure in practice).

        Accepts either raw triples or a query whose *result* is
        installed.  The store object is replaced (stores stay immutable)
        and all caches are invalidated.
        """
        if isinstance(triples_or_query, (Expr, str)):
            triples = self.query(triples_or_query)
        else:
            triples = triples_or_query
        self.store = self.store.with_relation(name, triples)
        self._invalidate()

    def _invalidate(self) -> None:
        self._epoch += 1
        self._results.clear()
        self._plans.clear()
        self._aux.clear()

    def clear_cache(self) -> None:
        """Drop all cached plans and results (counters are kept)."""
        self._results.clear()
        self._plans.clear()
        self._aux.clear()

    def cache_info(self) -> dict[str, CacheInfo]:
        """Hit/miss counters for the result, plan and auxiliary caches."""
        return {
            "results": self._results.info(),
            "plans": self._plans.info(),
            "aux": self._aux.info(),
        }

    def cached(self, key: Any, compute: Callable[[], Any]) -> Any:
        """Memoise an arbitrary frontend computation against this session.

        Used by frontends whose semantics does not factor through TriAL
        (e.g. per-pattern NRE pair sets in nSPARQL evaluation) so they
        still benefit from — and are invalidated with — the session cache.
        """
        return self._aux.get((key, self._epoch), compute)

    # ------------------------------------------------------------------ #
    # Frontends: graph languages, nSPARQL, Datalog
    # ------------------------------------------------------------------ #

    def query_gxpath(self, path: Any) -> frozenset:
        """Evaluate a GXPath path expression (text or AST) — node pairs.

        The expression is translated to TriAL* (Theorem 7) and executed
        through the planner; results are π₁,₃-projected.
        """
        from repro.graphdb.gxpath_parser import parse_gxpath
        from repro.translations.graph_to_trial import gxpath_to_trial

        if isinstance(path, str):
            path = parse_gxpath(path)
        return self.query_pairs(gxpath_to_trial(path))

    def query_rpq(self, regex: Any) -> frozenset:
        """Evaluate a regular path query (Corollary 2's translation)."""
        from repro.translations.graph_to_trial import rpq_to_trial

        return self.query_pairs(rpq_to_trial(regex))

    def query_nre(self, nre: Any) -> frozenset:
        """Evaluate a nested regular expression over the graph encoding."""
        from repro.translations.graph_to_trial import nre_to_trial

        return self.query_pairs(nre_to_trial(nre))

    def query_nsparql(self, nsparql_query: Any) -> frozenset:
        """Evaluate an :class:`~repro.rdf.nsparql_query.NSparqlQuery`.

        Requires a session built with :meth:`from_rdf` (the axis
        semantics needs the document, not just its triples); per-pattern
        NRE results are memoised in the session cache.
        """
        if self.document is None:
            raise ReproError(
                "query_nsparql needs a Database.from_rdf session "
                "(the nSPARQL axes are defined on the RDF document)"
            )
        return nsparql_query.evaluate(self.document, db=self)

    def query_datalog(self, program: Any, answer: str | None = None) -> TripleSet:
        """Run a (Reach)TripleDatalog¬ program (text or parsed).

        Programs inside the paper's fragments are translated to TriAL(*)
        (Propositions 2/3) and executed through the planner — sharing the
        session's plan/result caches; anything the translation rejects
        falls back to the native stratified evaluator.
        """
        from repro.datalog import datalog_to_trial, parse_program, run_program

        if isinstance(program, str):
            program = (
                parse_program(program, answer=answer)
                if answer is not None
                else parse_program(program)
            )
        try:
            expr = datalog_to_trial(program)
        except ReproError:
            return run_program(program, self.store)
        try:
            return self.query(expr)
        except EvaluationBudgetError:
            # Negated literals translate to U-based complements, which
            # materialise cubically; the native evaluator negates
            # per-rule instead, so large stores fall back to it.
            return run_program(program, self.store)

    def __repr__(self) -> str:
        info = self._results.info()
        return (
            f"Database({self.store!r}, engine={type(self.engine).__name__}, "
            f"backend={self.backend}, cache={info.size}/{info.maxsize})"
        )
