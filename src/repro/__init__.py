"""repro — a full reproduction of *TriAL for RDF* (Libkin, Reutter,
Vrgoč; PODS 2013).

The package implements the paper's Triple Algebra (TriAL) and its
recursive extension TriAL* over triplestores, the Datalog fragments
capturing them, three evaluation engines matching the paper's complexity
analysis, and every comparison language of Sections 2 and 6 (RPQs, NREs,
GXPath(∼), CNREs, FOᵏ, TrCl, nSPARQL-style navigation, register
automata), plus the σ graph encoding of RDF and all of the paper's
worked examples as datasets.

Quickstart::

    from repro import Triplestore, evaluate, query_q, project13
    from repro.rdf import figure1

    pairs = project13(evaluate(query_q(), figure1()))
    ("Edinburgh", "London") in pairs   # True
    ("St. Andrews", "Brussels") in pairs   # False — needs two companies

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core import (
    Cond,
    Const,
    Diff,
    Engine,
    Expr,
    FastEngine,
    HashJoinEngine,
    Intersect,
    Join,
    NaiveEngine,
    Pos,
    R,
    Rel,
    Select,
    Star,
    Union,
    Universe,
    complement,
    evaluate,
    example2_expr,
    example2_extended,
    join,
    lstar,
    parse,
    project13,
    query_q,
    reach_down,
    reach_forward,
    select,
    star,
)
from repro.api import ExplainReport, PreparedStatement, ResultSet
from repro.core.positions import Param
from repro.db import Database
from repro.errors import ReproError
from repro.triplestore import Triplestore

__version__ = "1.0.0"

__all__ = [
    "Cond",
    "Const",
    "Database",
    "Diff",
    "Engine",
    "ExplainReport",
    "Expr",
    "FastEngine",
    "HashJoinEngine",
    "Intersect",
    "Join",
    "NaiveEngine",
    "Param",
    "Pos",
    "PreparedStatement",
    "R",
    "Rel",
    "ResultSet",
    "ReproError",
    "Select",
    "Star",
    "Triplestore",
    "Union",
    "Universe",
    "__version__",
    "complement",
    "evaluate",
    "example2_expr",
    "example2_extended",
    "join",
    "lstar",
    "parse",
    "project13",
    "query_q",
    "reach_down",
    "reach_forward",
    "select",
    "star",
]
