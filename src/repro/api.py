"""The layered public query API (v2): results, statements, explain, languages.

:class:`repro.db.Database` is the session object; this module defines
the value types its v2 surface trades in:

* :class:`ResultSet` — the lazy cursor every query returns.  It behaves
  like a frozen set of rows (``in``, ``len``, iteration, set algebra,
  comparison with plain sets) but holds its backing representation
  undecoded: on the columnar and sharded backends that is the packed
  integer key array, and rows are dictionary-decoded only as they are
  consumed.  ``limit``/``offset`` slice the keys *before* decoding, so a
  10-row read of a million-row result decodes 10 triples.
* :class:`PreparedStatement` — ``db.prepare(...)`` compiles a (possibly
  ``$param``-placeholder) query once; ``stmt.execute(city="Edinburgh")``
  binds constants into the cached physical plan per execution
  (:func:`repro.core.params.bind_plan`), on any backend.
* :class:`ExplainReport` — the structured explain: the logical analysis,
  the compiled physical operator tree with cost estimates and backend
  lowering strategies, as data with :meth:`~ExplainReport.to_json` —
  consumed by ``repro.cli explain --json`` and the golden tests.
* :data:`LANGUAGES` — one registry mapping language names to their
  compile step, so ``db.query(text, lang=...)`` and ``db.prepare(...)``
  share a single compile path for TriAL, Datalog, GXPath, RPQs, NREs
  and nSPARQL.

Iteration order of a :class:`ResultSet` is deterministic: packed-key
order on the columnar backends (object-``repr`` lexicographic), sorted
by ``repr`` on the set backend.
"""

from __future__ import annotations

import json
from collections.abc import Set as AbstractSet
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from repro.errors import AlgebraError, ReproError
from repro.core.expressions import Expr
from repro.core.params import (
    canonicalize_constants,
    check_bindings,
    expr_params,
)
from repro.core.plan import (
    FilterOp,
    HashJoinOp,
    IndexLookupOp,
    PlanOp,
    ReachStarOp,
    ScanOp,
    StarOp,
)

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, types only
    import numpy as np

    from repro.db import Database
    from repro.triplestore.columnar import ColumnarStore

__all__ = [
    "ExplainReport",
    "LANGUAGES",
    "Language",
    "NativeQuery",
    "PreparedStatement",
    "ResultSet",
    "explain_report",
    "plan_to_dict",
    "register_language",
]


# --------------------------------------------------------------------- #
# Row payloads: the undecoded backing store of a ResultSet
# --------------------------------------------------------------------- #


class _SetRows:
    """Rows held as a frozenset of tuples (the set backends, native paths)."""

    __slots__ = ("rows", "_ordered")

    def __init__(self, rows: frozenset) -> None:
        self.rows = rows
        self._ordered: Optional[list] = None

    def __len__(self) -> int:
        return len(self.rows)

    def ordered(self) -> list:
        if self._ordered is None:
            self._ordered = sorted(self.rows, key=repr)
        return self._ordered

    def iter_rows(self, offset: int, limit: Optional[int]) -> Iterator:
        stop = len(self.rows) if limit is None else offset + limit
        return iter(self.ordered()[offset:stop])

    def contains(self, row: Any) -> bool:
        return row in self.rows

    def to_set(self) -> frozenset:
        return self.rows

    def pairs(self) -> frozenset:
        return frozenset((t[0], t[2]) for t in self.rows)


class _ColumnarRows:
    """Rows held as a sorted unique packed-key array plus its dictionary.

    Decoding is deferred: ``iter_rows`` decodes in chunks as rows are
    consumed, ``pairs`` projects and deduplicates on integer codes
    before decoding, and ``contains`` is a binary search on the keys.
    """

    __slots__ = ("cs", "keys", "_decoded")

    #: Rows decoded per iteration step — large enough to amortise the
    #: per-chunk numpy gather, small enough that ``--limit 20`` on a
    #: million-row result stays O(chunk).
    CHUNK = 1024

    def __init__(self, cs: "ColumnarStore", keys: "np.ndarray") -> None:
        self.cs = cs
        self.keys = keys
        self._decoded: Optional[frozenset] = None

    def __len__(self) -> int:
        return len(self.keys)

    def iter_rows(self, offset: int, limit: Optional[int]) -> Iterator:
        keys = self.keys
        stop = len(keys) if limit is None else min(len(keys), offset + limit)
        decode = self.cs.decode_list
        for start in range(offset, stop, self.CHUNK):
            yield from decode(keys[start : min(start + self.CHUNK, stop)])

    def contains(self, row: Any) -> bool:
        if not (isinstance(row, tuple) and len(row) == 3):
            return False
        key = self.cs.encode_triple_key(row)
        if key < 0:
            return False
        import numpy as np

        i = int(np.searchsorted(self.keys, key))
        return i < len(self.keys) and int(self.keys[i]) == key

    def to_set(self) -> frozenset:
        if self._decoded is None:
            self._decoded = self.cs.decode_triples(self.keys)
        return self._decoded

    def pairs(self) -> frozenset:
        return self.cs.decode_pairs(self.keys)


# --------------------------------------------------------------------- #
# ResultSet
# --------------------------------------------------------------------- #


class ResultSet(AbstractSet):
    """A lazy, set-like view over one query result.

    Compatible with the old eager frozenset returns — ``in``, ``len``,
    iteration, ``==`` against sets, ``|``/``&``/``-`` — while keeping
    the columnar backends' results undecoded until rows are consumed.

    ``limit``/``offset`` return a *window* onto the same payload (keys
    are sliced before decode); iteration order is deterministic, so
    paging through a result is stable.
    """

    __slots__ = ("_rows", "_offset", "_limit", "_window")

    def __init__(self, rows, offset: int = 0, limit: Optional[int] = None) -> None:
        self._rows = rows
        self._offset = offset
        self._limit = limit
        self._window: Optional[frozenset] = None

    # -- construction ---------------------------------------------------- #

    @classmethod
    def from_set(cls, rows) -> "ResultSet":
        """Wrap an eager set of rows (any arity)."""
        return cls(_SetRows(frozenset(rows)))

    @classmethod
    def from_keys(cls, cs: "ColumnarStore", keys: "np.ndarray") -> "ResultSet":
        """Wrap an undecoded packed-key array over ``cs``'s dictionary."""
        return cls(_ColumnarRows(cs, keys))

    @classmethod
    def _from_iterable(cls, iterable) -> "ResultSet":
        # collections.abc.Set uses this to build results of set algebra.
        return cls.from_set(iterable)

    # -- the windowing cursor -------------------------------------------- #

    @property
    def total(self) -> int:
        """Rows in the underlying result, ignoring the window."""
        return len(self._rows)

    def limit(self, n: int) -> "ResultSet":
        """At most the first ``n`` rows of this window (keys-only slice)."""
        if n < 0:
            raise AlgebraError(f"limit must be non-negative, got {n}")
        new = n if self._limit is None else min(self._limit, n)
        return ResultSet(self._rows, self._offset, new)

    def offset(self, n: int) -> "ResultSet":
        """This window minus its first ``n`` rows."""
        if n < 0:
            raise AlgebraError(f"offset must be non-negative, got {n}")
        new_limit = self._limit if self._limit is None else max(0, self._limit - n)
        return ResultSet(self._rows, self._offset + n, new_limit)

    @property
    def _windowed(self) -> bool:
        return self._offset > 0 or (
            self._limit is not None and self._limit < len(self._rows)
        )

    def __len__(self) -> int:
        span = max(0, len(self._rows) - self._offset)
        return span if self._limit is None else min(span, self._limit)

    def __iter__(self) -> Iterator:
        return self._rows.iter_rows(self._offset, self._limit)

    def __contains__(self, row: Any) -> bool:
        if not self._windowed:
            return self._rows.contains(row)
        return row in self.to_set()

    def __bool__(self) -> bool:
        return len(self) > 0

    # -- materialisation ------------------------------------------------- #

    def to_set(self) -> frozenset:
        """All rows of this window as a frozenset (decodes them all)."""
        if not self._windowed:
            return self._rows.to_set()
        if self._window is None:
            self._window = frozenset(self)
        return self._window

    def to_list(self) -> list:
        """All rows of this window, in iteration order."""
        return list(self)

    def first(self) -> Optional[tuple]:
        """The first row of this window, or ``None`` when empty."""
        return next(iter(self), None)

    def pairs(self) -> frozenset:
        """π₁,₃ — the binary-query convention of §6.2, as (subject, object)
        pairs.  On columnar payloads the projection and deduplication
        run on integer codes; only the surviving pairs are decoded."""
        if not self._windowed:
            return self._rows.pairs()
        return frozenset((t[0], t[2]) for t in self)

    def pages(self, page_size: int) -> Iterator["ResultSet"]:
        """Iterate this window as consecutive ``page_size``-row windows.

        Each page is itself a lazy :class:`ResultSet` over the same
        undecoded payload — the query service streams large results
        page by page over WebSocket without ever decoding (or holding)
        the full result server-side.  Iteration order is the cursor's
        deterministic order, so pages tile the window exactly.
        """
        if page_size <= 0:
            raise AlgebraError(f"page size must be positive, got {page_size}")
        total = len(self)
        for start in range(0, total, page_size):
            yield self.offset(start).limit(page_size)

    # -- set behaviour ---------------------------------------------------- #

    __hash__ = AbstractSet._hash

    def __repr__(self) -> str:
        kind = "columnar" if isinstance(self._rows, _ColumnarRows) else "set"
        window = ""
        if self._windowed:
            window = f", window={self._offset}:+{self._limit}"
        return f"<ResultSet {len(self)} rows ({kind}{window})>"


# --------------------------------------------------------------------- #
# Prepared statements
# --------------------------------------------------------------------- #


class PreparedStatement:
    """One compiled query, executable under many parameter bindings.

    Created by :meth:`repro.db.Database.prepare`.  The source is
    compiled (parse → optimize → constant canonicalization → physical
    plan) exactly once; :meth:`execute` substitutes the binding into
    the cached plan (:func:`repro.core.params.bind_plan`) — a shallow
    structural copy, not a recompilation — and runs it on the session's
    backend.  Results are session-cached per binding.

    Attributes
    ----------
    expr:
        The optimized logical expression, user ``$params`` intact.
    params:
        The parameter names :meth:`execute` expects as keywords.
    """

    __slots__ = ("db", "lang", "expr", "params", "_canonical", "_consts")

    def __init__(self, db: "Database", expr: Expr, lang: str = "trial") -> None:
        self.db = db
        self.lang = lang
        self.expr = expr
        self.params = expr_params(expr)
        self._canonical, self._consts = canonicalize_constants(expr)
        # Compile (and cache) the parameterized plan up front: prepare
        # pays the planning cost once, execute only ever binds.
        db._plan_canonical(self._canonical)

    def execute(self, **bindings: Any) -> ResultSet:
        """Run the statement with ``bindings`` for its ``$params``."""
        check_bindings(self.params, bindings)
        return self.db._execute_canonical(
            self.expr, self._canonical, {**self._consts, **bindings}
        )

    def executemany(self, bindings_seq) -> list[ResultSet]:
        """Run the statement once per binding mapping, in order."""
        return [self.execute(**b) for b in bindings_seq]

    def plan(self) -> PlanOp:
        """The cached (parameterized, unbound) physical plan."""
        return self.db._plan_canonical(self._canonical)

    def explain(self, physical: bool = False) -> str:
        """Text explain of the statement's (unbound) expression."""
        return self.db.explain(self.expr, physical=physical)

    def explain_report(self) -> "ExplainReport":
        """The structured explain of the statement's expression."""
        return self.db.explain_report(self.expr)

    def __repr__(self) -> str:
        params = ", ".join(f"${p}" for p in self.params) or "(none)"
        return (
            f"PreparedStatement({self.expr!r}, params: {params}, "
            f"backend={self.db.backend})"
        )


# --------------------------------------------------------------------- #
# Structured explain
# --------------------------------------------------------------------- #


def plan_to_dict(op: PlanOp) -> dict:
    """One physical operator (and its subtree) as plain JSON-able data.

    Shared sub-plans are expanded per edge, matching the text renderer.
    Estimates are rounded to two decimals so reports stay readable and
    golden files stay stable across float-formatting changes.
    """
    node: dict[str, Any] = {
        "op": type(op).__name__.removesuffix("Op"),
        "label": op.label(),
        "est_rows": round(op.est_rows, 2),
        "est_cost": round(op.est_cost, 2),
    }
    if isinstance(op, ScanOp):
        node["relation"] = op.name
    elif isinstance(op, IndexLookupOp):
        node["relation"] = op.name
        node["key_positions"] = [p + 1 for p in op.positions]
        node["key"] = [repr(v) for v in op.key]
        if op.residual:
            node["residual"] = [repr(c) for c in op.residual]
    elif isinstance(op, FilterOp):
        node["conditions"] = [repr(c) for c in op.conditions]
    elif isinstance(op, HashJoinOp):
        node["out"] = list(op.spec.out)
        node["conditions"] = [repr(c) for c in op.spec.conditions]
        node["build_side"] = op.build_side
        node["access"] = "store-index" if op.index_positions is not None else "hash"
        if op.shard_strategy:
            node["shard_strategy"] = op.shard_strategy
    elif isinstance(op, StarOp):
        node["out"] = list(op.spec.out)
        node["conditions"] = [repr(c) for c in op.spec.conditions]
        node["side"] = op.side
        if op.vector_strategy:
            node["strategy"] = op.vector_strategy
    elif isinstance(op, ReachStarOp):
        node["variant"] = "same-label" if op.same_label else "any-path"
        if op.vector_strategy:
            node["strategy"] = op.vector_strategy
    children = [plan_to_dict(child) for child in op.children()]
    if children:
        node["children"] = children
    return node


@dataclass(frozen=True)
class ExplainReport:
    """The structured explain: logical analysis + physical plan, as data.

    ``logical`` carries the static analysis fields of
    :class:`repro.core.explain.Explanation`; ``plan`` the nested
    operator tree of :func:`plan_to_dict`, including per-backend
    lowering strategies (dense/sparse stars, shard join strategies).
    ``verified`` is the plan verifier's verdict
    (:func:`repro.analysis.verify.verify_compiled`): ``True`` when the
    compiled plan satisfies every ``PLAN-*`` invariant.  ``analysis``
    carries the semantic analyzer's findings
    (:func:`repro.analysis.semantics.analyze_expr` — ``SEM-*`` rule IDs)
    as finding dicts; an empty list means no verdicts fired.
    """

    expression: str
    parameters: tuple[str, ...]
    logical: dict
    backend: str
    compiled_by: str
    verified: bool
    analysis: tuple[dict, ...]
    statistics: Optional[dict]
    plan: dict

    def to_dict(self) -> dict:
        return {
            "expression": self.expression,
            "parameters": list(self.parameters),
            "logical": self.logical,
            "backend": self.backend,
            "compiled_by": self.compiled_by,
            "verified": self.verified,
            "analysis": list(self.analysis),
            "statistics": self.statistics,
            "plan": self.plan,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def summary(self) -> str:
        """A short text header (the full text form is ``explain_physical``)."""
        return (
            f"expression : {self.expression}\n"
            f"fragment   : {self.logical['fragment']}\n"
            f"backend    : {self.backend}\n"
            f"compiled by: {self.compiled_by}"
        )


def explain_report(
    expr: Expr,
    store=None,
    engine=None,
    backend=None,
) -> ExplainReport:
    """Build the structured explain for one (already optimized) expression.

    Mirrors :func:`repro.core.explain.explain_physical` — same engine
    selection, same compilation — but returns data instead of text.
    """
    from dataclasses import asdict

    from repro.analysis.semantics import analyze_expr
    from repro.analysis.verify import verify_compiled
    from repro.core.explain import compile_for_explain

    report, plan, compiled_by, resolved_backend, engine = compile_for_explain(
        expr, store, engine, backend
    )
    verified = not verify_compiled(
        expr, plan, store=store, engine=engine, backend=resolved_backend
    )
    analysis = tuple(f.to_dict() for f in analyze_expr(expr, store))
    statistics = None
    if store is not None:
        statistics = {"triples": len(store), "objects": store.n_objects}
    backend_name = resolved_backend or "set"
    backend_info: dict[str, Any] = {}
    if backend_name == "sharded":
        backend_info = {
            "shards": getattr(engine, "shards", None),
            "key_position": getattr(engine, "key_pos", 0) + 1,
            "executor": getattr(engine, "executor", None) or "thread",
        }
    logical = asdict(report)
    logical.pop("expression", None)
    return ExplainReport(
        expression=repr(expr),
        parameters=expr_params(expr),
        logical=logical,
        backend=(
            backend_name
            if not backend_info
            else f"{backend_name}({backend_info['shards']}-way, "
            f"key position {backend_info['key_position']}, "
            f"executor {backend_info['executor']})"
        ),
        compiled_by=compiled_by,
        verified=verified,
        analysis=analysis,
        statistics=statistics,
        plan=plan_to_dict(plan),
    )


# --------------------------------------------------------------------- #
# The language registry
# --------------------------------------------------------------------- #


class NativeQuery:
    """A compiled query that does not factor through the Triple Algebra.

    ``run(db)`` produces the result rows directly.  A language's compile
    step may also return an ``(Expr, NativeQuery)`` pair: the algebraic
    route with this native evaluation as the execution-time fallback
    (the Datalog complement-blowup case).
    """

    __slots__ = ("run",)

    def __init__(self, run: Callable[["Database"], frozenset]) -> None:
        self.run = run


@dataclass(frozen=True)
class Language:
    """One front-door language: a name and its compile step.

    ``compile(db, source)`` returns either an :class:`Expr` (executed
    through the session's optimizer/planner/cache pipeline), a
    :class:`NativeQuery`, or a ``(Expr, NativeQuery)`` pair — the
    algebraic route with a native fallback for execution-time budget
    errors.  ``pairs=True`` marks languages whose conventional answer
    is the π₁,₃ node-pair projection.
    """

    name: str
    compile: Callable[["Database", Any], Any]
    pairs: bool = False


def _compile_trial(db: "Database", source: Any) -> Expr:
    from repro.core.parser import parse as parse_expr

    if isinstance(source, str):
        return parse_expr(source)
    if isinstance(source, Expr):
        return source
    raise AlgebraError(
        f"cannot compile {type(source).__name__} as a TriAL expression"
    )


def _compile_gxpath(db: "Database", source: Any) -> Expr:
    from repro.graphdb.gxpath_parser import parse_gxpath
    from repro.translations.graph_to_trial import gxpath_to_trial

    if isinstance(source, str):
        source = parse_gxpath(source)
    return gxpath_to_trial(source)


def _compile_rpq(db: "Database", source: Any) -> Expr:
    from repro.translations.graph_to_trial import rpq_to_trial

    return rpq_to_trial(source)


def _compile_nre(db: "Database", source: Any) -> Expr:
    from repro.graphdb.nre import parse_nre
    from repro.translations.graph_to_trial import nre_to_trial

    if isinstance(source, str):
        source = parse_nre(source)
    return nre_to_trial(source)


def _compile_datalog(db: "Database", source: Any):
    from repro.datalog import datalog_to_trial, parse_program, run_program

    program = parse_program(source) if isinstance(source, str) else source
    native = NativeQuery(lambda db: run_program(program, db.store))
    try:
        expr = datalog_to_trial(program)
    except ReproError:
        # Outside the translatable fragments: the native stratified
        # evaluator is the only route.
        return native
    # Negated literals translate to U-based complements, which
    # materialise cubically; execution falls back to the native
    # evaluator on EvaluationBudgetError.
    return expr, native


def _compile_nsparql(db: "Database", source: Any) -> NativeQuery:
    if db.document is None:
        raise ReproError(
            "nSPARQL queries need a Database.from_rdf session "
            "(the nSPARQL axes are defined on the RDF document)"
        )
    return NativeQuery(lambda db: source.evaluate(db.document, db=db))


#: The registered front-door languages, by ``lang=`` name.
LANGUAGES: dict[str, Language] = {}


def register_language(language: Language) -> None:
    """Register (or replace) a front-door language."""
    LANGUAGES[language.name] = language


for _lang in (
    Language("trial", _compile_trial),
    Language("datalog", _compile_datalog),
    Language("gxpath", _compile_gxpath, pairs=True),
    Language("rpq", _compile_rpq, pairs=True),
    Language("nre", _compile_nre, pairs=True),
    Language("nsparql", _compile_nsparql),
):
    register_language(_lang)


def get_language(name: str) -> Language:
    """Look up a registered language, with a helpful error."""
    try:
        return LANGUAGES[name]
    except KeyError:
        raise ReproError(
            f"unknown query language {name!r}; registered: "
            + ", ".join(sorted(LANGUAGES))
        ) from None
