"""The semijoin fragment (Section 7, future work).

The paper: *"there are other ways of restricting joins to keep the
language closed […] namely use semi-joins instead.  Such restrictions
are closely related to the guarded fragment of FO."*

A semijoin ``e1 ⋉_{θ,η} e2`` keeps the e1-triples that join with *some*
e2-triple; the anti-semijoin ``e1 ▷ e2`` keeps those that join with
none.  Both are definable inside TriAL:

* ``e1 ⋉ e2  =  e1 ✶^{1,2,3}_{θ,η} e2`` (output entirely from the left);
* ``e1 ▷ e2  =  e1 − (e1 ⋉ e2)``,

so this module provides builders producing those encodings plus a
fragment classifier: an expression is in the *semijoin algebra* when
every join keeps only left positions (out ⊆ {1,2,3}) and no star is
used.  The paper notes some of its key queries (reachability!) are not
expressible with semijoins alone — constructively visible here in that
``reach_forward`` fails the classifier.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.conditions import Cond, as_conditions
from repro.core.expressions import Diff, Expr, Intersect, Join, Select, Star, Union

__all__ = ["semijoin", "antijoin", "in_semijoin_algebra"]


def semijoin(
    left: Expr, right: Expr, conditions: str | Iterable[Cond] = ""
) -> Join:
    """``left ⋉_{θ,η} right`` — left triples with at least one match."""
    return Join(left, right, (0, 1, 2), as_conditions(conditions))


def antijoin(
    left: Expr, right: Expr, conditions: str | Iterable[Cond] = ""
) -> Diff:
    """``left ▷_{θ,η} right`` — left triples with no match."""
    return Diff(left, semijoin(left, right, conditions))


def in_semijoin_algebra(expr: Expr) -> bool:
    """Is the expression inside the semijoin restriction of TriAL?

    Every join's output must come entirely from its left operand and no
    recursion is allowed (the guarded fragment has no fixpoints).
    Set operations and selections are unrestricted.
    """
    for node in expr.walk():
        if isinstance(node, Star):
            return False
        if isinstance(node, Join) and any(i >= 3 for i in node.out):
            return False
        if not isinstance(node, (Join, Select, Union, Diff, Intersect)) and node.children():
            return False
    return True
