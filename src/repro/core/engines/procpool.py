"""Process-parallel shard execution: worker pool, exchange, coordinator.

The thread executor in :mod:`repro.core.engines.sharded` is GIL-bound
outside the numpy kernels; this module runs the *same* compiled plans
shard-wise across long-lived **worker processes** instead:

* the store is published once into shared memory
  (:mod:`repro.triplestore.shm`); workers attach zero-copy;
* each query ships the bound physical plan (picklable post-
  ``bind_plan``) to every worker over its control pipe; workers execute
  the plan SPMD-style with a :class:`_WorkerExecContext` — the standard
  :class:`~repro.core.engines.sharded.ShardedExecContext` with its
  collective seams overridden — owning the shards ``s`` with
  ``s % nworkers == rank`` and holding empty placeholders elsewhere, so
  every per-shard kernel runs unchanged;
* cross-shard data movement (the re-hash *exchange*, broadcasts, the
  fixpoint's global frontier count) happens at deterministic collective
  points sequenced by the coordinator: workers post per-target buffers
  and the coordinator redistributes the *manifests*.  Payloads above
  :data:`_SHM_MIN_BYTES` travel as shared-memory staging segments
  (peers attach and copy slices; the bytes never cross a pipe); smaller
  ones are framed inline.  The framing is transport-shaped — a frame is
  ``(kind, location, entries)`` — so a socket transport can replace the
  staging segments for multi-host execution without touching the
  execution code;
* fixpoint iterations stay **coordinator-driven**: the loop condition is
  a global-sum collective over the per-worker frontier counts, with the
  canonical position-0 accumulator of the thread path;
* the coordinator monitors worker **heartbeats** (a daemon thread in
  each worker), process liveness and a per-query **deadline**.  A dead
  or wedged worker aborts the in-flight query, is killed and respawned,
  and the query is replayed once from shared memory before a
  :class:`~repro.errors.ShardWorkerError` is raised — a worker killed
  mid-query either re-runs to the correct result or fails cleanly,
  never hangs.

The pool is process-wide (keyed by worker count) and shut down at exit;
:func:`get_pool` returns ``None`` when workers cannot be started, which
callers treat as "fall back to the thread path".
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import time
import warnings
from multiprocessing import connection, get_context, shared_memory
from typing import Any, Optional

import numpy as np

from repro.errors import ReproError, ShardWorkerError
from repro.core.engines.sharded import ShardedExecContext, ShardedKeys
from repro.core.engines.vectorized import _EMPTY, _local_mask
from repro.core.plan import IndexLookupOp, ScanOp, plan_verify_enabled
from repro.triplestore.columnar import sorted_unique
from repro.triplestore.shm import attach_segment, attach_worker_store

__all__ = ["ProcessShardPool", "get_pool", "notify_store_closed", "shutdown_all"]

#: Collective payloads below this many bytes are framed inline over the
#: control pipe; larger ones go through shared-memory staging segments.
_SHM_MIN_BYTES = 64 * 1024

#: Heartbeat interval (seconds) for the worker daemon thread.
_HEARTBEAT_ENV = "REPRO_SHARD_HEARTBEAT"
_DEFAULT_HEARTBEAT = 0.5

#: Per-query deadline (seconds) before the coordinator declares a hang.
_TIMEOUT_ENV = "REPRO_SHARD_TIMEOUT"
_DEFAULT_TIMEOUT = 120.0

#: How long a silent (no heartbeat) but alive worker is tolerated.
_STALE_FACTOR = 30.0

#: How long to wait for a fresh worker's ``ready`` message.
_SPAWN_TIMEOUT = 30.0


def _heartbeat_interval() -> float:
    try:
        return max(0.05, float(os.environ.get(_HEARTBEAT_ENV, _DEFAULT_HEARTBEAT)))
    except ValueError:
        return _DEFAULT_HEARTBEAT


def _query_timeout() -> float:
    try:
        return max(1.0, float(os.environ.get(_TIMEOUT_ENV, _DEFAULT_TIMEOUT)))
    except ValueError:
        return _DEFAULT_TIMEOUT


# --------------------------------------------------------------------- #
# Frames: the exchange wire format
# --------------------------------------------------------------------- #
#
# A frame carries one or more numpy arrays from one worker to its peers:
#
#   ("buf", None, entries)     entries: {key: (shape, dtype_str, bytes)}
#   ("shm", segname, entries)  entries: {key: (shape, dtype_str, offset)}
#
# ``key`` is the target shard id for exchanges, or 0 for single-array
# payloads (allgather, final results).  Only the entries dict differs
# between transports, so the coordinator can filter per-target entries
# without ever touching array bytes — and a socket transport would only
# need a third tag here.


def _pack_frame(arrays: dict[int, np.ndarray], staging: "_StagingSet"):
    total = sum(a.nbytes for a in arrays.values())
    if total < _SHM_MIN_BYTES:
        entries = {
            key: (a.shape, str(a.dtype), a.tobytes()) for key, a in arrays.items()
        }
        return ("buf", None, entries)
    shm = staging.create(total)
    entries = {}
    offset = 0
    for key, a in arrays.items():
        entries[key] = (a.shape, str(a.dtype), offset)
        if a.nbytes:
            view = np.ndarray(a.shape, dtype=a.dtype, buffer=shm.buf, offset=offset)
            view[:] = a
        offset += a.nbytes
    return ("shm", shm.name, entries)


def _filter_frame(frame, wanted) -> tuple:
    """The sub-frame carrying only the ``wanted`` keys (metadata-only)."""
    kind, loc, entries = frame
    return (kind, loc, {k: v for k, v in entries.items() if k in wanted})


def _read_frame(frame) -> dict[int, np.ndarray]:
    """Materialise a frame's arrays (copies; shm mappings are dropped)."""
    kind, loc, entries = frame
    out: dict[int, np.ndarray] = {}
    if kind == "buf":
        for key, (shape, dtype, data) in entries.items():
            out[key] = np.frombuffer(data, dtype=dtype).reshape(shape)
        return out
    if not entries:
        return out
    shm = attach_segment(loc)
    try:
        for key, (shape, dtype, offset) in entries.items():
            view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)
            out[key] = view.copy()
    finally:
        shm.close()
    return out


class _StagingSet:
    """A worker's staging segments with barrier-deferred unlinking.

    A segment posted at collective ``seq`` may be read by peers until
    they post collective ``seq+1`` (or their final ``done``), so the
    creator unlinks it only after *receiving* the next collective
    response / the final ``fin`` barrier — both imply every peer has
    moved past the read.
    """

    def __init__(self) -> None:
        self._fresh: list[shared_memory.SharedMemory] = []
        self._aging: list[shared_memory.SharedMemory] = []

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        shm = shared_memory.SharedMemory(
            name=f"repro-xchg-{os.getpid():x}-{time.monotonic_ns():x}",
            create=True,
            size=max(nbytes, 1),
        )
        self._fresh.append(shm)
        return shm

    def advance(self) -> None:
        """A barrier passed: everything from the previous round is dead."""
        for shm in self._aging:
            _unlink_quiet(shm)
        self._aging = self._fresh
        self._fresh = []

    def release_all(self) -> None:
        for shm in self._aging + self._fresh:
            _unlink_quiet(shm)
        self._aging = []
        self._fresh = []


def _unlink_quiet(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except Exception:  # pragma: no cover
        pass
    try:
        shm.unlink()
    except Exception:
        pass


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #


class _Aborted(Exception):
    """The coordinator abandoned the in-flight query."""


class _WorkerState:
    """Long-lived per-process worker state (store cache, control pipe)."""

    def __init__(self, rank: int, nworkers: int, conn) -> None:
        self.rank = rank
        self.nworkers = nworkers
        self.conn = conn
        self.send_lock = threading.Lock()
        self.stores: dict[str, Any] = {}
        self.staging = _StagingSet()
        self.pending_detach: list[str] = []
        self.fault: Optional[dict] = None

    def send(self, msg) -> None:
        with self.send_lock:
            self.conn.send(msg)

    def attach(self, segment: str):
        store = self.stores.get(segment)
        if store is None:
            store = attach_worker_store(segment)
            self.stores[segment] = store
        return store

    def detach(self, segment: str) -> None:
        store = self.stores.pop(segment, None)
        if store is not None:
            store.close()

    def collective(self, qid: int, seq: int, kind: str, payload):
        """Post one collective and block for the coordinator's response."""
        self.send(("coll", qid, seq, kind, payload))
        while True:
            msg = self.conn.recv()
            tag = msg[0]
            if tag == "collr":
                if msg[1] == qid and msg[2] == seq:
                    # Every peer reached this barrier: staging posted at
                    # the previous one can no longer be read.
                    self.staging.advance()
                    return msg[3]
                continue  # stale response from an aborted query
            if tag == "abort":
                if msg[1] == qid:
                    raise _Aborted()
                continue
            if tag == "detach":
                self.pending_detach.append(msg[1])
                continue
            if tag == "exit":  # pragma: no cover — shutdown mid-query
                raise SystemExit(0)
            # A new query mid-collective means the coordinator moved on
            # without this rank noticing the abort; consuming (and thus
            # losing) that query would stall it, so die and let the
            # coordinator's liveness check respawn a clean worker.
            os._exit(13)  # pragma: no cover — guarded by abort ordering


class _WorkerExecContext(ShardedExecContext):
    """The worker's execution context: same kernels, collective seams.

    Owns the shards ``s`` with ``s % nworkers == rank``; every other
    entry of every :class:`ShardedKeys` is an empty placeholder, so the
    inherited per-shard operator code computes real work only for owned
    shards and the collective overrides below stitch the ranks together.
    """

    __slots__ = ("rank", "nworkers", "state", "qid", "seq")

    def __init__(self, state: _WorkerState, attached, qid: int, spec: dict) -> None:
        self.state = state
        self.rank = state.rank
        self.nworkers = state.nworkers
        self.qid = qid
        self.seq = 0
        self.store = None
        self.ss = attached.ss
        self.cs = attached.ss.cs
        self.rho = attached.rho
        self.max_universe_objects = spec["max_universe_objects"]
        self.max_matrix_objects = spec["max_matrix_objects"]
        self.k = attached.ss.k
        self.pool = None
        self.dispatch_min = 0
        self._memo = {}
        # Workers re-read the flag themselves: spawn re-imports this
        # module, so the coordinator's value is not inherited.
        self._verify = plan_verify_enabled()

    # -- ownership ------------------------------------------------------ #

    def _owned(self, i: int) -> bool:
        return i % self.nworkers == self.rank

    def _mask(self, shards: list[np.ndarray]) -> list[np.ndarray]:
        return [s if self._owned(i) else _EMPTY for i, s in enumerate(shards)]

    # -- collectives ---------------------------------------------------- #

    def _coll(self, kind: str, payload):
        """One collective round-trip; array payloads are framed here.

        Packing happens after the fault check so an injected death never
        leaves a freshly created staging segment behind.
        """
        _maybe_die(self.state.fault, self.rank, "collective")
        if kind != "sum":
            payload = _pack_frame(payload, self.state.staging)
        self.seq += 1
        return self.state.collective(self.qid, self.seq, kind, payload)

    def _gather_list(self, arrays: list[np.ndarray]) -> np.ndarray:
        local = arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
        frames = self._coll("gather", {0: local})
        parts = []
        for rank, frame in enumerate(frames):
            if rank == self.rank:
                parts.append(local)
            else:
                got = _read_frame(frame)
                if got:
                    parts.append(got[0])
        return np.concatenate(parts)

    def _global_total(self, sk: ShardedKeys) -> int:
        return self._coll("sum", sk.total)

    def _replicated_raw(self, keys: np.ndarray) -> ShardedKeys:
        # Every rank holds the same globally-known array (it came out of
        # an allgather), so each keeps its own shards — a partition with
        # no exchange.
        return ShardedKeys(self._mask(self.ss.partition(keys, 0)), 0)

    def _all_to_all(self, buckets: dict[int, list[np.ndarray]], template: np.ndarray):
        """One exchange pass: per-target buckets in, per-target rows out.

        ``buckets[t]`` holds this rank's blocks destined for shard ``t``;
        the return maps each *owned* ``t`` to the concatenated blocks
        from every rank.  ``template`` fixes the dtype/shape of empties.
        """
        outgoing = {
            t: (blocks[0] if len(blocks) == 1 else np.concatenate(blocks))
            for t, blocks in buckets.items()
        }
        frames = self._coll("xchg", outgoing)
        empty = template[:0]
        received: dict[int, list[np.ndarray]] = {
            t: [outgoing.get(t, empty)] for t in range(self.k) if self._owned(t)
        }
        for rank, frame in enumerate(frames):
            if rank == self.rank or frame is None:
                continue
            for t, arr in _read_frame(frame).items():
                received[t].append(arr)
        return received

    def _from_raw(self, pieces: list[np.ndarray], pos: int) -> ShardedKeys:
        if self.k == 1:  # pragma: no cover — process path needs k > 1
            return super()._from_raw(pieces, pos)
        buckets: dict[int, list[np.ndarray]] = {t: [] for t in range(self.k)}
        for i, piece in enumerate(pieces):
            if not self._owned(i) or not len(piece):
                continue
            for t, b in enumerate(self.ss.partition(piece, pos)):
                if len(b):
                    buckets[t].append(b)
        received = self._all_to_all(
            {t: blocks for t, blocks in buckets.items() if blocks}, _EMPTY
        )
        shards = []
        for t in range(self.k):
            if self._owned(t):
                chunks = [c for c in received[t] if len(c)]
                shards.append(
                    sorted_unique(np.concatenate(chunks)) if chunks else _EMPTY
                )
            else:
                shards.append(_EMPTY)
        return ShardedKeys(shards, pos)

    def _exchange_cols(
        self, cols_list: list[np.ndarray], pos: int, on_data: bool
    ) -> list[np.ndarray]:
        k = self.k
        if k == 1:  # pragma: no cover — process path needs k > 1
            return cols_list
        cs = self.cs
        empty_cols = cols_list[0][:0] if cols_list else _EMPTY.reshape(0, 3)
        buckets: dict[int, list[np.ndarray]] = {t: [] for t in range(k)}
        for i, cols in enumerate(cols_list):
            if not self._owned(i) or not len(cols):
                continue
            comp = cols[:, pos]
            if on_data:
                comp = cs.dv_codes[comp]
            ids = comp % k
            for t in range(k):
                b = cols[ids == t]
                if len(b):
                    buckets[t].append(b)
        received = self._all_to_all(
            {t: blocks for t, blocks in buckets.items() if blocks}, empty_cols
        )
        out = []
        for t in range(k):
            if self._owned(t):
                chunks = [c for c in received[t] if len(c)]
                out.append(
                    chunks[0]
                    if len(chunks) == 1
                    else np.concatenate(chunks)
                    if chunks
                    else empty_cols
                )
            else:
                out.append(empty_cols)
        return out

    # -- owned-only base relations -------------------------------------- #

    def _dispatch(self, op) -> ShardedKeys:
        if isinstance(op, ScanOp):
            return ShardedKeys(
                self._mask(self.ss.relation_shards(op.name)), self.ss.key_pos
            )
        return super()._dispatch(op)

    def _index_lookup(self, op: IndexLookupOp) -> ShardedKeys:
        cs = self.cs
        shards = self.ss.relation_shards(op.name)
        out = []
        for i, shard in enumerate(shards):
            if not self._owned(i) or not len(shard):
                out.append(_EMPTY)
                continue
            cols = cs.unpack(shard)
            mask = np.ones(len(cols), dtype=bool)
            for pos, value in zip(op.positions, op.bound_key()):
                mask &= cols[:, pos] == cs.code_of(value)
            if op.residual:
                mask &= _local_mask(cs, op.residual, cols)
            out.append(shard[mask])
        return ShardedKeys(out, self.ss.key_pos)

    def _universe_shards(self, active: np.ndarray) -> list[np.ndarray]:
        n = self.cs.radix
        out = []
        for t in range(self.k):
            if not self._owned(t):
                out.append(_EMPTY)
                continue
            subs = active[active % self.k == t]
            if not len(subs):
                out.append(_EMPTY)
                continue
            pairs = (subs[:, None] * n + active[None, :]).reshape(-1)
            keys = (pairs[:, None] * n + active[None, :]).reshape(-1)
            out.append(keys)
        return out


def _maybe_die(fault: Optional[dict], rank: int, when: str) -> None:
    """Fault-injection hook for the restart/retry tests.

    ``fault = {"rank": r, "when": "start"|"collective", "marker": path}``
    kills worker ``r`` at the given point — once if a marker path is
    given (the first death leaves the marker so the replay survives),
    every time otherwise.
    """
    if not fault or fault.get("rank") != rank or fault.get("when", "start") != when:
        return
    marker = fault.get("marker")
    if marker is not None:
        if os.path.exists(marker):
            return
        with open(marker, "w", encoding="utf-8"):
            pass
    os._exit(17)


def _worker_main(rank: int, nworkers: int, conn, hb_interval: float) -> None:
    """Entry point of one worker process (spawn start method)."""
    state = _WorkerState(rank, nworkers, conn)
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(hb_interval):
            try:
                state.send(("hb",))
            except (BrokenPipeError, OSError):  # parent died
                os._exit(0)

    threading.Thread(target=beat, name="repro-heartbeat", daemon=True).start()
    state.send(("ready",))
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            tag = msg[0]
            if tag == "exit":
                break
            if tag == "detach":
                state.detach(msg[1])
                continue
            if tag == "abort":
                continue  # stale: the query already ended here
            if tag != "query":
                continue  # stale collective response etc.
            qid, spec = msg[1], msg[2]
            for name in state.pending_detach:
                state.detach(name)
            state.pending_detach = []
            try:
                state.fault = spec.get("fault")
                _maybe_die(state.fault, rank, "start")
                attached = state.attach(spec["segment"])
                ctx = _WorkerExecContext(state, attached, qid, spec)
                sk = ctx.run(spec["plan"])
                keys = np.ascontiguousarray(sk.gather(), dtype=np.int64)
                state.send(("done", qid, ("buf", None, {0: (keys.shape, "int64", keys.tobytes())})))
                # Wait for the fin barrier: peers may still be reading
                # this rank's staging from the final collective.
                while True:
                    fin = conn.recv()
                    if fin[0] in ("fin", "abort") and fin[1] == qid:
                        break
                    if fin[0] == "detach":
                        state.pending_detach.append(fin[1])
                    elif fin[0] == "exit":
                        return
            except _Aborted:
                pass
            except SystemExit:
                raise
            except BaseException as exc:  # noqa: BLE001 — shipped to parent
                try:
                    blob = pickle.dumps(exc)
                except Exception:
                    blob = pickle.dumps(ShardWorkerError(f"worker {rank}: {exc!r}"))
                try:
                    state.send(("error", qid, blob))
                except (BrokenPipeError, OSError):
                    break
            finally:
                state.fault = None
                state.staging.release_all()
    finally:
        state.staging.release_all()
        for store in state.stores.values():
            store.close()


# --------------------------------------------------------------------- #
# Coordinator side
# --------------------------------------------------------------------- #


class _WorkerFailure(Exception):
    """A worker died, wedged or broke protocol; carries the dead ranks."""

    def __init__(self, message: str, ranks: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        self.ranks = ranks


class _Worker:
    """Coordinator-side record of one worker process."""

    __slots__ = ("rank", "process", "conn", "last_hb")

    def __init__(self, rank: int, process, conn) -> None:
        self.rank = rank
        self.process = process
        self.conn = conn
        self.last_hb = time.monotonic()


class ProcessShardPool:
    """A fixed-size pool of shard worker processes plus the coordinator.

    One query runs at a time (queries are themselves shard-parallel);
    the pool is long-lived and shared across engines and stores — the
    per-query state is only the plan and the store's segment name.
    """

    def __init__(self, nworkers: int) -> None:
        self.nworkers = nworkers
        self._ctx = get_context("spawn")
        self._workers: list[Optional[_Worker]] = [None] * nworkers
        # Reentrant on purpose: a garbage-collected store handle can
        # fire notify_store_closed -> broadcast_detach on the *same*
        # thread that is inside run_query (GC runs at any allocation),
        # and a plain lock would self-deadlock.  Workers defer detach
        # commands that arrive mid-query, so the reentrant interleaving
        # is protocol-safe.
        self._lock = threading.RLock()
        self._qid = 0
        self._hb = _heartbeat_interval()
        self._closed = False
        for rank in range(nworkers):
            self._spawn(rank)
        self._await_ready(range(nworkers))

    # -- lifecycle ------------------------------------------------------ #

    def _spawn(self, rank: int) -> None:
        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(rank, self.nworkers, child, self._hb),
            name=f"repro-shard-{rank}",
            daemon=True,
        )
        process.start()
        child.close()
        self._workers[rank] = _Worker(rank, process, parent)

    def _await_ready(self, ranks) -> None:
        deadline = time.monotonic() + _SPAWN_TIMEOUT
        for rank in ranks:
            worker = self._workers[rank]
            assert worker is not None
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not worker.conn.poll(min(remaining, 0.2)):
                    if remaining <= 0:
                        raise ShardWorkerError(
                            f"shard worker {rank} failed to start within "
                            f"{_SPAWN_TIMEOUT:.0f}s"
                        )
                    continue
                msg = worker.conn.recv()
                if msg[0] == "ready":
                    worker.last_hb = time.monotonic()
                    break

    def close(self) -> None:
        with self._lock:
            self._closed = True
            for worker in self._workers:
                if worker is None:
                    continue
                try:
                    worker.conn.send(("exit",))
                except (BrokenPipeError, OSError):
                    pass
            for worker in self._workers:
                if worker is None:
                    continue
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():  # pragma: no cover — wedged
                    worker.process.terminate()
                    worker.process.join(timeout=2.0)
                worker.conn.close()
            self._workers = [None] * self.nworkers

    def broadcast_detach(self, segment: str) -> None:
        """Ask every worker to drop its mapping of ``segment``."""
        with self._lock:
            if self._closed:
                return
            for worker in self._workers:
                if worker is None:
                    continue
                try:
                    worker.conn.send(("detach", segment))
                except (BrokenPipeError, OSError):
                    pass

    # -- queries -------------------------------------------------------- #

    def run_query(
        self,
        segment: str,
        plan,
        *,
        max_universe_objects: int = 400,
        max_matrix_objects: int = 512,
        fault: Optional[dict] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
    ) -> np.ndarray:
        """Run one compiled plan; returns the merged sorted unique keys.

        A worker failure (death, heartbeat silence, protocol breach)
        aborts the attempt, restarts the failed workers and replays the
        query — ``retries`` times — before raising
        :class:`ShardWorkerError`.  A deadline overrun raises
        immediately: replaying a hang would hang again.
        """
        spec = {
            "segment": segment,
            "plan": plan,
            "max_universe_objects": max_universe_objects,
            "max_matrix_objects": max_matrix_objects,
            "fault": fault,
        }
        deadline = time.monotonic() + (timeout if timeout is not None else _query_timeout())
        with self._lock:
            if self._closed:
                raise ShardWorkerError("worker pool is closed")
            attempts = 0
            while True:
                try:
                    return self._attempt(spec, deadline)
                except _WorkerFailure as failure:
                    attempts += 1
                    # Every failure path aborts before raising, but the
                    # broadcast is repeated here so a send failure part
                    # way through a query start cannot leave live
                    # workers running it (duplicate aborts are ignored).
                    self._abort(self._qid)
                    self._recover(failure)
                    if attempts > retries:
                        raise ShardWorkerError(
                            f"shard query failed after {attempts} attempt(s): "
                            f"{failure}"
                        ) from failure

    def _attempt(self, spec: dict, deadline: float) -> np.ndarray:
        self._qid += 1
        qid = self._qid
        workers = self._workers
        for worker in workers:
            assert worker is not None
            worker.last_hb = time.monotonic()
            try:
                worker.conn.send(("query", qid, spec))
            except (BrokenPipeError, OSError):
                raise _WorkerFailure(
                    f"worker {worker.rank} is gone", (worker.rank,)
                ) from None

        stale_after = max(self._hb * _STALE_FACTOR, 5.0)
        pending_coll: dict[tuple[int, str], dict[int, Any]] = {}
        done: dict[int, Any] = {}
        conns = {w.conn: w for w in workers if w is not None}

        while len(done) < self.nworkers:
            now = time.monotonic()
            if now > deadline:
                self._abort(qid)
                raise ShardWorkerError(
                    "shard query missed its deadline "
                    f"({_TIMEOUT_ENV} / the timeout argument); workers were aborted"
                )
            dead = [
                w.rank
                for w in workers
                if w is not None
                and (
                    not w.process.is_alive()
                    or now - w.last_hb > stale_after
                )
            ]
            if dead:
                self._abort(qid)
                raise _WorkerFailure(
                    f"worker(s) {dead} died or stopped heartbeating mid-query",
                    tuple(dead),
                )
            for conn_ready in connection.wait(list(conns), timeout=0.05):
                worker = conns[conn_ready]
                try:
                    msg = conn_ready.recv()
                except (EOFError, OSError):
                    self._abort(qid)
                    raise _WorkerFailure(
                        f"worker {worker.rank} closed its pipe mid-query",
                        (worker.rank,),
                    ) from None
                worker.last_hb = time.monotonic()
                tag = msg[0]
                if tag == "hb" or tag == "ready":
                    continue
                if msg[1] != qid:
                    continue  # stale message from an aborted attempt
                if tag == "error":
                    try:
                        exc = pickle.loads(msg[2])
                    except Exception:
                        exc = ShardWorkerError(
                            f"worker {worker.rank} failed (unpicklable error)"
                        )
                    self._abort(qid)
                    raise exc
                if tag == "done":
                    done[worker.rank] = msg[2]
                    continue
                if tag == "coll":
                    _, _, seq, kind, payload = msg
                    bucket = pending_coll.setdefault((seq, kind), {})
                    bucket[worker.rank] = payload
                    if len(bucket) == self.nworkers:
                        self._respond(qid, seq, kind, bucket)
                        pending_coll.pop((seq, kind))
                    continue
                self._abort(qid)
                raise _WorkerFailure(
                    f"worker {worker.rank} broke protocol with {tag!r}",
                    (worker.rank,),
                )

        for worker in workers:
            assert worker is not None
            try:
                worker.conn.send(("fin", qid))
            except (BrokenPipeError, OSError):
                raise _WorkerFailure(
                    f"worker {worker.rank} died at the fin barrier",
                    (worker.rank,),
                ) from None
        pieces = []
        for rank in range(self.nworkers):
            got = _read_frame(done[rank])
            if got and len(got[0]):
                pieces.append(got[0])
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return sorted_unique(np.concatenate(pieces))

    def _respond(self, qid: int, seq: int, kind: str, payloads: dict[int, Any]) -> None:
        """All ranks reached collective ``seq``: compute and fan out."""
        workers = self._workers
        if kind == "sum":
            total = int(sum(payloads.values()))
            for worker in workers:
                assert worker is not None
                worker.conn.send(("collr", qid, seq, total))
            return
        if kind == "gather":
            frames = [payloads[rank] for rank in range(self.nworkers)]
            for worker in workers:
                assert worker is not None
                worker.conn.send(("collr", qid, seq, frames))
            return
        if kind == "xchg":
            for worker in workers:
                assert worker is not None
                w = worker.rank
                owned = {
                    t
                    for frame in payloads.values()
                    for t in frame[2]
                    if t % self.nworkers == w
                }
                response = [
                    None
                    if rank == w
                    else _filter_frame(payloads[rank], owned)
                    for rank in range(self.nworkers)
                ]
                worker.conn.send(("collr", qid, seq, response))
            return
        raise _WorkerFailure(f"unknown collective kind {kind!r}")  # pragma: no cover

    def _abort(self, qid: int) -> None:
        for worker in self._workers:
            if worker is None:
                continue
            try:
                worker.conn.send(("abort", qid))
            except (BrokenPipeError, OSError):
                pass

    def _recover(self, failure: _WorkerFailure) -> None:
        """Kill and respawn the failed ranks (plus anything else dead)."""
        ranks = set(failure.ranks)
        for worker in self._workers:
            if worker is not None and not worker.process.is_alive():
                ranks.add(worker.rank)
        for rank in ranks:
            worker = self._workers[rank]
            if worker is None:
                continue
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():  # pragma: no cover — wedged
                    worker.process.kill()
                    worker.process.join(timeout=2.0)
            worker.conn.close()
            self._spawn(rank)
        if ranks:
            self._await_ready(sorted(ranks))


# --------------------------------------------------------------------- #
# Process-wide pool registry
# --------------------------------------------------------------------- #

_POOLS_LOCK = threading.Lock()
_POOLS: dict[int, ProcessShardPool] = {}
_SPAWN_BROKEN = False


def get_pool(nworkers: int) -> Optional[ProcessShardPool]:
    """The shared pool with ``nworkers`` workers (``None`` if unavailable).

    Pools are created lazily, cached per worker count, and shut down at
    interpreter exit.  When workers cannot be spawned at all (platform
    without working ``spawn``/shared memory), the failure is remembered
    and every caller falls back to the thread executor.
    """
    global _SPAWN_BROKEN
    if nworkers < 1 or _SPAWN_BROKEN:
        return None
    with _POOLS_LOCK:
        pool = _POOLS.get(nworkers)
        if pool is not None:
            return pool
        try:
            pool = ProcessShardPool(nworkers)
        except Exception as exc:
            _SPAWN_BROKEN = True
            warnings.warn(
                f"process shard executor unavailable ({exc!r}); "
                "falling back to the thread executor",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        _POOLS[nworkers] = pool
        return pool


def notify_store_closed(segment: str) -> None:
    """A store segment is being unlinked: drop worker mappings first."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
    for pool in pools:
        pool.broadcast_detach(segment)


def shutdown_all() -> None:
    """Close every pool (idempotent; also runs at interpreter exit)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        try:
            pool.close()
        except Exception:  # pragma: no cover
            pass


atexit.register(shutdown_all)
