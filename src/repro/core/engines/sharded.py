"""Shard-parallel columnar execution of compiled physical plans.

:class:`ShardedEngine` is the planner seam's fourth backend: it executes
the *same* physical operator trees as every other engine, over the
``k``-way hash-partitioned view of the store's columnar encoding
(:class:`~repro.triplestore.sharded.ShardedColumnarStore`).  Every
intermediate result is a list of ``k`` sorted unique packed-key arrays,
hash-partitioned on one triple position — which makes the shards
pairwise disjoint, so per-shard results union to the global result with
no cross-shard deduplication:

* ``ScanOp`` fans out to the store's cached per-shard arrays (the
  partition is built once per store, like indexes and statistics);
* ``HashJoinOp`` runs as ``k`` independent merge joins.  When both
  inputs are already partitioned on the join key (*co-partitioned*,
  e.g. two subject-partitioned scans joined on ``1=1'``), shard ``s``
  joins shard ``s`` directly; otherwise one *exchange* pass re-hashes
  the misaligned side(s) on the join-key component first (ρ-codes for η
  keys).  Joins with no cross equality broadcast the gathered right
  operand to every left shard.  :func:`~repro.core.plan.choose_shard_key`
  and :func:`~repro.core.plan.shard_output_partition` — shared with the
  ``explain``-time lowering annotations — decide both;
* set operations align the two partitions and merge shard-wise with the
  sorted-array algebra of :mod:`repro.core.engines.vectorized`;
* general stars and sparse reach stars run the semi-naive fixpoint with
  a canonical position-0 accumulator: the constant operand is filtered
  and exchanged once outside the loop, each round exchanges only the
  frontier.  Dense reach stars gather (the boolean matrix is already
  the compact representation) and re-partition the closure;
* shard tasks run on a :class:`~concurrent.futures.ThreadPoolExecutor`
  when inputs are large enough to amortise dispatch — the numpy
  sort/searchsorted kernels inside the merge join release the GIL, so
  shards overlap on multi-core hosts.  Small inputs run serially: a
  thread hop costs more than a 1000-row merge join.

Cross-backend agreement with the set and columnar executors (and the
NaiveEngine oracle) is enforced by ``tests/diffcheck.py``.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional

import numpy as np

from repro.errors import (
    EvaluationBudgetError,
    MatrixTooLargeError,
    PlanVerificationError,
    ReproError,
)
from repro.core.conditions import Cond
from repro.core.expressions import RIGHT, Expr
from repro.core.engines.base import TripleSet
from repro.core.engines.vectorized import (
    _EMPTY,
    _MAX_DENSE_LABELS,
    _REACH_SPEC_ANY,
    _REACH_SPEC_SAME,
    _diff_sorted,
    _intersect_sorted,
    _local_mask,
    _merge_join,
    _union_sorted,
    VectorEngine,
    reach_dense,
)
from repro.core.plan import (
    DENSE_MATRIX_MAX_OBJECTS,
    DiffOp,
    EmptyOp,
    FilterOp,
    HashJoinOp,
    IndexLookupOp,
    IntersectOp,
    JoinSpec,
    PlanOp,
    ReachStarOp,
    ScanOp,
    StarOp,
    UnionOp,
    UniverseOp,
    choose_shard_key,
    compile_plan,
    plan_verify_enabled,
    shard_output_partition,
)
from repro.triplestore.columnar import sorted_unique
from repro.triplestore.model import Triplestore

__all__ = [
    "DEFAULT_SHARDS",
    "SHARD_DISPATCH_MIN",
    "SHARD_EXECUTORS",
    "ShardedEngine",
    "ShardedExecContext",
    "ShardedKeys",
    "default_shard_executor",
    "default_worker_count",
    "shard_dispatch_min",
]

#: Environment override for the default shard count (used by CI to run
#: the whole suite shard-wise: ``REPRO_BACKEND=sharded REPRO_SHARDS=4``).
_SHARDS_ENV = "REPRO_SHARDS"

#: Environment override for the default shard executor (``thread`` or
#: ``process``; CI runs the suite with ``REPRO_SHARD_EXECUTOR=process``).
_EXECUTOR_ENV = "REPRO_SHARD_EXECUTOR"

#: Environment override for the process executor's worker count.
_WORKERS_ENV = "REPRO_SHARD_WORKERS"

#: Environment override for :data:`SHARD_DISPATCH_MIN`.
_DISPATCH_MIN_ENV = "REPRO_SHARD_DISPATCH_MIN"

#: Shard count when neither the constructor nor the environment says.
DEFAULT_SHARDS = 4

#: The shard executors: ``thread`` runs shard tasks on an in-process
#: pool (numpy kernels release the GIL); ``process`` dispatches whole
#: plans to a long-lived worker-process pool over shared memory
#: (:mod:`repro.core.engines.procpool`).
SHARD_EXECUTORS = ("thread", "process")

#: The dispatch amortization threshold, in input rows.  Below it a shard
#: task runs inline (a thread hop costs more than a 1000-row merge
#: join), and the process executor falls back to the in-process path
#: entirely (worker dispatch costs more still).  Override with the
#: ``REPRO_SHARD_DISPATCH_MIN`` environment variable or the engine's
#: ``dispatch_min`` parameter.
SHARD_DISPATCH_MIN = 4096


def shard_dispatch_min() -> int:
    """The configured dispatch threshold (env override or the default)."""
    raw = os.environ.get(_DISPATCH_MIN_ENV)
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            raise ReproError(
                f"invalid {_DISPATCH_MIN_ENV}={raw!r}; expected an integer"
            ) from None
    return SHARD_DISPATCH_MIN


def default_shard_executor() -> str:
    """The configured shard executor: ``REPRO_SHARD_EXECUTOR`` or thread."""
    raw = os.environ.get(_EXECUTOR_ENV)
    if raw:
        if raw not in SHARD_EXECUTORS:
            raise ReproError(
                f"invalid {_EXECUTOR_ENV}={raw!r}; expected one of "
                f"{', '.join(SHARD_EXECUTORS)}"
            )
        return raw
    return "thread"


def default_worker_count(shards: int) -> int:
    """Worker processes for the process executor (env override first).

    Defaults to one worker per shard, bounded by the host's cores (but
    never below two — a single "pool" would serialize with extra hops)
    and a cap of eight.
    """
    raw = os.environ.get(_WORKERS_ENV)
    if raw:
        try:
            value = int(raw)
        except ValueError:
            value = 0
        if value < 1:
            raise ReproError(
                f"invalid {_WORKERS_ENV}={raw!r}; expected a positive integer"
            )
        return value
    return max(1, min(shards, max(os.cpu_count() or 1, 2), 8))

#: One process-wide shard pool, created lazily and shared by every
#: engine instance — sessions are created freely (one per Database), so
#: per-engine pools would leak a thread set each.
_POOL_LOCK = threading.Lock()
_SHARED_POOL: Optional[ThreadPoolExecutor] = None


def _shared_pool() -> Optional[ThreadPoolExecutor]:
    """The process-wide shard pool (``None`` on single-core hosts)."""
    global _SHARED_POOL
    workers = min(os.cpu_count() or 1, 8)
    if workers <= 1:
        return None
    with _POOL_LOCK:
        if _SHARED_POOL is None:
            _SHARED_POOL = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            )
    return _SHARED_POOL


def default_shard_count() -> int:
    """The configured shard count: ``REPRO_SHARDS`` or :data:`DEFAULT_SHARDS`."""
    raw = os.environ.get(_SHARDS_ENV)
    if raw:
        try:
            value = int(raw)
        except ValueError:
            value = 0
        if value < 1:
            # Same verdict as an explicit shards=0: a configuration
            # error, not a silent single-shard run.
            raise ReproError(
                f"invalid {_SHARDS_ENV}={raw!r}; expected a positive integer"
            )
        return value
    return DEFAULT_SHARDS


class ShardedKeys:
    """One sharded intermediate result.

    With ``part_pos`` set, ``shards[s]`` is a sorted unique packed-key
    array holding exactly the rows whose ``part_pos`` component hashes
    to ``s`` — shards are then pairwise disjoint and globally
    deduplicated by construction.  ``part_pos=None`` marks a *raw*
    result: each chunk is still sorted unique, but equal keys may recur
    across chunks (a join projected its partition key away).  Joins,
    filters and decode consume raw chunks as-is; consumers that need
    the disjoint invariant re-partition first (lazily, so join chains
    never pay for a partition nobody reads).
    """

    __slots__ = ("shards", "part_pos")

    def __init__(self, shards: list[np.ndarray], part_pos: Optional[int]) -> None:
        self.shards = shards
        self.part_pos = part_pos

    @property
    def total(self) -> int:
        return sum(len(s) for s in self.shards)

    def gather(self) -> np.ndarray:
        """All rows as one (unsorted) array — for decode and broadcast."""
        return self.shards[0] if len(self.shards) == 1 else np.concatenate(self.shards)

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        sizes = ",".join(str(len(s)) for s in self.shards)
        return f"ShardedKeys(part={self.part_pos}, [{sizes}])"


class ShardedExecContext:
    """Sharded twin of :class:`~repro.core.engines.vectorized.VectorExecContext`.

    Holds the store's sharded columnar view, the budgets, the operator
    memo and an optional thread pool; every operator result is a
    :class:`ShardedKeys`.
    """

    __slots__ = (
        "store",
        "cs",
        "ss",
        "rho",
        "max_universe_objects",
        "max_matrix_objects",
        "k",
        "pool",
        "dispatch_min",
        "_memo",
        "_verify",
    )

    def __init__(
        self,
        store: Triplestore,
        max_universe_objects: int = 400,
        max_matrix_objects: int = DENSE_MATRIX_MAX_OBJECTS,
        shards: int = DEFAULT_SHARDS,
        key_pos: int = 0,
        pool: Optional[ThreadPoolExecutor] = None,
        dispatch_min: Optional[int] = None,
    ) -> None:
        self.store = store
        self.ss = store.sharded(shards, key_pos)
        self.cs = self.ss.cs
        self.rho = store.rho
        self.max_universe_objects = max_universe_objects
        self.max_matrix_objects = max_matrix_objects
        self.k = self.ss.k
        self.pool = pool
        self.dispatch_min = (
            shard_dispatch_min() if dispatch_min is None else dispatch_min
        )
        self._memo: dict[int, ShardedKeys] = {}
        #: Cached REPRO_PLAN_VERIFY verdict: the runtime twin of the
        #: PLAN-SHARD invariant re-checks claimed partitions where the
        #: executor relies on them (set ops, fixpoint accumulators).
        self._verify = plan_verify_enabled()

    # -- entry points --------------------------------------------------- #

    def execute(self, plan: PlanOp) -> TripleSet:
        """Run a plan and decode the merged shards back to object triples."""
        return self.cs.decode_triples(self.run(plan).gather())

    def run(self, op: PlanOp) -> ShardedKeys:
        """Execute ``op`` (memoised — shared sub-plans run once)."""
        result = self._memo.get(id(op))
        if result is None:
            result = self._dispatch(op)
            self._memo[id(op)] = result
        return result

    # -- shard plumbing -------------------------------------------------- #

    def _map(self, fn: Callable, *arg_lists, rows: int = 0) -> list:
        """Apply ``fn`` across shards, on the pool when it pays off."""
        if self.pool is not None and self.k > 1 and rows >= self.dispatch_min:
            return list(self.pool.map(fn, *arg_lists))
        return [fn(*args) for args in zip(*arg_lists)]

    def _empty(self) -> ShardedKeys:
        return ShardedKeys([_EMPTY] * self.k, 0)

    # -- collective seams ------------------------------------------------ #
    #
    # Every cross-shard data movement goes through one of these methods;
    # the defaults are the in-process (single address space) versions,
    # and the process-executor worker context overrides them with
    # coordinator-sequenced collectives (all-to-all exchange, allgather,
    # global sum) so the rest of this file runs unchanged on workers.

    def _gather_list(self, arrays: list[np.ndarray]) -> np.ndarray:
        """All rows of per-shard blocks as one array (allgather seam)."""
        return arrays[0] if len(arrays) == 1 else np.concatenate(arrays)

    def _global_total(self, sk: ShardedKeys) -> int:
        """The global row count of ``sk`` (fixpoint-termination seam)."""
        return sk.total

    def _replicated_raw(self, keys: np.ndarray) -> ShardedKeys:
        """Wrap one globally-known sorted unique array as a result.

        In-process that is simply a raw single-chunk result; a worker
        holds the same array on every rank and keeps only the shards it
        owns (partitioned locally, no exchange needed).
        """
        return ShardedKeys([keys], None)

    def _from_raw(self, pieces: list[np.ndarray], pos: int) -> ShardedKeys:
        """Re-partition arbitrary key arrays onto ``pos``.

        ``pieces`` may overlap across (but not within) entries; the
        per-target ``sorted_unique`` restores global deduplication, so
        this is both the exchange and the merge step.
        """
        if self.k == 1:
            merged = pieces[0] if len(pieces) == 1 else sorted_unique(
                np.concatenate(pieces)
            )
            return ShardedKeys([merged], pos)
        rows = sum(len(p) for p in pieces)
        buckets = self._map(
            lambda piece: self.ss.partition(piece, pos), pieces, rows=rows
        )
        shards = self._map(
            lambda t: sorted_unique(np.concatenate([b[t] for b in buckets])),
            range(self.k),
            rows=rows,
        )
        return ShardedKeys(shards, pos)

    def _check_partition(self, sk: ShardedKeys, what: str) -> ShardedKeys:
        """Runtime twin of the PLAN-SHARD invariant (``REPRO_PLAN_VERIFY``).

        ``_repartition`` trusts ``part_pos`` and short-circuits when it
        already matches the target — exactly the step a stale partition
        claim would corrupt (shard-wise set algebra on shards that are
        not disjoint).  With verification on, consumers that rely on the
        disjoint-partition invariant re-check the claim against the
        actual shard contents first.
        """
        pos = sk.part_pos
        if not self._verify or pos is None:
            return sk
        for s, shard in enumerate(sk.shards):
            if len(shard) and not (self.ss.shard_ids(shard, pos) == s).all():
                raise PlanVerificationError(
                    f"PLAN-SHARD: {what} operand claims a partition on "
                    f"position {pos + 1} but shard {s} holds rows hashed "
                    "to other shards; a repartition was dropped or the "
                    "partition state is stale"
                )
        return sk

    def _repartition(self, sk: ShardedKeys, pos: int) -> ShardedKeys:
        """``sk`` partitioned on ``pos`` (no-op when already there).

        Raw results (``part_pos=None``) always re-partition — that is
        the step that restores global deduplication.
        """
        if sk.part_pos == pos:
            return sk
        return self._from_raw(sk.shards, pos)

    def _operand_cols(
        self, sk: ShardedKeys, local: tuple[Cond, ...]
    ) -> list[np.ndarray]:
        """Per-shard unpacked (and locally filtered) column blocks."""
        cs = self.cs

        def prep(shard: np.ndarray) -> np.ndarray:
            cols = cs.unpack(shard)
            if local:
                cols = cols[_local_mask(cs, local, cols)]
            return cols

        return self._map(prep, sk.shards, rows=sk.total)

    def _exchange_cols(
        self, cols_list: list[np.ndarray], pos: int, on_data: bool
    ) -> list[np.ndarray]:
        """Re-hash column blocks on the join-key component at ``pos``.

        θ keys hash the object code itself; η keys hash the ρ-code of
        the component, so both operands of an η join land in consistent
        shards.
        """
        k = self.k
        if k == 1:
            return cols_list
        cs = self.cs

        def bucket(cols: np.ndarray) -> list[np.ndarray]:
            comp = cols[:, pos]
            if on_data:
                comp = cs.dv_codes[comp]
            ids = comp % k
            return [cols[ids == t] for t in range(k)]

        rows = sum(len(c) for c in cols_list)
        buckets = self._map(bucket, cols_list, rows=rows)
        return self._map(
            lambda t: np.concatenate([b[t] for b in buckets]), range(k), rows=rows
        )

    # -- operator dispatch ---------------------------------------------- #

    def _dispatch(self, op: PlanOp) -> ShardedKeys:
        if isinstance(op, ScanOp):
            return ShardedKeys(self.ss.relation_shards(op.name), self.ss.key_pos)
        if isinstance(op, IndexLookupOp):
            return self._index_lookup(op)
        if isinstance(op, FilterOp):
            return self._filter(op)
        if isinstance(op, UnionOp):
            return self._setop(op, _union_sorted)
        if isinstance(op, DiffOp):
            return self._setop(op, _diff_sorted)
        if isinstance(op, IntersectOp):
            return self._setop(op, _intersect_sorted)
        if isinstance(op, HashJoinOp):
            return self._join(op)
        if isinstance(op, StarOp):
            return self._star(op)
        if isinstance(op, ReachStarOp):
            return self._reach_star(op)
        if isinstance(op, EmptyOp):
            return self._empty()
        if isinstance(op, UniverseOp):
            return self._universe()
        raise NotImplementedError(  # pragma: no cover — all ops covered
            f"no sharded execution for {type(op).__name__}"
        )

    def _index_lookup(self, op: IndexLookupOp) -> ShardedKeys:
        cs = self.cs

        def lookup(shard: np.ndarray, cols: np.ndarray) -> np.ndarray:
            mask = np.ones(len(cols), dtype=bool)
            for pos, value in zip(op.positions, op.bound_key()):
                mask &= cols[:, pos] == cs.code_of(value)
            if op.residual:
                mask &= _local_mask(cs, op.residual, cols)
            return shard[mask]

        shards = self.ss.relation_shards(op.name)
        columns = self.ss.shard_columns(op.name)
        rows = sum(len(s) for s in shards)
        return ShardedKeys(
            self._map(lookup, shards, columns, rows=rows), self.ss.key_pos
        )

    def _filter(self, op: FilterOp) -> ShardedKeys:
        child = self.run(op.child)
        cs = self.cs

        def filt(shard: np.ndarray) -> np.ndarray:
            return shard[_local_mask(cs, op.conditions, cs.unpack(shard))]

        return ShardedKeys(
            self._map(filt, child.shards, rows=child.total), child.part_pos
        )

    def _setop(self, op, merge: Callable) -> ShardedKeys:
        left = self.run(op.left)
        right = self.run(op.right)
        # Shard-wise set algebra needs both sides on one disjoint
        # partition; raw operands canonicalise to position 0.
        target = left.part_pos if left.part_pos is not None else 0
        left = self._check_partition(self._repartition(left, target), "set-op")
        right = self._check_partition(self._repartition(right, target), "set-op")
        shards = self._map(
            merge, left.shards, right.shards, rows=left.total + right.total
        )
        return ShardedKeys(shards, target)

    def _join(self, op: HashJoinOp) -> ShardedKeys:
        cs = self.cs
        spec = op.spec
        # Children run before the constant gate is consulted, mirroring
        # the other backends — a closed gate must not suppress a child's
        # budget error.
        left = self.run(op.left)
        right = self.run(op.right)
        if not spec.gate_open(self.rho):
            return self._empty()
        lcols = self._operand_cols(left, spec.left_local)
        rcols = self._operand_cols(right, spec.right_local)
        cond, _ = choose_shard_key(spec, left.part_pos, right.part_pos)
        rows = left.total + right.total
        if cond is None:
            # Cartesian product: broadcast the gathered right operand.
            rall = self._gather_list(rcols)
            pieces = self._map(
                lambda lc: _merge_join(cs, spec, lc, rall), lcols, rows=rows
            )
        else:
            li, ri = cond.left.index, cond.right.index - 3
            if cond.on_data or left.part_pos != li:
                lcols = self._exchange_cols(lcols, li, cond.on_data)
            if cond.on_data or right.part_pos != ri:
                rcols = self._exchange_cols(rcols, ri, cond.on_data)
            pieces = self._map(
                lambda lc, rc: _merge_join(cs, spec, lc, rc), lcols, rcols, rows=rows
            )
        # A lost partition key stays raw (part_pos=None): the next join
        # exchanges by value anyway, and set-op consumers re-partition
        # lazily — join chains never pay for a partition nobody reads.
        return ShardedKeys(pieces, shard_output_partition(spec, cond, left.part_pos))

    # -- fixpoints ------------------------------------------------------- #

    def _star(self, op: StarOp) -> ShardedKeys:
        base = self.run(op.child)
        if not op.spec.gate_open(self.rho):
            return base
        return self._fixpoint(op.spec, base, op.side)

    def _fixpoint(self, spec: JoinSpec, base: ShardedKeys, side: str) -> ShardedKeys:
        """Semi-naive closure of ``base`` under the spec's join, shard-wise.

        The accumulator and frontier stay canonically partitioned on
        position 0; the constant operand (right for a right star, left
        for a left one) is filtered and exchanged once, outside the
        loop — the sharded analogue of :class:`StarOp`'s hoisted index.
        """
        cs = self.cs
        base = self._check_partition(self._repartition(base, 0), "fixpoint base")
        const_local = spec.right_local if side == RIGHT else spec.left_local
        varying_local = spec.left_local if side == RIGHT else spec.right_local
        const_cols = self._operand_cols(base, const_local)
        # Both operands enter each round partitioned on 0 (the frontier
        # canonically, the constant via base); pick the join key once.
        cond, _ = choose_shard_key(spec, 0, 0)
        const_gathered: Optional[np.ndarray] = None
        if cond is None:
            if side == RIGHT:
                # Broadcast: the varying left stays sharded, the
                # constant right is gathered once.
                const_gathered = self._gather_list(const_cols)
        else:
            const_key = cond.right.index - 3 if side == RIGHT else cond.left.index
            if cond.on_data or const_key != 0:
                const_cols = self._exchange_cols(const_cols, const_key, cond.on_data)
        # Both the broadcast-retained left operand (varying for a right
        # star, constant for a left one) and the accumulator sit on
        # position 0, so that is the left_part the output derives from.
        out_part = shard_output_partition(spec, cond, 0)
        acc = base
        frontier = base
        while self._global_total(frontier):
            vcols = self._operand_cols(frontier, varying_local)
            rows = frontier.total + base.total
            if cond is not None:
                vkey = cond.left.index if side == RIGHT else cond.right.index - 3
                if cond.on_data or vkey != 0:
                    vcols = self._exchange_cols(vcols, vkey, cond.on_data)
                if side == RIGHT:
                    pieces = self._map(
                        lambda lc, rc: _merge_join(cs, spec, lc, rc),
                        vcols, const_cols, rows=rows,
                    )
                else:
                    pieces = self._map(
                        lambda lc, rc: _merge_join(cs, spec, lc, rc),
                        const_cols, vcols, rows=rows,
                    )
            elif side == RIGHT:
                pieces = self._map(
                    lambda lc: _merge_join(cs, spec, lc, const_gathered),
                    vcols, rows=rows,
                )
            else:
                # Left star, no cross equality: the constant left stays
                # sharded, the varying right is gathered per round.
                vall = self._gather_list(vcols)
                pieces = self._map(
                    lambda lc: _merge_join(cs, spec, lc, vall),
                    const_cols, rows=rows,
                )
            produced = (
                ShardedKeys(pieces, 0)
                if out_part == 0
                else self._from_raw(pieces, 0)
            )
            new_shards = self._map(
                _diff_sorted, produced.shards, acc.shards, rows=produced.total
            )
            frontier = ShardedKeys(new_shards, 0)
            acc = ShardedKeys(
                self._map(_union_sorted, acc.shards, frontier.shards, rows=acc.total),
                0,
            )
        return acc

    def _reach_star(self, op: ReachStarOp) -> ShardedKeys:
        base = self.run(op.child)
        if self._global_total(base) == 0:
            return base
        strategy = op.vector_strategy
        if strategy is None:
            # Plan compiled without sharded lowering (e.g. handed over
            # from a set engine): decide against the actual store.
            n = self.cs.n
            strategy = "dense" if 0 < n <= self.max_matrix_objects else "sparse"
        if strategy == "dense" and op.same_label:
            # The label count must be judged globally — every worker has
            # to take the same dense/sparse branch.
            labels = sorted_unique(
                self._gather_list(
                    [self.ss.component(s, 1) for s in base.shards]
                )
            )
            if len(labels) > _MAX_DENSE_LABELS:
                strategy = "sparse"
        if strategy == "dense":
            try:
                closure = reach_dense(
                    self.cs,
                    self.max_matrix_objects,
                    self._gather_list(list(base.shards)),
                    op.same_label,
                )
                # One sorted unique array: globally deduplicated but not
                # hash-partitioned — stays raw until a consumer asks.
                return self._replicated_raw(closure)
            except MatrixTooLargeError:
                pass
        spec = _REACH_SPEC_SAME if op.same_label else _REACH_SPEC_ANY
        return self._fixpoint(spec, base, RIGHT)

    # -- the universal relation ----------------------------------------- #

    def _universe(self) -> ShardedKeys:
        active = self.ss.active_codes()
        if len(active) > self.max_universe_objects:
            raise EvaluationBudgetError(
                f"universal relation over {len(active)} objects would hold "
                f"{len(active) ** 3} triples (limit {self.max_universe_objects} objects); "
                "raise max_universe_objects to proceed"
            )
        return ShardedKeys(self._universe_shards(active), 0)

    def _universe_shards(self, active: np.ndarray) -> list[np.ndarray]:
        """U as subject-partitioned shards (workers build only their own)."""
        n = self.cs.radix
        pairs = (active[:, None] * n + active[None, :]).reshape(-1)
        keys = (pairs[:, None] * n + active[None, :]).reshape(-1)
        return self.ss.partition(keys, 0)


# --------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------- #


class ShardedEngine(VectorEngine):
    """Hash-sharded columnar executor — same plans, shard-wise runtime.

    Parameters
    ----------
    max_universe_objects, use_planner, max_matrix_objects:
        See :class:`~repro.core.engines.vectorized.VectorEngine` (the
        sharded backend is likewise planner-only).
    shards:
        Number of hash shards; defaults to the ``REPRO_SHARDS``
        environment variable, then :data:`DEFAULT_SHARDS`.
    key_pos:
        The triple position stored relations are partitioned on
        (0 = subject by default).  Joins whose key matches it run
        co-partitioned with no exchange pass.
    executor:
        ``"thread"`` (default; in-process shard tasks) or ``"process"``
        (plans dispatched whole to a long-lived worker-process pool over
        shared memory).  ``None`` defers to ``REPRO_SHARD_EXECUTOR``.
        The process executor falls back to the thread path when workers
        cannot be started or the store is below ``dispatch_min`` rows.
    workers:
        Worker processes for ``executor="process"``; ``None`` defers to
        ``REPRO_SHARD_WORKERS``, then :func:`default_worker_count`.
    dispatch_min:
        The dispatch amortization threshold in input rows (see
        :data:`SHARD_DISPATCH_MIN`); ``None`` defers to
        ``REPRO_SHARD_DISPATCH_MIN``, then the constant.
    """

    backend = "sharded"

    def __init__(
        self,
        max_universe_objects: int = 400,
        use_planner: bool = True,
        max_matrix_objects: int = DENSE_MATRIX_MAX_OBJECTS,
        shards: Optional[int] = None,
        key_pos: int = 0,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        dispatch_min: Optional[int] = None,
    ) -> None:
        super().__init__(max_universe_objects, use_planner, max_matrix_objects)
        if shards is None:
            shards = default_shard_count()
        if shards < 1:
            raise ReproError(f"shard count must be >= 1, got {shards}")
        if key_pos not in (0, 1, 2):
            raise ReproError(
                f"partition key position must be 0, 1 or 2, got {key_pos}"
            )
        if executor is None:
            executor = default_shard_executor()
        if executor not in SHARD_EXECUTORS:
            raise ReproError(
                f"unknown shard executor {executor!r}; expected one of "
                f"{', '.join(SHARD_EXECUTORS)}"
            )
        if workers is not None and workers < 1:
            raise ReproError(f"worker count must be >= 1, got {workers}")
        self.shards = int(shards)
        self.key_pos = key_pos
        self.executor = executor
        self.workers = None if workers is None else int(workers)
        self.dispatch_min = (
            shard_dispatch_min() if dispatch_min is None else max(0, int(dispatch_min))
        )
        #: Per-query deadline (seconds) forwarded to the worker pool on
        #: the process executor; ``None`` defers to ``REPRO_SHARD_TIMEOUT``.
        #: The query service maps its per-query time budget here so a
        #: timeout genuinely aborts the workers instead of orphaning them.
        self.query_timeout: Optional[float] = None
        #: Fault-injection hook forwarded to the worker pool (see
        #: ``procpool._maybe_die``): ``{"rank": r, "when": "start" |
        #: "collective", "marker": path}``.  Test-only — lets fault
        #: suites kill workers behind higher layers (e.g. a live query
        #: server) without reaching into the pool.
        self.fault: Optional[dict] = None

    def compile(self, expr: Expr, store: Optional[Triplestore] = None) -> PlanOp:
        """Compile with the sharded lowering step applied."""
        return compile_plan(
            expr,
            store,
            use_reach=self.plans_reach_stars,
            backend="sharded",
            max_matrix_objects=self.max_matrix_objects,
            shard_key_pos=self.key_pos,
        )

    def _shard_pool(self) -> Optional[ThreadPoolExecutor]:
        """The shared shard pool (None when parallelism cannot help)."""
        if self.shards <= 1:
            return None
        return _shared_pool()

    def worker_count(self) -> int:
        """The resolved worker-process count for the process executor."""
        if self.workers is not None:
            return self.workers
        return default_worker_count(self.shards)

    def _process_keys(self, plan: PlanOp, store: Triplestore):
        """Try the process executor; ``None`` means fall back to threads.

        The fall-back-to-inline decision reuses the dispatch
        amortization threshold: below ``dispatch_min`` stored rows the
        per-query worker round-trips cost more than the whole query.
        """
        if (
            self.executor != "process"
            or self.shards <= 1
            or len(store) < self.dispatch_min
        ):
            return None
        from repro.core.engines import procpool
        from repro.triplestore.shm import publish_sharded_store

        pool = procpool.get_pool(self.worker_count())
        if pool is None:
            return None
        ss = store.sharded(self.shards, self.key_pos)
        handle = publish_sharded_store(ss)
        keys = pool.run_query(
            handle.name,
            plan,
            max_universe_objects=self.max_universe_objects,
            max_matrix_objects=self.max_matrix_objects,
            timeout=self.query_timeout,
            fault=self.fault,
        )
        return ss.cs, keys

    def execute_plan(self, plan: PlanOp, store: Triplestore) -> TripleSet:
        """Run a compiled plan over the store's sharded columnar view."""
        routed = self._process_keys(plan, store)
        if routed is not None:
            cs, keys = routed
            return cs.decode_triples(keys)
        ctx = ShardedExecContext(
            store,
            self.max_universe_objects,
            self.max_matrix_objects,
            shards=self.shards,
            key_pos=self.key_pos,
            pool=self._shard_pool(),
            dispatch_min=self.dispatch_min,
        )
        return ctx.execute(plan)

    def execute_plan_keys(self, plan: PlanOp, store: Triplestore):
        """Run a compiled plan, returning ``(columnar view, packed keys)``.

        The merged shards are restored to one sorted unique array —
        partitioned shards are disjoint but interleaved, and raw chunks
        may repeat keys across shards, so the canonical cursor form
        (sorted, deduplicated, deterministic iteration order) needs one
        ``sorted_unique`` pass either way.  Decode stays deferred.
        """
        routed = self._process_keys(plan, store)
        if routed is not None:
            return routed
        ctx = ShardedExecContext(
            store,
            self.max_universe_objects,
            self.max_matrix_objects,
            shards=self.shards,
            key_pos=self.key_pos,
            pool=self._shard_pool(),
            dispatch_min=self.dispatch_min,
        )
        return ctx.cs, sorted_unique(ctx.run(plan).gather())
