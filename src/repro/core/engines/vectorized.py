"""Vectorised columnar execution of compiled physical plans.

:class:`VectorEngine` is the library's third planner-seam backend: it
executes the *same* physical operator trees produced by
:func:`repro.core.plan.compile_plan` — no parallel interpreter — but over
the array representation of the store (:class:`~repro.triplestore.columnar.ColumnarStore`)
instead of Python sets of tuples:

* intermediate relations are sorted unique ``int64`` *packed-key* arrays
  (``(s·n + p)·n + o``), so union/difference/intersection are sorted
  merges (``np.union1d`` and friends);
* hash joins lower to ``np.searchsorted`` merge joins on composite
  integer keys built from the cross equalities (θ keys compare object
  codes, η keys compare dictionary-encoded ρ-codes);
* selections and residual filters evaluate conditions as whole-column
  boolean masks;
* general Kleene stars run the same semi-naive fixpoint as
  :class:`~repro.core.plan.StarOp`, one vectorised join per round;
* reach-shaped stars (:class:`~repro.core.plan.ReachStarOp`) use
  semi-naive *boolean matrix* iteration over the ``|O|×|O|`` adjacency
  matrix — the array representation the paper's Section 5 cost model is
  stated over — when the density/size heuristic of
  :func:`repro.core.plan.lower_plan` picked the dense strategy, and
  per-source BFS otherwise.  The dense path re-checks the object-count
  guard against the actual store at run time and falls back to sparse on
  :class:`~repro.errors.MatrixTooLargeError`.

Cross-backend agreement with the set executors (and the NaiveEngine
oracle) is enforced by the randomized differential harness in
``tests/diffcheck.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import EvaluationBudgetError, MatrixTooLargeError, UnboundParameterError
from repro.core.conditions import Cond
from repro.core.expressions import (
    REACH_COND_ANY,
    REACH_COND_SAME_LABEL,
    REACH_OUT,
    RIGHT,
    Expr,
)
from repro.core.engines.base import TripleSet
from repro.core.engines.hashjoin import HashJoinEngine
from repro.core.plan import (
    DENSE_MATRIX_MAX_OBJECTS,
    DiffOp,
    EmptyOp,
    FilterOp,
    HashJoinOp,
    IndexLookupOp,
    IntersectOp,
    JoinSpec,
    PlanOp,
    ReachStarOp,
    ScanOp,
    StarOp,
    UnionOp,
    UniverseOp,
    compile_plan,
)
from repro.core.positions import Const, Param
from repro.triplestore.columnar import ColumnarStore, sorted_unique
from repro.triplestore.model import Triplestore

__all__ = ["VectorEngine", "VectorExecContext"]

_EMPTY = np.empty(0, dtype=np.int64)


# --------------------------------------------------------------------- #
# Sorted-array set algebra
#
# Every intermediate result is a sorted unique key array (see
# columnar.sorted_unique), so the set operations are plain merges —
# np.union1d/setdiff1d are avoided for the same hash-table reason.
# --------------------------------------------------------------------- #


def _member_mask(keys: np.ndarray, within: np.ndarray) -> np.ndarray:
    """Boolean mask: which of ``keys`` occur in sorted-unique ``within``."""
    if len(within) == 0:
        return np.zeros(len(keys), dtype=bool)
    idx = np.searchsorted(within, keys).clip(0, len(within) - 1)
    return within[idx] == keys


def _union_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if len(a) == 0:
        return b
    if len(b) == 0:
        return a
    return sorted_unique(np.concatenate((a, b)))


def _diff_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if len(a) == 0 or len(b) == 0:
        return a
    return a[~_member_mask(a, b)]


def _intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if len(a) == 0 or len(b) == 0:
        return _EMPTY
    return a[_member_mask(a, b)]


# --------------------------------------------------------------------- #
# Vectorised condition evaluation
# --------------------------------------------------------------------- #


def _local_mask(cs: ColumnarStore, conds: tuple[Cond, ...], cols: np.ndarray) -> np.ndarray:
    """Boolean mask of one operand's rows satisfying all ``conds``.

    Positions are taken modulo 3, so the same helper serves selection
    conditions (0..2) and right-local join conditions (3..5).
    """
    mask = np.ones(len(cols), dtype=bool)
    for cond in conds:
        if isinstance(cond.left, Const) and isinstance(cond.right, Const):
            # Constant-only: a static boolean over raw values (the code
            # sentinel for unknown constants must not make them compare
            # equal to each other).
            if not cond.evaluate((None,) * 3, None, lambda o: o):
                mask[:] = False
            continue
        lv = _resolve_local(cs, cond, cond.left, cols)
        rv = _resolve_local(cs, cond, cond.right, cols)
        mask &= (lv == rv) if cond.is_equality else (lv != rv)
    return mask


def _resolve_local(cs: ColumnarStore, cond: Cond, term, cols: np.ndarray):
    """One term of a single-operand condition as a code column or scalar."""
    if isinstance(term, Const):
        # θ constants encode as object codes, η constants as data-value
        # codes; unknown constants get the -1 sentinel, which no stored
        # code equals (codes are non-negative).
        return cs.dv_code_of(term.value) if cond.on_data else cs.code_of(term.value)
    if isinstance(term, Param):
        raise UnboundParameterError(term.name)
    col = cols[:, term.index % 3]
    return cs.dv_codes[col] if cond.on_data else col


def _pair_mask(
    cs: ColumnarStore,
    conds: tuple[Cond, ...],
    lcols: np.ndarray,
    li: np.ndarray,
    rcols: np.ndarray,
    ri: np.ndarray,
) -> np.ndarray:
    """Mask over matched (left, right) row-index pairs (cross inequalities).

    Gathers only the columns the conditions mention, not whole triples.
    """
    mask = np.ones(len(li), dtype=bool)
    for cond in conds:
        lv = _resolve_pair(cs, cond, cond.left, lcols, li, rcols, ri)
        rv = _resolve_pair(cs, cond, cond.right, lcols, li, rcols, ri)
        mask &= (lv == rv) if cond.is_equality else (lv != rv)
    return mask


def _resolve_pair(cs: ColumnarStore, cond: Cond, term, lcols, li, rcols, ri):
    if isinstance(term, Const):  # pragma: no cover — cross conds are Pos-Pos
        return cs.dv_code_of(term.value) if cond.on_data else cs.code_of(term.value)
    if term.index < 3:
        col = lcols[:, term.index][li]
    else:
        col = rcols[:, term.index - 3][ri]
    return cs.dv_codes[col] if cond.on_data else col


# --------------------------------------------------------------------- #
# The merge join
# --------------------------------------------------------------------- #


#: Composite join keys are folded radix-by-radix; past this magnitude the
#: next fold could overflow int64, so keys are first compressed to dense
#: ranks (which preserves cross-side equality exactly).
_MAX_COMPOSITE_KEY = 2**62


def _join_keys(
    cs: ColumnarStore, spec: JoinSpec, lcols: np.ndarray, rcols: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Composite integer join keys for both operands (one per cross eq)."""
    lkey = np.zeros(len(lcols), dtype=np.int64)
    rkey = np.zeros(len(rcols), dtype=np.int64)
    key_range = 1
    for cond in spec.cross_eq:
        lcomp = lcols[:, cond.left.index]
        rcomp = rcols[:, cond.right.index - 3]
        if cond.on_data:
            lcomp = cs.dv_codes[lcomp]
            rcomp = cs.dv_codes[rcomp]
            radix = max(cs.n_data_values, 1)
        else:
            radix = max(cs.n, 1)
        if key_range > _MAX_COMPOSITE_KEY // radix:
            # Re-rank the partial keys densely over both sides before
            # folding in the next component (many cross equalities over a
            # huge universe would otherwise wrap int64 and silently match
            # unrelated rows).
            ranks = sorted_unique(np.concatenate((lkey, rkey)))
            lkey = np.searchsorted(ranks, lkey)
            rkey = np.searchsorted(ranks, rkey)
            key_range = len(ranks)
        lkey = lkey * radix + lcomp
        rkey = rkey * radix + rcomp
        key_range *= radix
    return lkey, rkey


def _merge_join(
    cs: ColumnarStore, spec: JoinSpec, lcols: np.ndarray, rcols: np.ndarray
) -> np.ndarray:
    """Join two pre-filtered operand column blocks; packed-key output.

    With cross equalities this is a sort/searchsorted merge join; without
    them it is the cartesian product the algebra demands.  Cross
    inequalities are applied as a mask over the matched pairs, and the
    output spec's projection is a vectorised gather.
    """
    n_left, n_right = len(lcols), len(rcols)
    if n_left == 0 or n_right == 0:
        return _EMPTY
    if spec.cross_eq:
        lkey, rkey = _join_keys(cs, spec, lcols, rcols)
        order = np.argsort(rkey, kind="stable")
        sorted_rkey = rkey[order]
        lo = np.searchsorted(sorted_rkey, lkey, side="left")
        hi = np.searchsorted(sorted_rkey, lkey, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return _EMPTY
        li = np.repeat(np.arange(n_left), counts)
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        ri = order[np.repeat(lo, counts) + offsets]
    else:
        li = np.repeat(np.arange(n_left), n_right)
        ri = np.tile(np.arange(n_right), n_left)
    if spec.cross_neq:
        mask = _pair_mask(cs, spec.cross_neq, lcols, li, rcols, ri)
        li, ri = li[mask], ri[mask]
        if len(li) == 0:
            return _EMPTY
    # Pack the projection directly from per-column gathers — no (M, 3)
    # intermediate; this is the join's hot path.
    i, j, k = spec.out
    a = lcols[:, i][li] if i < 3 else rcols[:, i - 3][ri]
    b = lcols[:, j][li] if j < 3 else rcols[:, j - 3][ri]
    c = lcols[:, k][li] if k < 3 else rcols[:, k - 3][ri]
    n = cs.radix
    return sorted_unique((a * n + b) * n + c)


#: Same-label reach stars build one dense matrix per distinct label; above
#: this many labels the semi-naive fixpoint wins regardless of density.
_MAX_DENSE_LABELS = 8

#: Compile-time join specs of the two Proposition 5 star shapes.
_REACH_SPEC_ANY = JoinSpec(REACH_OUT, REACH_COND_ANY)
_REACH_SPEC_SAME = JoinSpec(REACH_OUT, REACH_COND_SAME_LABEL)


def _bool_closure(adjacency: np.ndarray) -> np.ndarray:
    """Reflexive-transitive closure of a boolean adjacency matrix.

    Semi-naive over matrix *squaring*: each round doubles the path
    length covered, so the loop runs O(log diameter) boolean matmuls.
    """
    closure = adjacency | np.eye(len(adjacency), dtype=bool)
    while True:
        # float32 keeps the matmul on the BLAS fast path and is exact
        # here: each product entry counts path witnesses, at most n ≤ 512
        # (a uint8 accumulator would wrap at 256 and drop reachable
        # pairs whose witness count is a multiple of 256).
        step = closure.astype(np.float32)
        grown = closure | ((step @ step) > 0)
        if np.array_equal(grown, closure):
            return closure
        closure = grown


def reach_dense(
    cs: ColumnarStore, max_matrix_objects: int, keys: np.ndarray, same_label: bool
) -> np.ndarray:
    """Dense boolean-matrix reachability over a packed-key base relation.

    Module-level so every columnar execution context (vectorised and
    sharded) shares one implementation; raises
    :class:`~repro.errors.MatrixTooLargeError` when the compacted node
    set exceeds the guard.
    """
    cols = cs.unpack(keys)
    if not same_label:
        return _reach_dense_emit(cs, max_matrix_objects, cols)
    parts = [
        _reach_dense_emit(cs, max_matrix_objects, cols[cols[:, 1] == label])
        for label in sorted_unique(cols[:, 1])
    ]
    return sorted_unique(np.concatenate(parts)) if parts else keys


def _reach_dense_emit(
    cs: ColumnarStore, max_matrix_objects: int, cols: np.ndarray
) -> np.ndarray:
    """Closure of one adjacency matrix, attached to its base triples.

    The matrix is built over the *compacted* node set of these triples'
    endpoints (for the same-label variant that is one label's
    sub-graph), so sparse labels get tiny matrices; the object-count
    guard applies to the compacted size.
    """
    nodes = sorted_unique(np.concatenate((cols[:, 0], cols[:, 2])))
    m = len(nodes)
    if m > max_matrix_objects:
        raise MatrixTooLargeError(m, max_matrix_objects, what="reachability matrix")
    sources = np.searchsorted(nodes, cols[:, 0])
    targets = np.searchsorted(nodes, cols[:, 2])
    adjacency = np.zeros((m, m), dtype=bool)
    adjacency[sources, targets] = True
    closure = _bool_closure(adjacency)
    reach_rows = closure[targets]  # row i: nodes reachable from o_i
    row_idx, target_local = np.nonzero(reach_rows)
    n = cs.radix
    return sorted_unique(
        (cols[:, 0][row_idx] * n + cols[:, 1][row_idx]) * n + nodes[target_local]
    )


# --------------------------------------------------------------------- #
# Execution context
# --------------------------------------------------------------------- #


class VectorExecContext:
    """Columnar twin of :class:`repro.core.plan.ExecContext`.

    Holds the store's columnar view, the budgets and the operator memo;
    every operator result is a sorted unique packed-key array.
    """

    __slots__ = ("store", "cs", "rho", "max_universe_objects", "max_matrix_objects", "_memo")

    def __init__(
        self,
        store: Triplestore,
        max_universe_objects: int = 400,
        max_matrix_objects: int = DENSE_MATRIX_MAX_OBJECTS,
    ) -> None:
        self.store = store
        self.cs = store.columnar()
        self.rho = store.rho
        self.max_universe_objects = max_universe_objects
        self.max_matrix_objects = max_matrix_objects
        self._memo: dict[int, np.ndarray] = {}

    # -- entry points --------------------------------------------------- #

    def execute(self, plan: PlanOp) -> TripleSet:
        """Run a plan and decode the result back to object triples."""
        return self.cs.decode_triples(self.run(plan))

    def run(self, op: PlanOp) -> np.ndarray:
        """Execute ``op`` (memoised — shared sub-plans run once)."""
        result = self._memo.get(id(op))
        if result is None:
            result = self._dispatch(op)
            self._memo[id(op)] = result
        return result

    # -- operator dispatch ---------------------------------------------- #

    def _dispatch(self, op: PlanOp) -> np.ndarray:
        if isinstance(op, ScanOp):
            return self.cs.relation_keys(op.name)
        if isinstance(op, IndexLookupOp):
            return self._index_lookup(op)
        if isinstance(op, FilterOp):
            return self._filter(op)
        if isinstance(op, UnionOp):
            return _union_sorted(self.run(op.left), self.run(op.right))
        if isinstance(op, DiffOp):
            return _diff_sorted(self.run(op.left), self.run(op.right))
        if isinstance(op, IntersectOp):
            return _intersect_sorted(self.run(op.left), self.run(op.right))
        if isinstance(op, HashJoinOp):
            return self._join(op)
        if isinstance(op, StarOp):
            return self._star(op)
        if isinstance(op, ReachStarOp):
            return self._reach_star(op)
        if isinstance(op, EmptyOp):
            return _EMPTY
        if isinstance(op, UniverseOp):
            return self._universe()
        raise NotImplementedError(  # pragma: no cover — all ops covered
            f"no columnar execution for {type(op).__name__}"
        )

    def _index_lookup(self, op: IndexLookupOp) -> np.ndarray:
        cs = self.cs
        keys = cs.relation_keys(op.name)
        cols = cs.relation_columns(op.name)
        mask = np.ones(len(cols), dtype=bool)
        for pos, value in zip(op.positions, op.bound_key()):
            mask &= cols[:, pos] == cs.code_of(value)
        if op.residual:
            mask &= _local_mask(cs, op.residual, cols)
        return keys[mask]

    def _filter(self, op: FilterOp) -> np.ndarray:
        keys = self.run(op.child)
        cols = self.cs.unpack(keys)
        return keys[_local_mask(self.cs, op.conditions, cols)]

    def _join(self, op: HashJoinOp) -> np.ndarray:
        cs = self.cs
        spec = op.spec
        # Children run before the constant gate is consulted, mirroring
        # HashJoinOp._execute — a closed gate must not suppress a child's
        # budget error, or the backends would disagree on when they raise.
        left = self.run(op.left)
        right = self.run(op.right)
        if not spec.gate_open(self.rho):
            return _EMPTY
        lcols = cs.unpack(left)
        rcols = cs.unpack(right)
        if spec.left_local:
            lcols = lcols[_local_mask(cs, spec.left_local, lcols)]
        if spec.right_local:
            rcols = rcols[_local_mask(cs, spec.right_local, rcols)]
        return _merge_join(cs, spec, lcols, rcols)

    def _star(self, op: StarOp) -> np.ndarray:
        cs = self.cs
        spec = op.spec
        base = self.run(op.child)
        if not spec.gate_open(self.rho):
            return base
        base_cols = cs.unpack(base)
        # The constant operand's local filter is applied once, outside
        # the loop — the columnar analogue of StarOp's hoisted index.
        const_local = spec.right_local if op.side == RIGHT else spec.left_local
        const_cols = base_cols
        if const_local:
            const_cols = base_cols[_local_mask(cs, const_local, base_cols)]
        varying_local = spec.left_local if op.side == RIGHT else spec.right_local
        acc = base
        frontier = base
        while frontier.size:
            varying = cs.unpack(frontier)
            if varying_local:
                varying = varying[_local_mask(cs, varying_local, varying)]
            if op.side == RIGHT:
                produced = _merge_join(cs, spec, varying, const_cols)
            else:
                produced = _merge_join(cs, spec, const_cols, varying)
            frontier = _diff_sorted(produced, acc)
            acc = _union_sorted(acc, frontier)
        return acc

    # -- reachability stars --------------------------------------------- #

    def _reach_star(self, op: ReachStarOp) -> np.ndarray:
        base = self.run(op.child)
        if base.size == 0:
            return base
        strategy = op.vector_strategy
        if strategy is None:
            # Plan compiled without columnar lowering (e.g. by a set
            # engine): decide here, against the actual store.
            n = self.cs.n
            dense_ok = 0 < n <= self.max_matrix_objects
            strategy = "dense" if dense_ok else "sparse"
        if strategy == "dense" and op.same_label:
            # One adjacency matrix *per label*: only worth it when the
            # labels are few — a store with many sparse labels pays the
            # per-matrix overhead hundreds of times for tiny graphs.
            labels = sorted_unique(self.cs.unpack(base)[:, 1])
            if len(labels) > _MAX_DENSE_LABELS:
                strategy = "sparse"
        if strategy == "dense":
            try:
                return reach_dense(self.cs, self.max_matrix_objects, base, op.same_label)
            except MatrixTooLargeError:
                # The plan was lowered against a smaller store (plans are
                # cached per expression and reused across stores); fall
                # back to the sparse strategy rather than refuse.
                pass
        return self._reach_sparse(base, op.same_label)

    def _reach_sparse(self, keys: np.ndarray, same_label: bool) -> np.ndarray:
        """Sparse reach strategy: the semi-naive columnar join fixpoint.

        Proposition 5's reach stars are ordinary right stars with a fixed
        shape, so the generic vectorised fixpoint applies verbatim —
        rounds are bounded by the graph diameter, each one a merge join.
        """
        cs = self.cs
        spec = _REACH_SPEC_SAME if same_label else _REACH_SPEC_ANY
        base_cols = cs.unpack(keys)
        acc = keys
        frontier = keys
        while frontier.size:
            produced = _merge_join(cs, spec, cs.unpack(frontier), base_cols)
            frontier = _diff_sorted(produced, acc)
            acc = _union_sorted(acc, frontier)
        return acc

    # -- the universal relation ----------------------------------------- #

    def _universe(self) -> np.ndarray:
        cs = self.cs
        active = cs.active_codes()
        if len(active) > self.max_universe_objects:
            raise EvaluationBudgetError(
                f"universal relation over {len(active)} objects would hold "
                f"{len(active) ** 3} triples (limit {self.max_universe_objects} objects); "
                "raise max_universe_objects to proceed"
            )
        n = cs.radix
        pairs = (active[:, None] * n + active[None, :]).reshape(-1)
        return (pairs[:, None] * n + active[None, :]).reshape(-1)


# --------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------- #


class VectorEngine(HashJoinEngine):
    """Vectorised columnar executor — same plans, array-at-a-time runtime.

    Parameters
    ----------
    max_universe_objects:
        See :class:`~repro.core.engines.base.Engine`.
    use_planner:
        When True (default) expressions run as vectorised physical plans;
        ``use_planner=False`` falls back to the set-based legacy
        interpreter inherited from :class:`HashJoinEngine` (there is no
        tuple-at-a-time "legacy" columnar path — the planner seam *is*
        the columnar entry point).
    max_matrix_objects:
        Object-count guard for the dense boolean-matrix reachability
        strategy; above it the sparse per-source BFS runs instead.
    """

    plans_reach_stars = True
    backend = "columnar"

    def __init__(
        self,
        max_universe_objects: int = 400,
        use_planner: bool = True,
        max_matrix_objects: int = DENSE_MATRIX_MAX_OBJECTS,
    ) -> None:
        super().__init__(max_universe_objects, use_planner=use_planner)
        self.max_matrix_objects = max_matrix_objects

    def compile(self, expr: Expr, store: Optional[Triplestore] = None) -> PlanOp:
        """Compile with the columnar lowering step applied."""
        return compile_plan(
            expr,
            store,
            use_reach=self.plans_reach_stars,
            backend="columnar",
            max_matrix_objects=self.max_matrix_objects,
        )

    def execute_plan(self, plan: PlanOp, store: Triplestore) -> TripleSet:
        """Run a compiled plan over the store's columnar view."""
        ctx = VectorExecContext(
            store, self.max_universe_objects, self.max_matrix_objects
        )
        return ctx.execute(plan)

    def execute_plan_keys(self, plan: PlanOp, store: Triplestore):
        """Run a compiled plan, returning ``(columnar view, packed keys)``.

        The undecoded twin of :meth:`execute_plan`: the caller (the
        :class:`~repro.api.ResultSet` cursor) decodes lazily, so
        ``limit``-style reads touch only the rows they yield.
        """
        ctx = VectorExecContext(
            store, self.max_universe_objects, self.max_matrix_objects
        )
        return ctx.cs, ctx.run(plan)
