"""Evaluation engines for the Triple Algebra."""

from repro.core.engines.base import Engine, TripleSet
from repro.core.engines.fast import FastEngine
from repro.core.engines.hashjoin import HashJoinEngine
from repro.core.engines.naive import NaiveEngine

__all__ = ["Engine", "FastEngine", "HashJoinEngine", "NaiveEngine", "TripleSet"]
