"""Evaluation engines for the Triple Algebra."""

from repro.core.engines.base import Engine, TripleSet
from repro.core.engines.fast import FastEngine
from repro.core.engines.hashjoin import HashJoinEngine
from repro.core.engines.naive import NaiveEngine
from repro.core.engines.sharded import ShardedEngine
from repro.core.engines.vectorized import VectorEngine

#: Name → class registry, shared by the CLI and the differential harness.
ENGINE_REGISTRY: dict[str, type[Engine]] = {
    "naive": NaiveEngine,
    "hash": HashJoinEngine,
    "fast": FastEngine,
    "vector": VectorEngine,
    "sharded": ShardedEngine,
}

__all__ = [
    "ENGINE_REGISTRY",
    "Engine",
    "FastEngine",
    "HashJoinEngine",
    "NaiveEngine",
    "ShardedEngine",
    "TripleSet",
    "VectorEngine",
]
