"""Literal transcriptions of the paper's Procedures 1–4 on the matrix
representation of Section 5.

These functions operate on ``n x n x n`` boolean matrices (see
:class:`repro.triplestore.matrix.MatrixStore`) and follow the published
pseudo-code line by line, loop by loop.  They are deliberately *not*
optimised — their role is to be the executable form of the proofs of
Theorem 3 and Proposition 5, cross-validated in the tests against the
set-based engines.  Use them only on small universes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.conditions import Cond
from repro.core.engines.base import project_out
from repro.triplestore.matrix import MatrixStore


def _checker(
    conditions: tuple[Cond, ...], ms: MatrixStore
) -> Callable[[tuple, tuple], bool]:
    rho_map = {obj: value for obj, value in zip(ms.objects, ms.dv)}
    rho = rho_map.get

    def check(lt: tuple, rt: tuple) -> bool:
        return all(c.evaluate(lt, rt, rho) for c in conditions)

    return check


def join_matrices(
    r1: np.ndarray,
    r2: np.ndarray,
    out: tuple[int, int, int],
    conditions: tuple[Cond, ...],
    ms: MatrixStore,
) -> np.ndarray:
    """Procedure 1 (Computing joins).

    The pseudo-code iterates all ``i,j,k`` with ``R1[i,j,k] = 1`` and all
    ``l,m,n`` with ``R2[l,m,n] = 1`` and checks the θ/η conditions on the
    corresponding object triples.  We iterate the nonzero cells in the
    same order the loops would visit them.
    """
    check = _checker(conditions, ms)
    objs = ms.objects
    result = np.zeros_like(r1)
    left_cells = np.argwhere(r1)
    right_cells = np.argwhere(r2)
    for i, j, k in left_cells:
        lt = (objs[i], objs[j], objs[k])
        for l, m, n in right_cells:  # noqa: E741 — the paper's names
            rt = (objs[l], objs[m], objs[n])
            if check(lt, rt):
                s, p, o = project_out(lt, rt, out)
                result[ms.index_of(s), ms.index_of(p), ms.index_of(o)] = True
    return result


def star_matrices(
    r1: np.ndarray,
    out: tuple[int, int, int],
    conditions: tuple[Cond, ...],
    ms: MatrixStore,
    side: str = "right",
) -> np.ndarray:
    """Procedure 2 (Computing stars): ``Re := Re ∪ Re ✶ R1`` to saturation.

    The paper iterates ``n^3`` times unconditionally; saturation happens
    no later than that, so stopping at the first fixed point computes the
    same matrix (we assert the iteration bound as a sanity check).
    """
    acc = r1.copy()
    bound = ms.n ** 3 + 1
    for _ in range(bound):
        if side == "right":
            step = join_matrices(acc, r1, out, conditions, ms)
        else:
            step = join_matrices(r1, acc, out, conditions, ms)
        new = acc | step
        if (new == acc).all():
            return acc
        acc = new
    raise AssertionError("star failed to saturate within n^3 rounds")  # pragma: no cover


def _warshall(reach: np.ndarray) -> np.ndarray:
    """Reflexive-transitive closure of a boolean adjacency matrix.

    The paper invokes Warshall's algorithm; we keep the cubic loop
    structure but vectorise the innermost dimension.
    """
    closure = reach | np.eye(reach.shape[0], dtype=bool)
    n = closure.shape[0]
    for k in range(n):
        closure |= np.outer(closure[:, k], closure[k, :])
    return closure


def reach_star_any(r: np.ndarray, ms: MatrixStore) -> np.ndarray:
    """Procedure 3: ``(R ✶^{1,2,3'}_{3=1'})*`` via precomputed reachability.

    Lines 1–6 project R to the binary relation Rreach (s can step to o);
    line 7 closes it transitively; lines 8–15 attach each reachable
    endpoint to the source triples.
    """
    n = ms.n
    reach = np.zeros((n, n), dtype=bool)
    for i, k, j in np.argwhere(r):
        reach[i, j] = True
    closure = _warshall(reach)
    result = np.zeros_like(r)
    for i, k, j in np.argwhere(r):
        for l in np.nonzero(closure[j])[0]:  # noqa: E741
            result[i, k, l] = True
    return result


def reach_star_same_label(r: np.ndarray, ms: MatrixStore) -> np.ndarray:
    """Procedure 4: ``(R ✶^{1,2,3'}_{3=1',2=2'})*`` — per-label reachability.

    The outer loop fixes the middle object ``k`` and runs Procedure 3's
    logic on the slice of triples whose predicate is ``k``.
    """
    n = ms.n
    result = np.zeros_like(r)
    for k in range(n):
        slice_k = r[:, k, :]
        if not slice_k.any():
            continue
        closure = _warshall(slice_k.copy())
        for i in range(n):
            for j in np.nonzero(slice_k[i])[0]:
                for l in np.nonzero(closure[j])[0]:  # noqa: E741
                    result[i, k, l] = True
    return result
