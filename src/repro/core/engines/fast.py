"""The fragment-aware engine implementing Propositions 4 and 5.

:class:`FastEngine` extends the hash-join engine by routing any Kleene
star matching one of the two reachTA= patterns to the specialised
reachability algorithms of :mod:`repro.core.engines.reach`.  On the
planner path (the default) this is a compile-time decision — the star
becomes a :class:`~repro.core.plan.ReachStarOp` in the physical plan; on
the legacy path the ``_star`` override below makes the same call at
evaluation time.  In ``strict`` mode it refuses expressions outside
reachTA= (inequalities or general stars) with a
:class:`~repro.errors.FragmentError` — useful when a caller wants the
``O(|e|·|O|·|T|)`` guarantee rather than best effort.  In non-strict mode
(default) it silently falls back to the generic algorithms for the
unsupported parts, so it is a drop-in accelerated replacement for
:class:`~repro.core.engines.hashjoin.HashJoinEngine`.
"""

from __future__ import annotations

from repro.errors import FragmentError
from repro.core.expressions import Expr, Star, in_reach_ta_eq, star_is_reach
from repro.core.engines.base import TripleSet
from repro.core.engines.hashjoin import HashJoinEngine
from repro.core.engines.reach import reach_star_any, reach_star_same_label
from repro.triplestore.model import Triplestore


class FastEngine(HashJoinEngine):
    """Hash joins + Proposition 5 reachability stars.

    Parameters
    ----------
    strict:
        When True, evaluating anything outside reachTA= raises
        :class:`FragmentError` instead of falling back.
    use_planner:
        As in :class:`HashJoinEngine`.
    """

    plans_reach_stars = True

    def __init__(
        self,
        max_universe_objects: int = 400,
        strict: bool = False,
        use_planner: bool = True,
    ) -> None:
        super().__init__(max_universe_objects, use_planner=use_planner)
        self.strict = strict

    def evaluate(self, expr: Expr, store: Triplestore) -> TripleSet:
        if self.strict and not in_reach_ta_eq(expr):
            raise FragmentError(
                "expression is outside reachTA= (inequality conditions or a "
                "general Kleene star); use HashJoinEngine or strict=False"
            )
        return super().evaluate(expr, store)

    # -- legacy (planner-off) path ------------------------------------- #

    def _star(self, expr: Star, store: Triplestore, memo: dict) -> TripleSet:
        base = self._eval(expr.expr, store, memo)
        if star_is_reach(expr):
            if len(expr.conditions) == 1:
                return frozenset(reach_star_any(base))
            return frozenset(reach_star_same_label(base))
        if self.strict:  # pragma: no cover — filtered in evaluate()
            raise FragmentError(f"star {expr!r} is not a reachTA= pattern")
        return frozenset(self.star_fixpoint(base, expr, store))
