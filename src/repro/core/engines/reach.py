"""Set-based ``O(|O|·|T|)`` algorithms for the reachTA= star patterns.

Proposition 5 restricts the Kleene star to two shapes, mimicking graph
reachability:

* ``(R ✶^{1,2,3'}_{3=1'})*`` — "reachable by an arbitrary path";
* ``(R ✶^{1,2,3'}_{3=1',2=2'})*`` — "reachable by a path labelled with
  the same element".

Both are computed here without generic fixpoints: project the relation
to a successor graph (per label, for the second shape), run one BFS per
distinct source object, and attach reachable endpoints to the base
triples.  That is one BFS (``O(|T|)``) per object — the Proposition's
``O(|O|·|T|)``.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable

from repro.triplestore.model import Triple

__all__ = ["bfs_reachable", "reach_star_any", "reach_star_same_label"]


def bfs_reachable(
    succ: dict[Hashable, set[Hashable]], source: Hashable
) -> set[Hashable]:
    """Nodes reachable from ``source`` (including it) in a successor map."""
    seen = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for nxt in succ.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return seen


def reach_star_any(base: Iterable[Triple]) -> set[Triple]:
    """``(R ✶^{1,2,3'}_{3=1'})*`` on a set of triples.

    A triple (a, b, c) is in the result iff R contains some (a, b, x)
    and c is reachable from x along the s→o edges of R (zero or more
    steps — zero steps yields R itself, the closure's first level).
    """
    succ: dict[Hashable, set[Hashable]] = {}
    for s, _, o in base:
        succ.setdefault(s, set()).add(o)
    reach_cache: dict[Hashable, set[Hashable]] = {}
    result: set[Triple] = set()
    for s, p, o in base:
        reachable = reach_cache.get(o)
        if reachable is None:
            reachable = bfs_reachable(succ, o)
            reach_cache[o] = reachable
        for c in reachable:
            result.add((s, p, c))
    return result


def reach_star_same_label(base: Iterable[Triple]) -> set[Triple]:
    """``(R ✶^{1,2,3'}_{3=1',2=2'})*`` — chains sharing the middle element."""
    succ_by_label: dict[Hashable, dict[Hashable, set[Hashable]]] = {}
    for s, p, o in base:
        succ_by_label.setdefault(p, {}).setdefault(s, set()).add(o)
    reach_cache: dict[tuple[Hashable, Hashable], set[Hashable]] = {}
    result: set[Triple] = set()
    for s, p, o in base:
        key = (p, o)
        reachable = reach_cache.get(key)
        if reachable is None:
            reachable = bfs_reachable(succ_by_label[p], o)
            reach_cache[key] = reachable
        for c in reachable:
            result.add((s, p, c))
    return result
