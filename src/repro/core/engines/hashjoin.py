"""Hash-join based evaluation — the library's default engine.

By default expressions are compiled to a physical plan
(:mod:`repro.core.plan`) and executed: the planner picks hash-join build
sides from store statistics, serves base-relation build sides from the
store's cached indexes, and hoists the constant operand of a Kleene star
out of the fixpoint loop.  ``use_planner=False`` selects the legacy
direct interpreter below, kept as the planner-off baseline for
benchmarks and differential testing.

The legacy interpreter executes joins by

1. splitting the condition set into left-local, right-local, cross and
   constant parts;
2. pre-filtering each operand with its local conditions;
3. hashing the right operand on the cross-equality key and probing with
   each left triple;
4. checking the remaining cross inequalities per candidate pair.

Kleene stars use semi-naive fixpoint iteration: only the triples produced
in the previous round are re-joined with the base relation.  This is
semantically identical to the paper's levels
``∅ ∪ e ∪ e✶e ∪ (e✶e)✶e ∪ …`` because the triple join distributes over
union in either argument.

Identical sub-expressions are evaluated once per evaluation via a memo
table (plan-node memoisation on the planner path, an expression-keyed
table on the legacy path) — the AST is hashable precisely for this
purpose.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import AlgebraError
from repro.core.conditions import Cond
from repro.core.expressions import (
    RIGHT,
    Diff,
    Expr,
    Intersect,
    Join,
    Rel,
    Select,
    Star,
    Union,
    Universe,
)
from repro.core.engines.base import Engine, TripleSet, project_out
from repro.core.plan import ExecContext, PlanOp, compile_plan, split_conditions
from repro.core.positions import Const, Pos
from repro.triplestore.model import Triple, Triplestore

__all__ = ["HashJoinEngine", "split_conditions"]


class HashJoinEngine(Engine):
    """Default engine: cost-based plans + hash joins + semi-naive fixpoints.

    Parameters
    ----------
    max_universe_objects:
        See :class:`~repro.core.engines.base.Engine`.
    use_planner:
        When True (default) expressions are compiled to physical plans
        via :func:`repro.core.plan.compile_plan`; when False the legacy
        direct interpreter runs instead.
    """

    #: Route reach-shaped stars to the Prop 4/5 operators when planning?
    #: (Overridden by FastEngine; here the generic fixpoint is kept so
    #: this engine stays the pure hash-join baseline.)
    plans_reach_stars = False

    #: Max prepared plans kept per engine instance.
    _PLAN_CACHE_SIZE = 64

    def __init__(
        self, max_universe_objects: int = 400, use_planner: bool = True
    ) -> None:
        super().__init__(max_universe_objects)
        self.use_planner = use_planner
        self._plan_cache: dict[Expr, PlanOp] = {}

    def compile(self, expr: Expr, store: Triplestore | None = None) -> PlanOp:
        """The physical plan this engine would execute for ``expr``."""
        return compile_plan(expr, store, use_reach=self.plans_reach_stars)

    def execute_plan(self, plan: PlanOp, store: Triplestore) -> TripleSet:
        """Run a compiled plan against a store."""
        return plan.execute(ExecContext(store, self.max_universe_objects))

    def evaluate(self, expr: Expr, store: Triplestore) -> TripleSet:
        if self.use_planner:
            # Prepared-statement style: a plan is *correct* for any store
            # (execution resolves relations and indexes against the store
            # it is given; statistics only picked the strategy), so plans
            # are cached per expression.
            plan = self._plan_cache.get(expr)
            if plan is None:
                if len(self._plan_cache) >= self._PLAN_CACHE_SIZE:
                    self._plan_cache.clear()
                plan = self.compile(expr, store)
                self._plan_cache[expr] = plan
            return self.execute_plan(plan, store)
        memo: dict[Expr, TripleSet] = {}
        return self._eval(expr, store, memo)

    # ------------------------------------------------------------------ #

    def _eval(self, expr: Expr, store: Triplestore, memo: dict) -> TripleSet:
        cached = memo.get(expr)
        if cached is not None:
            return cached
        result = self._dispatch(expr, store, memo)
        memo[expr] = result
        return result

    def _dispatch(self, expr: Expr, store: Triplestore, memo: dict) -> TripleSet:
        if isinstance(expr, Rel):
            return store.relation(expr.name)
        if isinstance(expr, Universe):
            return self.universal_relation(store)
        if isinstance(expr, Select):
            return self._select(
                self._eval(expr.expr, store, memo), expr.conditions, store
            )
        if isinstance(expr, Union):
            return self._eval(expr.left, store, memo) | self._eval(expr.right, store, memo)
        if isinstance(expr, Diff):
            return self._eval(expr.left, store, memo) - self._eval(expr.right, store, memo)
        if isinstance(expr, Intersect):
            return self._eval(expr.left, store, memo) & self._eval(expr.right, store, memo)
        if isinstance(expr, Join):
            return frozenset(
                self.join(
                    self._eval(expr.left, store, memo),
                    self._eval(expr.right, store, memo),
                    expr.out,
                    expr.conditions,
                    store,
                )
            )
        if isinstance(expr, Star):
            return self._star(expr, store, memo)
        raise AlgebraError(f"unknown expression node {type(expr).__name__}")

    # ------------------------------------------------------------------ #
    # Operators
    # ------------------------------------------------------------------ #

    def _select(
        self, triples: TripleSet, conditions: tuple[Cond, ...], store: Triplestore
    ) -> TripleSet:
        rho = store.rho
        return frozenset(
            t for t in triples if all(c.evaluate(t, None, rho) for c in conditions)
        )

    def join(
        self,
        left: TripleSet | set[Triple],
        right: TripleSet | set[Triple],
        out: tuple[int, int, int],
        conditions: tuple[Cond, ...],
        store: Triplestore,
    ) -> set[Triple]:
        """One hash join; exposed for reuse by fixpoints and other engines."""
        rho = store.rho
        left_local, right_local, cross_eq, cross_neq, const_only = split_conditions(
            conditions
        )

        # Constant-only conditions are a static boolean gate.
        for cond in const_only:
            if not cond.evaluate((None,) * 3, (None,) * 3, rho):
                return set()

        if left_local:
            left = {t for t in left if all(c.evaluate(t, None, rho) for c in left_local)}
        if right_local:
            # Right-local conditions talk about positions 1'..3'; shift
            # them down so they can be checked against the bare triple.
            shifted = tuple(c.swap_sides() for c in right_local)
            right = {
                t for t in right if all(c.evaluate(t, None, rho) for c in shifted)
            }
        if not left or not right:
            return set()

        key_of_left, key_of_right = self._key_extractors(cross_eq, rho)

        index: dict[Any, list[Triple]] = {}
        for rt in right:
            index.setdefault(key_of_right(rt), []).append(rt)

        result: set[Triple] = set()
        if cross_neq:
            check_neq = lambda lt, rt: all(  # noqa: E731
                c.evaluate(lt, rt, rho) for c in cross_neq
            )
        else:
            check_neq = None
        for lt in left:
            bucket = index.get(key_of_left(lt))
            if not bucket:
                continue
            for rt in bucket:
                if check_neq is None or check_neq(lt, rt):
                    result.add(project_out(lt, rt, out))
        return result

    @staticmethod
    def _key_extractors(
        cross_eq: tuple[Cond, ...], rho: Callable[[Any], Any]
    ) -> tuple[Callable[[Triple], Any], Callable[[Triple], Any]]:
        """Key functions for both sides of the hash join.

        Each cross equality contributes one key component; θ-conditions
        use the object itself, η-conditions its ρ-value.  With no cross
        equalities both keys are constant (a cartesian product, as the
        algebra demands).
        """
        left_parts: list[Callable[[Triple], Any]] = []
        right_parts: list[Callable[[Triple], Any]] = []
        for cond in cross_eq:
            lpos = cond.left
            rpos = cond.right
            assert isinstance(lpos, Pos) and isinstance(rpos, Pos)
            li, ri = lpos.index, rpos.index - 3
            if cond.on_data:
                left_parts.append(lambda t, i=li: rho(t[i]))
                right_parts.append(lambda t, i=ri: rho(t[i]))
            else:
                left_parts.append(lambda t, i=li: t[i])
                right_parts.append(lambda t, i=ri: t[i])

        def key_left(t: Triple) -> Any:
            return tuple(f(t) for f in left_parts)

        def key_right(t: Triple) -> Any:
            return tuple(f(t) for f in right_parts)

        return key_left, key_right

    # ------------------------------------------------------------------ #
    # Fixpoints
    # ------------------------------------------------------------------ #

    def _star(self, expr: Star, store: Triplestore, memo: dict) -> TripleSet:
        base = self._eval(expr.expr, store, memo)
        return frozenset(self.star_fixpoint(base, expr, store))

    def star_fixpoint(
        self, base: TripleSet, expr: Star, store: Triplestore
    ) -> set[Triple]:
        """Semi-naive closure of ``base`` under the star's join."""
        acc: set[Triple] = set(base)
        frontier: set[Triple] = set(base)
        while frontier:
            if expr.side == RIGHT:
                produced = self.join(frontier, base, expr.out, expr.conditions, store)
            else:
                produced = self.join(base, frontier, expr.out, expr.conditions, store)
            frontier = produced - acc
            acc |= frontier
        return acc
