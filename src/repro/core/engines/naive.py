"""The paper-faithful evaluation algorithm of Theorem 3.

Joins are computed by the doubly nested loop of Procedure 1 — every pair
of triples from the two operands is inspected and the condition checked —
so one join costs ``O(|T|^2)`` exactly as the theorem states.  Kleene
stars follow Procedure 2 literally: repeat ``Re := Re ∪ (Re ✶ R1)`` with
a *full* re-join each round (no semi-naive optimisation) until the result
saturates, giving the theorem's ``O(|T|^3)`` bound.

This engine exists for two purposes: to serve as the executable ground
truth closest to the paper's pseudo-code, and to provide the baseline
whose measured scaling the benchmarks compare against the fragment
algorithms of Propositions 4 and 5.
"""

from __future__ import annotations

from repro.errors import AlgebraError
from repro.core.conditions import Cond
from repro.core.expressions import (
    RIGHT,
    Diff,
    Expr,
    Intersect,
    Join,
    Rel,
    Select,
    Star,
    Union,
    Universe,
)
from repro.core.engines.base import Engine, TripleSet, project_out
from repro.triplestore.model import Triple, Triplestore


class NaiveEngine(Engine):
    """Nested-loop joins and naive fixpoints, per Theorem 3's procedures."""

    def evaluate(self, expr: Expr, store: Triplestore) -> TripleSet:
        return self._eval(expr, store)

    def _eval(self, expr: Expr, store: Triplestore) -> TripleSet:
        if isinstance(expr, Rel):
            return store.relation(expr.name)
        if isinstance(expr, Universe):
            return self.universal_relation(store)
        if isinstance(expr, Select):
            rho = store.rho
            return frozenset(
                t
                for t in self._eval(expr.expr, store)
                if all(c.evaluate(t, None, rho) for c in expr.conditions)
            )
        if isinstance(expr, Union):
            return self._eval(expr.left, store) | self._eval(expr.right, store)
        if isinstance(expr, Diff):
            return self._eval(expr.left, store) - self._eval(expr.right, store)
        if isinstance(expr, Intersect):
            return self._eval(expr.left, store) & self._eval(expr.right, store)
        if isinstance(expr, Join):
            return frozenset(
                self.nested_loop_join(
                    self._eval(expr.left, store),
                    self._eval(expr.right, store),
                    expr.out,
                    expr.conditions,
                    store,
                )
            )
        if isinstance(expr, Star):
            return self._star(expr, store)
        raise AlgebraError(f"unknown expression node {type(expr).__name__}")

    # ------------------------------------------------------------------ #

    def nested_loop_join(
        self,
        left: TripleSet | set[Triple],
        right: TripleSet | set[Triple],
        out: tuple[int, int, int],
        conditions: tuple[Cond, ...],
        store: Triplestore,
    ) -> set[Triple]:
        """Procedure 1: inspect every pair of triples."""
        rho = store.rho
        result: set[Triple] = set()
        for lt in left:
            for rt in right:
                if all(c.evaluate(lt, rt, rho) for c in conditions):
                    result.add(project_out(lt, rt, out))
        return result

    def _star(self, expr: Star, store: Triplestore) -> TripleSet:
        """Procedure 2: saturate ``Re := Re ∪ Re ✶ R1`` (full re-join)."""
        base = self._eval(expr.expr, store)
        acc: set[Triple] = set(base)
        while True:
            if expr.side == RIGHT:
                produced = self.nested_loop_join(
                    acc, base, expr.out, expr.conditions, store
                )
            else:
                produced = self.nested_loop_join(
                    base, acc, expr.out, expr.conditions, store
                )
            if produced <= acc:
                return frozenset(acc)
            acc |= produced
