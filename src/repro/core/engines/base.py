"""Engine interface and shared helpers for Triple Algebra evaluation.

All engines implement one method, :meth:`Engine.evaluate`, mapping an
expression and a triplestore to a frozen set of triples.  The semantics
is fixed by the paper; engines differ only in algorithmics:

* :class:`~repro.core.engines.naive.NaiveEngine` — the paper's Theorem 3
  algorithm (nested-loop joins, non-semi-naive fixpoints);
* :class:`~repro.core.engines.hashjoin.HashJoinEngine` — hash joins and
  semi-naive fixpoints (a realistic implementation);
* :class:`~repro.core.engines.fast.FastEngine` — adds the Proposition 4/5
  ``O(|e|·|O|·|T|)`` algorithms for the equality and reach fragments.

Cross-engine agreement is enforced by the property tests in
``tests/test_engines_agree.py``.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.errors import EvaluationBudgetError
from repro.core.conditions import Cond
from repro.core.expressions import Expr
from repro.triplestore.model import Triple, Triplestore

TripleSet = frozenset[Triple]


class Engine(ABC):
    """Evaluates Triple Algebra expressions over triplestores.

    Parameters
    ----------
    max_universe_objects:
        Evaluating the universal relation U materialises ``|O_active|^3``
        triples.  Engines refuse when the active domain exceeds this
        limit (default 400) instead of silently exhausting memory.
    """

    #: Which storage representation the engine executes over: ``"set"``
    #: (Python sets of tuples) or ``"columnar"`` (packed numpy arrays).
    #: The :class:`~repro.db.Database` facade keys its plan cache on it.
    backend = "set"

    def __init__(self, max_universe_objects: int = 400) -> None:
        self.max_universe_objects = max_universe_objects

    @abstractmethod
    def evaluate(self, expr: Expr, store: Triplestore) -> TripleSet:
        """The relation ``expr(store)``."""

    # ------------------------------------------------------------------ #
    # Shared semantics helpers
    # ------------------------------------------------------------------ #

    def active_domain(self, store: Triplestore) -> frozenset:
        """Objects occurring in some stored triple (the domain of U)."""
        objects: set = set()
        for triple in store.all_triples():
            objects.update(triple)
        return frozenset(objects)

    def universal_relation(self, store: Triplestore) -> TripleSet:
        """U — all triples over the active domain (Section 3)."""
        domain = self.active_domain(store)
        if len(domain) > self.max_universe_objects:
            raise EvaluationBudgetError(
                f"universal relation over {len(domain)} objects would hold "
                f"{len(domain) ** 3} triples (limit {self.max_universe_objects} objects); "
                "raise max_universe_objects to proceed"
            )
        return frozenset(itertools.product(domain, repeat=3))


def make_condition_checker(
    conditions: tuple[Cond, ...], rho: Callable[[Any], Any]
) -> Callable[[Triple, Triple | None], bool]:
    """A predicate testing all conditions on a (left, right) triple pair."""

    def check(left: Triple, right: Triple | None) -> bool:
        return all(c.evaluate(left, right, rho) for c in conditions)

    return check


def project_out(left: Triple, right: Triple, out: tuple[int, int, int]) -> Triple:
    """Build the output triple of a join from its two input triples."""
    i, j, k = out
    return (
        left[i] if i < 3 else right[i - 3],
        left[j] if j < 3 else right[j - 3],
        left[k] if k < 3 else right[k - 3],
    )
