"""θ- and η-conditions for Triple Algebra joins and selections.

A join ``R ✶^{i,j,k}_{θ,η} R'`` carries

* ``θ`` — a set of equalities/inequalities between positions and *objects*;
* ``η`` — a set of equalities/inequalities between the *data values*
  ``ρ(position)`` and data constants.

We represent both with one :class:`Cond` class carrying an ``on_data``
flag; helpers split a condition list back into the paper's (θ, η) pair.
A small string syntax mirrors the paper's notation::

    parse_conditions("2=1'")                    # θ equality
    parse_conditions("1!=3' & rho(2)=rho(2')")  # θ inequality + η equality
    parse_conditions("2='part_of'")             # θ with object constant
    parse_conditions("rho(3)=7")                # η with data constant
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import AlgebraError, ParseError, UnboundParameterError
from repro.core.positions import Const, Param, Pos, Term

EQ = "="
NEQ = "!="
_OPS = (EQ, NEQ)


@dataclass(frozen=True)
class Cond:
    """One (in)equality between two condition terms.

    ``on_data=False`` makes this a θ-condition (objects are compared
    directly), ``on_data=True`` an η-condition (each :class:`Pos` term is
    first mapped through ρ; constants are data values).
    """

    left: Term
    right: Term
    op: str = EQ
    on_data: bool = False

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise AlgebraError(f"condition operator must be '=' or '!=', got {self.op!r}")
        if isinstance(self.left, Const) and isinstance(self.right, Const):
            # Legal but pointless — it is a constant boolean.  Allowed so
            # generated conditions compose, evaluated statically by engines.
            pass

    @property
    def is_equality(self) -> bool:
        return self.op == EQ

    def positions(self) -> tuple[Pos, ...]:
        """All :class:`Pos` terms mentioned."""
        return tuple(t for t in (self.left, self.right) if isinstance(t, Pos))

    def max_position(self) -> int:
        """Largest position index used, or -1 if constant-only."""
        ps = self.positions()
        return max((p.index for p in ps), default=-1)

    def shift_right(self) -> "Cond":
        """Reinterpret select-side positions (0..2) as right-operand (3..5)."""
        def shift(t: Term) -> Term:
            return Pos(t.index + 3) if isinstance(t, Pos) else t
        return Cond(shift(self.left), shift(self.right), self.op, self.on_data)

    def swap_sides(self) -> "Cond":
        """Exchange the roles of the two operands (1 <-> 1', etc.)."""
        def flip(t: Term) -> Term:
            if isinstance(t, Pos):
                return Pos(t.index + 3) if t.index < 3 else Pos(t.index - 3)
            return t
        return Cond(flip(self.left), flip(self.right), self.op, self.on_data)

    def evaluate(
        self,
        left_triple: tuple,
        right_triple: tuple | None,
        rho: Callable[[Any], Any],
    ) -> bool:
        """Check the condition against concrete triples.

        ``right_triple`` may be ``None`` for selection conditions (all
        positions then refer to ``left_triple``).
        """
        def resolve(term: Term) -> Any:
            if isinstance(term, Const):
                return term.value
            if isinstance(term, Param):
                raise UnboundParameterError(term.name)
            if term.index < 3:
                obj = left_triple[term.index]
            else:
                if right_triple is None:
                    raise AlgebraError(
                        f"condition uses {term.paper_name} but no right operand given"
                    )
                obj = right_triple[term.index - 3]
            return rho(obj) if self.on_data else obj

        lv, rv = resolve(self.left), resolve(self.right)
        return (lv == rv) if self.op == EQ else (lv != rv)

    def __repr__(self) -> str:
        def fmt(t: Term) -> str:
            if isinstance(t, Const):
                return repr(t.value)
            if isinstance(t, Param):
                return f"${t.name}"
            name = t.paper_name
            return f"rho({name})" if self.on_data else name
        return f"{fmt(self.left)}{self.op}{fmt(self.right)}"


Conditions = tuple[Cond, ...]


def theta(conditions: Iterable[Cond]) -> Conditions:
    """The object-comparison (θ) part of a condition list."""
    return tuple(c for c in conditions if not c.on_data)


def eta(conditions: Iterable[Cond]) -> Conditions:
    """The data-comparison (η) part of a condition list."""
    return tuple(c for c in conditions if c.on_data)


def equalities_only(conditions: Iterable[Cond]) -> bool:
    """True when no condition is an inequality (the TriAL= restriction)."""
    return all(c.is_equality for c in conditions)


# --------------------------------------------------------------------- #
# The string mini-language
# --------------------------------------------------------------------- #

_TERM_RE = re.compile(
    r"""\s*(?:
        rho\(\s*(?P<rhopos>[123]'?)\s*\)      # rho(2')
      | (?P<pos>[123]'?)                      # 2'
      | \$(?P<param>[A-Za-z_]\w*)             # $city — bound at execution
      | '(?P<sq>[^']*)'                       # 'object constant'
      | "(?P<dq>[^"]*)"
      | (?P<num>-?\d+(?:\.\d+)?)              # numeric constant
    )\s*""",
    re.VERBOSE,
)


def _parse_term(text: str, pos: int) -> tuple[Term, bool, str, int]:
    """Parse one term; returns (term, is_rho, raw_token, next_position)."""
    m = _TERM_RE.match(text, pos)
    if not m:
        raise ParseError("expected a condition term", text, pos)
    if m.group("rhopos"):
        return Pos.from_paper(m.group("rhopos")), True, m.group("rhopos"), m.end()
    if m.group("pos"):
        return Pos.from_paper(m.group("pos")), False, m.group("pos"), m.end()
    if m.group("param"):
        return Param(m.group("param")), False, "", m.end()
    if m.group("sq") is not None:
        return Const(m.group("sq")), False, "", m.end()
    if m.group("dq") is not None:
        return Const(m.group("dq")), False, "", m.end()
    num = m.group("num")
    value = float(num) if "." in num else int(num)
    return Const(value), False, "", m.end()


def _parse_one(text: str, pos: int) -> tuple[Cond, int]:
    left, left_rho, left_raw, pos = _parse_term(text, pos)
    if text.startswith("!=", pos):
        op, pos = NEQ, pos + 2
    elif text.startswith("=", pos):
        op, pos = EQ, pos + 1
    else:
        raise ParseError("expected '=' or '!='", text, pos)
    right, right_rho, right_raw, pos = _parse_term(text, pos)
    on_data = left_rho or right_rho
    if on_data and isinstance(left, Pos) and isinstance(right, Pos):
        # "rho(1) = 2" compares ρ(1) with the data constant 2, whereas
        # "rho(1) = rho(2)" compares two positions.  A bare *unprimed*
        # digit opposite a rho-term is therefore a numeric constant;
        # primed bare positions ("rho(1) = 2'") stay an error.
        if not left_rho and not left_raw.endswith("'"):
            left = Const(int(left_raw))
        elif not right_rho and not right_raw.endswith("'"):
            right = Const(int(right_raw))
        elif not (left_rho and right_rho):
            raise ParseError(
                "cannot mix rho(...) and bare primed positions in one condition",
                text,
                pos,
            )
    return Cond(left, right, op, on_data), pos


def parse_conditions(spec: str) -> Conditions:
    """Parse a ``&``-separated condition list.

    >>> parse_conditions("2=1' & rho(3)!=rho(3')")
    (2=1', rho(3)!=rho(3'))
    >>> parse_conditions("")
    ()
    """
    spec = spec.strip()
    if not spec:
        return ()
    out: list[Cond] = []
    pos = 0
    while True:
        cond, pos = _parse_one(spec, pos)
        out.append(cond)
        rest = spec[pos:].lstrip()
        if not rest:
            break
        if rest.startswith("&") or rest.startswith(","):
            pos = len(spec) - len(rest) + 1
        else:
            raise ParseError("expected '&' between conditions", spec, pos)
    return tuple(out)


def as_conditions(conds: str | Iterable[Cond] | None) -> Conditions:
    """Coerce user input (string, iterable, or ``None``) to conditions."""
    if conds is None:
        return ()
    if isinstance(conds, str):
        return parse_conditions(conds)
    return tuple(conds)
