"""A text syntax for Triple Algebra expressions.

The grammar (whitespace-insensitive)::

    expr     := term (("|" | "-" | "&") term)*        # left-associative
    term     := NAME                                  # base relation
              | "U"                                   # universal relation
              | "(" expr ")"
              | "select[" conds "](" expr ")"
              | "join[" out (";" conds)? "](" expr "," expr ")"
              | "star[" out (";" conds)? "](" expr ")"
              | "lstar[" out (";" conds)? "](" expr ")"
              | "compl(" expr ")"                     # U - expr
    out      := pos "," pos "," pos                   # pos: 1 2 3 1' 2' 3'
    conds    := cond ("&" cond)*                      # see conditions module

Examples::

    parse("join[1,3',3; 2=1'](E, E)")                 # Example 2
    parse("star[1,2,3'; 3=1' & 2=2'](star[1,3',3; 2=1'](E))")   # query Q
    parse("(E | F) - select[2='part_of'](E)")

``parse`` and ``Expr.__repr__`` round-trip: parsing the repr of an
expression yields an equal expression (tested property).
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.core.conditions import parse_conditions
from repro.core.expressions import (
    Diff,
    Expr,
    Intersect,
    Join,
    Rel,
    Select,
    Star,
    Union,
    Universe,
)
from repro.core.builder import complement
from repro.core.positions import parse_out_spec

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")
_KEYWORDS = {"select", "join", "star", "lstar", "compl", "U"}


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # -- low-level helpers ------------------------------------------------

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self) -> str:
        self._skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _expect(self, token: str) -> None:
        self._skip_ws()
        if not self.text.startswith(token, self.pos):
            raise ParseError(f"expected {token!r}", self.text, self.pos)
        self.pos += len(token)

    def _match(self, token: str) -> bool:
        self._skip_ws()
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    def _name(self) -> str:
        self._skip_ws()
        m = _NAME_RE.match(self.text, self.pos)
        if not m:
            raise ParseError("expected a name", self.text, self.pos)
        self.pos = m.end()
        return m.group()

    def _bracket_payload(self) -> str:
        """Consume '[' ... ']' and return the raw inside text."""
        self._expect("[")
        depth = 1
        start = self.pos
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
                if depth == 0:
                    payload = self.text[start:self.pos]
                    self.pos += 1
                    return payload
            self.pos += 1
        raise ParseError("unterminated '['", self.text, start)

    @staticmethod
    def _split_out_conds(payload: str) -> tuple[tuple[int, int, int], tuple]:
        if ";" in payload:
            out_part, cond_part = payload.split(";", 1)
        else:
            out_part, cond_part = payload, ""
        return parse_out_spec(out_part), parse_conditions(cond_part)

    # -- grammar -----------------------------------------------------------

    def parse(self) -> Expr:
        expr = self.expr()
        self._skip_ws()
        if self.pos != len(self.text):
            raise ParseError("trailing input", self.text, self.pos)
        return expr

    def expr(self) -> Expr:
        acc = self.term()
        while True:
            self._skip_ws()
            ch = self._peek()
            if ch == "|":
                self.pos += 1
                acc = Union(acc, self.term())
            elif ch == "-":
                self.pos += 1
                acc = Diff(acc, self.term())
            elif ch == "&":
                self.pos += 1
                acc = Intersect(acc, self.term())
            else:
                return acc

    def term(self) -> Expr:
        self._skip_ws()
        if self._match("("):
            inner = self.expr()
            self._expect(")")
            return inner
        name = self._name()
        if name == "U":
            return Universe()
        if name == "select":
            conds = parse_conditions(self._bracket_payload())
            self._expect("(")
            inner = self.expr()
            self._expect(")")
            return Select(inner, conds)
        if name == "join":
            out, conds = self._split_out_conds(self._bracket_payload())
            self._expect("(")
            left = self.expr()
            self._expect(",")
            right = self.expr()
            self._expect(")")
            return Join(left, right, out, conds)
        if name in ("star", "lstar"):
            out, conds = self._split_out_conds(self._bracket_payload())
            self._expect("(")
            inner = self.expr()
            self._expect(")")
            side = "right" if name == "star" else "left"
            return Star(inner, out, conds, side)
        if name == "compl":
            self._expect("(")
            inner = self.expr()
            self._expect(")")
            return complement(inner)
        return Rel(name)


def parse(text: str) -> Expr:
    """Parse the TriAL text syntax into an expression AST.

    >>> parse("join[1,3',3; 2=1'](E, E)")
    join[1,3',3; 2=1'](E, E)
    """
    return _Parser(text).parse()
