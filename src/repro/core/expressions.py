"""The Triple Algebra expression AST (Section 3 of the paper).

Expressions are immutable, hashable dataclasses, so engines can memoise
sub-results and tests can compare expression trees structurally.

The constructors mirror the paper exactly:

* :class:`Rel` — a triplestore relation name;
* :class:`Select` — ``σ_{θ,η}(e)``;
* :class:`Union`, :class:`Diff` — set operations;
* :class:`Join` — ``e1 ✶^{i,j,k}_{θ,η} e2``;
* :class:`Star` — right/left Kleene closure ``(e ✶)*`` / ``(✶ e)*``;
* :class:`Universe` — the derived relation U of all triples over the
  active domain (Section 3, "Definable operations");
* :class:`Intersect` — sugar for the join-definable intersection.

``Intersect`` and ``Universe`` are definable in the core algebra (the
module :mod:`repro.core.builder` provides the paper's definitions and
tests verify the equivalence); they are first-class nodes so that engines
can evaluate them efficiently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import AlgebraError
from repro.core.conditions import Cond, Conditions, as_conditions
from repro.core.positions import Pos, format_out_spec, parse_out_spec

RIGHT = "right"
LEFT = "left"

OutSpec = tuple[int, int, int]


class Expr:
    """Base class for Triple Algebra expressions."""

    __slots__ = ()

    # -- operator sugar -------------------------------------------------

    def __or__(self, other: "Expr") -> "Union":
        return Union(self, other)

    def __sub__(self, other: "Expr") -> "Diff":
        return Diff(self, other)

    def __and__(self, other: "Expr") -> "Intersect":
        return Intersect(self, other)

    # -- tree utilities --------------------------------------------------

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions."""
        raise NotImplementedError

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def size(self) -> int:
        """Number of AST nodes — the paper's ``|e|``."""
        return sum(1 for _ in self.walk())

    def relation_names(self) -> frozenset[str]:
        """All base relation names mentioned."""
        return frozenset(n.name for n in self.walk() if isinstance(n, Rel))

    def is_recursive(self) -> bool:
        """True when the expression uses a Kleene star (TriAL* proper)."""
        return any(isinstance(n, Star) for n in self.walk())


def _coerce_out(out: OutSpec | str) -> OutSpec:
    if isinstance(out, str):
        return parse_out_spec(out)
    out = tuple(out)  # type: ignore[assignment]
    if len(out) != 3 or not all(isinstance(i, int) and 0 <= i <= 5 for i in out):
        raise AlgebraError(f"out spec must be three indexes in 0..5, got {out!r}")
    return out  # type: ignore[return-value]


def _check_select_conditions(conditions: Conditions) -> None:
    for cond in conditions:
        if cond.max_position() > 2:
            raise AlgebraError(
                f"selection conditions may only use positions 1,2,3; got {cond!r}"
            )


@dataclass(frozen=True, repr=False)
class Rel(Expr):
    """A base relation of the triplestore."""

    name: str

    def children(self) -> tuple[Expr, ...]:
        return ()

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, repr=False)
class Universe(Expr):
    """U: every triple over objects occurring in the stored relations."""

    def children(self) -> tuple[Expr, ...]:
        return ()

    def __repr__(self) -> str:
        return "U"


@dataclass(frozen=True, repr=False)
class Select(Expr):
    """``σ_{θ,η}(e)`` — keep triples satisfying all conditions."""

    expr: Expr
    conditions: Conditions = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "conditions", as_conditions(self.conditions))
        _check_select_conditions(self.conditions)

    def children(self) -> tuple[Expr, ...]:
        return (self.expr,)

    def __repr__(self) -> str:
        conds = " & ".join(map(repr, self.conditions))
        return f"select[{conds}]({self.expr!r})"


@dataclass(frozen=True, repr=False)
class Union(Expr):
    """``e1 ∪ e2``."""

    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} | {self.right!r})"


@dataclass(frozen=True, repr=False)
class Diff(Expr):
    """``e1 − e2``."""

    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} - {self.right!r})"


@dataclass(frozen=True, repr=False)
class Intersect(Expr):
    """``e1 ∩ e2`` (definable: ``e1 ✶^{1,2,3}_{1=1',2=2',3=3'} e2``)."""

    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} & {self.right!r})"


@dataclass(frozen=True, repr=False)
class Join(Expr):
    """``e1 ✶^{i,j,k}_{θ,η} e2``.

    ``out`` holds the three kept positions (0..5, or a paper-style string
    such as ``"1,3',3"``); ``conditions`` mixes θ and η conditions.
    """

    left: Expr
    right: Expr
    out: OutSpec = (0, 1, 2)
    conditions: Conditions = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "out", _coerce_out(self.out))
        object.__setattr__(self, "conditions", as_conditions(self.conditions))

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        conds = " & ".join(map(repr, self.conditions))
        sep = "; " if conds else ""
        return (
            f"join[{format_out_spec(self.out)}{sep}{conds}]"
            f"({self.left!r}, {self.right!r})"
        )


@dataclass(frozen=True, repr=False)
class Star(Expr):
    """Kleene closure of a join over an expression.

    ``side="right"`` is the paper's ``(e ✶^{i,j,k}_{θ,η})*`` — at each
    step the accumulated relation is the *left* operand and ``e`` the
    right one.  ``side="left"`` is ``(✶^{i,j,k}_{θ,η} e)*`` — the
    accumulated relation joins on the *right*.  Example 3 of the paper
    shows the two closures genuinely differ because triple joins are not
    associative.
    """

    expr: Expr
    out: OutSpec = (0, 1, 2)
    conditions: Conditions = ()
    side: str = RIGHT

    def __post_init__(self) -> None:
        object.__setattr__(self, "out", _coerce_out(self.out))
        object.__setattr__(self, "conditions", as_conditions(self.conditions))
        if self.side not in (RIGHT, LEFT):
            raise AlgebraError(f"star side must be 'right' or 'left', got {self.side!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.expr,)

    def __repr__(self) -> str:
        conds = " & ".join(map(repr, self.conditions))
        sep = "; " if conds else ""
        name = "star" if self.side == RIGHT else "lstar"
        return f"{name}[{format_out_spec(self.out)}{sep}{conds}]({self.expr!r})"


# --------------------------------------------------------------------- #
# Fragment classification (Sections 5 and 6)
# --------------------------------------------------------------------- #

#: The two star shapes allowed in reachTA= (Section 5): out = (1,2,3'),
#: conditions 3=1' (arbitrary path) or 3=1' & 2=2' (same-label path).
REACH_OUT: OutSpec = (0, 1, 5)
REACH_COND_ANY = (Cond(Pos(2), Pos(3)),)
REACH_COND_SAME_LABEL = (Cond(Pos(2), Pos(3)), Cond(Pos(1), Pos(4)))


def star_is_reach(star: Star) -> bool:
    """Does this star match one of the two reachTA= patterns?

    Only right stars qualify (the paper defines the fragment with the
    right closure); condition order is immaterial.
    """
    if star.side != RIGHT or star.out != REACH_OUT:
        return False
    conds = frozenset(star.conditions)
    return conds in (frozenset(REACH_COND_ANY), frozenset(REACH_COND_SAME_LABEL))


def is_equality_only(expr: Expr) -> bool:
    """True when no condition anywhere is an inequality (``=``-fragment)."""
    for node in expr.walk():
        conds: Conditions = getattr(node, "conditions", ())
        if not all(c.is_equality for c in conds):
            return False
    return True


def in_trial(expr: Expr) -> bool:
    """Membership in plain (non-recursive) TriAL."""
    return not expr.is_recursive()


def in_trial_eq(expr: Expr) -> bool:
    """Membership in TriAL= — non-recursive, equalities only (Prop 4)."""
    return in_trial(expr) and is_equality_only(expr)


def in_reach_ta_eq(expr: Expr) -> bool:
    """Membership in reachTA= (Prop 5): TriAL= plus the two reach stars."""
    if not is_equality_only(expr):
        return False
    return all(star_is_reach(n) for n in expr.walk() if isinstance(n, Star))
