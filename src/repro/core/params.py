"""Parameterized expressions: placeholders, canonicalization and binding.

The classic prepared-statement design from relational systems, applied
to the Triple Algebra: a :class:`~repro.core.positions.Param` term
(``$city`` in the text syntax) stands for a constant that is supplied at
*execution* time, so one compiled plan serves every binding.

Three layers cooperate:

* :func:`expr_params` / :func:`substitute_params` — the expression-level
  view.  Substitution produces the ordinary constant expression a
  binding denotes; it is the correctness reference (``bind-then-compile``
  must equal ``compile-then-bind``) and the execution path for engines
  without a planner.
* :func:`canonicalize_constants` — the inverse direction: every
  :class:`~repro.core.positions.Const` term in a condition is replaced
  by a positional parameter (``$p0``, ``$p1``, …) and the extracted
  values returned as a binding.  Queries that differ only in their
  constants then canonicalize to the *same* expression, so the plan
  cache becomes a cross-parameter cache: ``select[2='a'](E)`` and
  ``select[2='b'](E)`` compile once.
* :func:`bind_plan` — the plan-level view.  A compiled physical plan is
  rebound per execution by substituting the bound constants into the
  operators that mention parameters (conditions, index-lookup keys);
  everything else — children, cost annotations, build sides, lowering
  strategies — is shared structurally with the cached plan.  The bind
  is a shallow walk, orders of magnitude cheaper than recompiling, and
  backend-agnostic: the bound plan runs unchanged on the set, columnar
  and sharded executors.

The planner compiles a parameterized equality exactly like the constant
equality it replaces (:func:`repro.core.plan._constant_equality` accepts
``Param`` key values), which is what makes the shared plan shape sound:
statistics never looked at the constant's *value* in the first place.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import AlgebraError, UnboundParameterError
from repro.core.conditions import Cond, Conditions
from repro.core.expressions import (
    Diff,
    Expr,
    Intersect,
    Join,
    Rel,
    Select,
    Star,
    Union,
    Universe,
)
from repro.core.plan import (
    FilterOp,
    HashJoinOp,
    IndexLookupOp,
    JoinSpec,
    PlanOp,
    ReachStarOp,
    ScanOp,
    StarOp,
    UniverseOp,
    _SetOp,
)
from repro.core.positions import Const, Param, Term

__all__ = [
    "bind_plan",
    "canonicalize_constants",
    "check_bindings",
    "expr_params",
    "plan_params",
    "substitute_params",
]

Bindings = Mapping[str, Any]


def _cond_params(conditions: Conditions) -> tuple[str, ...]:
    names: list[str] = []
    for cond in conditions:
        for term in (cond.left, cond.right):
            if isinstance(term, Param) and term.name not in names:
                names.append(term.name)
    return tuple(names)


def expr_params(expr: Expr) -> tuple[str, ...]:
    """All parameter names in an expression, in first-occurrence order."""
    names: list[str] = []
    for node in expr.walk():
        for name in _cond_params(getattr(node, "conditions", ())):
            if name not in names:
                names.append(name)
    return tuple(names)


def check_bindings(params: tuple[str, ...], bindings: Bindings) -> None:
    """Verify ``bindings`` covers ``params`` exactly (no missing, no extra)."""
    for name in params:
        if name not in bindings:
            raise UnboundParameterError(name, params)
    for name in bindings:
        if name not in params:
            raise AlgebraError(
                f"unknown parameter ${name}; expression parameters: "
                + (", ".join(f"${p}" for p in params) or "(none)")
            )


def _subst_term(term: Term, bindings: Bindings) -> Term:
    if isinstance(term, Param):
        try:
            return Const(bindings[term.name])
        except KeyError:
            raise UnboundParameterError(term.name) from None
    return term


def _subst_conditions(conditions: Conditions, bindings: Bindings) -> Conditions:
    out = []
    changed = False
    for cond in conditions:
        left = _subst_term(cond.left, bindings)
        right = _subst_term(cond.right, bindings)
        if left is not cond.left or right is not cond.right:
            cond = Cond(left, right, cond.op, cond.on_data)
            changed = True
        out.append(cond)
    return tuple(out) if changed else conditions


def substitute_params(expr: Expr, bindings: Bindings) -> Expr:
    """The constant expression ``expr`` denotes under ``bindings``.

    Unmentioned parameters are left in place (partial binding); unknown
    binding names are ignored here — use :func:`check_bindings` first
    for strict validation.
    """
    if isinstance(expr, (Rel, Universe)):
        return expr
    if isinstance(expr, Select):
        return Select(
            substitute_params(expr.expr, bindings),
            _subst_conditions(expr.conditions, bindings),
        )
    if isinstance(expr, (Union, Diff, Intersect)):
        return type(expr)(
            substitute_params(expr.left, bindings),
            substitute_params(expr.right, bindings),
        )
    if isinstance(expr, Join):
        return Join(
            substitute_params(expr.left, bindings),
            substitute_params(expr.right, bindings),
            expr.out,
            _subst_conditions(expr.conditions, bindings),
        )
    if isinstance(expr, Star):
        return Star(
            substitute_params(expr.expr, bindings),
            expr.out,
            _subst_conditions(expr.conditions, bindings),
            expr.side,
        )
    return expr


#: Prefix of auto-generated canonicalization parameters.  User parameters
#: share the namespace, so the prefix is reserved (checked on canonicalize).
AUTO_PREFIX = "_c"


def canonicalize_constants(expr: Expr) -> tuple[Expr, dict[str, Any]]:
    """Replace every condition constant with a positional parameter.

    Returns ``(canonical expression, extracted bindings)``; substituting
    the bindings back yields an expression equal to the input.  The
    traversal order is deterministic (pre-order, condition order), so
    two expressions that differ only in constant values canonicalize to
    the same expression — the key property that lets the plan cache
    serve all of them from one entry.

    Constant-only conditions are left untouched: they are static
    booleans, not data, and keeping them visible lets ``compile_plan``
    short-circuit provably-empty canonical expressions to a constant
    plan.
    """
    user_params = frozenset(expr_params(expr))
    bindings: dict[str, Any] = {}
    counter = [0]

    def canon_term(term: Term) -> Term:
        if isinstance(term, Const):
            name = f"{AUTO_PREFIX}{counter[0]}"
            while name in user_params:  # never collide with a user's $_cN
                counter[0] += 1
                name = f"{AUTO_PREFIX}{counter[0]}"
            counter[0] += 1
            bindings[name] = term.value
            return Param(name)
        return term

    def canon_conditions(conditions: Conditions) -> Conditions:
        out = []
        changed = False
        for cond in conditions:
            if isinstance(cond.left, Const) and isinstance(cond.right, Const):
                # A constant-only condition is a static boolean (notably
                # the optimizer's canonical ∅ sentinel); parameterising
                # it would hide a compile-time-decidable verdict from
                # the planner's empty-plan short-circuit for no cache
                # benefit.
                out.append(cond)
                continue
            left = canon_term(cond.left)
            right = canon_term(cond.right)
            if left is not cond.left or right is not cond.right:
                cond = Cond(left, right, cond.op, cond.on_data)
                changed = True
            out.append(cond)
        return tuple(out) if changed else conditions

    def canon(e: Expr) -> Expr:
        if isinstance(e, (Rel, Universe)):
            return e
        if isinstance(e, Select):
            return Select(canon(e.expr), canon_conditions(e.conditions))
        if isinstance(e, (Union, Diff, Intersect)):
            return type(e)(canon(e.left), canon(e.right))
        if isinstance(e, Join):
            return Join(canon(e.left), canon(e.right), e.out, canon_conditions(e.conditions))
        if isinstance(e, Star):
            return Star(canon(e.expr), e.out, canon_conditions(e.conditions), e.side)
        return e

    return canon(expr), bindings


# --------------------------------------------------------------------- #
# Plan-level binding
# --------------------------------------------------------------------- #


def plan_params(plan: PlanOp) -> tuple[str, ...]:
    """All parameter names a compiled plan still carries."""
    names: list[str] = []
    for op in plan.walk():
        conds: Conditions = ()
        if isinstance(op, (HashJoinOp, StarOp)):
            conds = op.spec.conditions
        elif isinstance(op, FilterOp):
            conds = op.conditions
        elif isinstance(op, IndexLookupOp):
            conds = op.residual
            for value in op.key:
                if isinstance(value, Param) and value.name not in names:
                    names.append(value.name)
        for name in _cond_params(conds):
            if name not in names:
                names.append(name)
    return tuple(names)


def bind_plan(plan: PlanOp, bindings: Bindings) -> PlanOp:
    """Substitute bound constants into a compiled plan.

    Returns a plan sharing every parameter-free operator with the input
    (the cached plan is never mutated); operators that mention a
    parameter are shallow-copied with the constant substituted into
    their conditions or index key.  Cost annotations and backend
    lowering hints (build side, shard strategy, vector strategy) carry
    over unchanged — binding never changes the plan's shape.
    """
    if not bindings:
        return plan
    memo: dict[int, PlanOp] = {}

    def bind(op: PlanOp) -> PlanOp:
        done = memo.get(id(op))
        if done is not None:
            return done
        bound = _bind_op(op)
        memo[id(op)] = bound
        return bound

    def _bind_op(op: PlanOp) -> PlanOp:
        if isinstance(op, (ScanOp, UniverseOp)):
            return op
        if isinstance(op, IndexLookupOp):
            key = tuple(
                bindings.get(v.name, v) if isinstance(v, Param) else v for v in op.key
            )
            residual = _subst_conditions(op.residual, bindings)
            if key == op.key and residual is op.residual:
                return op
            return IndexLookupOp(
                op.name, op.positions, key, residual, op.est_rows, op.est_cost
            )
        if isinstance(op, FilterOp):
            child = bind(op.child)
            conditions = _subst_conditions(op.conditions, bindings)
            if child is op.child and conditions is op.conditions:
                return op
            return FilterOp(child, conditions, op.est_rows, op.est_cost)
        if isinstance(op, _SetOp):
            left, right = bind(op.left), bind(op.right)
            if left is op.left and right is op.right:
                return op
            return type(op)(left, right, op.est_rows, op.est_cost)
        if isinstance(op, HashJoinOp):
            left, right = bind(op.left), bind(op.right)
            spec = _bind_spec(op.spec)
            if left is op.left and right is op.right and spec is op.spec:
                return op
            bound = HashJoinOp(
                left, right, spec, op.build_side, op.index_positions,
                op.est_rows, op.est_cost,
            )
            bound.shard_strategy = op.shard_strategy
            return bound
        if isinstance(op, StarOp):
            child = bind(op.child)
            spec = _bind_spec(op.spec)
            if child is op.child and spec is op.spec:
                return op
            bound = StarOp(child, spec, op.side, op.est_rows, op.est_cost)
            bound.vector_strategy = op.vector_strategy
            return bound
        if isinstance(op, ReachStarOp):
            child = bind(op.child)
            if child is op.child:
                return op
            bound = ReachStarOp(child, op.same_label, op.est_rows, op.est_cost)
            bound.vector_strategy = op.vector_strategy
            return bound
        return op  # pragma: no cover — all operator types handled above

    def _bind_spec(spec: JoinSpec) -> JoinSpec:
        conditions = _subst_conditions(spec.conditions, bindings)
        if conditions is spec.conditions:
            return spec
        return JoinSpec(spec.out, conditions)

    return bind(plan)
