"""Physical query plans: cost-based compilation and execution of TriAL(*).

This is the seam between the logical algebra (:mod:`repro.core.expressions`
plus the rewrites of :mod:`repro.core.optimizer`) and the engines.  A
logical ``Expr`` tree is compiled by :func:`compile_plan` into a tree of
physical operators, each annotated with a cardinality estimate and a
cumulative cost derived from :class:`~repro.triplestore.stats.TriplestoreStats`:

* :class:`ScanOp` — read a stored relation;
* :class:`IndexLookupOp` — a selection with constant ``θ``-equalities on a
  base relation, served from the store's cached hash index;
* :class:`FilterOp` — residual selection conditions;
* :class:`HashJoinOp` — one hash join with a statistics-chosen build side,
  reusing :meth:`Triplestore.index` when the build side is a base scan;
* :class:`UnionOp` / :class:`DiffOp` / :class:`IntersectOp` — set operations;
* :class:`StarOp` — semi-naive Kleene fixpoint with the constant operand's
  hash index hoisted out of the iteration;
* :class:`ReachStarOp` — the Proposition 4/5 BFS algorithms for the two
  reachTA= star shapes;
* :class:`UniverseOp` — materialise U (budget-guarded).

The compiler deduplicates structurally identical sub-expressions into a
single shared operator, and execution memoises per operator — the planner
path therefore subsumes the old per-(engine, store) memo table.

Costs are unit-free "rows touched" figures: monotone (a node's cumulative
cost strictly exceeds each child's) and comparable between alternative
plans for the same query, which is all a planner needs.
"""

from __future__ import annotations

import itertools
import os
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.errors import AlgebraError, EvaluationBudgetError
from repro.core.conditions import Cond
from repro.core.expressions import (
    LEFT,
    RIGHT,
    Diff,
    Expr,
    Intersect,
    Join,
    Rel,
    Select,
    Star,
    Union,
    Universe,
    star_is_reach,
)
from repro.core.positions import Const, Param, Pos, format_out_spec
from repro.triplestore.model import Triple, Triplestore
from repro.triplestore.stats import DEFAULT_STATS

__all__ = [
    "PlanOp",
    "EmptyOp",
    "ScanOp",
    "IndexLookupOp",
    "FilterOp",
    "HashJoinOp",
    "UnionOp",
    "DiffOp",
    "IntersectOp",
    "StarOp",
    "ReachStarOp",
    "UniverseOp",
    "ExecContext",
    "JoinSpec",
    "choose_shard_key",
    "compile_plan",
    "lower_plan",
    "plan_verify_enabled",
    "shard_output_partition",
    "shard_plan_expectations",
    "split_conditions",
]

#: Environment flag gating static plan verification inside compile_plan.
#: Off by default (the hot path pays nothing); the test suite and every
#: CI job switch it on so no unverified plan shape ships unnoticed.
PLAN_VERIFY_ENV = "REPRO_PLAN_VERIFY"


def plan_verify_enabled() -> bool:
    """Whether ``REPRO_PLAN_VERIFY`` asks for verification at compile time."""
    return os.environ.get(PLAN_VERIFY_ENV, "").strip().lower() not in (
        "", "0", "false", "off", "no",
    )

TripleSet = frozenset[Triple]

#: Default equality selectivity when no distinct count anchors it.
_EQ_SELECTIVITY = 0.1
#: Inequalities filter almost nothing under the uniform assumption.
_NEQ_SELECTIVITY = 0.9
#: Assumed number of semi-naive rounds for a generic star's cost.
_STAR_ROUNDS = 4.0

#: Columnar lowering: object-count guard for dense boolean matrices
#: (mirrors MatrixStore.DEFAULT_MAX_OBJECTS without importing numpy here).
DENSE_MATRIX_MAX_OBJECTS = 512
#: Columnar lowering: minimum average out-degree |T|/|O| for the dense
#: reachability representation to pay off over per-source sparse BFS.
_DENSE_MIN_AVG_DEGREE = 0.5


def _project_out(left: Triple, right: Triple, out: tuple[int, int, int]) -> Triple:
    i, j, k = out
    return (
        left[i] if i < 3 else right[i - 3],
        left[j] if j < 3 else right[j - 3],
        left[k] if k < 3 else right[k - 3],
    )


def split_conditions(conditions: tuple[Cond, ...]) -> tuple[
    tuple[Cond, ...], tuple[Cond, ...], tuple[Cond, ...], tuple[Cond, ...], tuple[Cond, ...]
]:
    """Partition join conditions by which operand(s) they touch.

    Returns ``(left_local, right_local, cross_eq, cross_neq, const_only)``.
    A condition is *local* when all its positions fall in one operand
    (constants do not count); *cross* when it mentions both.  Cross
    conditions are normalised so ``cond.left`` is the left-operand term.
    """
    left_local: list[Cond] = []
    right_local: list[Cond] = []
    cross_eq: list[Cond] = []
    cross_neq: list[Cond] = []
    const_only: list[Cond] = []
    for cond in conditions:
        sides = {p.is_right for p in cond.positions()}
        if not sides:
            const_only.append(cond)
        elif sides == {False}:
            left_local.append(cond)
        elif sides == {True}:
            right_local.append(cond)
        else:
            if isinstance(cond.left, Pos) and cond.left.is_right:
                cond = Cond(cond.right, cond.left, cond.op, cond.on_data)
            (cross_eq if cond.is_equality else cross_neq).append(cond)
    return (
        tuple(left_local),
        tuple(right_local),
        tuple(cross_eq),
        tuple(cross_neq),
        tuple(const_only),
    )


# --------------------------------------------------------------------- #
# Join machinery shared by HashJoinOp and StarOp
# --------------------------------------------------------------------- #


class JoinSpec:
    """Compile-time analysis of one join's output spec and conditions."""

    __slots__ = (
        "out",
        "conditions",
        "left_local",
        "right_local",
        "cross_eq",
        "cross_neq",
        "const_only",
    )

    def __init__(self, out: tuple[int, int, int], conditions: tuple[Cond, ...]) -> None:
        self.out = out
        self.conditions = conditions
        (
            self.left_local,
            self.right_local,
            self.cross_eq,
            self.cross_neq,
            self.const_only,
        ) = split_conditions(conditions)

    def gate_open(self, rho: Callable[[Any], Any]) -> bool:
        """Evaluate the constant-only conditions (a static boolean gate)."""
        return all(c.evaluate((None,) * 3, (None,) * 3, rho) for c in self.const_only)

    def filter_left(self, triples: Iterable[Triple], rho) -> Iterable[Triple]:
        if not self.left_local:
            return triples
        return {
            t for t in triples if all(c.evaluate(t, None, rho) for c in self.left_local)
        }

    def filter_right(self, triples: Iterable[Triple], rho) -> Iterable[Triple]:
        if not self.right_local:
            return triples
        shifted = tuple(c.swap_sides() for c in self.right_local)
        return {t for t in triples if all(c.evaluate(t, None, rho) for c in shifted)}

    def key_extractors(
        self, rho: Callable[[Any], Any]
    ) -> tuple[Callable[[Triple], Any], Callable[[Triple], Any]]:
        """Key functions for both operands of the hash join.

        Each cross equality contributes one key component; θ-conditions
        use the object itself, η-conditions its ρ-value.  With no cross
        equalities both keys are constant (a cartesian product, as the
        algebra demands).
        """
        left_parts: list[Callable[[Triple], Any]] = []
        right_parts: list[Callable[[Triple], Any]] = []
        for cond in self.cross_eq:
            lpos, rpos = cond.left, cond.right
            assert isinstance(lpos, Pos) and isinstance(rpos, Pos)
            li, ri = lpos.index, rpos.index - 3
            if cond.on_data:
                left_parts.append(lambda t, i=li: rho(t[i]))
                right_parts.append(lambda t, i=ri: rho(t[i]))
            else:
                left_parts.append(lambda t, i=li: t[i])
                right_parts.append(lambda t, i=ri: t[i])
        return (
            lambda t: tuple(f(t) for f in left_parts),
            lambda t: tuple(f(t) for f in right_parts),
        )

    def index_key_positions(self, side: str) -> Optional[tuple[int, ...]]:
        """Local key positions on one operand, if servable by a store index.

        Store indexes key on raw triple components, so every cross
        equality must be a plain θ-condition (η keys go through ρ).
        """
        if any(c.on_data for c in self.cross_eq):
            return None
        if side == RIGHT:
            return tuple(c.right.index - 3 for c in self.cross_eq)  # type: ignore[union-attr]
        return tuple(c.left.index for c in self.cross_eq)  # type: ignore[union-attr]

    def execute(
        self,
        left: Iterable[Triple],
        right: Iterable[Triple],
        rho: Callable[[Any], Any],
        build_side: str = RIGHT,
        prebuilt: Optional[dict[Any, list[Triple]]] = None,
        prefiltered: bool = False,
    ) -> set[Triple]:
        """Run the hash join.

        ``prebuilt`` supplies a ready hash index over the build operand
        (keyed by that operand's key extractor) — used for store-index
        reuse and for hoisting the constant operand out of fixpoints.
        ``prefiltered`` skips the local-condition filters (callers that
        filtered once outside a loop).
        """
        if not self.gate_open(rho):
            return set()
        if not prefiltered:
            left = self.filter_left(left, rho)
            right = self.filter_right(right, rho)
        if not left or not right:
            return set()
        key_left, key_right = self.key_extractors(rho)

        if build_side == RIGHT:
            build, probe, key_build, key_probe = right, left, key_right, key_left
        else:
            build, probe, key_build, key_probe = left, right, key_left, key_right

        index = prebuilt
        if index is None:
            index = {}
            for t in build:
                index.setdefault(key_build(t), []).append(t)

        check_neq = None
        if self.cross_neq:
            neqs = self.cross_neq
            check_neq = lambda lt, rt: all(  # noqa: E731
                c.evaluate(lt, rt, rho) for c in neqs
            )

        # The probe loop is the hot path: the projection is inlined
        # (one function call per produced pair is measurable) and the
        # output-position arithmetic hoisted out of the loop.
        i, j, k = self.out
        il, jl, kl = i < 3, j < 3, k < 3
        ir, jr, kr = i - 3, j - 3, k - 3
        result: set[Triple] = set()
        add = result.add
        index_get = index.get
        if build_side == RIGHT:
            for lt in probe:
                bucket = index_get(key_probe(lt))
                if not bucket:
                    continue
                for rt in bucket:
                    if check_neq is None or check_neq(lt, rt):
                        add((
                            lt[i] if il else rt[ir],
                            lt[j] if jl else rt[jr],
                            lt[k] if kl else rt[kr],
                        ))
        else:
            for rt in probe:
                bucket = index_get(key_probe(rt))
                if not bucket:
                    continue
                for lt in bucket:
                    if check_neq is None or check_neq(lt, rt):
                        add((
                            lt[i] if il else rt[ir],
                            lt[j] if jl else rt[jr],
                            lt[k] if kl else rt[kr],
                        ))
        return result

    def build_index(
        self, triples: Iterable[Triple], rho, side: str
    ) -> dict[Any, list[Triple]]:
        """Hash ``triples`` (one operand, already filtered) on its join key."""
        key_left, key_right = self.key_extractors(rho)
        key = key_right if side == RIGHT else key_left
        index: dict[Any, list[Triple]] = {}
        for t in triples:
            index.setdefault(key(t), []).append(t)
        return index


# --------------------------------------------------------------------- #
# Execution context
# --------------------------------------------------------------------- #


class ExecContext:
    """Per-execution state: the store, ρ, budget and the operator memo."""

    __slots__ = ("store", "rho", "max_universe_objects", "_memo")

    def __init__(self, store: Triplestore, max_universe_objects: int = 400) -> None:
        self.store = store
        self.rho = store.rho
        self.max_universe_objects = max_universe_objects
        self._memo: dict[int, TripleSet] = {}

    def run(self, op: "PlanOp") -> TripleSet:
        """Execute ``op`` (memoised — shared sub-plans run once)."""
        result = self._memo.get(id(op))
        if result is None:
            result = op._execute(self)
            self._memo[id(op)] = result
        return result


# --------------------------------------------------------------------- #
# Operators
# --------------------------------------------------------------------- #


class PlanOp:
    """Base physical operator.

    ``est_rows`` is the planner's output-cardinality estimate and
    ``est_cost`` the *cumulative* cost (own work plus all children) —
    monotone by construction, so the root's cost prices the whole plan.
    """

    __slots__ = ("est_rows", "est_cost")

    def __init__(self, est_rows: float, est_cost: float) -> None:
        self.est_rows = est_rows
        self.est_cost = est_cost

    def children(self) -> tuple["PlanOp", ...]:
        return ()

    def walk(self) -> Iterator["PlanOp"]:
        """Pre-order traversal (shared sub-plans are visited per edge)."""
        yield self
        for child in self.children():
            yield from child.walk()

    def execute(self, ctx: ExecContext) -> TripleSet:
        """Evaluate the plan against ``ctx.store``."""
        return ctx.run(self)

    def _execute(self, ctx: ExecContext) -> TripleSet:
        raise NotImplementedError

    def label(self) -> str:
        """One-line operator description (without estimates)."""
        raise NotImplementedError

    def pretty(self) -> str:
        """An indented plan tree with per-node row/cost estimates."""
        lines: list[str] = []

        def fmt(op: PlanOp, depth: int) -> None:
            lines.append(
                f"{'  ' * depth}{op.label()}"
                f"  [rows≈{_fmt_num(op.est_rows)} cost≈{_fmt_num(op.est_cost)}]"
            )
            for child in op.children():
                fmt(child, depth + 1)

        fmt(self, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<{self.label()} rows≈{_fmt_num(self.est_rows)} cost≈{_fmt_num(self.est_cost)}>"


def _fmt_num(x: float) -> str:
    if x >= 10000:
        return f"{x:.3g}"
    if x == int(x):
        return str(int(x))
    return f"{x:.1f}"


def _fmt_conds(conditions: tuple[Cond, ...]) -> str:
    return " & ".join(map(repr, conditions))


class EmptyOp(PlanOp):
    """Constant-empty result for a provably-empty query.

    Emitted by ``compile_plan`` when the semantic analyzer proves the
    *whole* expression empty on every store and every binding (see
    :func:`repro.analysis.semantics.expr_is_empty`), so no backend
    scans, joins or exchanges anything.  Always a plan root — empty
    subexpressions are the optimizer's job (canonical ∅ selections),
    not the planner's.
    """

    __slots__ = ("reason",)

    def __init__(self, reason: str = "expression is provably empty") -> None:
        super().__init__(0.0, 0.0)
        self.reason = reason

    def _execute(self, ctx: ExecContext) -> TripleSet:
        return frozenset()

    def label(self) -> str:
        return "Empty(∅)"


class ScanOp(PlanOp):
    """Full scan of a stored relation."""

    __slots__ = ("name",)

    def __init__(self, name: str, est_rows: float, est_cost: float) -> None:
        super().__init__(est_rows, est_cost)
        self.name = name

    def _execute(self, ctx: ExecContext) -> TripleSet:
        return ctx.store.relation(self.name)

    def label(self) -> str:
        return f"Scan({self.name})"


class UniverseOp(PlanOp):
    """Materialise U — all triples over the active domain (budget-guarded)."""

    __slots__ = ()

    def _execute(self, ctx: ExecContext) -> TripleSet:
        domain: set = set()
        for triple in ctx.store.all_triples():
            domain.update(triple)
        if len(domain) > ctx.max_universe_objects:
            raise EvaluationBudgetError(
                f"universal relation over {len(domain)} objects would hold "
                f"{len(domain) ** 3} triples (limit {ctx.max_universe_objects} objects); "
                "raise max_universe_objects to proceed"
            )
        return frozenset(itertools.product(domain, repeat=3))

    def label(self) -> str:
        return "Universe(U)"


class IndexLookupOp(PlanOp):
    """Constant-key lookup in the store's cached hash index.

    Serves ``σ``-selections whose conditions include constant
    ``θ``-equalities on a base relation: those positions become the index
    key, the rest stay as a residual filter.
    """

    __slots__ = ("name", "positions", "key", "residual")

    def __init__(
        self,
        name: str,
        positions: tuple[int, ...],
        key: tuple,
        residual: tuple[Cond, ...],
        est_rows: float,
        est_cost: float,
    ) -> None:
        super().__init__(est_rows, est_cost)
        self.name = name
        self.positions = positions
        self.key = key
        self.residual = residual

    def bound_key(self) -> tuple:
        """The lookup key, verified parameter-free.

        Raises :class:`~repro.errors.UnboundParameterError` when a
        :class:`~repro.core.positions.Param` is still in the key (a
        parameterized plan executed without
        :func:`repro.core.params.bind_plan`) — a silent ``.get`` miss
        would otherwise return an empty result instead of an error.
        """
        for value in self.key:
            if isinstance(value, Param):
                from repro.errors import UnboundParameterError

                raise UnboundParameterError(value.name)
        return self.key

    def _execute(self, ctx: ExecContext) -> TripleSet:
        bucket = ctx.store.index(self.name, self.positions).get(self.bound_key(), ())
        if not self.residual:
            return frozenset(bucket)
        rho = ctx.rho
        return frozenset(
            t for t in bucket if all(c.evaluate(t, None, rho) for c in self.residual)
        )

    def label(self) -> str:
        key = ", ".join(
            f"{p + 1}={v!r}" for p, v in zip(self.positions, self.key)
        )
        residual = f"; filter {_fmt_conds(self.residual)}" if self.residual else ""
        return f"IndexLookup({self.name}[{key}]{residual})"


class FilterOp(PlanOp):
    """Residual selection conditions over a child operator."""

    __slots__ = ("child", "conditions")

    def __init__(
        self,
        child: PlanOp,
        conditions: tuple[Cond, ...],
        est_rows: float,
        est_cost: float,
    ) -> None:
        super().__init__(est_rows, est_cost)
        self.child = child
        self.conditions = conditions

    def children(self) -> tuple[PlanOp, ...]:
        return (self.child,)

    def _execute(self, ctx: ExecContext) -> TripleSet:
        rho = ctx.rho
        conds = self.conditions
        return frozenset(
            t for t in ctx.run(self.child) if all(c.evaluate(t, None, rho) for c in conds)
        )

    def label(self) -> str:
        return f"Filter({_fmt_conds(self.conditions)})"


class _SetOp(PlanOp):
    __slots__ = ("left", "right")

    def __init__(
        self, left: PlanOp, right: PlanOp, est_rows: float, est_cost: float
    ) -> None:
        super().__init__(est_rows, est_cost)
        self.left = left
        self.right = right

    def children(self) -> tuple[PlanOp, ...]:
        return (self.left, self.right)


class UnionOp(_SetOp):
    __slots__ = ()

    def _execute(self, ctx: ExecContext) -> TripleSet:
        return ctx.run(self.left) | ctx.run(self.right)

    def label(self) -> str:
        return "Union"


class DiffOp(_SetOp):
    __slots__ = ()

    def _execute(self, ctx: ExecContext) -> TripleSet:
        return ctx.run(self.left) - ctx.run(self.right)

    def label(self) -> str:
        return "Diff"


class IntersectOp(_SetOp):
    __slots__ = ()

    def _execute(self, ctx: ExecContext) -> TripleSet:
        return ctx.run(self.left) & ctx.run(self.right)

    def label(self) -> str:
        return "Intersect"


class HashJoinOp(PlanOp):
    """One hash join with a statistics-chosen build side.

    When the build child is a :class:`ScanOp` and every cross equality is
    a plain θ-condition, the hash table comes from the store's cached
    index (:meth:`Triplestore.index`) instead of being rebuilt — repeated
    queries against one store then share build work.
    """

    __slots__ = ("left", "right", "spec", "build_side", "index_positions", "shard_strategy")

    def __init__(
        self,
        left: PlanOp,
        right: PlanOp,
        spec: JoinSpec,
        build_side: str,
        index_positions: Optional[tuple[int, ...]],
        est_rows: float,
        est_cost: float,
    ) -> None:
        super().__init__(est_rows, est_cost)
        self.left = left
        self.right = right
        self.spec = spec
        self.build_side = build_side
        self.index_positions = index_positions
        #: Set by the sharded lowering step; ignored by other backends.
        self.shard_strategy: Optional[str] = None

    def children(self) -> tuple[PlanOp, ...]:
        return (self.left, self.right)

    def _execute(self, ctx: ExecContext) -> TripleSet:
        left = ctx.run(self.left)
        right = ctx.run(self.right)
        prebuilt = None
        if self.index_positions is not None:
            build_child = self.right if self.build_side == RIGHT else self.left
            assert isinstance(build_child, ScanOp)
            prebuilt = ctx.store.index(build_child.name, self.index_positions)
        return frozenset(
            self.spec.execute(
                left, right, ctx.rho, build_side=self.build_side, prebuilt=prebuilt
            )
        )

    def label(self) -> str:
        conds = _fmt_conds(self.spec.conditions)
        sep = "; " if conds else ""
        access = "store-index" if self.index_positions is not None else "hash"
        shard = f" shard={self.shard_strategy}" if self.shard_strategy else ""
        return (
            f"HashJoin[{format_out_spec(self.spec.out)}{sep}{conds}]"
            f" build={self.build_side} via {access}{shard}"
        )


class StarOp(PlanOp):
    """Semi-naive Kleene fixpoint with the constant operand hoisted.

    Each round joins the previous frontier with the star's base relation.
    The base operand never changes, so its local filter and hash index
    are built once, not per round — the planner path's main win over the
    legacy interpreter on recursive queries.
    """

    __slots__ = ("child", "spec", "side", "vector_strategy")

    def __init__(
        self,
        child: PlanOp,
        spec: JoinSpec,
        side: str,
        est_rows: float,
        est_cost: float,
    ) -> None:
        super().__init__(est_rows, est_cost)
        self.child = child
        self.spec = spec
        self.side = side
        #: Set by the columnar lowering step; ignored by the set backend.
        self.vector_strategy: Optional[str] = None

    def children(self) -> tuple[PlanOp, ...]:
        return (self.child,)

    def _execute(self, ctx: ExecContext) -> TripleSet:
        base = ctx.run(self.child)
        rho = ctx.rho
        spec = self.spec
        acc: set[Triple] = set(base)
        if not spec.gate_open(rho):
            return frozenset(acc)
        # The constant operand: right for a right star, left for a left one.
        if self.side == RIGHT:
            const_side = RIGHT
            const = spec.filter_right(base, rho)
        else:
            const_side = LEFT
            const = spec.filter_left(base, rho)
        prebuilt = spec.build_index(const, rho, const_side)
        frontier: set[Triple] = set(base)
        while frontier:
            if self.side == RIGHT:
                varying = spec.filter_left(frontier, rho)
                produced = spec.execute(
                    varying, const, rho,
                    build_side=RIGHT, prebuilt=prebuilt, prefiltered=True,
                )
            else:
                varying = spec.filter_right(frontier, rho)
                produced = spec.execute(
                    const, varying, rho,
                    build_side=LEFT, prebuilt=prebuilt, prefiltered=True,
                )
            frontier = produced - acc
            acc |= frontier
        return frozenset(acc)

    def label(self) -> str:
        conds = _fmt_conds(self.spec.conditions)
        sep = "; " if conds else ""
        name = "Star" if self.side == RIGHT else "LeftStar"
        hint = f" [{self.vector_strategy}]" if self.vector_strategy else ""
        return f"{name}[{format_out_spec(self.spec.out)}{sep}{conds}] semi-naive{hint}"


class ReachStarOp(PlanOp):
    """Proposition 4/5 BFS reachability for the two reachTA= star shapes."""

    __slots__ = ("child", "same_label", "vector_strategy")

    def __init__(
        self, child: PlanOp, same_label: bool, est_rows: float, est_cost: float
    ) -> None:
        super().__init__(est_rows, est_cost)
        self.child = child
        self.same_label = same_label
        #: Set by the columnar lowering step; ignored by the set backend.
        self.vector_strategy: Optional[str] = None

    def children(self) -> tuple[PlanOp, ...]:
        return (self.child,)

    def _execute(self, ctx: ExecContext) -> TripleSet:
        # Imported here: repro.core.engines imports this module's
        # split_conditions at package init, so a top-level import of the
        # engines package from here would be circular.
        from repro.core.engines.reach import reach_star_any, reach_star_same_label

        base = ctx.run(self.child)
        if self.same_label:
            return frozenset(reach_star_same_label(base))
        return frozenset(reach_star_any(base))

    def label(self) -> str:
        variant = "same-label" if self.same_label else "any-path"
        hint = f" [{self.vector_strategy}]" if self.vector_strategy else ""
        return f"ReachStar({variant} BFS){hint}"


# --------------------------------------------------------------------- #
# Compiler
# --------------------------------------------------------------------- #


def compile_plan(
    expr: Expr,
    store: Optional[Triplestore] = None,
    *,
    use_reach: bool = True,
    stats=None,
    backend: str = "set",
    max_matrix_objects: Optional[int] = None,
    shard_key_pos: int = 0,
) -> PlanOp:
    """Compile a (preferably optimised) expression into a physical plan.

    ``stats`` defaults to ``store.stats()`` when a store is given and to
    :data:`~repro.triplestore.stats.DEFAULT_STATS` otherwise, so plans
    can be built (and printed) without data.  ``use_reach`` routes
    reach-shaped stars to the Proposition 4/5 BFS operators — the
    FastEngine behaviour; the plain hash-join engine keeps the generic
    fixpoint for them.

    ``backend`` selects the lowering step applied after compilation:
    ``"set"`` (the tuple-at-a-time executors) leaves the plan as built,
    ``"columnar"`` runs :func:`lower_plan` to annotate recursive
    operators with a dense/sparse representation choice for the
    vectorised backend, ``"sharded"`` additionally annotates every join
    with its shard-wise strategy (``shard_key_pos`` names the position
    stored relations are partitioned on).
    """
    if stats is None:
        stats = store.stats() if store is not None else DEFAULT_STATS

    # Provably-empty queries compile to a constant plan on every
    # backend: nothing to scan, join, lower or exchange.  Imported
    # lazily like the verifier below (repro.analysis depends on core).
    # Expressions mentioning U are exempt: materialising U is
    # budget-guarded, and the executors' contract is to surface that
    # error exactly when the oracle does — even from a dead branch.
    from repro.analysis.semantics import expr_is_empty

    if expr_is_empty(expr) and not any(
        isinstance(node, Universe) for node in expr.walk()
    ):
        empty_plan: PlanOp = EmptyOp()
        if plan_verify_enabled():
            from repro.analysis.verify import assert_plan_valid

            assert_plan_valid(
                empty_plan,
                expr=expr,
                backend=backend,
                stats=stats,
                max_matrix_objects=max_matrix_objects,
                shard_key_pos=shard_key_pos,
            )
        return empty_plan

    memo: dict[Expr, PlanOp] = {}

    def compile_node(e: Expr) -> PlanOp:
        cached = memo.get(e)
        if cached is not None:
            return cached
        op = _compile(e, compile_node, stats, use_reach)
        memo[e] = op
        return op

    plan = lower_plan(
        compile_node(expr),
        stats,
        backend=backend,
        max_matrix_objects=max_matrix_objects,
        shard_key_pos=shard_key_pos,
    )
    if plan_verify_enabled():
        # Imported lazily: repro.analysis.verify imports this module.
        from repro.analysis.verify import assert_plan_valid

        assert_plan_valid(
            plan,
            expr=expr,
            backend=backend,
            stats=stats,
            max_matrix_objects=max_matrix_objects,
            shard_key_pos=shard_key_pos,
        )
    return plan


def lower_plan(
    plan: PlanOp,
    stats=None,
    *,
    backend: str = "set",
    max_matrix_objects: Optional[int] = None,
    shard_key_pos: int = 0,
) -> PlanOp:
    """Backend-aware lowering: specialise a compiled plan for a backend.

    The physical plan itself is backend-agnostic (execution resolves
    relations against whatever store it is handed); what differs per
    backend is the *representation strategy* of the recursive operators.
    For the columnar backend this step annotates each star with the
    density/size heuristic's verdict:

    * ``ReachStarOp`` — ``"dense"`` when the statistics-time object count
      fits the boolean-matrix guard (``max_matrix_objects``, default
      :data:`DENSE_MATRIX_MAX_OBJECTS`) *and* the average out-degree
      ``|T|/|O|`` reaches :data:`_DENSE_MIN_AVG_DEGREE` — reachability is
      then semi-naive boolean matrix iteration; otherwise ``"sparse"``
      (per-source BFS).  The dense path re-checks the guard against the
      *actual* store at run time and falls back to sparse on
      :class:`~repro.errors.MatrixTooLargeError`, so the annotation is a
      strategy hint, never a correctness assumption.
    * ``StarOp`` — always ``"sparse"``: general stars carry arbitrary
      output specs and conditions, executed as semi-naive columnar joins.

    The ``"sharded"`` backend applies the columnar annotations and
    additionally marks every :class:`HashJoinOp` with its shard-wise
    strategy — ``co-partitioned`` (both inputs already partitioned on
    the join key: merge joins run shard against shard directly),
    ``repartition(left|right|both)`` (one exchange pass re-hashes the
    named side(s) on the join key first; ``both(η)`` re-hashes on
    ρ-codes), or ``broadcast`` (no cross equality: each left shard
    joins the gathered right).  The annotation mirrors the partition
    propagation the sharded executor performs at run time
    (:func:`choose_shard_key` / :func:`shard_output_partition` are the
    single source of truth for both), so ``explain --physical`` shows
    exactly which joins pay an exchange.

    The ``"set"`` backend lowering is the identity.
    """
    if backend == "set":
        return plan
    if backend not in ("columnar", "sharded"):
        raise AlgebraError(f"unknown execution backend {backend!r}")
    if stats is None:
        stats = DEFAULT_STATS
    limit = DENSE_MATRIX_MAX_OBJECTS if max_matrix_objects is None else max_matrix_objects
    n = stats.n_objects
    total = stats.total_triples
    dense_ok = 0 < n <= limit and total / n >= _DENSE_MIN_AVG_DEGREE
    for op in plan.walk():
        if isinstance(op, ReachStarOp):
            op.vector_strategy = "dense" if dense_ok else "sparse"
        elif isinstance(op, StarOp):
            op.vector_strategy = "sparse"
    if backend == "sharded":
        _annotate_shard_plan(plan, shard_key_pos)
    return plan


# --------------------------------------------------------------------- #
# Sharded lowering: partition-key propagation
#
# Pure structural logic (no numpy) shared between the lowering step —
# which only *annotates* joins for explain output — and the sharded
# executor, which uses the same two helpers to decide, per join, which
# sides to exchange and how the output comes out partitioned.
# --------------------------------------------------------------------- #


def choose_shard_key(
    spec: JoinSpec, left_part: Optional[int], right_part: Optional[int]
) -> tuple[Optional[Cond], int]:
    """Pick the cross equality a sharded executor partitions a join on.

    ``left_part`` / ``right_part`` are the triple positions the operands
    are currently hash-partitioned on (``None`` for an unpartitioned
    "raw" intermediate, which never aligns).  Returns ``(condition,
    aligned)`` where ``aligned`` counts how many operands are already
    partitioned on their side of the chosen key (2 = co-partitioned, no
    exchange needed).  θ-equalities are preferred — their join key is
    the object code the operands are already hashed by; η keys hash
    ρ-codes, which never align with a position partition.  ``(None, 0)``
    means no cross equality exists (a cartesian product: broadcast).
    """
    theta = [c for c in spec.cross_eq if not c.on_data]
    if theta:
        def aligned(cond: Cond) -> int:
            return int(cond.left.index == left_part) + int(
                cond.right.index - 3 == right_part
            )
        best = max(theta, key=aligned)
        return best, aligned(best)
    if spec.cross_eq:
        return spec.cross_eq[0], 0
    return None, 0


def shard_output_partition(
    spec: JoinSpec, cond: Optional[Cond], left_part: Optional[int]
) -> Optional[int]:
    """Which output position a shard-wise join's result is partitioned on.

    ``None`` means the output carries no component the shards were
    hashed by, so equal output triples can land in different shards.
    The executor keeps such results as *raw* shard chunks — joins,
    filters and decode consume them as-is — and re-partitions (thereby
    re-deduplicating) lazily, only when a consumer needs the disjoint
    partition invariant (set operations, fixpoint accumulators).
    """
    if cond is None:
        # Broadcast: left shards keep their partition; the output is
        # partitioned wherever it retains the left partition component.
        for m, o in enumerate(spec.out):
            if o < 3 and o == left_part:
                return m
        return None
    if cond.on_data:
        # η keys hash ρ-codes; no output position is hashed by them.
        return None
    li, ri = cond.left.index, cond.right.index - 3
    for m, o in enumerate(spec.out):
        if (o < 3 and o == li) or (o >= 3 and o - 3 == ri):
            return m
    return None


def shard_plan_expectations(
    plan: PlanOp, key_pos: int
) -> dict[int, tuple[Optional[int], Optional[str]]]:
    """Recompute each operator's partition state and shard strategy.

    Returns ``{id(op): (output partition position, join strategy)}`` for
    every reachable operator (``strategy`` is ``None`` for non-joins),
    derived purely from the plan structure via :func:`choose_shard_key`
    and :func:`shard_output_partition` — the same propagation the
    sharded executor performs at run time.  The lowering step applies
    this map to annotate joins; the plan verifier
    (:mod:`repro.analysis.verify`) recomputes it and demands the
    annotations agree, so a plan whose strategies were tampered with —
    or that skipped lowering — never reaches a shard-wise executor
    claiming partitions it does not have.
    """
    memo: dict[int, tuple[Optional[int], Optional[str]]] = {}

    def part_of(op: PlanOp) -> Optional[int]:
        if id(op) in memo:
            return memo[id(op)][0]
        part: Optional[int]
        strategy: Optional[str] = None
        if isinstance(op, (ScanOp, IndexLookupOp)):
            part = key_pos
        elif isinstance(op, FilterOp):
            part = part_of(op.child)
        elif isinstance(op, _SetOp):
            lp = part_of(op.left)
            part_of(op.right)  # runtime aligns the right side to the left's
            part = 0 if lp is None else lp
        elif isinstance(op, StarOp):
            part_of(op.child)
            part = 0  # fixpoints canonicalise their accumulator to position 0
        elif isinstance(op, ReachStarOp):
            part_of(op.child)
            # The sparse fixpoint yields a position-0 partition but the
            # dense matrix path yields a raw result; None is the
            # conservative claim (a parent join then reports the
            # exchange it may have to perform).
            part = None
        elif isinstance(op, HashJoinOp):
            lp, rp = part_of(op.left), part_of(op.right)
            cond, aligned = choose_shard_key(op.spec, lp, rp)
            if cond is None:
                strategy = "broadcast"
            elif cond.on_data:
                strategy = "repartition(both(η))"
            elif aligned == 2:
                strategy = "co-partitioned"
            else:
                sides = []
                if cond.left.index != lp:
                    sides.append("left")
                if cond.right.index - 3 != rp:
                    sides.append("right")
                which = "both" if len(sides) == 2 else sides[0]
                strategy = f"repartition({which})"
            part = shard_output_partition(op.spec, cond, lp)
        else:  # UniverseOp
            part = 0
        memo[id(op)] = (part, strategy)
        return part

    part_of(plan)
    return memo


def _annotate_shard_plan(plan: PlanOp, key_pos: int) -> None:
    """Annotate each join with its shard strategy (explain metadata only)."""
    expected = shard_plan_expectations(plan, key_pos)
    for op in plan.walk():
        if isinstance(op, HashJoinOp):
            op.shard_strategy = expected[id(op)][1]


def _distinct_estimate(op: PlanOp, local_pos: int, stats) -> float:
    """Distinct-count estimate at one position of an operator's output."""
    if isinstance(op, ScanOp):
        return max(1.0, stats.distinct(op.name, local_pos))
    # Derived inputs: assume mild duplication.
    return max(1.0, op.est_rows / 2.0)


def _join_estimates(
    left: PlanOp, right: PlanOp, spec: JoinSpec, stats
) -> tuple[float, float]:
    """(output rows, own cost) of a hash join under uniformity."""
    rows_l = left.est_rows * _local_selectivity(spec.left_local)
    rows_r = right.est_rows * _local_selectivity(spec.right_local)
    out_rows = rows_l * rows_r
    for cond in spec.cross_eq:
        assert isinstance(cond.left, Pos) and isinstance(cond.right, Pos)
        d_l = _distinct_estimate(left, cond.left.index, stats)
        d_r = _distinct_estimate(right, cond.right.index - 3, stats)
        out_rows /= max(d_l, d_r)
    out_rows *= _NEQ_SELECTIVITY ** len(spec.cross_neq)
    own_cost = rows_l + rows_r + out_rows + 1.0
    return max(out_rows, 0.0), own_cost


def _local_selectivity(conditions: tuple[Cond, ...]) -> float:
    sel = 1.0
    for cond in conditions:
        sel *= _EQ_SELECTIVITY if cond.is_equality else _NEQ_SELECTIVITY
    return sel


def _select_estimates(child_rows: float, conditions: tuple[Cond, ...]) -> float:
    sel = 1.0
    for cond in conditions:
        sel *= _EQ_SELECTIVITY if cond.is_equality else _NEQ_SELECTIVITY
    return child_rows * sel


def _compile(e: Expr, compile_node, stats, use_reach: bool) -> PlanOp:
    if isinstance(e, Rel):
        rows = float(stats.cardinality(e.name))
        return ScanOp(e.name, rows, rows + 1.0)

    if isinstance(e, Universe):
        rows = float(stats.n_objects) ** 3
        return UniverseOp(rows, rows + 1.0)

    if isinstance(e, Select):
        return _compile_select(e, compile_node, stats)

    if isinstance(e, (Union, Diff, Intersect)):
        left = compile_node(e.left)
        right = compile_node(e.right)
        cls, rows = {
            Union: (UnionOp, left.est_rows + right.est_rows),
            Diff: (DiffOp, left.est_rows),
            Intersect: (IntersectOp, min(left.est_rows, right.est_rows)),
        }[type(e)]
        cost = left.est_cost + right.est_cost + left.est_rows + right.est_rows + 1.0
        return cls(left, right, rows, cost)

    if isinstance(e, Join):
        left = compile_node(e.left)
        right = compile_node(e.right)
        spec = JoinSpec(e.out, e.conditions)
        build_side, index_positions = _choose_build_side(left, right, spec)
        rows, own = _join_estimates(left, right, spec, stats)
        return HashJoinOp(
            left,
            right,
            spec,
            build_side,
            index_positions,
            rows,
            left.est_cost + right.est_cost + own,
        )

    if isinstance(e, Star):
        child = compile_node(e.expr)
        if use_reach and star_is_reach(e):
            # Prop 4/5: one BFS per distinct source — O(|O|·|T|)-ish.
            rows = child.est_rows * max(4.0, child.est_rows ** 0.5)
            own = rows + child.est_rows + 1.0
            return ReachStarOp(
                child,
                same_label=len(e.conditions) == 2,
                est_rows=rows,
                est_cost=child.est_cost + own,
            )
        spec = JoinSpec(e.out, e.conditions)
        rows, join_own = _join_estimates(child, child, spec, stats)
        rows = max(rows, child.est_rows)
        own = _STAR_ROUNDS * join_own + 1.0
        return StarOp(child, spec, e.side, rows, child.est_cost + own)

    raise AlgebraError(f"unknown expression node {type(e).__name__}")


def _compile_select(e: Select, compile_node, stats) -> PlanOp:
    inner = e.expr
    if isinstance(inner, Rel):
        # Constant θ-equalities become an index key; the rest a residual.
        key_parts: dict[int, Any] = {}
        residual: list[Cond] = []
        for cond in e.conditions:
            pos, const = _constant_equality(cond)
            if pos is not None and pos not in key_parts:
                key_parts[pos] = const
            else:
                residual.append(cond)
        if key_parts:
            positions = tuple(sorted(key_parts))
            key = tuple(key_parts[p] for p in positions)
            card = float(stats.cardinality(inner.name))
            rows = card
            for p in positions:
                rows /= max(1.0, stats.distinct(inner.name, p))
            rows = _select_estimates(rows, tuple(residual))
            # Cost: amortised index probe + residual filtering; strictly
            # greater than the implicit scan child it replaces is *not*
            # required — the lookup replaces the scan entirely.
            cost = rows + len(residual) * rows + 2.0
            return IndexLookupOp(
                inner.name, positions, key, tuple(residual), rows, cost
            )
    child = compile_node(inner)
    rows = _select_estimates(child.est_rows, e.conditions)
    return FilterOp(
        child, e.conditions, rows, child.est_cost + child.est_rows + 1.0
    )


def _constant_equality(cond: Cond) -> tuple[Optional[int], Any]:
    """Recognise ``position = constant`` θ-equalities (either order).

    A :class:`~repro.core.positions.Param` placeholder counts as a
    constant — the lookup key then carries the ``Param`` itself, to be
    substituted by :func:`repro.core.params.bind_plan` at execution
    time, so parameterized and constant queries share one plan shape.
    """
    if cond.on_data or not cond.is_equality:
        return None, None
    if isinstance(cond.left, Pos) and isinstance(cond.right, (Const, Param)):
        right = cond.right
        return cond.left.index, right.value if isinstance(right, Const) else right
    if isinstance(cond.right, Pos) and isinstance(cond.left, (Const, Param)):
        left = cond.left
        return cond.right.index, left.value if isinstance(left, Const) else left
    return None, None


def _choose_build_side(
    left: PlanOp, right: PlanOp, spec: JoinSpec
) -> tuple[str, Optional[tuple[int, ...]]]:
    """Pick the hash-build side and a reusable store index, if any.

    A base-relation scan whose join key is all-θ can be served by the
    store's cached index — free after the first build — so it wins over
    the plain smaller-side rule; otherwise build on the smaller estimate.
    Local conditions on the build side disable index reuse (the index
    holds unfiltered triples), but the side choice stands.
    """
    right_positions = spec.index_key_positions(RIGHT)
    left_positions = spec.index_key_positions(LEFT)
    right_indexable = (
        isinstance(right, ScanOp) and right_positions is not None and not spec.right_local
    )
    left_indexable = (
        isinstance(left, ScanOp) and left_positions is not None and not spec.left_local
    )
    if right_indexable and (not left_indexable or right.est_rows <= left.est_rows):
        return RIGHT, right_positions
    if left_indexable:
        return LEFT, left_positions
    if left.est_rows < right.est_rows:
        return LEFT, None
    return RIGHT, None
