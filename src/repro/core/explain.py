"""Query inspection: fragments, cost features and engine advice.

``explain(expr)`` produces a structured report a client (or the CLI)
can use to pick an engine and predict cost, mirroring how the paper's
Section 5 carves evaluation guarantees by fragment:

* fragment membership (TriAL / TriAL= / TriAL* / reachTA= / semijoin);
* which complexity guarantee from the paper applies;
* structural features that drive cost (star count, U/complement use,
  inequality conditions, expression size);
* a recommended engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.expressions import (
    Diff,
    Expr,
    Join,
    Star,
    Universe,
    in_reach_ta_eq,
    in_trial,
    in_trial_eq,
    is_equality_only,
    star_is_reach,
)
from repro.core.semijoin import in_semijoin_algebra

__all__ = ["Explanation", "compile_for_explain", "explain", "explain_physical"]


@dataclass(frozen=True)
class Explanation:
    """A static analysis of one TriAL(*) expression."""

    expression: str
    size: int
    relations: tuple[str, ...]
    recursive: bool
    n_stars: int
    n_reach_stars: int
    uses_universe: bool
    uses_complement: bool
    equality_only: bool
    fragment: str
    guarantee: str
    recommended_engine: str

    def summary(self) -> str:
        """A human-readable multi-line report."""
        lines = [
            f"expression : {self.expression}",
            f"size |e|   : {self.size}",
            f"relations  : {', '.join(self.relations) or '(none)'}",
            f"fragment   : {self.fragment}",
            f"guarantee  : {self.guarantee}",
            f"engine     : {self.recommended_engine}",
        ]
        flags = []
        if self.recursive:
            flags.append(f"{self.n_stars} star(s), {self.n_reach_stars} reach-shaped")
        if self.uses_universe:
            flags.append("materialises U (cubic in |O|)")
        if self.uses_complement:
            flags.append("uses complement")
        if not self.equality_only:
            flags.append("inequality conditions")
        if flags:
            lines.append(f"notes      : {'; '.join(flags)}")
        return "\n".join(lines)


def _fragment_of(expr: Expr) -> tuple[str, str, str]:
    """(fragment name, paper guarantee, recommended engine)."""
    if in_reach_ta_eq(expr):
        if in_trial_eq(expr):
            if in_semijoin_algebra(expr):
                return (
                    "semijoin algebra (⊆ TriAL=)",
                    "O(|e|·|O|·|T|) — Proposition 4",
                    "FastEngine",
                )
            return ("TriAL=", "O(|e|·|O|·|T|) — Proposition 4", "FastEngine")
        return ("reachTA=", "O(|e|·|O|·|T|) — Proposition 5", "FastEngine")
    if in_trial(expr):
        return ("TriAL", "O(|e|·|T|²) — Theorem 3", "HashJoinEngine")
    if is_equality_only(expr):
        return (
            "TriAL*= (equality-only, general stars)",
            "O(|e|·|O|·|T|²) — Section 5 remark",
            "FastEngine",
        )
    return ("TriAL*", "O(|e|·|T|³) — Theorem 3", "HashJoinEngine")


def explain(expr: Expr) -> Explanation:
    """Analyse an expression statically.

    >>> from repro.core import query_q
    >>> explain(query_q()).fragment
    'TriAL*= (equality-only, general stars)'
    """
    stars = [n for n in expr.walk() if isinstance(n, Star)]
    uses_universe = any(isinstance(n, Universe) for n in expr.walk())
    uses_complement = any(
        isinstance(n, Diff) and isinstance(n.left, Universe) for n in expr.walk()
    )
    fragment, guarantee, engine = _fragment_of(expr)
    if uses_universe and engine == "FastEngine":
        # U dominates; the fragment guarantee still holds but warn via
        # the flags in the summary.
        pass
    return Explanation(
        expression=repr(expr),
        size=expr.size(),
        relations=tuple(sorted(expr.relation_names())),
        recursive=bool(stars),
        n_stars=len(stars),
        n_reach_stars=sum(1 for s in stars if star_is_reach(s)),
        uses_universe=uses_universe,
        uses_complement=uses_complement,
        equality_only=is_equality_only(expr),
        fragment=fragment,
        guarantee=guarantee,
        recommended_engine=engine,
    )


def compile_for_explain(expr: Expr, store=None, engine=None, backend=None):
    """Compile ``expr`` the way explain output describes it.

    Shared by the text renderer (:func:`explain_physical`) and the
    structured :class:`repro.api.ExplainReport`.  Returns
    ``(report, plan, compiled_by, backend, engine)`` where ``report`` is
    the static :class:`Explanation`, ``plan`` the compiled physical plan
    and ``compiled_by`` the header annotation naming the compiler (with
    caveats when the given engine would not actually run the plan).
    """
    from repro.core.plan import compile_plan

    report = explain(expr)
    if engine is None and backend == "columnar":
        from repro.core.engines.vectorized import VectorEngine

        engine = VectorEngine()
    elif engine is None and backend == "sharded":
        from repro.core.engines.sharded import ShardedEngine

        engine = ShardedEngine()
    if backend is None:
        backend = getattr(engine, "backend", None)
    compiler = getattr(engine, "compile", None)
    if compiler is not None:
        plan = compiler(expr, store)
        compiled_by = type(engine).__name__
        if not getattr(engine, "use_planner", True):
            compiled_by += (
                " — note: use_planner=False; evaluation takes the legacy "
                "interpreter, not this plan"
            )
    else:
        use_reach = report.recommended_engine == "FastEngine"
        plan = compile_plan(expr, store, use_reach=use_reach)
        compiled_by = f"{report.recommended_engine} (recommended)"
        if engine is not None:
            compiled_by += (
                f" — note: {type(engine).__name__} interprets directly "
                "and will not run this plan"
            )
    return report, plan, compiled_by, backend, engine


def _executor_line(engine) -> str:
    """The sharded backend's executor description for explain output."""
    executor = getattr(engine, "executor", None) or "thread"
    if executor == "process":
        count = getattr(engine, "worker_count", lambda: None)()
        workers = f"{count} workers" if count else "worker pool"
        return (
            f"process ({workers}, shm all-to-all exchange, pipe control; "
            "thread fallback below dispatch threshold)"
        )
    return "thread (in-process shard tasks, GIL-releasing kernels)"


def explain_physical(expr: Expr, store=None, engine=None, backend=None) -> str:
    """The physical plan (with cost estimates) for one expression.

    ``store`` anchors cardinality estimates in real statistics; without
    one, the planner's textbook defaults are used and the header says so.
    ``engine`` may be an :class:`~repro.core.engines.base.Engine`
    instance or ``None`` (the recommended engine's compilation is used:
    reach-star routing exactly when the static analysis recommends
    FastEngine).  ``backend="columnar"`` compiles through the vectorised
    engine's lowering step (recursive operators show their dense/sparse
    representation choice) when no engine is given, and adds a backend
    line to the header; ``backend="sharded"`` likewise, with every join
    additionally annotated with its shard strategy (co-partitioned /
    repartition / broadcast).
    """
    report, plan, compiled_by, backend, engine = compile_for_explain(
        expr, store, engine, backend
    )
    lines = [
        f"expression : {report.expression}",
        f"fragment   : {report.fragment}",
        f"compiled by: {compiled_by}",
    ]
    if backend == "columnar":
        lines.append("backend    : columnar (vectorised packed-array execution)")
    elif backend == "sharded":
        k = getattr(engine, "shards", None)
        key_pos = getattr(engine, "key_pos", 0)
        detail = f"{k}-way hash-partitioned" if k else "hash-partitioned"
        lines.append(
            f"backend    : sharded ({detail} columnar execution, "
            f"key position {key_pos + 1})"
        )
        lines.append("executor   : " + _executor_line(engine))
    lines += [
        "statistics : "
        + (
            f"store with |T|={len(store)}, |O|={store.n_objects}"
            if store is not None
            else "none (textbook defaults)"
        ),
        "physical plan (rows = output estimate, cost = cumulative):",
        plan.pretty(),
    ]
    return "\n".join(lines)
