"""Ergonomic constructors and the paper's named queries.

The functions here build :mod:`repro.core.expressions` ASTs from compact
paper-style strings, e.g.::

    e = join(R("E"), R("E"), "1,3',3", "2=1'")        # Example 2
    q = query_q()                                     # Example 4 / query Q

It also contains the *derived* operations of Section 3 — intersection,
the universal relation and complement — both as sugar over the native
nodes and, where the paper gives an explicit definition inside the core
algebra (intersection as a join, U as a union of joins), as that literal
definition so tests can verify definability.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.conditions import Cond, as_conditions
from repro.core.expressions import (
    LEFT,
    RIGHT,
    Diff,
    Expr,
    Intersect,
    Join,
    Rel,
    Select,
    Star,
    Union,
    Universe,
)
from repro.core.positions import Pos
from repro.errors import AlgebraError

__all__ = [
    "R",
    "select",
    "join",
    "star",
    "lstar",
    "union_all",
    "intersect_as_join",
    "universe",
    "universe_as_joins",
    "complement",
    "permute",
    "diagonal",
    "reach_forward",
    "reach_down",
    "example2_expr",
    "example2_extended",
    "example3_right",
    "example3_left",
    "query_q",
    "distinct_objects_at_least",
]


def R(name: str) -> Rel:
    """A base relation reference."""
    return Rel(name)


def select(expr: Expr, conditions: str | Iterable[Cond] = "") -> Select:
    """``σ_{θ,η}(expr)`` with paper-style condition strings."""
    return Select(expr, as_conditions(conditions))


def join(
    left: Expr,
    right: Expr,
    out: str | tuple[int, int, int] = (0, 1, 2),
    conditions: str | Iterable[Cond] = "",
) -> Join:
    """``left ✶^{out}_{conditions} right``.

    >>> join(R("E"), R("E"), "1,3',3", "2=1'")
    join[1,3',3; 2=1'](E, E)
    """
    return Join(left, right, out, as_conditions(conditions))


def star(
    expr: Expr,
    out: str | tuple[int, int, int] = (0, 1, 2),
    conditions: str | Iterable[Cond] = "",
) -> Star:
    """Right Kleene closure ``(expr ✶^{out}_{conditions})*``."""
    return Star(expr, out, as_conditions(conditions), RIGHT)


def lstar(
    expr: Expr,
    out: str | tuple[int, int, int] = (0, 1, 2),
    conditions: str | Iterable[Cond] = "",
) -> Star:
    """Left Kleene closure ``(✶^{out}_{conditions} expr)*``."""
    return Star(expr, out, as_conditions(conditions), LEFT)


def union_all(exprs: Iterable[Expr]) -> Expr:
    """Fold a nonempty iterable of expressions into a union."""
    exprs = list(exprs)
    if not exprs:
        raise AlgebraError("union_all needs at least one expression")
    acc = exprs[0]
    for e in exprs[1:]:
        acc = Union(acc, e)
    return acc


# --------------------------------------------------------------------- #
# Derived operations, as the paper defines them
# --------------------------------------------------------------------- #

def intersect_as_join(left: Expr, right: Expr) -> Join:
    """The paper's intersection: ``e1 ✶^{1,2,3}_{1=1',2=2',3=3'} e2``."""
    return join(left, right, "1,2,3", "1=1' & 2=2' & 3=3'")


def universe() -> Universe:
    """The native U node (engines compute the active domain directly)."""
    return Universe()


def universe_as_joins(names: Iterable[str]) -> Expr:
    """U defined inside the core algebra, per Section 3.

    For every combination of relations ``R, R', R''`` and positions, take
    ``(R ✶^{i,2',3'} R') ✶^{1,2,3''} R''``-style joins collecting each
    object position independently, and union them all.  This is cubic in
    the number of relations×positions and exists to *prove definability*;
    use :func:`universe` for actual evaluation.
    """
    names = list(names)
    if not names:
        raise AlgebraError("universe_as_joins needs at least one relation name")
    parts: list[Expr] = []
    # First collect, for every relation and position, the unary "column"
    # c = objects at that position, represented as triples (c, c, c).
    columns: list[Expr] = []
    for name in names:
        rel = Rel(name)
        for pos in ("1", "2", "3"):
            columns.append(join(rel, rel, f"{pos},{pos},{pos}"))
    # Then combine any three columns into arbitrary triples: take subject
    # from the first, predicate from the second, object from the third.
    all_columns = union_all(columns)
    pair = join(all_columns, all_columns, "1,2',3'")
    parts.append(join(pair, all_columns, "1,2,3'"))
    return union_all(parts)


def complement(expr: Expr) -> Diff:
    """``eᶜ = U − e`` (Section 3)."""
    return Diff(Universe(), expr)


def permute(expr: Expr, out: str | tuple[int, int, int]) -> Join:
    """Rearrange triple components, e.g. ``permute(e, "3,2,1")`` reverses.

    Implemented as the self-join ``e ✶^{out}_{1=1',2=2',3=3'} e`` (the
    conditions pin the two operands to the same triple), so it stays
    inside the algebra.  Only left-operand positions make sense in
    ``out``; right positions are normalised to their left counterparts.
    """
    if isinstance(out, str):
        from repro.core.positions import parse_out_spec

        out = parse_out_spec(out)
    out = tuple(i - 3 if i >= 3 else i for i in out)  # type: ignore[assignment]
    return join(expr, expr, out, "1=1' & 2=2' & 3=3'")


def diagonal() -> Select:
    """D = {(o,o,o) | o in the active domain}: ``σ_{1=2,2=3}(U)``."""
    return select(Universe(), "1=2 & 2=3")


# --------------------------------------------------------------------- #
# The paper's named queries
# --------------------------------------------------------------------- #

def reach_forward(name: str = "E") -> Star:
    """Reach→ (Introduction / Example 4): ``(E ✶^{1,2,3'}_{3=1'})*``.

    Pairs (x, z) connected by a chain where each triple's object is the
    next triple's subject; the middle component is inherited from the
    first triple.
    """
    return star(Rel(name), "1,2,3'", "3=1'")


def reach_down(name: str = "E") -> Star:
    """Reach⤓ (the paper's Reach with the "fan" pattern, Example 4):
    ``(✶^{1',2',3}_{1=2'} E)*`` — a left Kleene closure.
    """
    return lstar(Rel(name), "1',2',3", "1=2'")


def example2_expr(name: str = "E") -> Join:
    """Example 2: ``E ✶^{1,3',3}_{2=1'} E`` — cities with operating companies."""
    return join(Rel(name), Rel(name), "1,3',3", "2=1'")


def example2_extended(name: str = "E") -> Expr:
    """Example 2's e′ = e ∪ (e ✶^{1,3',3}_{2=1'} E)."""
    e = example2_expr(name)
    return Union(e, join(e, Rel(name), "1,3',3", "2=1'"))


def example3_right(name: str = "E") -> Star:
    """Example 3's ``(E ✶^{1,2,2'}_{3=1'})*`` (right closure)."""
    return star(Rel(name), "1,2,2'", "3=1'")


def example3_left(name: str = "E") -> Star:
    """Example 3's ``(✶^{1,2,2'}_{3=1'} E)*`` (left closure)."""
    return lstar(Rel(name), "1,2,2'", "3=1'")


def query_q(name: str = "E") -> Star:
    """Query Q (Section 2.2 / Example 4).

    Find pairs of cities (x, z) such that one can travel from x to z
    using services operated by the same company::

        ((E ✶^{1,3',3}_{2=1'})* ✶^{1,2,3'}_{3=1',2=2'})*

    The result triples are (x, company, z); project on positions 1,3 for
    the city pairs.
    """
    inner = star(Rel(name), "1,3',3", "2=1'")
    return star(inner, "1,2,3'", "3=1' & 2=2'")


def distinct_objects_at_least(k: int) -> Expr:
    """A TriAL expression that is nonempty iff the store has ≥ k objects.

    For k = 4 this is the Theorem 4 separating query
    ``U ✶^{1,2,3}_{θ} U`` with θ demanding pairwise-distinct 1,2,3,1';
    for k = 6 it is the query separating TriAL from FO⁵.  Supported k:
    2..6 (positions available to one join).
    """
    if not 2 <= k <= 6:
        raise AlgebraError(f"distinct_objects_at_least supports k in 2..6, got {k}")
    positions = [Pos(i) for i in range(k)]
    conds = tuple(
        Cond(positions[i], positions[j], "!=")
        for i in range(k)
        for j in range(i + 1, k)
    )
    return Join(Universe(), Universe(), (0, 1, 2), conds)
