"""Positions and condition terms for Triple Algebra joins.

The paper indexes the six components available to a join condition as
``1, 2, 3`` (the left operand's subject/predicate/object) and
``1', 2', 3'`` (the right operand's).  Internally we use 0-based integers
``0..5``; the pretty-printer restores the paper's notation.

A condition term is either a :class:`Pos` (one of the six positions) or a
:class:`Const` (an object constant for θ-conditions, a data value for
η-conditions).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Union

from repro.errors import AlgebraError

#: Number of positions available to a join (3 from each operand).
N_JOIN_POSITIONS = 6
#: Positions available to a selection (a single operand).
N_SELECT_POSITIONS = 3

_PAPER_NAMES = ("1", "2", "3", "1'", "2'", "3'")
_NAME_TO_INDEX = {name: i for i, name in enumerate(_PAPER_NAMES)}


@dataclass(frozen=True)
class Pos:
    """A reference to one of the six join positions (0-based index).

    >>> Pos(0), Pos(5)
    (Pos(1), Pos(3'))
    """

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < N_JOIN_POSITIONS:
            raise AlgebraError(f"position index must be in 0..5, got {self.index}")

    @property
    def is_left(self) -> bool:
        """True when the position refers to the left operand (1, 2, 3)."""
        return self.index < 3

    @property
    def is_right(self) -> bool:
        """True when the position refers to the right operand (1', 2', 3')."""
        return self.index >= 3

    @property
    def local_index(self) -> int:
        """Index within the owning operand's triple (0, 1 or 2)."""
        return self.index % 3

    @property
    def paper_name(self) -> str:
        """The paper's name for this position: ``1..3`` or ``1'..3'``."""
        return _PAPER_NAMES[self.index]

    def __repr__(self) -> str:
        return f"Pos({self.paper_name})"

    @classmethod
    def from_paper(cls, name: str) -> "Pos":
        """Build from paper notation, e.g. ``Pos.from_paper("2'")``.

        >>> Pos.from_paper("3'").index
        5
        """
        try:
            return cls(_NAME_TO_INDEX[name.strip()])
        except KeyError:
            raise AlgebraError(
                f"unknown position {name!r}; expected one of {_PAPER_NAMES}"
            ) from None


@dataclass(frozen=True)
class Const:
    """A constant in a condition: an object (θ) or a data value (η)."""

    value: Any

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


_PARAM_NAME_RE = re.compile(r"[A-Za-z_]\w*\Z")


@dataclass(frozen=True)
class Param:
    """A named placeholder for a constant, bound at execution time.

    A :class:`Param` stands wherever a :class:`Const` may stand in a
    condition (``$city`` in the text syntax): a prepared statement
    compiles the expression once and substitutes the bound constant into
    the cached physical plan per execution (:mod:`repro.core.params`).
    The planner treats a parameterized equality exactly like the
    constant one it replaces, so the plan shape — and therefore the plan
    cache entry — is shared across all bindings.
    """

    name: str

    def __post_init__(self) -> None:
        if not _PARAM_NAME_RE.match(self.name):
            raise AlgebraError(
                f"parameter name must be an identifier, got {self.name!r}"
            )

    def __repr__(self) -> str:
        return f"${self.name}"


Term = Union[Pos, Const, Param]

#: The paper's position names in index order, exported for pretty-printers.
PAPER_POSITION_NAMES = _PAPER_NAMES


def parse_out_spec(spec: str) -> tuple[int, int, int]:
    """Parse an output specification like ``"1,3',3"`` into indexes.

    >>> parse_out_spec("1,3',3")
    (0, 5, 2)
    """
    parts = [p.strip() for p in spec.split(",")]
    if len(parts) != 3:
        raise AlgebraError(f"output spec needs exactly 3 positions, got {spec!r}")
    i, j, k = (Pos.from_paper(p).index for p in parts)
    return (i, j, k)


def format_out_spec(out: tuple[int, int, int]) -> str:
    """Inverse of :func:`parse_out_spec`."""
    return ",".join(_PAPER_NAMES[i] for i in out)
