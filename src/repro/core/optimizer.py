"""Algebraic rewrites for TriAL(*) expressions.

The paper's closing discussion asks how its algebra would fare inside a
real query processor; this module provides the standard logical
optimisations, each a semantics-preserving rewrite (property-tested in
``tests/test_optimizer.py``):

* **select merging** — ``σ_c1(σ_c2(e)) → σ_{c1∧c2}(e)``;
* **select-into-join pushing** — a selection over a join becomes extra
  join conditions (positions retargeted through the join's output map
  when unambiguous);
* **join-local condition pushing** — join conditions touching only one
  operand become selections on that operand (enabling index use and
  shrinking hash inputs);
* **empty/idempotent set-operation pruning** — ``e ∪ e → e``,
  ``e − e → ∅``-shaped simplifications that arise from generated
  queries (∅ is a canonical constant-false *equality* selection, so
  the rewrites stay inside TriAL=);
* **double-star collapse** — ``(star(e))* = star(e)`` for the *same*
  join parameters (stars are closures, hence idempotent);
* **semantic pruning** (gated behind
  :mod:`repro.analysis.semantics`) — a selection/join whose condition
  list the union-find closure proves unsatisfiable becomes ∅
  (``SEM-UNSAT``), a star whose step conditions are unsatisfiable
  collapses to its base (``SEM-TRIVIAL-STAR``), and conditions implied
  by the rest of their conjunction are dropped (``SEM-REDUNDANT``'s
  minimal core).  Each rewrite fires only on the analyzer's verdict,
  and the verdicts are binding-independent, so the rewrites stay sound
  for parameterised (canonicalized) expressions.

``optimize`` applies the rules bottom-up to a fixed point.  Rewrites
never change semantics; they are purely cost-motivated, so engines can
apply them independently of fragment classification (all rules map
TriAL= into TriAL= and reachTA= into reachTA=).
"""

from __future__ import annotations

from repro.core.conditions import Cond
from repro.core.expressions import (
    Diff,
    Expr,
    Intersect,
    Join,
    Rel,
    Select,
    Star,
    Union,
    Universe,
)
from repro.core.positions import Const, Pos

__all__ = ["optimize", "push_conditions", "merge_selects", "is_empty_expr"]


def _empty(like: Expr) -> Select:
    """A canonical always-false selection (the ∅ of the rewrite rules).

    Built over a relation the expression already mentions, so the
    rewritten query never references names (or U) the original did not.
    """
    if isinstance(like, Rel):
        base: Expr = like
    else:
        names = sorted(like.relation_names())
        base = Rel(names[0]) if names else Universe()
    return Select(base, _FALSE_CONDITIONS)


#: A constant-false *equality* — ∅ must stay inside TriAL= (the rules
#: promise to preserve fragment membership, and inequalities would not).
_FALSE_CONDITIONS = (Cond(Const("__empty__"), Const("__never__")),)


def is_empty_expr(expr: Expr) -> bool:
    """Recognise the canonical empty expression produced by the rules."""
    return isinstance(expr, Select) and expr.conditions == _FALSE_CONDITIONS


def _semantic_conditions(conditions: tuple[Cond, ...]) -> tuple[Cond, ...] | None:
    """The analyzer's verdict on one conjunction: ``None`` when the
    union-find closure proves it unsatisfiable, otherwise its minimal
    core (conditions implied by the rest dropped).

    Imported lazily — :mod:`repro.analysis.semantics` depends on the
    core expression types, mirroring how ``compile_plan`` reaches the
    plan verifier.
    """
    from repro.analysis.semantics import condition_core, conditions_unsat

    if conditions_unsat(conditions):
        return None
    return condition_core(conditions)


def merge_selects(expr: Select) -> Select:
    """σ_c1(σ_c2(e)) → σ_{c1 ∪ c2}(e), applied through a whole chain."""
    conditions: tuple[Cond, ...] = expr.conditions
    inner = expr.expr
    while isinstance(inner, Select):
        conditions = conditions + inner.conditions
        inner = inner.expr
    return Select(inner, tuple(dict.fromkeys(conditions)))


def _retarget_select_over_join(cond: Cond, out: tuple[int, int, int]) -> Cond | None:
    """Rewrite a selection condition (positions 0..2 of the join output)
    into a condition over the join's six input positions, when possible.

    Output position i of the join holds input position ``out[i]``; a
    selection condition ``i ~ j`` therefore equals the join condition
    ``out[i] ~ out[j]``.  Always possible — returns None only for
    malformed conditions.
    """
    def retarget(term):
        if not isinstance(term, Pos):
            return term  # constants and parameters pass through unchanged
        return Pos(out[term.index])

    return Cond(retarget(cond.left), retarget(cond.right), cond.op, cond.on_data)


def _split_join_local(
    conditions: tuple[Cond, ...],
) -> tuple[tuple[Cond, ...], tuple[Cond, ...], tuple[Cond, ...]]:
    """(left-local, right-local, rest) — mirrors the engine's analysis."""
    left, right, rest = [], [], []
    for cond in conditions:
        sides = {p.is_right for p in cond.positions()}
        if sides == {False}:
            left.append(cond)
        elif sides == {True}:
            right.append(cond)
        else:
            rest.append(cond)
    return tuple(left), tuple(right), tuple(rest)


def push_conditions(expr: Join) -> Expr:
    """Push operand-local join conditions down as selections."""
    left_local, right_local, rest = _split_join_local(expr.conditions)
    if not left_local and not right_local:
        return expr
    left = expr.left
    right = expr.right
    if left_local:
        left = Select(left, left_local)
    if right_local:
        right = Select(right, tuple(c.swap_sides() for c in right_local))
    return Join(left, right, expr.out, rest)


def _rewrite(expr: Expr, semantic: bool = True) -> Expr:
    """One bottom-up pass of all rules."""
    # Rewrite children first.
    if isinstance(expr, Select):
        expr = Select(_rewrite(expr.expr, semantic), expr.conditions)
    elif isinstance(expr, (Union, Diff, Intersect)):
        expr = type(expr)(
            _rewrite(expr.left, semantic), _rewrite(expr.right, semantic)
        )
    elif isinstance(expr, Join):
        expr = Join(
            _rewrite(expr.left, semantic),
            _rewrite(expr.right, semantic),
            expr.out,
            expr.conditions,
        )
    elif isinstance(expr, Star):
        expr = Star(_rewrite(expr.expr, semantic), expr.out, expr.conditions, expr.side)

    # Node-local rules.
    if isinstance(expr, Select):
        if isinstance(expr.expr, Select):
            expr = merge_selects(expr)
        if not expr.conditions:
            return expr.expr
        if is_empty_expr(expr.expr):
            return expr.expr
        if semantic and not is_empty_expr(expr):
            conds = _semantic_conditions(expr.conditions)
            if conds is None:
                return _empty(expr)  # SEM-UNSAT: prune to ∅
            if not conds:
                return expr.expr  # every condition statically true
            if conds != expr.conditions:
                expr = Select(expr.expr, conds)  # SEM-REDUNDANT: minimal core
        if isinstance(expr.expr, Join):
            join = expr.expr
            pushed = [
                _retarget_select_over_join(c, join.out) for c in expr.conditions
            ]
            if all(p is not None for p in pushed):
                return Join(
                    join.left,
                    join.right,
                    join.out,
                    tuple(dict.fromkeys(join.conditions + tuple(pushed))),
                )
        return expr
    if isinstance(expr, Union):
        if expr.left == expr.right:
            return expr.left
        if is_empty_expr(expr.left):
            return expr.right
        if is_empty_expr(expr.right):
            return expr.left
        return expr
    if isinstance(expr, Intersect):
        if expr.left == expr.right:
            return expr.left
        if is_empty_expr(expr.left):
            return expr.left
        if is_empty_expr(expr.right):
            return expr.right
        return expr
    if isinstance(expr, Diff):
        if expr.left == expr.right:
            return _empty(expr.left)
        if is_empty_expr(expr.left):
            return expr.left
        if is_empty_expr(expr.right):
            return expr.left
        return expr
    if isinstance(expr, Join):
        if is_empty_expr(expr.left):
            return expr.left
        if is_empty_expr(expr.right):
            return expr.right
        # Statically false constant-only conditions empty the join.
        for cond in expr.conditions:
            if isinstance(cond.left, Const) and isinstance(cond.right, Const):
                holds = (
                    (cond.left.value == cond.right.value)
                    if cond.is_equality
                    else (cond.left.value != cond.right.value)
                )
                if not holds:
                    return _empty(expr)
        if semantic:
            conds = _semantic_conditions(expr.conditions)
            if conds is None:
                return _empty(expr)  # SEM-UNSAT: prune to ∅
            if conds != expr.conditions:
                expr = Join(expr.left, expr.right, expr.out, conds)
        return push_conditions(expr)
    if isinstance(expr, Star):
        inner = expr.expr
        if (
            isinstance(inner, Star)
            and inner.out == expr.out
            and frozenset(inner.conditions) == frozenset(expr.conditions)
            and inner.side == expr.side
        ):
            return inner  # closures are idempotent
        if is_empty_expr(inner):
            return inner
        if semantic:
            conds = _semantic_conditions(expr.conditions)
            if conds is None:
                # SEM-TRIVIAL-STAR: the step join never fires, so the
                # fixpoint accumulator never leaves the base.
                return inner
            if conds != expr.conditions:
                expr = Star(inner, expr.out, conds, expr.side)
        return expr
    return expr


def optimize(expr: Expr, max_passes: int = 10, *, semantic: bool = True) -> Expr:
    """Apply all rewrite rules bottom-up until a fixed point.

    ``semantic=False`` disables the analyzer-gated pruning rewrites
    (unsatisfiable-condition elimination, minimal-core reduction),
    leaving only the purely syntactic rules — the differential tests
    exercise both settings.

    >>> from repro.core import R, select
    >>> optimize(select(select(R("E"), "1=2"), "2=3"))
    select[2=3 & 1=2](E)
    >>> optimize(select(R("E"), "1='a' & 1='b'"))
    select['__empty__'='__never__'](E)
    """
    for _ in range(max_passes):
        rewritten = _rewrite(expr, semantic)
        if rewritten == expr:
            return expr
        expr = rewritten
    return expr
