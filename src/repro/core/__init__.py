"""TriAL / TriAL* — the paper's core contribution.

Quick use::

    from repro.core import R, join, star, evaluate
    from repro.triplestore import Triplestore

    t = Triplestore([("a", "p", "b"), ("b", "q", "c")])
    e = star(R("E"), "1,2,3'", "3=1'")        # Reach→
    evaluate(e, t)
"""

from repro.core.builder import (
    R,
    complement,
    diagonal,
    distinct_objects_at_least,
    example2_expr,
    example2_extended,
    example3_left,
    example3_right,
    intersect_as_join,
    join,
    lstar,
    permute,
    query_q,
    reach_down,
    reach_forward,
    select,
    star,
    union_all,
    universe,
    universe_as_joins,
)
from repro.core.conditions import Cond, as_conditions, eta, parse_conditions, theta
from repro.core.engines import (
    ENGINE_REGISTRY,
    Engine,
    FastEngine,
    HashJoinEngine,
    NaiveEngine,
    ShardedEngine,
    TripleSet,
    VectorEngine,
)
from repro.core.expressions import (
    Diff,
    Expr,
    Intersect,
    Join,
    Rel,
    Select,
    Star,
    Union,
    Universe,
    in_reach_ta_eq,
    in_trial,
    in_trial_eq,
    is_equality_only,
    star_is_reach,
)
from repro.core.optimizer import optimize
from repro.core.parser import parse
from repro.core.semijoin import antijoin, in_semijoin_algebra, semijoin
from repro.core.positions import Const, Pos
from repro.triplestore.model import Triplestore

_DEFAULT_ENGINE = HashJoinEngine()


def evaluate(expr: Expr, store: Triplestore, engine: Engine | None = None) -> TripleSet:
    """Evaluate ``expr`` over ``store`` (default: the hash-join engine)."""
    return (engine or _DEFAULT_ENGINE).evaluate(expr, store)


def project13(triples) -> frozenset:
    """π₁,₃ — the pairs (s, o) of a triple set (Section 6.2's convention
    for using TriAL* as a binary graph query language)."""
    return frozenset((s, o) for s, _, o in triples)


__all__ = [
    "Cond",
    "Const",
    "Diff",
    "ENGINE_REGISTRY",
    "Engine",
    "Expr",
    "FastEngine",
    "HashJoinEngine",
    "Intersect",
    "Join",
    "NaiveEngine",
    "Pos",
    "R",
    "Rel",
    "Select",
    "ShardedEngine",
    "Star",
    "TripleSet",
    "Triplestore",
    "Union",
    "Universe",
    "VectorEngine",
    "as_conditions",
    "complement",
    "diagonal",
    "distinct_objects_at_least",
    "eta",
    "evaluate",
    "example2_expr",
    "example2_extended",
    "example3_left",
    "example3_right",
    "in_reach_ta_eq",
    "in_trial",
    "in_trial_eq",
    "intersect_as_join",
    "is_equality_only",
    "join",
    "lstar",
    "optimize",
    "parse",
    "parse_conditions",
    "permute",
    "project13",
    "query_q",
    "reach_down",
    "reach_forward",
    "select",
    "star",
    "star_is_reach",
    "theta",
    "union_all",
    "universe",
    "universe_as_joins",
    "antijoin",
    "in_semijoin_algebra",
    "semijoin",
]
