"""The paper's concrete databases, transcribed exactly.

* :func:`figure1` — the transport RDF database of Figure 1;
* :func:`proposition1_d1` / :func:`proposition1_d2` — the documents D₁ and
  D₂ from the proof of Proposition 1 (identical σ-transformations,
  different answers to query Q);
* :func:`example3_store` — the three-triple store of Example 3 (left vs
  right Kleene closure);
* :func:`social_network` — the Mario/Luigi/Donkey Kong network of
  Section 2.3 with its quintuple data values;
* :func:`theorem4_structures` — the structures A and B used to separate
  FO⁴ from TriAL in the proof of Theorem 4;
* :func:`clique_store` — the stores T₃, T₄, T₅, T₆ (complete ternary
  relations over k objects, all sharing one data value) used in the
  separation arguments of Theorems 4 and 6.
"""

from __future__ import annotations

import itertools

from repro.triplestore.model import Triplestore

# Object names follow the paper's Figure 1.
ST_ANDREWS = "St. Andrews"
EDINBURGH = "Edinburgh"
LONDON = "London"
BRUSSELS = "Brussels"
MANCHESTER = "Manchester"
NEWCASTLE = "Newcastle"
BUS_OP_1 = "Bus Op 1"
TRAIN_OP_1 = "Train Op 1"
TRAIN_OP_2 = "Train Op 2"
TRAIN_OP_3 = "Train Op 3"
PART_OF = "part_of"
NAT_EXPRESS = "NatExpress"
EAST_COAST = "EastCoast"
EUROSTAR = "Eurostar"

FIGURE1_TRIPLES = (
    (ST_ANDREWS, BUS_OP_1, EDINBURGH),
    (EDINBURGH, TRAIN_OP_1, LONDON),
    (LONDON, TRAIN_OP_2, BRUSSELS),
    (BUS_OP_1, PART_OF, NAT_EXPRESS),
    (TRAIN_OP_1, PART_OF, EAST_COAST),
    (TRAIN_OP_2, PART_OF, EUROSTAR),
    (EAST_COAST, PART_OF, NAT_EXPRESS),
)


def figure1() -> Triplestore:
    """The RDF database D of Figure 1 as a single-relation triplestore."""
    return Triplestore(FIGURE1_TRIPLES)


#: Expected output of Example 2's expression e on Figure 1.
EXAMPLE2_EXPECTED = frozenset(
    {
        (ST_ANDREWS, NAT_EXPRESS, EDINBURGH),
        (EDINBURGH, EAST_COAST, LONDON),
        (LONDON, EUROSTAR, BRUSSELS),
    }
)

#: The extra triple Example 2's e′ adds on top of e.
EXAMPLE2_PRIME_EXTRA = (EDINBURGH, NAT_EXPRESS, LONDON)

#: π₁,₃ of query Q's result on Figure 1, restricted to city pairs.  The
#: paper highlights (Edinburgh, London) and (St. Andrews, London) as
#: members and (St. Andrews, Brussels) as a non-member.
QUERY_Q_CITY_PAIRS = frozenset(
    {
        (ST_ANDREWS, EDINBURGH),
        (EDINBURGH, LONDON),
        (ST_ANDREWS, LONDON),
        (LONDON, BRUSSELS),
    }
)

#: The full π₁,₃ of Q on Figure 1.  Besides city pairs, the expression
#: also chains the part_of hierarchy edges themselves (they too are
#: "services operated by the same company" in the triple view) — e.g.
#: (Train Op 1, NatExpress) via two part_of hops.
QUERY_Q_EXPECTED_PAIRS = QUERY_Q_CITY_PAIRS | frozenset(
    {
        (BUS_OP_1, NAT_EXPRESS),
        (EAST_COAST, NAT_EXPRESS),
        (TRAIN_OP_1, EAST_COAST),
        (TRAIN_OP_1, NAT_EXPRESS),
        (TRAIN_OP_2, EUROSTAR),
    }
)

#: The pair the paper singles out as NOT in Q (needs a company change).
QUERY_Q_NEGATIVE_PAIR = (ST_ANDREWS, BRUSSELS)

_D1_TRIPLES = (
    (ST_ANDREWS, "Bus Operator 1", EDINBURGH),
    (EDINBURGH, TRAIN_OP_1, LONDON),
    (EDINBURGH, TRAIN_OP_3, LONDON),
    (EDINBURGH, TRAIN_OP_1, MANCHESTER),
    (NEWCASTLE, TRAIN_OP_1, LONDON),
    (LONDON, TRAIN_OP_2, BRUSSELS),
    ("Bus Operator 1", PART_OF, NAT_EXPRESS),
    (TRAIN_OP_1, PART_OF, EAST_COAST),
    (TRAIN_OP_2, PART_OF, EUROSTAR),
    (EAST_COAST, PART_OF, NAT_EXPRESS),
)


def proposition1_d1() -> Triplestore:
    """Document D₁ from the proof of Proposition 1."""
    return Triplestore(_D1_TRIPLES)


def proposition1_d2() -> Triplestore:
    """D₂ = D₁ without (Edinburgh, Train Op 1, London)."""
    triples = tuple(
        t for t in _D1_TRIPLES if t != (EDINBURGH, TRAIN_OP_1, LONDON)
    )
    return Triplestore(triples)


def example3_store() -> Triplestore:
    """Example 3's store: E = {(a,b,c), (c,d,e), (d,e,f)}."""
    return Triplestore([("a", "b", "c"), ("c", "d", "e"), ("d", "e", "f")])


#: Example 3's stated results (right and left closure).
EXAMPLE3_RIGHT_EXPECTED = frozenset(
    {("a", "b", "c"), ("c", "d", "e"), ("d", "e", "f"), ("a", "b", "d"), ("a", "b", "e")}
)
EXAMPLE3_LEFT_EXPECTED = frozenset(
    {("a", "b", "c"), ("c", "d", "e"), ("d", "e", "f"), ("a", "b", "d")}
)


def social_network() -> Triplestore:
    """The Section 2.3 social network with quintuple data values.

    Data values are (name, email, age, type, created); user entities have
    ``None`` in the last two components, connection entities in the first
    three (the paper's ⊥).
    """
    triples = [
        ("o175", "c163", "o122"),
        ("o175", "c137", "o7521"),
        ("o7521", "c177", "o122"),
    ]
    rho = {
        "o175": ("Mario", "m@nes.com", 23, None, None),
        "o122": ("Donkey Kong", "d@nes.com", 117, None, None),
        "o7521": ("Luigi", "l@nes.com", 27, None, None),
        "c137": (None, None, None, "brother", "11-11-83"),
        "c177": (None, None, None, "coworker", "12-07-89"),
        "c163": (None, None, None, "rival", "12-07-89"),
    }
    return Triplestore(triples, rho)


def clique_store(k: int, data_value: str = "d") -> Triplestore:
    """Tₖ: the complete ternary relation over k objects, one shared ρ-value.

    These are the stores T₃/T₄ (FO³ separation) and T₅/T₆ (FO⁵
    separation) from the proofs of Theorems 4 and 6.
    """
    objects = [f"o{i}" for i in range(k)]
    triples = list(itertools.product(objects, repeat=3))
    rho = {o: data_value for o in objects}
    return Triplestore(triples, rho)


def theorem4_structures() -> tuple[Triplestore, Triplestore]:
    """The structures A and B from the proof of Theorem 4 (FO⁴ ⊄ TriAL).

    A is over objects a, b, c, d₁..d₉, e₁..e₁₂; every edge is symmetric:
    (u, eᵢ, v) comes with (v, eᵢ, u).  In A the triangle {a,b,c} shares
    all twelve eᵢ and every dⱼ connects to a, b, c for i ≤ 4; in B the
    witnesses are split into blocks so no single dⱼ works with all three
    pairs of {a,b,c}.  (The paper's A-description says "1 ≤ j ≤ 12",
    an evident typo for the nine dⱼ's; we clamp to d₁..d₉.)
    """
    def sym(u: str, e: str, v: str) -> list[tuple[str, str, str]]:
        return [(u, e, v), (v, e, u)]

    abc_pairs = (("a", "b"), ("a", "c"), ("b", "c"))
    a_triples: list[tuple[str, str, str]] = []
    for i in range(1, 13):
        e = f"e{i}"
        for u, v in abc_pairs:
            a_triples += sym(u, e, v)
    for i in range(1, 5):
        e = f"e{i}"
        for j in range(1, 10):
            d = f"d{j}"
            for u in ("a", "b", "c"):
                a_triples += sym(u, e, d)

    b_triples: list[tuple[str, str, str]] = []
    for i in range(1, 4):
        e = f"e{i}"
        for u, v in abc_pairs:
            b_triples += sym(u, e, v)
    for i in range(4, 7):
        e = f"e{i}"
        b_triples += sym("a", e, "b")
        for j in range(1, 4):
            b_triples += sym("b", e, f"d{j}") + sym("a", e, f"d{j}")
    for i in range(7, 10):
        e = f"e{i}"
        b_triples += sym("a", e, "c")
        for j in range(4, 7):
            b_triples += sym("c", e, f"d{j}") + sym("a", e, f"d{j}")
    for i in range(10, 13):
        e = f"e{i}"
        b_triples += sym("b", e, "c")
        for j in range(7, 10):
            b_triples += sym("b", e, f"d{j}") + sym("c", e, f"d{j}")

    return Triplestore(a_triples), Triplestore(b_triples)
