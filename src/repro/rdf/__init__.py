"""RDF documents, the σ encoding, nSPARQL navigation, paper datasets."""

from repro.rdf.datasets import (
    EXAMPLE2_EXPECTED,
    EXAMPLE2_PRIME_EXTRA,
    EXAMPLE3_LEFT_EXPECTED,
    EXAMPLE3_RIGHT_EXPECTED,
    FIGURE1_TRIPLES,
    QUERY_Q_CITY_PAIRS,
    QUERY_Q_EXPECTED_PAIRS,
    QUERY_Q_NEGATIVE_PAIR,
    clique_store,
    example3_store,
    figure1,
    proposition1_d1,
    proposition1_d2,
    social_network,
    theorem4_structures,
)
from repro.rdf.model import RDFGraph
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.rdf.nsparql import AXES, Self, evaluate_nsparql_nre
from repro.rdf.sigma import (
    SIGMA_ALPHABET,
    sigma,
    sigma_is_lossless_for,
    sigma_preimage_candidates,
)

__all__ = [
    "AXES",
    "EXAMPLE2_EXPECTED",
    "EXAMPLE2_PRIME_EXTRA",
    "EXAMPLE3_LEFT_EXPECTED",
    "EXAMPLE3_RIGHT_EXPECTED",
    "FIGURE1_TRIPLES",
    "QUERY_Q_CITY_PAIRS",
    "QUERY_Q_EXPECTED_PAIRS",
    "QUERY_Q_NEGATIVE_PAIR",
    "RDFGraph",
    "SIGMA_ALPHABET",
    "Self",
    "clique_store",
    "evaluate_nsparql_nre",
    "example3_store",
    "figure1",
    "parse_ntriples",
    "proposition1_d1",
    "proposition1_d2",
    "serialize_ntriples",
    "sigma",
    "sigma_is_lossless_for",
    "sigma_preimage_candidates",
    "social_network",
    "theorem4_structures",
]
