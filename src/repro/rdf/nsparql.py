"""nSPARQL-style navigation over RDF: NREs with next/edge/node axes.

Theorem 1's proof fixes the semantics of nested regular expressions in
the RDF context (following Pérez–Arenas–Gutierrez):

* ``next`` holds between v, v′ when ∃z (v, z, v′) ∈ D;
* ``edge`` holds when ∃z (v, v′, z) ∈ D;
* ``node`` holds when ∃z (z, v, v′) ∈ D;

plus the usual NRE operators with inverses and nesting.  This semantics
coincides with evaluating the NRE over σ(D) (the proof of Theorem 1
relies on exactly that), which the tests verify; the native evaluator
here works straight on the triples.

The alphabet of admissible labels is {next, edge, node} — the axes.  An
NRE mentioning any other label is rejected, mirroring nSPARQL, whose
navigation is axis-based (node tests like ``[edge.part_of]`` are
expressed by nesting, with the *axis* doing the motion).  Since axes
cannot name resources directly, tests over resources are encoded as
``self::a``-style steps in nSPARQL; we additionally support the test
``Self(resource)`` for that purpose.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError
from repro.graphdb.nre import (
    NAlt,
    NConcat,
    NEps,
    NLabel,
    NStar,
    NTest,
    Nre,
)
from repro.rdf.model import RDFGraph

AXES = ("next", "edge", "node")


@dataclass(frozen=True, repr=False)
class Self(Nre):
    """``self::a`` — the diagonal pair (a, a) for one named resource."""

    resource: str

    def __repr__(self) -> str:
        return f"self::{self.resource}"


def _axis_pairs(document: RDFGraph, axis: str) -> frozenset[tuple]:
    if axis == "next":
        return frozenset((s, o) for s, _, o in document)
    if axis == "edge":
        return frozenset((s, p) for s, p, _ in document)
    if axis == "node":
        return frozenset((p, o) for _, p, o in document)
    raise GraphError(f"unknown nSPARQL axis {axis!r}; expected one of {AXES}")


def evaluate_nsparql_nre(document: RDFGraph, expr: Nre) -> frozenset[tuple]:
    """Evaluate an axis-NRE over an RDF document, per Theorem 1 semantics."""
    resources = document.resources()

    def go(e: Nre) -> frozenset[tuple]:
        if isinstance(e, NEps):
            return frozenset((r, r) for r in resources)
        if isinstance(e, Self):
            if e.resource in resources:
                return frozenset({(e.resource, e.resource)})
            return frozenset()
        if isinstance(e, NLabel):
            pairs = _axis_pairs(document, e.label)
            return pairs if e.forward else frozenset((b, a) for a, b in pairs)
        if isinstance(e, NConcat):
            left, right = go(e.left), go(e.right)
            by_source: dict = {}
            for u, v in right:
                by_source.setdefault(u, set()).add(v)
            return frozenset(
                (u, w) for u, v in left for w in by_source.get(v, ())
            )
        if isinstance(e, NAlt):
            return go(e.left) | go(e.right)
        if isinstance(e, NStar):
            inner = go(e.inner)
            succ: dict = {}
            for u, v in inner:
                succ.setdefault(u, set()).add(v)
            closure = {(r, r) for r in resources}
            for source in resources:
                seen: set = set()
                frontier = set(succ.get(source, ()))
                while frontier:
                    seen |= frontier
                    frontier = {
                        w for v in frontier for w in succ.get(v, ()) if w not in seen
                    }
                closure.update((source, v) for v in seen)
            return frozenset(closure)
        if isinstance(e, NTest):
            inner = go(e.inner)
            return frozenset((u, u) for u, _ in inner)
        raise GraphError(f"unknown NRE node {type(e).__name__}")

    return go(expr)
