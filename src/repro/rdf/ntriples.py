"""A miniature N-Triples-style reader/writer for ground RDF.

Real N-Triples requires ``<uri>`` angle brackets and literals; the paper
only needs ground documents over plain resource names, so the dialect
here accepts both angle-bracketed URIs and bare tokens::

    <StAndrews> <BusOp1> <Edinburgh> .
    TrainOp1 part_of EastCoast .

This substitutes for rdflib's parser (see DESIGN.md §4): the paper's
formal development never touches literals or blank nodes, so the
behaviour-relevant surface — a set of ground triples — is preserved.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.rdf.model import RDFGraph

_TOKEN_RE = re.compile(r"<([^>]*)>|([^\s<>.]+)")


def _tokens(line: str) -> list[str]:
    out = []
    pos = 0
    line = line.strip()
    if line.endswith("."):
        line = line[:-1]
    while pos < len(line):
        if line[pos].isspace():
            pos += 1
            continue
        m = _TOKEN_RE.match(line, pos)
        if not m:
            raise ParseError("bad N-Triples token", line, pos)
        out.append(m.group(1) if m.group(1) is not None else m.group(2))
        pos = m.end()
    return out


def parse_ntriples(text: str) -> RDFGraph:
    """Parse the mini N-Triples dialect into an :class:`RDFGraph`."""
    triples = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        tokens = _tokens(stripped)
        if len(tokens) != 3:
            raise ParseError(
                f"line {lineno}: expected 3 terms per statement, got {len(tokens)}"
            )
        triples.append(tuple(tokens))
    return RDFGraph(triples)


def serialize_ntriples(graph: RDFGraph) -> str:
    """Deterministic serialisation (sorted, angle-bracketed)."""
    lines = [
        f"<{s}> <{p}> <{o}> ." for s, p, o in sorted(graph.triples, key=repr)
    ]
    return "\n".join(lines) + ("\n" if lines else "")
