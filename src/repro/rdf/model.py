"""Ground RDF documents (Section 2.1).

An RDF graph is a set of triples ``(s, p, o)`` over URIs; we deal with
*ground* documents (no blank nodes or literals), exactly as the paper
does.  :class:`RDFGraph` is a thin value type with conversions to the
triplestore model (for TriAL querying) and to the σ graph encoding (for
graph-language querying).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.triplestore.model import Triple, Triplestore


class RDFGraph:
    """An immutable set of ground RDF triples."""

    __slots__ = ("triples",)

    def __init__(self, triples: Iterable[Triple]) -> None:
        self.triples: frozenset[Triple] = frozenset(
            (s, p, o) for s, p, o in triples
        )

    def resources(self) -> frozenset:
        """All URIs occurring in any position."""
        out: set = set()
        for triple in self.triples:
            out.update(triple)
        return frozenset(out)

    def subjects(self) -> frozenset:
        return frozenset(s for s, _, _ in self.triples)

    def predicates(self) -> frozenset:
        return frozenset(p for _, p, _ in self.triples)

    def objects(self) -> frozenset:
        return frozenset(o for _, _, o in self.triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self.triples)

    def __len__(self) -> int:
        return len(self.triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self.triples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RDFGraph):
            return NotImplemented
        return self.triples == other.triples

    def __hash__(self) -> int:
        return hash(self.triples)

    def __repr__(self) -> str:
        return f"RDFGraph({len(self.triples)} triples)"

    def union(self, other: "RDFGraph") -> "RDFGraph":
        return RDFGraph(self.triples | other.triples)

    def without(self, *triples: Triple) -> "RDFGraph":
        return RDFGraph(self.triples - set(triples))

    def to_triplestore(self, relation: str = "E") -> Triplestore:
        """View the document as a triplestore (the paper's §2.2 table)."""
        return Triplestore({relation: self.triples})

    @classmethod
    def from_triplestore(cls, store: Triplestore, relation: str = "E") -> "RDFGraph":
        return cls(store.relation(relation))
