"""A conjunctive nSPARQL-style query layer over RDF documents (§2.2).

nSPARQL extends SPARQL's triple patterns with nested regular
expressions in the predicate position.  This module implements the
conjunctive core: patterns ``(term, nre, term)`` over the next/edge/node
axes, combined with AND and FILTER, evaluated against ground RDF
documents with the Theorem 1 semantics.

Because every pattern's meaning factors through the axis relations —
which are functions of σ(D) alone — *any* query in this language
answers identically on documents with equal σ-images.  That is the
operational content of Theorem 1, and the test suite exercises it on
the proof's D₁/D₂ pair.

Example::

    q = NSparqlQuery(
        patterns=[
            Pattern(QVar("x"), parse_nre("next"), QVar("y")),
            Pattern(QVar("y"), parse_nre("next.[edge.part_of_test]"), QVar("z")),
        ],
        select=("x", "z"),
        filters=[Filter("x", "!=", "z")],
    )
    q.evaluate(document)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence, Union

from repro.errors import GraphError
from repro.graphdb.nre import Nre
from repro.rdf.model import RDFGraph
from repro.rdf.nsparql import evaluate_nsparql_nre


@dataclass(frozen=True)
class QVar:
    """A query variable (SPARQL's ?x)."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class QConst:
    """A fixed resource."""

    value: Any

    def __repr__(self) -> str:
        return f"<{self.value}>"


QTerm = Union[QVar, QConst]


@dataclass(frozen=True)
class Pattern:
    """One navigational triple pattern: subject --nre--> object."""

    subject: QTerm
    nre: Nre
    object: QTerm

    def variables(self) -> frozenset[str]:
        return frozenset(
            t.name for t in (self.subject, self.object) if isinstance(t, QVar)
        )


@dataclass(frozen=True)
class Filter:
    """``?left op ?right`` with op ``=`` or ``!=`` (on resources)."""

    left: str
    op: str
    right: str

    def __post_init__(self) -> None:
        if self.op not in ("=", "!="):
            raise GraphError(f"filter operator must be '=' or '!=', got {self.op!r}")

    def holds(self, binding: dict[str, Any]) -> bool:
        l, r = binding[self.left], binding[self.right]
        return (l == r) if self.op == "=" else (l != r)


class NSparqlQuery:
    """A conjunction of navigational patterns with filters and projection."""

    def __init__(
        self,
        patterns: Sequence[Pattern],
        select: tuple[str, ...],
        filters: Sequence[Filter] = (),
    ) -> None:
        if not patterns:
            raise GraphError("queries need at least one pattern")
        self.patterns = tuple(patterns)
        all_vars = frozenset().union(*(p.variables() for p in self.patterns))
        missing = set(select) - all_vars
        if missing:
            raise GraphError(f"selected variables {sorted(missing)} not in any pattern")
        for f in filters:
            if {f.left, f.right} - all_vars:
                raise GraphError(f"filter {f} uses unbound variables")
        self.select = tuple(select)
        self.filters = tuple(filters)

    def evaluate(self, document: RDFGraph, db=None) -> frozenset[tuple]:
        """All bindings of the selected variables.

        ``db`` may be a :class:`repro.db.Database` session, in which
        case each pattern's NRE pair set is memoised there — repeated
        NREs across patterns and queries are computed once per store.
        """
        solutions: list[dict[str, Any]] = [{}]
        for pattern in self.patterns:
            pairs = self._pattern_pairs(document, pattern.nre, db)
            next_solutions: list[dict[str, Any]] = []
            for sol in solutions:
                for u, v in pairs:
                    new = dict(sol)
                    if not _bind(new, pattern.subject, u):
                        continue
                    if not _bind(new, pattern.object, v):
                        continue
                    next_solutions.append(new)
            solutions = next_solutions
            if not solutions:
                return frozenset()
        out = set()
        for sol in solutions:
            if all(f.holds(sol) for f in self.filters):
                out.add(tuple(sol[v] for v in self.select))
        return frozenset(out)

    @staticmethod
    def _pattern_pairs(document: RDFGraph, nre: Nre, db) -> frozenset[tuple]:
        # Only the session's own document may use the session cache —
        # the memo key carries the NRE, not the document, so caching a
        # foreign document's pairs would serve stale bindings later.
        if db is None or document is not getattr(db, "document", None):
            return evaluate_nsparql_nre(document, nre)
        return db.cached(
            ("nsparql-nre", nre), lambda: evaluate_nsparql_nre(document, nre)
        )


def _bind(binding: dict[str, Any], term: QTerm, value: Any) -> bool:
    if isinstance(term, QConst):
        return term.value == value
    bound = binding.get(term.name, _MISSING)
    if bound is _MISSING:
        binding[term.name] = value
        return True
    return bound == value


_MISSING = object()
