"""The σ(D) graph encoding of RDF documents (Figure 2; Arenas–Pérez).

Given an RDF document D, ``σ(D)`` is the graph database over the
alphabet ``{next, node, edge}`` whose vertex set is all resources of D
and which, for every triple (s, p, o), has the edges::

    (s, edge, p)     (p, node, o)     (s, next, o)

Proposition 1 shows the encoding is lossy: the documents D₁ and D₂ of
the proof differ (D₂ drops one triple) yet σ(D₁) = σ(D₂), so no query
over the encoding — in particular no NRE — can distinguish them.
:func:`sigma_is_lossless_for` checks injectivity on concrete inputs.
"""

from __future__ import annotations

from repro.graphdb.model import GraphDB
from repro.rdf.model import RDFGraph

NEXT = "next"
NODE = "node"
EDGE = "edge"
SIGMA_ALPHABET = frozenset({NEXT, NODE, EDGE})


def sigma(document: RDFGraph) -> GraphDB:
    """The σ transformation D → σ(D)."""
    edges = set()
    for s, p, o in document:
        edges.add((s, EDGE, p))
        edges.add((p, NODE, o))
        edges.add((s, NEXT, o))
    return GraphDB(document.resources(), edges, sigma=SIGMA_ALPHABET)


def sigma_preimage_candidates(graph: GraphDB) -> RDFGraph:
    """The *maximal* document D' with σ(D') ⊆ relations of the graph.

    Every triple (s, p, o) whose three σ-edges are present is included.
    For graphs in the image of σ this is the union of all preimages —
    equal to the original document exactly when σ was injective on it.
    """
    triples = []
    for s, _, p in (e for e in graph.edges if e[1] == EDGE):
        for p2, _, o in (e for e in graph.edges if e[1] == NODE):
            if p2 != p:
                continue
            if (s, NEXT, o) in graph.edges:
                triples.append((s, p, o))
    return RDFGraph(triples)


def sigma_is_lossless_for(document: RDFGraph) -> bool:
    """Does D equal the maximal preimage of σ(D)?

    False for the Proposition 1 documents — the executable core of the
    paper's inexpressibility argument.
    """
    return sigma_preimage_candidates(sigma(document)) == document


def sigma_collision_pair(document: RDFGraph) -> tuple[RDFGraph, RDFGraph] | None:
    """A pair (D, D′) with D ⊊ D′ and σ(D) = σ(D′), if one exists.

    Generalises the paper's hand-built D₁/D₂ witness: D′ is the maximal
    preimage of σ(D).  Every triple D′ adds has all three of its σ-edges
    already present, so the images coincide; when D′ ≠ D the pair
    witnesses the encoding's lossiness on this very document.
    """
    maximal = sigma_preimage_candidates(sigma(document))
    if maximal == document:
        return None
    return document, maximal
