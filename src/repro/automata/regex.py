"""Regular expressions over edge alphabets — the RPQ substrate.

AST nodes cover the paper's RPQ needs (Section 2.1) plus inverse labels
(for 2RPQs, used when comparing with C2RPQs in Section 6.2).  The parser
accepts the usual textual syntax::

    parse_regex("a.(b+c)*.a-")     # concatenation ., union +, star *, inverse -

Labels are bare identifiers; quoted labels ('with spaces') are allowed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ParseError


class Regex:
    """Base class of regular-expression ASTs."""

    __slots__ = ()

    def walk(self) -> Iterator["Regex"]:
        yield self
        for child in getattr(self, "children", lambda: ())():
            yield from child.walk()

    def labels(self) -> frozenset[str]:
        """All edge labels mentioned."""
        return frozenset(
            n.label for n in self.walk() if isinstance(n, (Label, Inverse))
        )


@dataclass(frozen=True, repr=False)
class Epsilon(Regex):
    """The empty word."""

    def __repr__(self) -> str:
        return "()"


@dataclass(frozen=True, repr=False)
class Label(Regex):
    """A single forward edge label."""

    label: str

    def __repr__(self) -> str:
        return self.label


@dataclass(frozen=True, repr=False)
class Inverse(Regex):
    """A backward edge label ``a-``."""

    label: str

    def __repr__(self) -> str:
        return f"{self.label}-"


@dataclass(frozen=True, repr=False)
class Concat(Regex):
    left: Regex
    right: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r}.{self.right!r})"


@dataclass(frozen=True, repr=False)
class Alt(Regex):
    left: Regex
    right: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r}+{self.right!r})"


@dataclass(frozen=True, repr=False)
class Star(Regex):
    inner: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.inner,)

    def __repr__(self) -> str:
        return f"{self.inner!r}*"


_LABEL_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*|'[^']*'")


class _RegexParser:
    """Recursive-descent parser: alt > concat > postfix > atom."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def _skip(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self) -> str:
        self._skip()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def parse(self) -> Regex:
        node = self.alt()
        self._skip()
        if self.pos != len(self.text):
            raise ParseError("trailing regex input", self.text, self.pos)
        return node

    def alt(self) -> Regex:
        node = self.concat()
        while self._peek() == "+":
            self.pos += 1
            node = Alt(node, self.concat())
        return node

    def concat(self) -> Regex:
        node = self.postfix()
        while True:
            ch = self._peek()
            if ch == ".":
                self.pos += 1
                node = Concat(node, self.postfix())
            elif ch and (ch.isalnum() or ch in "('_"):
                # juxtaposition also concatenates: "ab" == "a.b" only for
                # single-char labels is ambiguous, so we require '.' between
                # bare labels but allow it before '(' groups.
                if ch == "(":
                    node = Concat(node, self.postfix())
                else:
                    return node
            else:
                return node

    def postfix(self) -> Regex:
        node = self.atom()
        while True:
            ch = self._peek()
            if ch == "*":
                self.pos += 1
                node = Star(node)
            elif ch == "-":
                if isinstance(node, Label):
                    self.pos += 1
                    node = Inverse(node.label)
                else:
                    raise ParseError("'-' applies to labels only", self.text, self.pos)
            else:
                return node

    def atom(self) -> Regex:
        self._skip()
        if self._peek() == "(":
            self.pos += 1
            if self._peek() == ")":
                self.pos += 1
                return Epsilon()
            node = self.alt()
            self._skip()
            if self._peek() != ")":
                raise ParseError("expected ')'", self.text, self.pos)
            self.pos += 1
            return node
        m = _LABEL_RE.match(self.text, self.pos)
        if not m:
            raise ParseError("expected a label", self.text, self.pos)
        self.pos = m.end()
        label = m.group()
        if label.startswith("'"):
            label = label[1:-1]
        return Label(label)


def parse_regex(text: str) -> Regex:
    """Parse textual regex syntax into a :class:`Regex` AST.

    >>> parse_regex("a.(b+c)*")
    (a.(b+c)*)
    """
    return _RegexParser(text).parse()
