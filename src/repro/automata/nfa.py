"""Nondeterministic finite automata via Thompson's construction.

The NFA alphabet consists of *directed symbols* ``(label, forward)`` so
that the same machinery evaluates 2RPQs (regular path queries with
inverses): a graph edge ``(u, a, v)`` can be traversed forward under
symbol ``(a, True)`` and backward under ``(a, False)``.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from repro.automata.regex import Alt, Concat, Epsilon, Inverse, Label, Regex, Star

#: An NFA input symbol: (edge label, traversed forward?).
Symbol = tuple[str, bool]

EPS = None  # ε-transition marker


@dataclass
class NFA:
    """An ε-NFA with a single start state and explicit accepting set."""

    start: int
    accepting: frozenset[int]
    transitions: dict[int, list[tuple[Symbol | None, int]]] = field(default_factory=dict)
    n_states: int = 0

    def symbols_from(self, state: int) -> list[tuple[Symbol | None, int]]:
        return self.transitions.get(state, [])

    def epsilon_closure(self, states: set[int]) -> frozenset[int]:
        """All states reachable via ε-transitions."""
        seen = set(states)
        stack = list(states)
        while stack:
            s = stack.pop()
            for symbol, target in self.symbols_from(s):
                if symbol is EPS and target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    def move(self, states: frozenset[int], symbol: Symbol) -> frozenset[int]:
        """One symbol step followed by ε-closure."""
        out = {
            target
            for s in states
            for sym, target in self.symbols_from(s)
            if sym == symbol
        }
        return self.epsilon_closure(out)

    def accepts(self, word: list[Symbol]) -> bool:
        """Word membership (used by tests to validate the construction)."""
        current = self.epsilon_closure({self.start})
        for symbol in word:
            current = self.move(current, symbol)
            if not current:
                return False
        return bool(current & self.accepting)


class _Builder:
    def __init__(self) -> None:
        self.transitions: dict[int, list[tuple[Symbol | None, int]]] = {}
        self.counter = itertools.count()

    def state(self) -> int:
        return next(self.counter)

    def edge(self, src: int, symbol: Symbol | None, dst: int) -> None:
        self.transitions.setdefault(src, []).append((symbol, dst))

    def build(self, node: Regex) -> tuple[int, int]:
        """Thompson construction; returns (entry, exit) states."""
        if isinstance(node, Epsilon):
            s, t = self.state(), self.state()
            self.edge(s, EPS, t)
            return s, t
        if isinstance(node, Label):
            s, t = self.state(), self.state()
            self.edge(s, (node.label, True), t)
            return s, t
        if isinstance(node, Inverse):
            s, t = self.state(), self.state()
            self.edge(s, (node.label, False), t)
            return s, t
        if isinstance(node, Concat):
            s1, t1 = self.build(node.left)
            s2, t2 = self.build(node.right)
            self.edge(t1, EPS, s2)
            return s1, t2
        if isinstance(node, Alt):
            s, t = self.state(), self.state()
            s1, t1 = self.build(node.left)
            s2, t2 = self.build(node.right)
            self.edge(s, EPS, s1)
            self.edge(s, EPS, s2)
            self.edge(t1, EPS, t)
            self.edge(t2, EPS, t)
            return s, t
        if isinstance(node, Star):
            s, t = self.state(), self.state()
            s1, t1 = self.build(node.inner)
            self.edge(s, EPS, s1)
            self.edge(s, EPS, t)
            self.edge(t1, EPS, s1)
            self.edge(t1, EPS, t)
            return s, t
        raise TypeError(f"unknown regex node {type(node).__name__}")


def compile_regex(node: Regex) -> NFA:
    """Compile a regex AST to an ε-NFA.

    >>> from repro.automata.regex import parse_regex
    >>> nfa = compile_regex(parse_regex("a.b*"))
    >>> nfa.accepts([("a", True)]), nfa.accepts([("a", True), ("b", True)])
    (True, True)
    >>> nfa.accepts([("b", True)])
    False
    """
    builder = _Builder()
    start, accept = builder.build(node)
    n_states = max(builder.transitions, default=0) + 2
    return NFA(
        start=start,
        accepting=frozenset({accept}),
        transitions=builder.transitions,
        n_states=n_states,
    )


def product_reachable_pairs(
    nfa: NFA,
    edges: set[tuple],
    nodes: set,
) -> frozenset[tuple]:
    """All node pairs (u, v) connected by a path whose label is accepted.

    BFS over the product of the graph and the automaton — the classical
    PTIME RPQ algorithm.  ``edges`` are (u, label, v) triples; inverse
    symbols traverse them backwards.
    """
    forward: dict[tuple, set] = {}
    backward: dict[tuple, set] = {}
    for u, label, v in edges:
        forward.setdefault((u, label), set()).add(v)
        backward.setdefault((v, label), set()).add(u)

    result: set[tuple] = set()
    start_closure = nfa.epsilon_closure({nfa.start})
    # Group automaton transitions by state once.
    for source in nodes:
        seen: set[tuple] = {(source, q) for q in start_closure}
        queue = deque(seen)
        while queue:
            node, state = queue.popleft()
            if state in nfa.accepting:
                result.add((source, node))
            for symbol, target in nfa.symbols_from(state):
                if symbol is EPS:
                    nxt = [(node, target)]
                else:
                    label, is_forward = symbol
                    neighbours = (
                        forward.get((node, label), ())
                        if is_forward
                        else backward.get((node, label), ())
                    )
                    nxt = [(n2, target) for n2 in neighbours]
                for pair in nxt:
                    if pair not in seen:
                        seen.add(pair)
                        queue.append(pair)
    return frozenset(result)
