"""Automata substrate: regexes, Thompson NFAs, register automata."""

from repro.automata.memory import (
    RegCond,
    RegisterNFA,
    Rem,
    RemAlt,
    RemConcat,
    RemEps,
    RemLetter,
    RemStar,
    RemStore,
    compile_rem,
    distinct_values_expr,
    evaluate_rem,
)
from repro.automata.nfa import EPS, NFA, compile_regex, product_reachable_pairs
from repro.automata.regex import (
    Alt,
    Concat,
    Epsilon,
    Inverse,
    Label,
    Regex,
    Star,
    parse_regex,
)

__all__ = [
    "Alt",
    "Concat",
    "EPS",
    "Epsilon",
    "Inverse",
    "Label",
    "NFA",
    "RegCond",
    "RegisterNFA",
    "Regex",
    "Rem",
    "RemAlt",
    "RemConcat",
    "RemEps",
    "RemLetter",
    "RemStar",
    "RemStore",
    "Star",
    "compile_regex",
    "compile_rem",
    "distinct_values_expr",
    "evaluate_rem",
    "parse_regex",
    "product_reachable_pairs",
]
