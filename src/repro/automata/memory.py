"""Regular expressions with memory (register automata), Proposition 6.

The paper compares TriAL* with register automata over data paths,
citing [26] (Libkin & Vrgoč, *Regular path queries on graphs with
data*).  A *regular expression with memory* (REM) walks a data graph
while storing data values in registers and testing later values against
them.  The paper's separating family is::

    e₂   := ↓x₁ . a[x₁≠] . ↓x₂
    eₙ₊₁ := eₙ . a[x₁≠ ∧ … ∧ xₙ≠] . ↓xₙ₊₁

whose answer is nonempty iff the graph contains a path of n nodes with
pairwise distinct data values — hence (on a complete a-labelled graph
with distinct values) iff the graph has at least n elements, a property
beyond L⁶∞ω and therefore beyond TriAL*.

We implement REMs compositionally: expressions compile to register
NFAs, evaluated by BFS over (node, state, register valuation)
configurations.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import GraphError


@dataclass(frozen=True)
class RegCond:
    """One register test: the current data value ``=``/``!=`` register ``x``."""

    register: str
    equal: bool

    def __repr__(self) -> str:
        return f"{self.register}{'=' if self.equal else '≠'}"


class Rem:
    """Base class of regular expressions with memory."""

    __slots__ = ()

    def then(self, other: "Rem") -> "RemConcat":
        return RemConcat(self, other)


@dataclass(frozen=True, repr=False)
class RemEps(Rem):
    def __repr__(self) -> str:
        return "ε"


@dataclass(frozen=True, repr=False)
class RemStore(Rem):
    """``↓x`` — store the *current node's* data value in register x."""

    register: str

    def __repr__(self) -> str:
        return f"↓{self.register}"


@dataclass(frozen=True, repr=False)
class RemLetter(Rem):
    """``a[c]`` — traverse an a-edge, then test the target's data value."""

    label: str
    conditions: tuple[RegCond, ...] = ()

    def __repr__(self) -> str:
        conds = "∧".join(map(repr, self.conditions))
        return f"{self.label}[{conds}]" if conds else self.label


@dataclass(frozen=True, repr=False)
class RemConcat(Rem):
    left: Rem
    right: Rem

    def __repr__(self) -> str:
        return f"({self.left!r}·{self.right!r})"


@dataclass(frozen=True, repr=False)
class RemAlt(Rem):
    left: Rem
    right: Rem

    def __repr__(self) -> str:
        return f"({self.left!r}+{self.right!r})"


@dataclass(frozen=True, repr=False)
class RemStar(Rem):
    inner: Rem

    def __repr__(self) -> str:
        return f"{self.inner!r}*"


def distinct_values_expr(n: int, label: str = "a") -> Rem:
    """The paper's eₙ: a path of n nodes with pairwise distinct values."""
    if n < 2:
        raise GraphError("the family e_n is defined for n >= 2")
    expr: Rem = RemConcat(
        RemStore("x1"),
        RemConcat(RemLetter(label, (RegCond("x1", False),)), RemStore("x2")),
    )
    for k in range(3, n + 1):
        conds = tuple(RegCond(f"x{i}", False) for i in range(1, k))
        expr = RemConcat(
            expr, RemConcat(RemLetter(label, conds), RemStore(f"x{k}"))
        )
    return expr


# --------------------------------------------------------------------- #
# Compilation to a register NFA
# --------------------------------------------------------------------- #

#: Transition actions: ("eps",), ("store", x), ("letter", label, conds)
_Action = tuple


@dataclass
class RegisterNFA:
    start: int
    accept: int
    transitions: dict[int, list[tuple[_Action, int]]] = field(default_factory=dict)


class _RemBuilder:
    def __init__(self) -> None:
        self.transitions: dict[int, list[tuple[_Action, int]]] = {}
        self.counter = itertools.count()

    def state(self) -> int:
        return next(self.counter)

    def edge(self, src: int, action: _Action, dst: int) -> None:
        self.transitions.setdefault(src, []).append((action, dst))

    def build(self, node: Rem) -> tuple[int, int]:
        if isinstance(node, RemEps):
            s, t = self.state(), self.state()
            self.edge(s, ("eps",), t)
            return s, t
        if isinstance(node, RemStore):
            s, t = self.state(), self.state()
            self.edge(s, ("store", node.register), t)
            return s, t
        if isinstance(node, RemLetter):
            s, t = self.state(), self.state()
            self.edge(s, ("letter", node.label, node.conditions), t)
            return s, t
        if isinstance(node, RemConcat):
            s1, t1 = self.build(node.left)
            s2, t2 = self.build(node.right)
            self.edge(t1, ("eps",), s2)
            return s1, t2
        if isinstance(node, RemAlt):
            s, t = self.state(), self.state()
            for part in (node.left, node.right):
                ps, pt = self.build(part)
                self.edge(s, ("eps",), ps)
                self.edge(pt, ("eps",), t)
            return s, t
        if isinstance(node, RemStar):
            s, t = self.state(), self.state()
            ps, pt = self.build(node.inner)
            self.edge(s, ("eps",), ps)
            self.edge(s, ("eps",), t)
            self.edge(pt, ("eps",), ps)
            self.edge(pt, ("eps",), t)
            return s, t
        raise TypeError(f"unknown REM node {type(node).__name__}")


def compile_rem(expr: Rem) -> RegisterNFA:
    """Compile a REM to a register NFA (Thompson-style)."""
    builder = _RemBuilder()
    start, accept = builder.build(expr)
    return RegisterNFA(start, accept, builder.transitions)


def evaluate_rem(
    expr: Rem,
    edges: Iterable[tuple[Any, str, Any]],
    rho: dict[Any, Any],
) -> frozenset[tuple[Any, Any]]:
    """All pairs (u, v) linked by a data path matching ``expr``.

    ``edges`` are labelled graph edges; ``rho`` maps nodes to data
    values.  Configurations are (node, NFA state, register valuation);
    the search is a plain BFS, exponential only in the number of
    registers actually distinguished (fine for the paper's witnesses).
    """
    nfa = compile_rem(expr)
    forward: dict[tuple[Any, str], set] = {}
    nodes: set = set()
    for u, label, v in edges:
        forward.setdefault((u, label), set()).add(v)
        nodes.add(u)
        nodes.add(v)

    result: set[tuple[Any, Any]] = set()
    for source in nodes:
        initial = (source, nfa.start, ())
        seen = {initial}
        queue = deque([initial])
        while queue:
            node, state, valuation = queue.popleft()
            if state == nfa.accept:
                result.add((source, node))
            for action, target in nfa.transitions.get(state, ()):
                kind = action[0]
                if kind == "eps":
                    candidates = [(node, target, valuation)]
                elif kind == "store":
                    val = dict(valuation)
                    val[action[1]] = rho.get(node)
                    candidates = [(node, target, tuple(sorted(val.items())))]
                else:  # letter
                    _, label, conditions = action
                    val = dict(valuation)
                    candidates = []
                    for nxt in forward.get((node, label), ()):
                        data = rho.get(nxt)
                        ok = True
                        for cond in conditions:
                            if cond.register not in val:
                                ok = False
                                break
                            stored = val[cond.register]
                            if (stored == data) != cond.equal:
                                ok = False
                                break
                        if ok:
                            candidates.append((nxt, target, valuation))
                for conf in candidates:
                    if conf not in seen:
                        seen.add(conf)
                        queue.append(conf)
    return frozenset(result)
