"""n-ary generalisation of triplestores (Section 7, future work).

The paper: *"Our algebras deal with triples, but we can define similar
algebras for n-tuples, for any fixed n.  If n = 2, we get the standard
relation algebra […]. For n = 3 […] we would like to see what the
connection is for arbitrary n."*

:class:`NaryStore` holds relations of one fixed arity ``k`` plus the
data-value function ρ, exactly like Definition 1 with 3 replaced by k.
For ``k == 3`` it is interconvertible with :class:`~repro.triplestore.model.Triplestore`
(tested), so the n-ary engine doubles as an independent implementation
of the paper's core semantics.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from typing import Any

from repro.errors import TriplestoreError, UnknownRelationError
from repro.triplestore.model import Triplestore

Tuple_ = tuple


class NaryStore:
    """A database of k-ary relations over objects with data values."""

    __slots__ = ("arity", "_relations", "_rho", "_objects")

    def __init__(
        self,
        arity: int,
        relations: Mapping[str, Iterable[tuple]],
        rho: Mapping[Hashable, Any] | None = None,
        extra_objects: Iterable[Hashable] = (),
    ) -> None:
        if arity < 1:
            raise TriplestoreError(f"arity must be positive, got {arity}")
        self.arity = arity
        rel_map: dict[str, frozenset[tuple]] = {}
        objects: set = set(extra_objects)
        for name, rows in relations.items():
            frozen = set()
            for row in rows:
                row = tuple(row)
                if len(row) != arity:
                    raise TriplestoreError(
                        f"relation {name!r} expects {arity}-tuples, got {row!r}"
                    )
                frozen.add(row)
                objects.update(row)
            rel_map[str(name)] = frozenset(frozen)
        if not rel_map:
            rel_map = {"E": frozenset()}
        self._relations = rel_map
        self._rho = dict(rho or {})
        self._objects = frozenset(objects)

    # ------------------------------------------------------------------ #

    @property
    def objects(self) -> frozenset:
        return self._objects

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def relation(self, name: str) -> frozenset[tuple]:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name, self.relation_names) from None

    def rho(self, obj: Hashable) -> Any:
        return self._rho.get(obj)

    def all_tuples(self) -> frozenset[tuple]:
        out: set = set()
        for rows in self._relations.values():
            out |= rows
        return frozenset(out)

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._relations.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NaryStore):
            return NotImplemented
        return (
            self.arity == other.arity
            and self._relations == other._relations
            and self._rho == other._rho
            and self._objects == other._objects
        )

    def __hash__(self) -> int:
        return hash(
            (self.arity, frozenset(self._relations.items()), frozenset(self._rho.items()))
        )

    def __repr__(self) -> str:
        rels = ", ".join(f"{n}:{len(r)}" for n, r in self._relations.items())
        return f"NaryStore(k={self.arity}, |O|={len(self._objects)}, {rels})"

    # ------------------------------------------------------------------ #

    @classmethod
    def from_triplestore(cls, store: Triplestore) -> "NaryStore":
        """View a triplestore as the k = 3 case."""
        return cls(
            3,
            {name: store.relation(name) for name in store.relation_names},
            store.rho_map(),
            store.objects,
        )

    def to_triplestore(self) -> Triplestore:
        """Only for k = 3."""
        if self.arity != 3:
            raise TriplestoreError(f"cannot view arity-{self.arity} store as triples")
        return Triplestore(
            {name: self.relation(name) for name in self.relation_names},
            self._rho,
            self._objects,
        )
