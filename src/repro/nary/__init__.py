"""nTA — the n-tuple generalisation of TriAL (Section 7 future work)."""

from repro.nary.algebra import (
    NaryEngine,
    NCond,
    NDiff,
    NExpr,
    NJoin,
    NRel,
    NSelect,
    NStar,
    NUnion,
    composition,
    const,
    transitive_closure,
)
from repro.nary.model import NaryStore

__all__ = [
    "NCond",
    "NDiff",
    "NExpr",
    "NJoin",
    "NRel",
    "NSelect",
    "NStar",
    "NUnion",
    "NaryEngine",
    "NaryStore",
    "composition",
    "const",
    "transitive_closure",
]
