"""The n-tuple algebra nTA — TriAL with 3 replaced by a fixed arity k.

Joins take two k-ary relations, expose positions ``0..k-1`` (left) and
``k..2k-1`` (right) to the conditions, and keep exactly k of them, so
the algebra is closed over k-ary relations.  Kleene closures come in
the same left/right flavours.  For k = 2 the composition join
``out=(0, 3), cond 1=0'`` *is* relational composition and the right
star is ordinary transitive closure — the paper's observation that the
n = 2 case collapses to (the join fragment of) relation algebra; tests
verify both this and that k = 3 coincides with the TriAL engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import AlgebraError
from repro.nary.model import NaryStore


# --------------------------------------------------------------------- #
# Conditions (positions 0..2k-1; constants allowed)
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class NCond:
    """(in)equality between positions/constants, on objects or ρ-values."""

    left: Any   # int position or ("const", value)
    right: Any
    op: str = "="
    on_data: bool = False

    def __post_init__(self) -> None:
        if self.op not in ("=", "!="):
            raise AlgebraError(f"bad operator {self.op!r}")

    def evaluate(self, left_row: tuple, right_row: tuple | None, rho, k: int) -> bool:
        def resolve(term):
            if isinstance(term, tuple) and term and term[0] == "const":
                return term[1]
            if not isinstance(term, int):
                raise AlgebraError(f"bad condition term {term!r}")
            if term < k:
                obj = left_row[term]
            else:
                if right_row is None:
                    raise AlgebraError("condition references the right operand")
                obj = right_row[term - k]
            return rho(obj) if self.on_data else obj

        lv, rv = resolve(self.left), resolve(self.right)
        return (lv == rv) if self.op == "=" else (lv != rv)


def const(value: Any) -> tuple:
    """A constant condition term."""
    return ("const", value)


# --------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------- #

class NExpr:
    """Base class; every expression carries its arity k."""

    __slots__ = ()
    arity: int

    def walk(self) -> Iterator["NExpr"]:
        yield self
        for child in getattr(self, "children", lambda: ())():
            yield from child.walk()


def _check_same_arity(*exprs: NExpr) -> int:
    arities = {e.arity for e in exprs}
    if len(arities) != 1:
        raise AlgebraError(f"mixed arities {sorted(arities)} in one expression")
    return arities.pop()


@dataclass(frozen=True, repr=False)
class NRel(NExpr):
    name: str
    arity: int

    def children(self) -> tuple:
        return ()

    def __repr__(self) -> str:
        return f"{self.name}/{self.arity}"


@dataclass(frozen=True, repr=False)
class NSelect(NExpr):
    expr: NExpr
    conditions: tuple[NCond, ...]

    @property
    def arity(self) -> int:  # type: ignore[override]
        return self.expr.arity

    def children(self) -> tuple:
        return (self.expr,)

    def __repr__(self) -> str:
        return f"select[{self.conditions}]({self.expr!r})"


@dataclass(frozen=True, repr=False)
class NUnion(NExpr):
    left: NExpr
    right: NExpr

    @property
    def arity(self) -> int:  # type: ignore[override]
        return _check_same_arity(self.left, self.right)

    def children(self) -> tuple:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} | {self.right!r})"


@dataclass(frozen=True, repr=False)
class NDiff(NExpr):
    left: NExpr
    right: NExpr

    @property
    def arity(self) -> int:  # type: ignore[override]
        return _check_same_arity(self.left, self.right)

    def children(self) -> tuple:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} - {self.right!r})"


@dataclass(frozen=True, repr=False)
class NJoin(NExpr):
    left: NExpr
    right: NExpr
    out: tuple[int, ...]
    conditions: tuple[NCond, ...] = ()

    def __post_init__(self) -> None:
        k = _check_same_arity(self.left, self.right)
        if len(self.out) != k or not all(0 <= i < 2 * k for i in self.out):
            raise AlgebraError(
                f"out spec must keep {k} positions from 0..{2 * k - 1}, got {self.out}"
            )

    @property
    def arity(self) -> int:  # type: ignore[override]
        return self.left.arity

    def children(self) -> tuple:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"join[{self.out}; {self.conditions}]({self.left!r}, {self.right!r})"


@dataclass(frozen=True, repr=False)
class NStar(NExpr):
    expr: NExpr
    out: tuple[int, ...]
    conditions: tuple[NCond, ...] = ()
    side: str = "right"

    def __post_init__(self) -> None:
        k = self.expr.arity
        if len(self.out) != k or not all(0 <= i < 2 * k for i in self.out):
            raise AlgebraError(f"bad star out spec {self.out} for arity {k}")
        if self.side not in ("right", "left"):
            raise AlgebraError(f"bad star side {self.side!r}")

    @property
    def arity(self) -> int:  # type: ignore[override]
        return self.expr.arity

    def children(self) -> tuple:
        return (self.expr,)

    def __repr__(self) -> str:
        name = "star" if self.side == "right" else "lstar"
        return f"{name}[{self.out}; {self.conditions}]({self.expr!r})"


# --------------------------------------------------------------------- #
# Evaluation (hash joins + semi-naive stars, arity-generic)
# --------------------------------------------------------------------- #

class NaryEngine:
    """Evaluates nTA expressions over :class:`NaryStore`."""

    def evaluate(self, expr: NExpr, store: NaryStore) -> frozenset[tuple]:
        if expr.arity != store.arity:
            raise AlgebraError(
                f"expression arity {expr.arity} != store arity {store.arity}"
            )
        return self._eval(expr, store, {})

    def _eval(self, expr: NExpr, store: NaryStore, memo: dict) -> frozenset[tuple]:
        cached = memo.get(expr)
        if cached is not None:
            return cached
        result = self._dispatch(expr, store, memo)
        memo[expr] = result
        return result

    def _dispatch(self, expr: NExpr, store: NaryStore, memo: dict) -> frozenset[tuple]:
        if isinstance(expr, NRel):
            return store.relation(expr.name)
        if isinstance(expr, NSelect):
            rows = self._eval(expr.expr, store, memo)
            k = store.arity
            return frozenset(
                r
                for r in rows
                if all(c.evaluate(r, None, store.rho, k) for c in expr.conditions)
            )
        if isinstance(expr, NUnion):
            return self._eval(expr.left, store, memo) | self._eval(expr.right, store, memo)
        if isinstance(expr, NDiff):
            return self._eval(expr.left, store, memo) - self._eval(expr.right, store, memo)
        if isinstance(expr, NJoin):
            return frozenset(
                self._join(
                    self._eval(expr.left, store, memo),
                    self._eval(expr.right, store, memo),
                    expr.out,
                    expr.conditions,
                    store,
                )
            )
        if isinstance(expr, NStar):
            base = self._eval(expr.expr, store, memo)
            return frozenset(self._star(base, expr, store))
        raise AlgebraError(f"unknown nTA node {type(expr).__name__}")

    def _join(
        self,
        left: frozenset[tuple] | set,
        right: frozenset[tuple] | set,
        out: tuple[int, ...],
        conditions: tuple[NCond, ...],
        store: NaryStore,
    ) -> set[tuple]:
        k = store.arity
        rho = store.rho
        cross_eq: list[NCond] = []
        other: list[NCond] = []
        for cond in conditions:
            sides = {
                t >= k
                for t in (cond.left, cond.right)
                if isinstance(t, int)
            }
            if cond.op == "=" and sides == {False, True}:
                if isinstance(cond.left, int) and cond.left >= k:
                    cond = NCond(cond.right, cond.left, cond.op, cond.on_data)
                cross_eq.append(cond)
            else:
                other.append(cond)

        def key_left(row: tuple):
            return tuple(
                rho(row[c.left]) if c.on_data else row[c.left] for c in cross_eq
            )

        def key_right(row: tuple):
            return tuple(
                rho(row[c.right - k]) if c.on_data else row[c.right - k]
                for c in cross_eq
            )

        index: dict = {}
        for row in right:
            index.setdefault(key_right(row), []).append(row)
        result: set[tuple] = set()
        for lrow in left:
            for rrow in index.get(key_left(lrow), ()):
                if all(c.evaluate(lrow, rrow, rho, k) for c in other):
                    result.add(
                        tuple(
                            lrow[i] if i < k else rrow[i - k] for i in out
                        )
                    )
        return result

    def _star(self, base: frozenset[tuple], expr: NStar, store: NaryStore) -> set[tuple]:
        acc: set[tuple] = set(base)
        frontier: set[tuple] = set(base)
        while frontier:
            if expr.side == "right":
                produced = self._join(frontier, base, expr.out, expr.conditions, store)
            else:
                produced = self._join(base, frontier, expr.out, expr.conditions, store)
            frontier = produced - acc
            acc |= frontier
        return acc


# --------------------------------------------------------------------- #
# The k = 2 view: relation algebra's composition and closure
# --------------------------------------------------------------------- #

def composition(left: NExpr, right: NExpr) -> NJoin:
    """Binary relational composition: pairs (x, y) with (x,z), (z,y)."""
    if left.arity != 2:
        raise AlgebraError("composition is the k = 2 join")
    return NJoin(left, right, (0, 3), (NCond(1, 2),))


def transitive_closure(expr: NExpr) -> NStar:
    """The k = 2 right star of composition — ordinary transitive closure."""
    if expr.arity != 2:
        raise AlgebraError("transitive_closure is the k = 2 star")
    return NStar(expr, (0, 3), (NCond(1, 2),), "right")
