"""Variable-count minimisation for FO formulas.

Two semantics-preserving transformations that together realise the
variable-saving tricks of the paper's Lemma 1 (TriAL= ⊆ FO⁴):

* :func:`miniscope` — push existential quantifiers into the smallest
  subformula mentioning the variable (∃ distributes over ∨ and over the
  conjuncts that do not use the variable);
* :func:`reuse_names` — α-rename bound variables greedily to the first
  pool name not visible in their scope, so disjoint scopes share names.

``minimize_variables`` composes them.  Note on miniscoping: dropping a
quantifier over a variable the body never mentions is an equivalence on
*nonempty* active domains (on the empty domain ``∃x ⊤`` is false); the
paper works with nonempty databases throughout, and so do we.
"""

from __future__ import annotations

import itertools

from repro.logic.fo import (
    And,
    Eq,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    RelAtom,
    Sim,
    Var,
    and_all,
)

__all__ = ["miniscope", "reuse_names", "minimize_variables"]

#: Default renaming pool: v1, v2, … generated on demand.
def _pool_names():
    for i in itertools.count(1):
        yield f"v{i}"


def _conjuncts(formula: Formula) -> list[Formula]:
    if isinstance(formula, And):
        return _conjuncts(formula.left) + _conjuncts(formula.right)
    return [formula]


def miniscope(formula: Formula) -> Formula:
    """Push ∃ inward; leaves ∀ and ¬ untouched (soundly conservative)."""
    if isinstance(formula, Exists):
        body = miniscope(formula.formula)
        v = formula.var
        if v not in body.free_vars():
            return body  # nonempty-domain equivalence, see module docs
        if isinstance(body, Or):
            return Or(
                miniscope(Exists(v, body.left)), miniscope(Exists(v, body.right))
            )
        if isinstance(body, And):
            with_v = [c for c in _conjuncts(body) if v in c.free_vars()]
            without = [c for c in _conjuncts(body) if v not in c.free_vars()]
            if without:
                inner = Exists(v, and_all(with_v))
                if len(with_v) > 1:
                    inner = miniscope(inner)
                return and_all(without + [inner])
        return Exists(v, body)
    if isinstance(formula, Forall):
        return Forall(formula.var, miniscope(formula.formula))
    if isinstance(formula, Not):
        return Not(miniscope(formula.formula))
    if isinstance(formula, And):
        return And(miniscope(formula.left), miniscope(formula.right))
    if isinstance(formula, Or):
        return Or(miniscope(formula.left), miniscope(formula.right))
    return formula


def _uniquify(formula: Formula, counter: itertools.count) -> Formula:
    """Rename every bound variable to a fresh unique name."""
    def go(f: Formula, env: dict[str, str]) -> Formula:
        if isinstance(f, RelAtom):
            return RelAtom(
                f.name,
                tuple(
                    Var(env.get(t.name, t.name)) if isinstance(t, Var) else t
                    for t in f.terms
                ),
            )
        if isinstance(f, (Eq, Sim)):
            cls = type(f)
            def sub(t):
                return Var(env.get(t.name, t.name)) if isinstance(t, Var) else t
            return cls(sub(f.left), sub(f.right))
        if isinstance(f, Not):
            return Not(go(f.formula, env))
        if isinstance(f, And):
            return And(go(f.left, env), go(f.right, env))
        if isinstance(f, Or):
            return Or(go(f.left, env), go(f.right, env))
        if isinstance(f, (Exists, Forall)):
            fresh = f"_u{next(counter)}"
            inner_env = dict(env)
            inner_env[f.var] = fresh
            return type(f)(fresh, go(f.formula, inner_env))
        # Trcl and friends: leave untouched (minimisation targets plain FO).
        return f

    return go(formula, {})


def reuse_names(formula: Formula, pool: tuple[str, ...] = ()) -> Formula:
    """Greedily rename bound variables to the first name not in scope.

    Free variables keep their names; every binder takes the first pool
    name not visible among the (renamed) free names of its body.
    """
    counter = itertools.count()
    unique = _uniquify(formula, counter)
    names = list(pool)
    backup = _pool_names()

    def pick(forbidden: set[str]) -> str:
        for name in names:
            if name not in forbidden:
                return name
        while True:
            name = next(backup)
            if name not in forbidden and name not in names:
                names.append(name)
                return name

    def go(f: Formula, env: dict[str, str]) -> Formula:
        if isinstance(f, RelAtom):
            return RelAtom(
                f.name,
                tuple(
                    Var(env.get(t.name, t.name)) if isinstance(t, Var) else t
                    for t in f.terms
                ),
            )
        if isinstance(f, (Eq, Sim)):
            cls = type(f)
            def sub(t):
                return Var(env.get(t.name, t.name)) if isinstance(t, Var) else t
            return cls(sub(f.left), sub(f.right))
        if isinstance(f, Not):
            return Not(go(f.formula, env))
        if isinstance(f, And):
            return And(go(f.left, env), go(f.right, env))
        if isinstance(f, Or):
            return Or(go(f.left, env), go(f.right, env))
        if isinstance(f, (Exists, Forall)):
            visible = {
                env.get(n, n) for n in f.formula.free_vars() if n != f.var
            }
            chosen = pick(visible)
            inner_env = dict(env)
            inner_env[f.var] = chosen
            return type(f)(chosen, go(f.formula, inner_env))
        return f

    return go(unique, {})


def minimize_variables(
    formula: Formula, pool: tuple[str, ...] = ()
) -> Formula:
    """Miniscope, then reuse names.  Semantics preserved on nonempty
    domains (property-tested); the variable count typically shrinks to
    the interference width of the formula — e.g. the FO⁶ output of
    ``trial_to_fo`` on equality-folded TriAL= joins lands in FO⁴,
    matching the paper's Theorem 5 upper bound.
    """
    return reuse_names(miniscope(formula), pool)
