"""FO and transitive-closure logic over triplestore vocabularies (§4, §6.1)."""

from repro.logic.fo import (
    And,
    ConstT,
    Eq,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    RelAtom,
    Sim,
    Var,
    active_domain,
    and_all,
    answers,
    exists,
    forall,
    or_all,
    rename,
    satisfies,
)
from repro.logic.games import duplicator_wins, fo_k_equivalent
from repro.logic.parser import parse_formula
from repro.logic.trcl import Trcl, answers_trcl, satisfies_trcl

__all__ = [
    "And",
    "ConstT",
    "Eq",
    "Exists",
    "Forall",
    "Formula",
    "Not",
    "Or",
    "RelAtom",
    "Sim",
    "Trcl",
    "Var",
    "active_domain",
    "and_all",
    "answers",
    "answers_trcl",
    "exists",
    "forall",
    "or_all",
    "parse_formula",
    "duplicator_wins",
    "fo_k_equivalent",
    "rename",
    "satisfies",
    "satisfies_trcl",
]
