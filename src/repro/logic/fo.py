"""First-order logic over the relational representation of triplestores.

Section 4 of the paper fixes the vocabulary: one ternary symbol per
triplestore relation plus the binary symbol ``∼`` holding pairs of
objects with equal data values.  Section 6.1 compares TriAL with the
bounded-variable fragments FOᵏ of this logic.

Two evaluators are provided:

* :func:`satisfies` — the textbook recursive truth definition under an
  assignment (slow, obviously correct);
* :func:`answers` — bottom-up evaluation computing, for every
  subformula, the set of satisfying assignments over its free variables
  (the standard polynomial-time algorithm; this is what makes the
  Theorem 4 proof structures, with |O| = 24, tractable).

Both use **active-domain semantics**, as the paper assumes throughout
("we loose no generality in assuming active domain semantics").  The
domain is the set of objects occurring in some triple of the store.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.errors import LogicError
from repro.triplestore.model import Triplestore


# --------------------------------------------------------------------- #
# Terms
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class Var:
    """A first-order variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConstT:
    """An object constant."""

    value: Any

    def __repr__(self) -> str:
        return f"!{self.value!r}"


TermT = Var | ConstT


def _as_term(t: "TermT | str") -> TermT:
    return Var(t) if isinstance(t, str) else t


# --------------------------------------------------------------------- #
# Formulas
# --------------------------------------------------------------------- #

class Formula:
    """Base class of FO formulas over ⟨E₁,…,Eₙ, ∼⟩."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "And":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    def children(self) -> tuple["Formula", ...]:
        return ()

    def walk(self) -> Iterator["Formula"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def free_vars(self) -> frozenset[str]:
        raise NotImplementedError

    def all_vars(self) -> frozenset[str]:
        """Every variable name occurring (free or bound) — the FOᵏ measure.

        FOᵏ counts *names*: a formula is in FOᵏ when it can be written
        with k distinct variables, reuse allowed.
        """
        out: set[str] = set()
        for node in self.walk():
            if isinstance(node, RelAtom):
                out.update(t.name for t in node.terms if isinstance(t, Var))
            elif isinstance(node, (Eq, Sim)):
                for t in (node.left, node.right):
                    if isinstance(t, Var):
                        out.add(t.name)
            elif isinstance(node, (Exists, Forall)):
                out.add(node.var)
            own = getattr(node, "own_var_names", None)
            if own is not None:
                out.update(own())
        return frozenset(out)

    def num_variables(self) -> int:
        """Number of distinct variable names (membership in FOᵏ)."""
        return len(self.all_vars())


@dataclass(frozen=True, repr=False)
class RelAtom(Formula):
    """``E(t1, t2, t3)`` — a ternary relation atom."""

    name: str
    terms: tuple[TermT, TermT, TermT]

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(_as_term(t) for t in self.terms))
        if len(self.terms) != 3:
            raise LogicError("relation atoms are ternary in this vocabulary")

    def free_vars(self) -> frozenset[str]:
        return frozenset(t.name for t in self.terms if isinstance(t, Var))

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.terms))})"


@dataclass(frozen=True, repr=False)
class Eq(Formula):
    """``t1 = t2`` — object equality."""

    left: TermT
    right: TermT

    def __post_init__(self) -> None:
        object.__setattr__(self, "left", _as_term(self.left))
        object.__setattr__(self, "right", _as_term(self.right))

    def free_vars(self) -> frozenset[str]:
        return frozenset(t.name for t in (self.left, self.right) if isinstance(t, Var))

    def __repr__(self) -> str:
        return f"{self.left!r} = {self.right!r}"


@dataclass(frozen=True, repr=False)
class Sim(Formula):
    """``∼(t1, t2)`` — same data value (ρ(t1) = ρ(t2))."""

    left: TermT
    right: TermT

    def __post_init__(self) -> None:
        object.__setattr__(self, "left", _as_term(self.left))
        object.__setattr__(self, "right", _as_term(self.right))

    def free_vars(self) -> frozenset[str]:
        return frozenset(t.name for t in (self.left, self.right) if isinstance(t, Var))

    def __repr__(self) -> str:
        return f"{self.left!r} ~ {self.right!r}"


@dataclass(frozen=True, repr=False)
class Not(Formula):
    formula: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.formula,)

    def free_vars(self) -> frozenset[str]:
        return self.formula.free_vars()

    def __repr__(self) -> str:
        return f"¬({self.formula!r})"


@dataclass(frozen=True, repr=False)
class And(Formula):
    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def free_vars(self) -> frozenset[str]:
        return self.left.free_vars() | self.right.free_vars()

    def __repr__(self) -> str:
        return f"({self.left!r} ∧ {self.right!r})"


@dataclass(frozen=True, repr=False)
class Or(Formula):
    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def free_vars(self) -> frozenset[str]:
        return self.left.free_vars() | self.right.free_vars()

    def __repr__(self) -> str:
        return f"({self.left!r} ∨ {self.right!r})"


@dataclass(frozen=True, repr=False)
class Exists(Formula):
    var: str
    formula: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.formula,)

    def free_vars(self) -> frozenset[str]:
        return self.formula.free_vars() - {self.var}

    def __repr__(self) -> str:
        return f"∃{self.var}({self.formula!r})"


@dataclass(frozen=True, repr=False)
class Forall(Formula):
    var: str
    formula: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.formula,)

    def free_vars(self) -> frozenset[str]:
        return self.formula.free_vars() - {self.var}

    def __repr__(self) -> str:
        return f"∀{self.var}({self.formula!r})"


def exists(*vars_then_formula: Any) -> Formula:
    """``exists("x", "y", phi)`` — nested existential quantifiers."""
    *names, formula = vars_then_formula
    for name in reversed(names):
        formula = Exists(name, formula)
    return formula


def forall(*vars_then_formula: Any) -> Formula:
    """``forall("x", "y", phi)`` — nested universal quantifiers."""
    *names, formula = vars_then_formula
    for name in reversed(names):
        formula = Forall(name, formula)
    return formula


def and_all(formulas: list[Formula]) -> Formula:
    """Conjunction of a nonempty list."""
    if not formulas:
        raise LogicError("and_all needs at least one conjunct")
    acc = formulas[0]
    for f in formulas[1:]:
        acc = And(acc, f)
    return acc


def or_all(formulas: list[Formula]) -> Formula:
    """Disjunction of a nonempty list."""
    if not formulas:
        raise LogicError("or_all needs at least one disjunct")
    acc = formulas[0]
    for f in formulas[1:]:
        acc = Or(acc, f)
    return acc


# --------------------------------------------------------------------- #
# Capture-avoiding renaming (used by the TriAL → FO⁶ translation)
# --------------------------------------------------------------------- #

def rename(formula: Formula, mapping: Mapping[str, str], pool: tuple[str, ...]) -> Formula:
    """Substitute free variables per ``mapping``, avoiding capture.

    Bound variables that would capture an image are renamed to a fresh
    name drawn from ``pool`` first (falling back to generated names).
    The TriAL → FO⁶ translation passes the six-name pool, keeping the
    result inside FO⁶.
    """
    mapping = {k: v for k, v in mapping.items() if k != v}

    def go(f: Formula, m: Mapping[str, str]) -> Formula:
        if isinstance(f, RelAtom):
            return RelAtom(
                f.name,
                tuple(
                    Var(m.get(t.name, t.name)) if isinstance(t, Var) else t
                    for t in f.terms
                ),
            )
        if isinstance(f, (Eq, Sim)):
            cls = type(f)
            def sub(t: TermT) -> TermT:
                return Var(m.get(t.name, t.name)) if isinstance(t, Var) else t
            return cls(sub(f.left), sub(f.right))
        if isinstance(f, Not):
            return Not(go(f.formula, m))
        if isinstance(f, And):
            return And(go(f.left, m), go(f.right, m))
        if isinstance(f, Or):
            return Or(go(f.left, m), go(f.right, m))
        if isinstance(f, (Exists, Forall)):
            cls = type(f)
            inner_map = {k: v for k, v in m.items() if k != f.var}
            body_free = f.formula.free_vars() - {f.var}
            relevant = {k: v for k, v in inner_map.items() if k in body_free}
            # Free names of the body after substitution.
            final_free = (body_free - set(relevant)) | set(relevant.values())
            if f.var in final_free:
                # The bound name would capture an incoming name: pick a
                # fresh one and substitute everything in a single pass.
                fresh = next(
                    (name for name in pool if name not in final_free), None
                )
                if fresh is None:  # pool exhausted; generate a new name
                    i = 0
                    while f"_r{i}" in final_free:
                        i += 1
                    fresh = f"_r{i}"
                relevant[f.var] = fresh
                return cls(fresh, go(f.formula, relevant))
            return cls(f.var, go(f.formula, relevant))
        raise LogicError(f"unknown formula node {type(f).__name__}")

    return go(formula, dict(mapping))


# --------------------------------------------------------------------- #
# Evaluation
# --------------------------------------------------------------------- #

def active_domain(store: Triplestore) -> frozenset:
    """Objects occurring in some triple — the evaluation domain."""
    domain: set = set()
    for triple in store.all_triples():
        domain.update(triple)
    return frozenset(domain)


def _resolve(term: TermT, assignment: Mapping[str, Any]) -> Any:
    if isinstance(term, ConstT):
        return term.value
    try:
        return assignment[term.name]
    except KeyError:
        raise LogicError(f"unbound variable {term.name}") from None


def satisfies(
    formula: Formula, store: Triplestore, assignment: Mapping[str, Any] | None = None
) -> bool:
    """Recursive truth evaluation under ``assignment`` (active domain)."""
    asg = dict(assignment or {})
    domain = active_domain(store)

    def go(f: Formula, a: dict) -> bool:
        if isinstance(f, RelAtom):
            triple = tuple(_resolve(t, a) for t in f.terms)
            return triple in store.relation(f.name)
        if isinstance(f, Eq):
            return _resolve(f.left, a) == _resolve(f.right, a)
        if isinstance(f, Sim):
            return store.rho(_resolve(f.left, a)) == store.rho(_resolve(f.right, a))
        if isinstance(f, Not):
            return not go(f.formula, a)
        if isinstance(f, And):
            return go(f.left, a) and go(f.right, a)
        if isinstance(f, Or):
            return go(f.left, a) or go(f.right, a)
        if isinstance(f, Exists):
            saved = a.get(f.var, _MISSING)
            for obj in domain:
                a[f.var] = obj
                if go(f.formula, a):
                    _restore(a, f.var, saved)
                    return True
            _restore(a, f.var, saved)
            return False
        if isinstance(f, Forall):
            saved = a.get(f.var, _MISSING)
            for obj in domain:
                a[f.var] = obj
                if not go(f.formula, a):
                    _restore(a, f.var, saved)
                    return False
            _restore(a, f.var, saved)
            return True
        raise LogicError(f"unknown formula node {type(f).__name__}")

    return go(formula, asg)


_MISSING = object()


def _restore(a: dict, var: str, saved: Any) -> None:
    if saved is _MISSING:
        a.pop(var, None)
    else:
        a[var] = saved


class _Relation:
    """A set of assignments over a fixed, sorted variable tuple."""

    __slots__ = ("vars", "rows")

    def __init__(self, vars_: tuple[str, ...], rows: set[tuple]) -> None:
        self.vars = vars_
        self.rows = rows

    def project(self, keep: tuple[str, ...]) -> "_Relation":
        idx = [self.vars.index(v) for v in keep]
        return _Relation(keep, {tuple(r[i] for i in idx) for r in self.rows})


def _join_relations(a: _Relation, b: _Relation) -> _Relation:
    shared = tuple(v for v in a.vars if v in b.vars)
    out_vars = a.vars + tuple(v for v in b.vars if v not in a.vars)
    a_shared = [a.vars.index(v) for v in shared]
    b_shared = [b.vars.index(v) for v in shared]
    b_extra = [i for i, v in enumerate(b.vars) if v not in a.vars]
    index: dict[tuple, list[tuple]] = {}
    for row in b.rows:
        index.setdefault(tuple(row[i] for i in b_shared), []).append(row)
    rows: set[tuple] = set()
    for row in a.rows:
        for match in index.get(tuple(row[i] for i in a_shared), ()):
            rows.add(row + tuple(match[i] for i in b_extra))
    return _Relation(out_vars, rows)


def answers(
    formula: Formula,
    store: Triplestore,
    free_order: tuple[str, ...] | None = None,
) -> frozenset[tuple]:
    """All satisfying assignments, as tuples ordered by ``free_order``.

    For a sentence the result is ``{()}`` (true) or ``frozenset()``
    (false).  Bottom-up evaluation: each subformula becomes the relation
    of its satisfying assignments; negation complements against
    ``domain^k`` (active-domain semantics).
    """
    domain = active_domain(store)
    free = formula.free_vars()
    if free_order is None:
        free_order = tuple(sorted(free))
    if set(free_order) != free:
        raise LogicError(f"free_order {free_order} != free variables {sorted(free)}")

    def full(vars_: tuple[str, ...]) -> _Relation:
        return _Relation(vars_, set(itertools.product(domain, repeat=len(vars_))))

    def go(f: Formula) -> _Relation:
        if isinstance(f, RelAtom):
            return _atom_relation(f, store.relation(f.name))
        if isinstance(f, Eq):
            return _binary_relation(
                f, {(o, o) for o in domain}, domain
            )
        if isinstance(f, Sim):
            by_value: dict[Any, list] = {}
            for o in domain:
                by_value.setdefault(store.rho(o), []).append(o)
            pairs = {
                (o1, o2)
                for group in by_value.values()
                for o1 in group
                for o2 in group
            }
            return _binary_relation(f, pairs, domain)
        if isinstance(f, Not):
            sub = go(f.formula)
            vars_ = tuple(sorted(f.free_vars()))
            sub = _expand(sub, vars_, domain)
            return _Relation(
                vars_,
                set(itertools.product(domain, repeat=len(vars_))) - sub.rows,
            )
        if isinstance(f, And):
            return _join_relations(go(f.left), go(f.right))
        if isinstance(f, Or):
            vars_ = tuple(sorted(f.free_vars()))
            left = _expand(go(f.left), vars_, domain)
            right = _expand(go(f.right), vars_, domain)
            return _Relation(vars_, left.rows | right.rows)
        if isinstance(f, Exists):
            sub = go(f.formula)
            if f.var not in sub.vars:
                # var unconstrained: formula truth doesn't depend on it,
                # but ∃ over a nonempty domain preserves the rows.
                return sub if domain else _Relation(sub.vars, set())
            keep = tuple(v for v in sub.vars if v != f.var)
            return sub.project(keep)
        if isinstance(f, Forall):
            return go(Not(Exists(f.var, Not(f.formula))))
        raise LogicError(f"unknown formula node {type(f).__name__}")

    def _atom_relation(f: RelAtom, triples: frozenset) -> _Relation:
        var_positions: dict[str, list[int]] = {}
        for i, t in enumerate(f.terms):
            if isinstance(t, Var):
                var_positions.setdefault(t.name, []).append(i)
        vars_ = tuple(sorted(var_positions))
        rows: set[tuple] = set()
        for triple in triples:
            ok = True
            for i, t in enumerate(f.terms):
                if isinstance(t, ConstT) and triple[i] != t.value:
                    ok = False
                    break
            if not ok:
                continue
            row = []
            for v in vars_:
                positions = var_positions[v]
                vals = {triple[i] for i in positions}
                if len(vals) != 1:
                    row = None
                    break
                row.append(triple[positions[0]])
            if row is not None:
                rows.add(tuple(row))
        return _Relation(vars_, rows)

    def _binary_relation(f: Eq | Sim, pairs: set[tuple], dom: frozenset) -> _Relation:
        lt, rt = f.left, f.right
        if isinstance(lt, Var) and isinstance(rt, Var):
            if lt.name == rt.name:
                return _Relation(
                    (lt.name,), {(a,) for (a, b) in pairs if a == b}
                )
            vars_ = tuple(sorted((lt.name, rt.name)))
            if vars_ == (lt.name, rt.name):
                return _Relation(vars_, set(pairs))
            return _Relation(vars_, {(b, a) for (a, b) in pairs})
        if isinstance(lt, Var):
            return _Relation(
                (lt.name,), {(a,) for (a, b) in pairs if b == rt.value}
            )
        if isinstance(rt, Var):
            return _Relation(
                (rt.name,), {(b,) for (a, b) in pairs if a == lt.value}
            )
        truth = (lt.value, rt.value) in pairs
        return _Relation((), {()} if truth else set())

    def _expand(rel: _Relation, vars_: tuple[str, ...], dom: frozenset) -> _Relation:
        missing = tuple(v for v in vars_ if v not in rel.vars)
        if missing:
            rel = _join_relations(rel, full(missing))
        return rel.project(vars_)

    result = _expand(go(formula), free_order, domain)
    return frozenset(result.rows)
