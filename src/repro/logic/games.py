"""k-pebble games — the proofs' indistinguishability arguments, executable.

The separation proofs of Theorems 4–6 rest on pebble games: the
duplicator wins the k-pebble game on structures A and B iff A and B
agree on all of Lᵏ∞ω (hence on all FOᵏ sentences).  This module decides
the winner by the standard greatest-fixpoint computation over game
positions:

* a *position* is a pair of partial assignments (ā, b̄) of the ≤ k
  pebbles, one per structure;
* a position is a *partial isomorphism* when the map aᵢ ↦ bᵢ is
  well-defined, injective, and preserves every relation (all ternary
  relations plus ∼) in both directions;
* start from all partial-isomorphism positions and repeatedly delete
  positions where some spoiler move (pick a pebble index and a new
  element in either structure) has no duplicator response leading to a
  surviving position.  The duplicator wins from the positions that
  survive.

The structures here are triplestores over ⟨E₁,…,Eₙ, ∼⟩ exactly as in
Section 6.1.  Complexity is O((|A|·|B|)ᵏ · moves) — fine for the
paper's witnesses T₃/T₄ (k = 3) and similar small structures.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.errors import LogicError
from repro.logic.fo import active_domain
from repro.triplestore.model import Triplestore

#: Placeholder for "pebble not on the board".
_OFF = None

Position = tuple[tuple[Any, ...], tuple[Any, ...]]


def _is_partial_isomorphism(
    a_store: Triplestore,
    b_store: Triplestore,
    a_pebbles: tuple,
    b_pebbles: tuple,
) -> bool:
    mapping: dict[Any, Any] = {}
    inverse: dict[Any, Any] = {}
    for a, b in zip(a_pebbles, b_pebbles):
        if (a is _OFF) != (b is _OFF):
            return False
        if a is _OFF:
            continue
        if mapping.get(a, b) != b or inverse.get(b, a) != a:
            return False
        mapping[a] = b
        inverse[b] = a

    placed_a = [a for a in a_pebbles if a is not _OFF]
    if not placed_a:
        return True

    # ∼ must be preserved both ways.
    for a1, a2 in itertools.product(placed_a, repeat=2):
        if (a_store.rho(a1) == a_store.rho(a2)) != (
            b_store.rho(mapping[a1]) == b_store.rho(mapping[a2])
        ):
            return False

    # Every ternary relation must be preserved both ways.
    names = set(a_store.relation_names) | set(b_store.relation_names)
    for name in names:
        rel_a = a_store.relation(name) if name in a_store.relation_names else frozenset()
        rel_b = b_store.relation(name) if name in b_store.relation_names else frozenset()
        for combo in itertools.product(placed_a, repeat=3):
            image = tuple(mapping[c] for c in combo)
            if (combo in rel_a) != (image in rel_b):
                return False
    return True


def duplicator_wins(
    a_store: Triplestore,
    b_store: Triplestore,
    k: int,
    max_positions: int = 2_000_000,
) -> bool:
    """Does the duplicator win the k-pebble game on (A, B)?

    True iff A and B are Lᵏ∞ω-equivalent (agree on every FOᵏ sentence).
    Raises :class:`LogicError` when the position space exceeds
    ``max_positions`` (the algorithm is exponential in k by nature).
    """
    if k < 1:
        raise LogicError("pebble games need k >= 1")
    dom_a = sorted(active_domain(a_store), key=repr)
    dom_b = sorted(active_domain(b_store), key=repr)
    n_positions = ((len(dom_a) + 1) * (len(dom_b) + 1)) ** k
    if n_positions > max_positions:
        raise LogicError(
            f"{n_positions} game positions exceed the limit {max_positions}; "
            "these structures are too large for the explicit fixpoint"
        )

    slots_a = [_OFF] + dom_a
    slots_b = [_OFF] + dom_b

    # All positions that are partial isomorphisms.
    alive: set[Position] = set()
    for a_pebbles in itertools.product(slots_a, repeat=k):
        for b_pebbles in itertools.product(slots_b, repeat=k):
            if _is_partial_isomorphism(a_store, b_store, a_pebbles, b_pebbles):
                alive.add((a_pebbles, b_pebbles))

    empty = ((_OFF,) * k, (_OFF,) * k)
    if empty not in alive:
        return False

    # Greatest fixpoint: delete positions with an unanswerable spoiler move.
    while True:
        doomed: set[Position] = set()
        for a_pebbles, b_pebbles in alive:
            if _has_unanswerable_move(
                a_pebbles, b_pebbles, dom_a, dom_b, alive
            ):
                doomed.add((a_pebbles, b_pebbles))
        if not doomed:
            break
        alive -= doomed
        if empty not in alive:
            return False
    return empty in alive


def _has_unanswerable_move(
    a_pebbles: tuple,
    b_pebbles: tuple,
    dom_a: list,
    dom_b: list,
    alive: set[Position],
) -> bool:
    k = len(a_pebbles)
    for i in range(k):
        # Spoiler plays pebble i in A; duplicator answers in B.
        for a_new in dom_a:
            next_a = a_pebbles[:i] + (a_new,) + a_pebbles[i + 1:]
            if not any(
                (next_a, b_pebbles[:i] + (b_new,) + b_pebbles[i + 1:]) in alive
                for b_new in dom_b
            ):
                return True
        # Spoiler plays pebble i in B; duplicator answers in A.
        for b_new in dom_b:
            next_b = b_pebbles[:i] + (b_new,) + b_pebbles[i + 1:]
            if not any(
                (a_pebbles[:i] + (a_new,) + a_pebbles[i + 1:], next_b) in alive
                for a_new in dom_a
            ):
                return True
    return False


def fo_k_equivalent(a_store: Triplestore, b_store: Triplestore, k: int) -> bool:
    """Alias with the logic-side name: A ≡ B on all FOᵏ sentences."""
    return duplicator_wins(a_store, b_store, k)
