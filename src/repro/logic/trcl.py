"""Transitive-closure logic (TrCl), Section 6.1.

TrCl extends FO with the operator ``[trcl_{x̄,ȳ} ϕ(x̄,ȳ,z̄)](t̄₁,t̄₂)``
where ``|x̄| = |ȳ| = n``.  Fixing values for ``z̄``, the formula builds a
graph over n-tuples of the domain with an edge ``ū₁ → ū₂`` whenever
``ϕ(ū₁,ū₂,z̄)`` holds, and asserts that the value of ``t̄₂`` is reachable
from the value of ``t̄₁``.

Reachability is taken as *at least one step* (the transitive closure,
not its reflexive version): the paper's Theorem 6 translation maps a
star-free first level to ``ψ_e(x',y',z')`` and everything longer to the
trcl construct, and its TrCl³ → TriAL* direction produces the ≥1-step
closure, so this convention is the one under which the paper's
translations are exact.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import LogicError
from repro.logic.fo import (
    Formula,
    TermT,
    Var,
    _resolve,
    active_domain,
    answers,
    satisfies,
)
from repro.triplestore.model import Triplestore


@dataclass(frozen=True, repr=False)
class Trcl(Formula):
    """``[trcl_{xs,ys} formula](t1s, t2s)``.

    ``xs``/``ys`` are the closed-over variable names (equal length);
    ``t1s``/``t2s`` the argument terms.  Remaining free variables of
    ``formula`` are the parameters ``z̄``.
    """

    xs: tuple[str, ...]
    ys: tuple[str, ...]
    formula: Formula
    t1s: tuple[TermT, ...]
    t2s: tuple[TermT, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "xs", tuple(self.xs))
        object.__setattr__(self, "ys", tuple(self.ys))
        object.__setattr__(
            self, "t1s", tuple(Var(t) if isinstance(t, str) else t for t in self.t1s)
        )
        object.__setattr__(
            self, "t2s", tuple(Var(t) if isinstance(t, str) else t for t in self.t2s)
        )
        n = len(self.xs)
        if len(self.ys) != n or len(self.t1s) != n or len(self.t2s) != n:
            raise LogicError("trcl arities must match: |xs| = |ys| = |t1s| = |t2s|")
        if set(self.xs) & set(self.ys):
            raise LogicError("trcl closed variables xs and ys must be disjoint")

    def children(self) -> tuple[Formula, ...]:
        return (self.formula,)

    def free_vars(self) -> frozenset[str]:
        params = self.formula.free_vars() - set(self.xs) - set(self.ys)
        args = {
            t.name for t in self.t1s + self.t2s if isinstance(t, Var)
        }
        return frozenset(params | args)

    def own_var_names(self) -> frozenset[str]:
        """Variable names this node itself introduces or mentions
        (picked up by :meth:`Formula.all_vars` during tree walks)."""
        args = {t.name for t in self.t1s + self.t2s if isinstance(t, Var)}
        return frozenset(set(self.xs) | set(self.ys) | args)

    def __repr__(self) -> str:
        xs = ",".join(self.xs)
        ys = ",".join(self.ys)
        t1 = ",".join(map(repr, self.t1s))
        t2 = ",".join(map(repr, self.t2s))
        return f"[trcl_{{{xs};{ys}}} {self.formula!r}]({t1}; {t2})"


def _transitive_reach(edges: set[tuple[Any, Any]], start: Any) -> set[Any]:
    """Nodes reachable from ``start`` in ≥ 1 step."""
    succ: dict[Any, set[Any]] = {}
    for u, v in edges:
        succ.setdefault(u, set()).add(v)
    seen: set[Any] = set()
    frontier = set(succ.get(start, ()))
    while frontier:
        seen |= frontier
        frontier = {
            w for v in frontier for w in succ.get(v, ()) if w not in seen
        }
    return seen


def satisfies_trcl(
    formula: Formula, store: Triplestore, assignment: Mapping[str, Any] | None = None
) -> bool:
    """Truth evaluation for formulas possibly containing :class:`Trcl`.

    Non-Trcl connectives defer to :func:`repro.logic.fo.satisfies` by a
    structural recursion that bottoms out in Trcl nodes, which are
    evaluated by explicit graph construction over ``domainⁿ``.
    """
    asg = dict(assignment or {})
    domain = sorted(active_domain(store), key=repr)

    def go(f: Formula, a: dict) -> bool:
        from repro.logic import fo

        if isinstance(f, Trcl):
            n = len(f.xs)
            params = f.formula.free_vars() - set(f.xs) - set(f.ys)
            missing = params - set(a)
            if missing:
                raise LogicError(f"unbound trcl parameters: {sorted(missing)}")
            edges: set[tuple[Any, Any]] = set()
            nested = any(isinstance(m, Trcl) for m in f.formula.walk())
            if not nested and not params:
                # Fast path: one bottom-up evaluation gives every edge.
                order = tuple(f.xs) + tuple(f.ys)
                for row in answers(f.formula, store, order):
                    edges.add((row[:n], row[n:]))
            else:
                for u in itertools.product(domain, repeat=n):
                    for v in itertools.product(domain, repeat=n):
                        local = dict(a)
                        local.update(zip(f.xs, u))
                        local.update(zip(f.ys, v))
                        if go(f.formula, local):
                            edges.add((u, v))
            start = tuple(_resolve(t, a) for t in f.t1s)
            goal = tuple(_resolve(t, a) for t in f.t2s)
            return goal in _transitive_reach(edges, start)
        if isinstance(f, fo.Not):
            return not go(f.formula, a)
        if isinstance(f, fo.And):
            return go(f.left, a) and go(f.right, a)
        if isinstance(f, fo.Or):
            return go(f.left, a) or go(f.right, a)
        if isinstance(f, fo.Exists):
            return any(go(f.formula, {**a, f.var: o}) for o in domain)
        if isinstance(f, fo.Forall):
            return all(go(f.formula, {**a, f.var: o}) for o in domain)
        return satisfies(f, store, a)

    return go(formula, asg)


def answers_trcl(
    formula: Formula,
    store: Triplestore,
    free_order: tuple[str, ...] | None = None,
) -> frozenset[tuple]:
    """All satisfying assignments of a TrCl formula.

    Trcl-free formulas go through the fast bottom-up evaluator; formulas
    with Trcl nodes enumerate assignments of the free variables and call
    :func:`satisfies_trcl` (fine for the small proof structures).
    """
    free = formula.free_vars()
    if free_order is None:
        free_order = tuple(sorted(free))
    if not any(isinstance(n, Trcl) for n in formula.walk()):
        return answers(formula, store, free_order)
    domain = sorted(active_domain(store), key=repr)
    rows = set()
    for combo in itertools.product(domain, repeat=len(free_order)):
        if satisfies_trcl(formula, store, dict(zip(free_order, combo))):
            rows.add(combo)
    return frozenset(rows)
