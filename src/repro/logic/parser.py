"""Text syntax for FO and TrCl formulas over ⟨E₁,…,Eₙ, ∼⟩.

Grammar (precedence: quantifiers/not > and > or)::

    formula  := "exists" vars "(" formula ")"
              | "forall" vars "(" formula ")"
              | "not" formula
              | disj
    disj     := conj ("or" conj)*
    conj     := atomish ("and" atomish)*
    atomish  := NAME "(" term "," term "," term ")"      # relation atom
              | "~" "(" term "," term ")"                # same data value
              | term "=" term
              | "[" "trcl" vars ";" vars formula "]" "(" terms ";" terms ")"
              | "(" formula ")"
              | "not" atomish
    term     := NAME | "'" const "'"
    vars     := NAME ("," NAME)*

Examples::

    parse_formula("exists y (E(x, y, z) and not x = z)")
    parse_formula("[trcl x; y exists w (E(x, w, y))](u; v)")
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.logic.fo import (
    And,
    ConstT,
    Eq,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    RelAtom,
    Sim,
    Var,
)
from repro.logic.trcl import Trcl

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")
_KEYWORDS = {"exists", "forall", "not", "and", "or", "trcl"}


class _FOParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # -- plumbing ---------------------------------------------------------

    def _skip(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self) -> str:
        self._skip()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _match(self, token: str) -> bool:
        self._skip()
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    def _expect(self, token: str) -> None:
        if not self._match(token):
            raise ParseError(f"expected {token!r}", self.text, self.pos)

    def _keyword(self, word: str) -> bool:
        self._skip()
        if self.text.startswith(word, self.pos):
            end = self.pos + len(word)
            after = self.text[end:end + 1]
            if not (after.isalnum() or after == "_"):
                self.pos = end
                return True
        return False

    def _peek_keyword(self, word: str) -> bool:
        saved = self.pos
        found = self._keyword(word)
        self.pos = saved
        return found

    def _name(self) -> str:
        self._skip()
        m = _NAME_RE.match(self.text, self.pos)
        if not m or m.group() in _KEYWORDS:
            raise ParseError("expected a name", self.text, self.pos)
        self.pos = m.end()
        return m.group()

    def _term(self):
        self._skip()
        if self._peek() == "'":
            end = self.text.find("'", self.pos + 1)
            if end < 0:
                raise ParseError("unterminated constant", self.text, self.pos)
            value = self.text[self.pos + 1:end]
            self.pos = end + 1
            return ConstT(value)
        return Var(self._name())

    def _var_list(self) -> tuple[str, ...]:
        names = [self._name()]
        while self._match(","):
            names.append(self._name())
        return tuple(names)

    def _term_list(self):
        terms = [self._term()]
        while self._match(","):
            terms.append(self._term())
        return tuple(terms)

    # -- grammar ------------------------------------------------------------

    def parse(self) -> Formula:
        formula = self.formula()
        self._skip()
        if self.pos != len(self.text):
            raise ParseError("trailing formula input", self.text, self.pos)
        return formula

    def formula(self) -> Formula:
        return self.disj()

    def disj(self) -> Formula:
        left = self.conj()
        while self._peek_keyword("or"):
            self._keyword("or")
            left = Or(left, self.conj())
        return left

    def conj(self) -> Formula:
        left = self.atomish()
        while self._peek_keyword("and"):
            self._keyword("and")
            left = And(left, self.atomish())
        return left

    def atomish(self) -> Formula:
        if self._keyword("not"):
            return Not(self.atomish())
        if self._keyword("exists"):
            return self._quantified(Exists)
        if self._keyword("forall"):
            return self._quantified(Forall)
        ch = self._peek()
        if ch == "~":
            self.pos += 1
            self._expect("(")
            left = self._term()
            self._expect(",")
            right = self._term()
            self._expect(")")
            return Sim(left, right)
        if ch == "[":
            return self._trcl()
        if ch == "(":
            self.pos += 1
            inner = self.formula()
            self._expect(")")
            return inner
        # Relation atom or equality.
        saved = self.pos
        first = self._term()
        if self._peek() == "(" and isinstance(first, Var):
            # It was a predicate name after all.
            self.pos = saved
            pred = self._name()
            self._expect("(")
            terms = self._term_list()
            self._expect(")")
            if len(terms) != 3:
                raise ParseError(
                    f"relation atoms are ternary; {pred} got {len(terms)} terms",
                    self.text,
                    self.pos,
                )
            return RelAtom(pred, terms)
        self._expect("=")
        right = self._term()
        return Eq(first, right)

    def _quantified(self, cls) -> Formula:
        names = self._var_list()
        self._expect("(")
        body = self.formula()
        self._expect(")")
        for name in reversed(names):
            body = cls(name, body)
        return body

    def _trcl(self) -> Formula:
        self._expect("[")
        if not self._keyword("trcl"):
            raise ParseError("expected 'trcl'", self.text, self.pos)
        xs = self._var_list()
        self._expect(";")
        ys = self._var_list()
        inner = self.formula()
        self._expect("]")
        self._expect("(")
        t1s = self._term_list()
        self._expect(";")
        t2s = self._term_list()
        self._expect(")")
        return Trcl(xs, ys, inner, t1s, t2s)


def parse_formula(text: str) -> Formula:
    """Parse an FO/TrCl formula from text.

    >>> parse_formula("exists y (E(x, y, z) and not x = z)")
    ∃y((E(x, y, z) ∧ ¬(x = z)))
    """
    return _FOParser(text).parse()
