"""Write-ahead log: the durability of ``install`` / ``batch`` mutations.

Between snapshots, every committed mutation batch lives here as *one*
log record — the unit of atomicity.  A record is::

    <payload_len u64> <seq u64> <payload_crc32 u32> <header_crc32 u32>
    <payload: pickled {"relations": {name: (triples...)}}>

appended to ``wal.log``.  Commit is a two-step protocol:

1. the record is appended, flushed and ``fsync``'d — the batch's
   content is durable, but not yet acknowledged;
2. the ``COMMIT`` pointer file (JSON ``{"offset", "seq"}``) is
   atomically replaced (tmp + fsync + rename, :func:`atomic_write_bytes`)
   to cover the new record.

Only after step 2 does the in-memory store swap happen, so a query can
never observe state the log would not reproduce.

Recovery scans the log from the start and classifies what it finds:

* a record that fails its CRC *inside* the committed region (before the
  ``COMMIT`` offset) is real corruption → :class:`StoreCorruptionError`;
* a fully-valid record *past* the pointer was durable before the crash
  (step 1 completed) — it is promoted: replayed, and the pointer
  repaired to cover it;
* a torn tail (partial or CRC-failing bytes at the end) is a crash
  between the two steps — it is truncated away and the store reopens in
  the pre-batch state.

Either way a batch is all-or-nothing: exactly the pre-batch or the
post-batch state, never half of one.

Records carry a monotonically increasing ``seq`` that survives
snapshots; the manifest's ``wal_seq`` records the last sequence folded
into segments, so recovery replays only ``seq > wal_seq``.

Crash testing hooks: when ``REPRO_STORAGE_FAULT`` names one of the
:data:`FAULT_POINTS`, the process hard-exits (``os._exit(137)``) at
that point of the next :meth:`WriteAheadLog.append` — no ``atexit``, no
buffers flushed beyond what the protocol already made durable.  This is
how the recovery tests kill a writer mid-commit deterministically.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import zlib
from typing import Any, Iterable, Mapping

from repro.errors import StoreCorruptionError, StorageError
from repro.storage.fsutil import atomic_write_bytes, fsync_enabled

__all__ = [
    "FAULT_ENV",
    "FAULT_POINTS",
    "WriteAheadLog",
    "scan_records",
]

#: payload byte length, sequence number, payload CRC32, header CRC32
#: (of the preceding 20 bytes) — 24 bytes per record header.
_RECORD = struct.Struct("<QQII")
RECORD_HEADER_SIZE = _RECORD.size

#: Environment hook: hard-exit the process at a named commit step.
FAULT_ENV = "REPRO_STORAGE_FAULT"
#: Valid fault points, in commit-protocol order.
FAULT_POINTS = (
    "wal-before-record",   # nothing written: clean pre-batch state
    "wal-mid-record",      # torn tail: half a record on disk
    "wal-before-sync",     # record written, not fsync'd: torn or whole
    "wal-before-commit",   # record durable, pointer stale: promoted
    "wal-after-commit",    # fully committed: post-batch state
)


def _fault(point: str) -> None:
    if os.environ.get(FAULT_ENV) == point:
        os._exit(137)


def scan_records(raw: bytes) -> tuple[list[tuple[int, bytes]], int]:
    """Parse a WAL image into its valid record prefix.

    Returns ``(records, valid_end)`` where ``records`` is a list of
    ``(seq, payload)`` and ``valid_end`` is the byte offset after the
    last fully-valid record — everything beyond it is a torn tail (or
    corruption, depending on where the commit pointer stands; the
    caller decides).
    """
    records: list[tuple[int, bytes]] = []
    off = 0
    while off + RECORD_HEADER_SIZE <= len(raw):
        header = raw[off : off + RECORD_HEADER_SIZE]
        plen, seq, payload_crc, header_crc = _RECORD.unpack(header)
        if header_crc != zlib.crc32(header[:-4]):
            break
        end = off + RECORD_HEADER_SIZE + plen
        if plen > len(raw) - off - RECORD_HEADER_SIZE:
            break
        payload = raw[off + RECORD_HEADER_SIZE : end]
        if zlib.crc32(payload) != payload_crc:
            break
        records.append((seq, payload))
        off = end
    return records, off


class WriteAheadLog:
    """The per-store WAL: ``wal.log`` + the ``COMMIT`` pointer file."""

    LOG = "wal.log"
    COMMIT = "COMMIT"

    def __init__(self, wal_dir: str | os.PathLike) -> None:
        self.dir = os.fspath(wal_dir)
        os.makedirs(self.dir, exist_ok=True)
        self.log_path = os.path.join(self.dir, self.LOG)
        self.commit_path = os.path.join(self.dir, self.COMMIT)
        self._fp: Any = None
        #: Byte offset of the committed end of the log.
        self.offset = 0
        #: Sequence number the next :meth:`append` will use.
        self.next_seq = 1

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    def _read_pointer(self) -> tuple[int, int]:
        try:
            with open(self.commit_path, "rb") as fp:
                data = json.loads(fp.read())
            return int(data["offset"]), int(data["seq"])
        except FileNotFoundError:
            return 0, 0
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreCorruptionError(
                f"WAL commit pointer {self.commit_path} is unreadable: {exc}"
            ) from exc

    def recover(self, *, min_seq: int = 0) -> list[tuple[int, dict]]:
        """Repair the log and return the committed mutations to replay.

        Promotes fully-durable records past a stale pointer, truncates
        torn tails, and raises :class:`StoreCorruptionError` if bytes
        *inside* the committed region fail their checksums.  Returns
        ``(seq, mutations)`` pairs with ``seq > min_seq`` (older records
        are already folded into segments), in log order.
        """
        committed, pointer_seq = self._read_pointer()
        try:
            with open(self.log_path, "rb") as fp:
                raw = fp.read()
        except FileNotFoundError:
            raw = b""
        records, valid_end = scan_records(raw)
        if valid_end < committed:
            raise StoreCorruptionError(
                f"WAL {self.log_path} is corrupt: commit pointer covers "
                f"{committed} bytes but only {valid_end} verify"
            )
        if valid_end < len(raw):
            # Torn tail from a crash mid-append: drop it.
            with open(self.log_path, "r+b") as fp:
                fp.truncate(valid_end)
                fp.flush()
                if fsync_enabled():
                    os.fsync(fp.fileno())
        last_seq = max([pointer_seq, min_seq] + [seq for seq, _ in records])
        if valid_end != committed or last_seq != pointer_seq:
            # Promote durable-but-unacknowledged records into the pointer.
            self._write_pointer(valid_end, last_seq)
        self.offset = valid_end
        self.next_seq = last_seq + 1
        out: list[tuple[int, dict]] = []
        for seq, payload in records:
            if seq <= min_seq:
                continue
            try:
                out.append((seq, pickle.loads(payload)))
            except Exception as exc:
                raise StoreCorruptionError(
                    f"WAL record seq={seq} in {self.log_path} fails to "
                    f"decode: {exc}"
                ) from exc
        return out

    # ------------------------------------------------------------------ #
    # Commit path
    # ------------------------------------------------------------------ #

    def _write_pointer(self, offset: int, seq: int) -> None:
        atomic_write_bytes(
            self.commit_path,
            json.dumps({"offset": offset, "seq": seq}).encode("ascii"),
        )

    def _file(self):
        if self._fp is None or self._fp.closed:
            self._fp = open(self.log_path, "ab")
            if self._fp.tell() != self.offset:  # pragma: no cover — foreign writes
                raise StorageError(
                    f"WAL {self.log_path} is {self._fp.tell()} bytes on disk "
                    f"but {self.offset} committed; reopen the store to recover"
                )
        return self._fp

    def append(self, mutations: Mapping[str, Iterable[tuple]]) -> int:
        """Durably commit one mutation batch; returns its sequence number.

        ``mutations`` maps relation names to their new triple sets, in
        application order.  The record is fsync'd before the commit
        pointer moves (see the module docstring for the protocol).
        """
        seq = self.next_seq
        payload = pickle.dumps(
            {"relations": {name: tuple(triples) for name, triples in mutations.items()}},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        header = _RECORD.pack(len(payload), seq, zlib.crc32(payload), 0)[:-4]
        record = header + struct.pack("<I", zlib.crc32(header)) + payload
        _fault("wal-before-record")
        fp = self._file()
        if os.environ.get(FAULT_ENV) == "wal-mid-record":
            fp.write(record[: RECORD_HEADER_SIZE + len(payload) // 2])
            fp.flush()
            os._exit(137)
        fp.write(record)
        fp.flush()
        _fault("wal-before-sync")
        if fsync_enabled():
            os.fsync(fp.fileno())
        _fault("wal-before-commit")
        self.offset += len(record)
        self._write_pointer(self.offset, seq)
        _fault("wal-after-commit")
        self.next_seq = seq + 1
        return seq

    @property
    def size(self) -> int:
        """Committed log size in bytes (the compaction trigger input)."""
        return self.offset

    def reset(self, seq: int) -> None:
        """Empty the log after its records were folded into segments.

        ``seq`` is the last folded sequence number; it is preserved in
        the pointer so sequence numbers stay monotonic across snapshots.
        """
        if self._fp is not None and not self._fp.closed:
            self._fp.close()
        self._fp = None
        with open(self.log_path, "ab"):
            pass  # ensure it exists before truncating
        with open(self.log_path, "r+b") as fp:
            fp.truncate(0)
            fp.flush()
            if fsync_enabled():
                os.fsync(fp.fileno())
        self.offset = 0
        self._write_pointer(0, seq)
        self.next_seq = seq + 1

    def close(self) -> None:
        if self._fp is not None and not self._fp.closed:
            self._fp.close()
        self._fp = None
