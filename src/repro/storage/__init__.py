"""Durable storage: on-disk segments, WAL transactions, snapshots.

The persistence layer behind ``Database(path=...)`` and the
``repro fsck`` / ``repro compact`` / ``repro serve --store-path``
surfaces.  A store directory holds mmap-able columnar segments
(:mod:`repro.storage.segments`), a write-ahead log making
``install``/``batch`` crash-recoverable (:mod:`repro.storage.wal`),
snapshot/compaction machinery (:mod:`repro.storage.snapshot`), a
warm-reopen catalog of statistics and compiled plans
(:mod:`repro.storage.catalog`), and an offline checker
(:mod:`repro.storage.fsck`).  :class:`DurableStore`
(:mod:`repro.storage.manager`) coordinates the lifecycle.
"""

from repro.storage.fsck import fsck_store
from repro.storage.manager import DurableStore
from repro.storage.segments import SegmentStore
from repro.storage.wal import WriteAheadLog

__all__ = ["DurableStore", "SegmentStore", "WriteAheadLog", "fsck_store"]
