"""Snapshots: folding the WAL into a fresh segment generation.

A snapshot writes the *current* store into a brand-new generation
directory and then swaps the manifest to point at it.  The ordering
makes the swap atomic under any crash:

1. segments are written into ``segments/gen-NNNNNN.tmp`` (each file
   individually fsync'd-and-renamed, then the directory fsync'd);
2. the directory is renamed to its final ``gen-NNNNNN`` name and
   ``segments/`` is fsync'd — the generation now durably exists, but
   nothing references it yet;
3. the ``MANIFEST`` file is atomically replaced to point at the new
   generation (and to record the fold: relation versions and the last
   WAL sequence now baked into segments) — *this* is the commit point;
4. only after the manifest is durable are the WAL reset and the old
   generation directories removed.

A crash before step 3 leaves the old manifest pointing at the old,
untouched generation (the ``.tmp`` or orphaned new generation is swept
on the next snapshot).  A crash after step 3 leaves the new manifest
with a stale-but-harmless WAL (records with ``seq <= wal_seq`` are
skipped on replay) and possibly an unreferenced old generation
(likewise swept later).
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Any, Mapping

from repro.storage.fsutil import atomic_write_bytes, fsync_dir
from repro.storage.segments import write_store_segments
from repro.triplestore.model import Triplestore

__all__ = ["MANIFEST_FORMAT", "sweep_generations", "write_snapshot"]

#: Manifest schema version; readers refuse newer manifests.
MANIFEST_FORMAT = 1

_SEGMENTS_DIR = "segments"
_MANIFEST = "MANIFEST"


def _gen_name(generation: int) -> str:
    return f"gen-{generation:06d}"


def write_snapshot(
    root: str | os.PathLike,
    store: Triplestore,
    *,
    generation: int,
    rel_versions: Mapping[str, int],
    store_version: int,
    wal_seq: int,
) -> dict[str, Any]:
    """Write ``store`` as generation ``generation`` and commit the manifest.

    Returns the new manifest dictionary.  Does *not* touch the WAL or
    old generations — the caller resets/sweeps those only after this
    returns (i.e. after the manifest swap is durable).
    """
    root = os.fspath(root)
    seg_root = os.path.join(root, _SEGMENTS_DIR)
    os.makedirs(seg_root, exist_ok=True)
    gen = _gen_name(generation)
    tmp_dir = os.path.join(seg_root, gen + ".tmp")
    final_dir = os.path.join(seg_root, gen)
    for stale in (tmp_dir, final_dir):  # debris from an interrupted snapshot
        if os.path.exists(stale):
            shutil.rmtree(stale)
    block = write_store_segments(store, tmp_dir)
    os.rename(tmp_dir, final_dir)
    fsync_dir(seg_root)
    manifest: dict[str, Any] = {
        "format": MANIFEST_FORMAT,
        "generation": generation,
        "gen_dir": f"{_SEGMENTS_DIR}/{gen}",
        "segments": block,
        "rel_versions": dict(rel_versions),
        "store_version": store_version,
        "wal_seq": wal_seq,
    }
    atomic_write_bytes(
        os.path.join(root, _MANIFEST),
        json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
    )
    return manifest


def sweep_generations(root: str | os.PathLike, keep_generation: int) -> list[str]:
    """Remove generation directories other than ``keep_generation``.

    Also sweeps ``.tmp`` staging debris.  Only called after the manifest
    referencing ``keep_generation`` is durable on disk; returns the
    removed directory names.
    """
    root = os.fspath(root)
    seg_root = os.path.join(root, _SEGMENTS_DIR)
    keep = _gen_name(keep_generation)
    removed: list[str] = []
    try:
        entries = sorted(os.listdir(seg_root))
    except FileNotFoundError:
        return removed
    for name in entries:
        if name == keep or not name.startswith("gen-"):
            continue
        path = os.path.join(seg_root, name)
        if os.path.isdir(path):
            shutil.rmtree(path)
            removed.append(name)
    if removed:
        fsync_dir(seg_root)
    return removed
