"""The durable-store coordinator behind ``Database(path=...)``.

A store directory is::

    <root>/
      MANIFEST                 # JSON: current generation + fold state
      segments/gen-NNNNNN/     # segment files (repro.storage.segments)
      wal/wal.log, wal/COMMIT  # mutations since the manifest's snapshot
      catalog/                 # warm-reopen caches (repro.storage.catalog)

:class:`DurableStore` owns the open/recover/commit/snapshot lifecycle;
:class:`repro.db.Database` drives it:

* **open** — read the manifest, map the segments into a lazy
  :class:`~repro.storage.segments.SegmentStore`, recover the WAL and
  replay committed records on top.  Relation dependency versions are
  re-derived deterministically (manifest versions + one bump per
  replayed record), which is what keeps persisted plan-cache keys valid
  across restarts.  A directory without a manifest is initialised as an
  empty generation-1 store.
* **commit** — append one batch to the WAL (fsync before the commit
  pointer moves); the caller swaps its in-memory store only after this
  returns.
* **snapshot** — fold everything into a fresh generation
  (:mod:`repro.storage.snapshot`), then reset the WAL and sweep old
  generations.  Triggered explicitly (``repro compact``), by the WAL
  size crossing ``REPRO_STORAGE_WAL_LIMIT`` bytes after a commit, and
  on clean close, so a cleanly-closed store always reopens straight
  from mmap'd segments with no replay.

No cross-process locking is attempted: one writer per store directory
at a time is the contract (tenants each get their own directory).
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.errors import StoreCorruptionError
from repro.storage import catalog as _catalog
from repro.storage.segments import open_store_segments
from repro.storage.snapshot import MANIFEST_FORMAT, sweep_generations, write_snapshot
from repro.storage.wal import WriteAheadLog
from repro.triplestore.model import Triple, Triplestore

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, typing only
    from repro.db import Database

__all__ = ["DurableStore", "WAL_LIMIT_ENV"]

#: WAL size (bytes) past which a commit triggers auto-compaction.
WAL_LIMIT_ENV = "REPRO_STORAGE_WAL_LIMIT"
_DEFAULT_WAL_LIMIT = 16 * 1024 * 1024

MANIFEST_NAME = "MANIFEST"
WAL_DIR = "wal"


class DurableStore:
    """One on-disk store directory: segments + WAL + catalog."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.fspath(root)
        self.manifest: dict | None = None
        self.generation = 0
        self.wal: WriteAheadLog | None = None
        #: Set by :meth:`open`: the recovered store and its dependency
        #: versions (the Database seeds its own from these).
        self.store: Triplestore | None = None
        self.rel_versions: dict[str, int] = {}
        self.store_version = 0

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def _wal_limit(self) -> int:
        try:
            return int(os.environ.get(WAL_LIMIT_ENV, _DEFAULT_WAL_LIMIT))
        except ValueError:
            return _DEFAULT_WAL_LIMIT

    # ------------------------------------------------------------------ #
    # Open / recover
    # ------------------------------------------------------------------ #

    def _read_manifest(self) -> dict:
        try:
            with open(self.manifest_path, "rb") as fp:
                manifest = json.loads(fp.read())
        except ValueError as exc:
            raise StoreCorruptionError(
                f"store manifest {self.manifest_path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or "segments" not in manifest:
            raise StoreCorruptionError(
                f"store manifest {self.manifest_path} has no segment map"
            )
        if manifest.get("format", 0) > MANIFEST_FORMAT:
            raise StoreCorruptionError(
                f"store {self.root} is manifest format "
                f"v{manifest.get('format')}; this build reads up to "
                f"v{MANIFEST_FORMAT}"
            )
        return manifest

    def open(self) -> Triplestore:
        """Open (or initialise) the directory; returns the current store.

        Raises :class:`StoreCorruptionError` when the committed state on
        disk cannot be trusted; a torn WAL tail is repaired silently.
        """
        os.makedirs(self.root, exist_ok=True)
        if os.path.exists(self.manifest_path):
            manifest = self._read_manifest()
            gen_dir = os.path.join(self.root, *manifest["gen_dir"].split("/"))
            try:
                store: Triplestore = open_store_segments(gen_dir, manifest["segments"])
            except FileNotFoundError as exc:
                raise StoreCorruptionError(
                    f"store {self.root} references a missing segment: {exc}"
                ) from exc
            self.manifest = manifest
            self.generation = int(manifest.get("generation", 0))
            self.rel_versions = {
                str(k): int(v) for k, v in manifest.get("rel_versions", {}).items()
            }
            self.store_version = int(manifest.get("store_version", 0))
            wal_seq = int(manifest.get("wal_seq", 0))
        else:
            # Fresh directory: lay down an empty generation-1 snapshot so
            # the store is fsck-able and reopenable from the first moment.
            store = Triplestore()
            self.generation = 1
            self.rel_versions = {}
            self.store_version = 0
            wal_seq = 0
            self.manifest = write_snapshot(
                self.root,
                store,
                generation=1,
                rel_versions={},
                store_version=0,
                wal_seq=0,
            )
        self.wal = WriteAheadLog(os.path.join(self.root, WAL_DIR))
        for _seq, record in self.wal.recover(min_seq=wal_seq):
            relations = record.get("relations", {})
            for name, triples in relations.items():
                store = store.with_relation(name, triples)
                self.rel_versions[name] = self.rel_versions.get(name, 0) + 1
            self.store_version += 1
        self.store = store
        return store

    # ------------------------------------------------------------------ #
    # Commit / compaction
    # ------------------------------------------------------------------ #

    def commit(self, mutations: Mapping[str, Iterable[Triple]]) -> int:
        """Durably log one mutation batch; returns its WAL sequence."""
        assert self.wal is not None, "store is not open"
        return self.wal.append(mutations)

    def snapshot(
        self,
        store: Triplestore,
        rel_versions: Mapping[str, int],
        store_version: int,
    ) -> None:
        """Fold the WAL into a fresh segment generation (compaction)."""
        assert self.wal is not None, "store is not open"
        generation = self.generation + 1
        wal_seq = self.wal.next_seq - 1
        self.manifest = write_snapshot(
            self.root,
            store,
            generation=generation,
            rel_versions=rel_versions,
            store_version=store_version,
            wal_seq=wal_seq,
        )
        self.generation = generation
        # The manifest referencing the new generation is durable; now the
        # WAL records it folded — and the old generations — can go.
        self.wal.reset(wal_seq)
        sweep_generations(self.root, generation)

    def maybe_compact(self, db: "Database") -> bool:
        """Auto-compact when the WAL outgrows its limit; True if it did."""
        if self.wal is not None and self.wal.size > self._wal_limit():
            self.snapshot(db.store, db._rel_versions, db._store_version)
            return True
        return False

    # ------------------------------------------------------------------ #
    # Warm caches / close
    # ------------------------------------------------------------------ #

    def load_warm(self, db: "Database") -> tuple[int, int]:
        """Seed stats and plan cache from the catalog; (stats, plans) counts."""
        return (
            _catalog.load_stats(self.root, db),
            _catalog.load_plans(self.root, db),
        )

    def flush(self, db: "Database") -> None:
        """Clean-close housekeeping: fold the WAL, persist the catalog."""
        if self.wal is not None and self.wal.size > 0:
            self.snapshot(db.store, db._rel_versions, db._store_version)
        _catalog.save_catalog(self.root, db)

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()
