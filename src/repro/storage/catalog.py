"""The persisted catalog: statistics and compiled plans for warm reopen.

Both files live under ``<store>/catalog/`` and are pure caches — they
make a reopened database *fast*, never *correct*.  A missing, stale or
unreadable catalog degrades to a cold start; it is never a reason to
refuse opening a store (``repro fsck`` still reports catalog corruption
so operators notice).

``stats.json`` holds the per-relation :class:`RelationStats` computed
during the closing session, each stamped with the relation's dependency
version.  On open, entries whose version still matches seed the new
store's lazy stats catalog — the cost-based planner starts with real
cardinalities instead of recounting.

``plans.bin`` holds a pickle of the plan-cache entries
``((canonical_expr, dep_token, backend), plan)`` stamped with
:data:`PLAN_FORMAT`.  On open, entries are seeded only when the plan
format matches, the backend matches the session's, and the embedded
dependency token is *current* — i.e. equal to what
``Database._dep_token`` would produce now.  Relation versions are
replayed deterministically from manifest + WAL, so a clean
close/reopen round-trip preserves the tokens and the first query of
the new process hits the plan cache.
"""

from __future__ import annotations

import json
import os
import pickle
from typing import TYPE_CHECKING, Any, Mapping

from repro.storage.fsutil import atomic_write_bytes
from repro.triplestore.stats import RelationStats

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, typing only
    from repro.db import Database

__all__ = [
    "CATALOG_DIR",
    "PLAN_FORMAT",
    "load_plans",
    "load_stats",
    "save_catalog",
    "verify_catalog",
]

CATALOG_DIR = "catalog"
_STATS = "stats.json"
_PLANS = "plans.bin"

#: Version of the compiled-plan representation this build emits.  Bump
#: whenever plan operators / specs change shape incompatibly — stale
#: ``plans.bin`` files are then ignored wholesale instead of unpickling
#: into nonsense.
PLAN_FORMAT = 1


def _stats_path(root: str) -> str:
    return os.path.join(root, CATALOG_DIR, _STATS)


def _plans_path(root: str) -> str:
    return os.path.join(root, CATALOG_DIR, _PLANS)


def _token_current(db: "Database", token: Any) -> bool:
    """Whether a persisted dependency token matches the live versions."""
    if not isinstance(token, tuple):
        return False
    if len(token) == 2 and token[0] == "U":
        return token[1] == db._store_version
    try:
        return all(db._rel_versions.get(name, 0) == ver for name, ver in token)
    except (TypeError, ValueError):
        return False


def save_catalog(root: str | os.PathLike, db: "Database") -> None:
    """Persist the session's statistics and plan cache beside the segments.

    Unpicklable plan entries (exotic engines) are skipped individually;
    a failure to persist is never an error — the catalog is a cache.
    """
    root = os.fspath(root)
    os.makedirs(os.path.join(root, CATALOG_DIR), exist_ok=True)
    computed = db.store.stats().computed()
    stats_doc = {
        "format": PLAN_FORMAT,
        "store_version": db._store_version,
        "relations": {
            s.name: {
                "cardinality": s.cardinality,
                "distinct": list(s.distinct),
                "version": db._rel_versions.get(s.name, 0),
            }
            for s in computed.values()
        },
    }
    atomic_write_bytes(
        _stats_path(root), json.dumps(stats_doc, indent=2, sort_keys=True).encode()
    )
    entries = []
    for key, plan in db._plans.snapshot():
        try:
            entries.append(pickle.dumps((key, plan), protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            continue  # plans are caches; an unpicklable one is just not saved
    # Keep other backends' persisted plans: a columnar session closing
    # must not evict the set session's warm entries (stale tokens are
    # filtered at load time anyway).
    try:
        with open(_plans_path(root), "rb") as fp:
            old = pickle.loads(fp.read())
    except Exception:
        old = None
    if isinstance(old, dict) and old.get("format") == PLAN_FORMAT:
        for blob in old.get("entries", ()):
            try:
                key, _plan = pickle.loads(blob)
            except Exception:
                continue
            if isinstance(key, tuple) and len(key) == 3 and key[2] != db.backend:
                entries.append(blob)
    payload = pickle.dumps(
        {"format": PLAN_FORMAT, "entries": entries},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    atomic_write_bytes(_plans_path(root), payload)


def load_stats(root: str | os.PathLike, db: "Database") -> int:
    """Seed the store's stats catalog from ``stats.json``; returns the
    number of relations seeded (0 on any staleness or damage)."""
    root = os.fspath(root)
    try:
        with open(_stats_path(root), "rb") as fp:
            doc = json.loads(fp.read())
    except (OSError, ValueError):
        return 0
    if not isinstance(doc, dict) or doc.get("format") != PLAN_FORMAT:
        return 0
    relations = doc.get("relations")
    if not isinstance(relations, dict):
        return 0
    seeded = []
    names = set(db.store.relation_names)
    for name, entry in relations.items():
        try:
            if name not in names:
                continue
            if entry["version"] != db._rel_versions.get(name, 0):
                continue
            distinct = tuple(int(d) for d in entry["distinct"])
            if len(distinct) != 3:
                continue
            seeded.append(RelationStats(name, int(entry["cardinality"]), distinct))
        except (KeyError, TypeError, ValueError):
            continue
    if seeded:
        db.store.stats().seed(seeded)
    return len(seeded)


def load_plans(root: str | os.PathLike, db: "Database") -> int:
    """Seed the session's plan cache from ``plans.bin``; returns the
    number of entries seeded (0 on any staleness or damage)."""
    root = os.fspath(root)
    try:
        with open(_plans_path(root), "rb") as fp:
            doc = pickle.loads(fp.read())
    except Exception:
        return 0
    if not isinstance(doc, dict) or doc.get("format") != PLAN_FORMAT:
        return 0
    count = 0
    for blob in doc.get("entries", ()):
        try:
            key, plan = pickle.loads(blob)
        except Exception:
            continue
        if not (isinstance(key, tuple) and len(key) == 3):
            continue
        canonical, token, backend = key
        if backend != db.backend or not _token_current(db, token):
            continue
        db._plans.get(key, lambda plan=plan: plan)
        count += 1
    return count


def verify_catalog(root: str | os.PathLike) -> list[str]:
    """Integrity problems in the catalog files (for ``repro fsck``).

    A *missing* catalog is healthy (cold store); an unreadable one is
    reported — it will be ignored at open time, but an operator should
    know it is being ignored.
    """
    root = os.fspath(root)
    problems: list[str] = []
    spath = _stats_path(root)
    if os.path.exists(spath):
        try:
            with open(spath, "rb") as fp:
                doc = json.loads(fp.read())
            if not isinstance(doc, dict):
                problems.append(f"{spath} does not hold a JSON object")
        except (OSError, ValueError) as exc:
            problems.append(f"{spath} is unreadable: {exc}")
    ppath = _plans_path(root)
    if os.path.exists(ppath):
        try:
            with open(ppath, "rb") as fp:
                doc = pickle.loads(fp.read())
            if not isinstance(doc, dict) or "entries" not in doc:
                problems.append(f"{ppath} does not hold a plan-cache document")
        except Exception as exc:
            problems.append(f"{ppath} is unreadable: {exc}")
    return problems
