"""Offline integrity checking of a store directory (``repro fsck``).

Walks everything the manifest references and reports structured
:class:`~repro.analysis.invariants.Finding` records under the
``STOR-*`` rules — the same record type the lint and plan-verifier
families use, so reports render and filter identically everywhere.

Unlike opening (which skips payload CRCs to stay zero-copy), fsck reads
every referenced byte: manifest shape, per-segment header *and* payload
checksums against both the file header and the manifest's recorded CRC,
WAL record checksums against the commit pointer, and catalog
readability.  A torn WAL tail is *healthy* (recovery truncates it by
design) and is not reported as a finding.
"""

from __future__ import annotations

import json
import os
import pickle
import zlib
from typing import Iterator

from repro.analysis.invariants import Finding
from repro.storage import catalog as _catalog
from repro.storage.manager import MANIFEST_NAME, WAL_DIR
from repro.storage.segments import read_segment
from repro.storage.snapshot import MANIFEST_FORMAT
from repro.storage.wal import WriteAheadLog, scan_records
from repro.errors import StoreCorruptionError

__all__ = ["fsck_store"]


def _segment_entries(segments: dict) -> Iterator[dict]:
    for key in ("meta", "dv_codes", "active"):
        entry = segments.get(key)
        if isinstance(entry, dict):
            yield entry
    for entry in segments.get("relations", ()):
        if isinstance(entry, dict):
            yield entry


def _check_manifest(root: str) -> tuple[dict | None, list[Finding]]:
    path = os.path.join(root, MANIFEST_NAME)
    if not os.path.exists(path):
        return None, [
            Finding(
                "STOR-MANIFEST",
                "no MANIFEST file — not an initialised store directory",
                path=path,
            )
        ]
    try:
        with open(path, "rb") as fp:
            manifest = json.loads(fp.read())
    except (OSError, ValueError) as exc:
        return None, [
            Finding("STOR-MANIFEST", f"manifest is unreadable: {exc}", path=path)
        ]
    problems = []
    if not isinstance(manifest, dict) or "segments" not in manifest:
        problems.append(
            Finding("STOR-MANIFEST", "manifest has no segment map", path=path)
        )
        return None, problems
    if manifest.get("format", 0) > MANIFEST_FORMAT:
        problems.append(
            Finding(
                "STOR-MANIFEST",
                f"manifest format v{manifest.get('format')} is newer than "
                f"this build (reads up to v{MANIFEST_FORMAT})",
                path=path,
            )
        )
        return None, problems
    return manifest, problems


def _check_segments(root: str, manifest: dict) -> Iterator[Finding]:
    gen_dir = os.path.join(root, *str(manifest.get("gen_dir", "")).split("/"))
    if not os.path.isdir(gen_dir):
        yield Finding(
            "STOR-SEGMENT",
            f"generation directory {manifest.get('gen_dir')!r} is missing",
            path=gen_dir,
        )
        return
    for entry in _segment_entries(manifest["segments"]):
        path = os.path.join(gen_dir, entry.get("file", "?"))
        if not os.path.exists(path):
            yield Finding("STOR-SEGMENT", "referenced segment is missing", path=path)
            continue
        try:
            payload = read_segment(path, verify=True)
        except StoreCorruptionError as exc:
            yield Finding("STOR-SEGMENT", str(exc), path=path)
            continue
        except OSError as exc:  # pragma: no cover — permissions etc.
            yield Finding("STOR-SEGMENT", f"segment is unreadable: {exc}", path=path)
            continue
        if zlib.crc32(payload) != entry.get("crc"):
            yield Finding(
                "STOR-SEGMENT",
                "segment payload does not match the CRC recorded in the "
                "manifest",
                path=path,
            )
        count = entry.get("count")
        if count is not None and len(payload) != 8 * count:
            yield Finding(
                "STOR-SEGMENT",
                f"segment holds {len(payload) // 8} items, manifest says "
                f"{count}",
                path=path,
            )


def _check_wal(root: str, manifest: dict) -> Iterator[Finding]:
    wal_dir = os.path.join(root, WAL_DIR)
    log_path = os.path.join(wal_dir, WriteAheadLog.LOG)
    commit_path = os.path.join(wal_dir, WriteAheadLog.COMMIT)
    committed, _pointer_seq = 0, 0
    if os.path.exists(commit_path):
        try:
            with open(commit_path, "rb") as fp:
                doc = json.loads(fp.read())
            committed = int(doc["offset"])
        except (OSError, ValueError, KeyError, TypeError) as exc:
            yield Finding(
                "STOR-WAL", f"commit pointer is unreadable: {exc}", path=commit_path
            )
            return
    try:
        with open(log_path, "rb") as fp:
            raw = fp.read()
    except FileNotFoundError:
        raw = b""
    except OSError as exc:  # pragma: no cover — permissions etc.
        yield Finding("STOR-WAL", f"log is unreadable: {exc}", path=log_path)
        return
    records, valid_end = scan_records(raw)
    if valid_end < committed:
        yield Finding(
            "STOR-WAL",
            f"commit pointer covers {committed} bytes but only {valid_end} "
            "verify — committed records are corrupt",
            path=log_path,
        )
        return
    min_seq = int(manifest.get("wal_seq", 0))
    for seq, payload in records:
        if seq <= min_seq:
            continue
        try:
            record = pickle.loads(payload)
            record["relations"]
        except Exception as exc:
            yield Finding(
                "STOR-WAL",
                f"record seq={seq} fails to decode: {exc}",
                path=log_path,
            )


def fsck_store(root: str | os.PathLike) -> list[Finding]:
    """Full integrity check; an empty list means the store is healthy."""
    root = os.fspath(root)
    manifest, findings = _check_manifest(root)
    if manifest is None:
        return findings
    findings.extend(_check_segments(root, manifest))
    findings.extend(_check_wal(root, manifest))
    findings.extend(
        Finding("STOR-CATALOG", problem, path=os.path.join(root, _catalog.CATALOG_DIR))
        for problem in _catalog.verify_catalog(root)
    )
    return findings
