"""On-disk columnar segments: the durable form of a triplestore.

One *generation* directory holds the dictionary-encoded columnar view
of a store (:mod:`repro.triplestore.columnar`) as flat segment files:

* ``meta.seg`` — pickled dictionaries: the sorted object universe, the
  distinct data values, the full ρ assignment, and the packing geometry;
* ``dv_codes.seg`` / ``active.seg`` — the ρ-code array and the active
  (occurs-in-some-triple) code set, raw little-endian ``int64``;
* ``rel-NNN.seg`` — one file per relation: its sorted unique packed-key
  array, raw ``int64``.

Every file starts with a fixed 32-byte header — magic, format version,
payload kind, payload length, payload CRC32, and a CRC32 of the header
itself — and the payload begins at byte 32, so ``int64`` arrays are
8-byte aligned and a reader can hand the mapped pages straight to numpy
(``np.frombuffer`` over ``mmap``) without copying: the same zero-copy
discipline as the shared-memory manifests in
:mod:`repro.triplestore.shm`, with files in place of ``/dev/shm``
segments.

Opening is *lazy on two levels*: the columnar arrays alias the mapped
pages (nothing is read until a kernel touches them), and the
:class:`SegmentStore` facade decodes a relation's Python-object
``frozenset`` only when a set-backend consumer actually asks for it —
the columnar/sharded backends never do.  Payload CRCs are verified by
``repro fsck`` and at snapshot time, not on every open (checking would
fault in every page and defeat the zero-copy open); headers are always
validated.
"""

from __future__ import annotations

import mmap
import os
import pickle
import struct
import zlib
from typing import Any, Iterable, Mapping

import numpy as np

from repro.errors import StoreCorruptionError, UnknownRelationError
from repro.storage.fsutil import fsync_dir, fsync_enabled, tmp_sibling
from repro.triplestore.columnar import ColumnarStore
from repro.triplestore.model import DEFAULT_RELATION, Obj, Triple, Triplestore

__all__ = [
    "FORMAT_VERSION",
    "KIND_INT64",
    "KIND_PICKLE",
    "SegmentStore",
    "map_segment",
    "open_store_segments",
    "read_segment",
    "verify_segment",
    "write_segment",
    "write_store_segments",
]

#: First 8 bytes of every segment file.
MAGIC = b"RPROSEG1"
#: Bumped on any incompatible layout change; readers refuse newer files.
FORMAT_VERSION = 1

#: Payload kinds.
KIND_INT64 = 1
KIND_PICKLE = 2

#: magic, version, kind, reserved, payload byte length, payload CRC32,
#: header CRC32 (of the preceding 28 bytes) — 32 bytes, 8-aligned.
_HEADER = struct.Struct("<8sHHIQII")
HEADER_SIZE = _HEADER.size
assert HEADER_SIZE == 32


def _pack_header(kind: int, payload_len: int, payload_crc: int) -> bytes:
    head = _HEADER.pack(MAGIC, FORMAT_VERSION, kind, 0, payload_len, payload_crc, 0)
    return head[:-4] + struct.pack("<I", zlib.crc32(head[:-4]))


def write_segment(path: str | os.PathLike, kind: int, payload: bytes) -> int:
    """Durably write one segment file; returns the payload CRC32.

    The file is staged as a ``.tmp`` sibling, flushed and fsync'd, then
    renamed into place — a crash mid-write leaves at most a ``.tmp``
    straggler, never a half-written segment under the final name.
    """
    crc = zlib.crc32(payload)
    path = os.fspath(path)
    tmp = tmp_sibling(path)
    with open(tmp, "wb") as fp:
        fp.write(_pack_header(kind, len(payload), crc))
        fp.write(payload)
        fp.flush()
        if fsync_enabled():
            os.fsync(fp.fileno())
    os.replace(tmp, path)
    return crc


def _read_header(path: str, raw: bytes) -> tuple[int, int, int]:
    """Validate a segment header; returns (kind, payload_len, payload_crc)."""
    if len(raw) < HEADER_SIZE:
        raise StoreCorruptionError(f"segment {path} is shorter than its header")
    magic, version, kind, _reserved, length, crc, header_crc = _HEADER.unpack(
        raw[:HEADER_SIZE]
    )
    if magic != MAGIC:
        raise StoreCorruptionError(f"segment {path} has bad magic {magic!r}")
    if header_crc != zlib.crc32(raw[: HEADER_SIZE - 4]):
        raise StoreCorruptionError(f"segment {path} has a corrupt header (CRC)")
    if version > FORMAT_VERSION:
        raise StoreCorruptionError(
            f"segment {path} is format v{version}; this build reads up to "
            f"v{FORMAT_VERSION}"
        )
    return kind, length, crc


def read_segment(
    path: str | os.PathLike, *, expect_kind: int | None = None, verify: bool = True
) -> bytes:
    """Read one segment's payload into memory (pickle segments, fsck)."""
    path = os.fspath(path)
    with open(path, "rb") as fp:
        raw = fp.read()
    kind, length, crc = _read_header(path, raw)
    if expect_kind is not None and kind != expect_kind:
        raise StoreCorruptionError(
            f"segment {path} has kind {kind}, expected {expect_kind}"
        )
    payload = raw[HEADER_SIZE : HEADER_SIZE + length]
    if len(payload) != length:
        raise StoreCorruptionError(
            f"segment {path} is truncated: header promises {length} payload "
            f"bytes, file has {len(payload)}"
        )
    if verify and zlib.crc32(payload) != crc:
        raise StoreCorruptionError(f"segment {path} payload fails its CRC32")
    return payload


def map_segment(path: str | os.PathLike) -> tuple[np.ndarray, mmap.mmap]:
    """Map an ``int64`` segment: a zero-copy numpy view over the file pages.

    The header is validated eagerly (cheap — one page); the payload CRC
    is *not* checked here, so no data page is faulted in until a kernel
    touches it.  The returned mmap must outlive the array view.
    """
    path = os.fspath(path)
    with open(path, "rb") as fp:
        mapped = mmap.mmap(fp.fileno(), 0, access=mmap.ACCESS_READ)
    kind, length, _crc = _read_header(path, mapped[:HEADER_SIZE])
    if kind != KIND_INT64:
        mapped.close()
        raise StoreCorruptionError(f"segment {path} has kind {kind}, not int64")
    if HEADER_SIZE + length > len(mapped) or length % 8:
        have = len(mapped) - HEADER_SIZE
        mapped.close()
        raise StoreCorruptionError(
            f"segment {path} is truncated: header promises {length} payload "
            f"bytes, file has {have}"
        )
    arr = np.frombuffer(mapped, dtype=np.int64, count=length // 8, offset=HEADER_SIZE)
    return arr, mapped


def verify_segment(path: str | os.PathLike) -> list[str]:
    """Full integrity check of one segment file; returns problem strings."""
    try:
        read_segment(path, verify=True)
    except StoreCorruptionError as exc:
        return [str(exc)]
    except OSError as exc:
        return [f"segment {os.fspath(path)} is unreadable: {exc}"]
    return []


# --------------------------------------------------------------------- #
# Whole-store write
# --------------------------------------------------------------------- #


def write_store_segments(store: Triplestore, gen_dir: str | os.PathLike) -> dict:
    """Write ``store``'s columnar view into ``gen_dir`` as segment files.

    Returns the ``segments`` manifest block: per-file name, kind, item
    count and CRC32.  Every file is written atomically and the
    directory is fsync'd, so after this returns the generation is fully
    on disk (the manifest pointing at it is the caller's commit point).
    """
    gen_dir = os.fspath(gen_dir)
    os.makedirs(gen_dir, exist_ok=True)
    cs = store.columnar()
    meta_payload = pickle.dumps(
        {
            "objects": list(cs.objects),
            "dv_values": list(cs.dv_values),
            "rho": store.rho_map(),
            "n": cs.n,
            "radix": cs.radix,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    block: dict[str, Any] = {
        "meta": {
            "file": "meta.seg",
            "kind": KIND_PICKLE,
            "bytes": len(meta_payload),
            "crc": write_segment(os.path.join(gen_dir, "meta.seg"), KIND_PICKLE, meta_payload),
        }
    }
    for key, arr in (("dv_codes", cs.dv_codes), ("active", cs.active_codes())):
        payload = np.ascontiguousarray(arr, dtype=np.int64).tobytes()
        block[key] = {
            "file": f"{key}.seg",
            "kind": KIND_INT64,
            "count": len(arr),
            "crc": write_segment(os.path.join(gen_dir, f"{key}.seg"), KIND_INT64, payload),
        }
    relations = []
    for idx, name in enumerate(store.relation_names):
        keys = cs.relation_keys(name)
        payload = np.ascontiguousarray(keys, dtype=np.int64).tobytes()
        fname = f"rel-{idx:03d}.seg"
        relations.append(
            {
                "name": name,
                "file": fname,
                "kind": KIND_INT64,
                "count": len(keys),
                "crc": write_segment(os.path.join(gen_dir, fname), KIND_INT64, payload),
            }
        )
    block["relations"] = relations
    fsync_dir(gen_dir)
    return block


# --------------------------------------------------------------------- #
# Whole-store open: mapped columnar view + lazy Triplestore facade
# --------------------------------------------------------------------- #


class _MappedColumnarStore(ColumnarStore):
    """A :class:`ColumnarStore` whose arrays alias mmap'd segment files.

    Built by :func:`open_store_segments` via slot filling — the parent
    ``__init__`` (which encodes from a :class:`Triplestore`) never
    runs.  Holds the mmaps so the views stay valid; :meth:`release`
    drops them best-effort (live exported views block a real unmap).
    """

    __slots__ = ("_maps",)

    def release(self) -> None:
        maps, self._maps = self._maps, []
        for mapped in maps:
            try:
                mapped.close()
            except BufferError:  # pragma: no cover — views still exported
                pass


class SegmentStore(Triplestore):
    """A :class:`Triplestore` served from mmap'd segments, decoded lazily.

    The columnar/sharded backends run directly on the mapped arrays
    (``columnar()`` returns the :class:`_MappedColumnarStore`); the
    Python-``frozenset`` form of a relation is decoded only when a
    set-backend consumer asks for it, and cached.  Mutation helpers
    (``with_relation`` …) materialise everything first and return plain
    in-memory stores — durability of mutations is the WAL's job
    (:mod:`repro.storage.wal`), not this view's.
    """

    __slots__ = ("_order",)

    # -- lazy decode ---------------------------------------------------- #

    def _decoded(self, name: str) -> frozenset:
        rel = self._relations.get(name)
        if rel is None:
            if name not in self._relations:
                raise UnknownRelationError(name, self._order)
            cs = self._columnar
            rel = cs.decode_triples(cs.relation_keys(name))
            self._relations[name] = rel
        return rel

    def materialize(self) -> "SegmentStore":
        """Decode every relation into its ``frozenset`` form (idempotent)."""
        for name in self._order:
            self._decoded(name)
        return self

    # -- Triplestore surface, decode-free where possible ----------------- #

    @property
    def relation_names(self) -> tuple[str, ...]:
        return self._order

    def relation(self, name: str = DEFAULT_RELATION) -> frozenset[Triple]:
        return self._decoded(name)

    def all_triples(self) -> frozenset[Triple]:
        self.materialize()
        return super().all_triples()

    def __contains__(self, triple: Triple) -> bool:
        try:
            key = self._columnar.encode_triple_key(tuple(triple))
        except (TypeError, ValueError):
            return False
        if key < 0:
            return False
        cs = self._columnar
        for name in self._order:
            keys = cs.relation_keys(name)
            i = int(np.searchsorted(keys, key))
            if i < len(keys) and keys[i] == key:
                return True
        return False

    def __iter__(self):
        self.materialize()
        return super().__iter__()

    def __len__(self) -> int:
        cs = self._columnar
        return sum(len(cs.relation_keys(name)) for name in self._order)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SegmentStore):
            other.materialize()
        self.materialize()
        return super().__eq__(other)

    def __hash__(self) -> int:
        self.materialize()
        return super().__hash__()

    def with_relation(self, name: str, triples: Iterable[Triple]) -> Triplestore:
        self.materialize()
        return super().with_relation(name, triples)

    def with_rho(self, rho: Mapping[Obj, Any]) -> Triplestore:
        self.materialize()
        return super().with_rho(rho)

    def release(self) -> None:
        """Drop the segment mappings (safe once nothing executes on them)."""
        cs = self._columnar
        if isinstance(cs, _MappedColumnarStore):
            cs.release()

    def __repr__(self) -> str:
        cs = self._columnar
        rels = ", ".join(f"{n}:{len(cs.relation_keys(n))}" for n in self._order)
        return f"SegmentStore(|O|={len(self._objects)}, {rels})"


def open_store_segments(gen_dir: str | os.PathLike, block: Mapping[str, Any]) -> SegmentStore:
    """Open one generation directory into a :class:`SegmentStore`.

    ``block`` is the manifest's ``segments`` entry written by
    :func:`write_store_segments`.  Array segments are mmap'd zero-copy;
    only the (typically small) pickled dictionaries are read eagerly.
    """
    gen_dir = os.fspath(gen_dir)

    def seg_path(entry: Mapping[str, Any]) -> str:
        return os.path.join(gen_dir, entry["file"])

    meta = pickle.loads(read_segment(seg_path(block["meta"]), expect_kind=KIND_PICKLE))
    objects = meta["objects"]
    dv_values = meta["dv_values"]

    maps: list[mmap.mmap] = []

    def mapped(entry: Mapping[str, Any]) -> np.ndarray:
        arr, mm = map_segment(seg_path(entry))
        if len(arr) != entry["count"]:
            mm.close()
            raise StoreCorruptionError(
                f"segment {seg_path(entry)} holds {len(arr)} items, manifest "
                f"says {entry['count']}"
            )
        maps.append(mm)
        return arr

    cs = object.__new__(_MappedColumnarStore)
    cs.objects = objects
    cs.n = meta["n"]
    cs.radix = meta["radix"]
    cs._code_of = {o: i for i, o in enumerate(objects)}
    obj_array = np.empty(len(objects), dtype=object)
    obj_array[:] = objects
    cs._obj_array = obj_array
    cs.dv_values = dv_values
    cs._dv_code_of = {v: i for i, v in enumerate(dv_values)}
    cs.dv_codes = mapped(block["dv_codes"])
    cs._relations = {e["name"]: mapped(e) for e in block["relations"]}
    cs._columns = {}
    cs._active = mapped(block["active"])
    cs._maps = maps
    if cs.n != len(objects):  # pragma: no cover — manifest/meta disagree
        raise StoreCorruptionError(
            f"meta segment in {gen_dir} names {len(objects)} objects but "
            f"records n={cs.n}"
        )

    store = object.__new__(SegmentStore)
    store._order = tuple(e["name"] for e in block["relations"])
    store._relations = {name: None for name in store._order}
    store._rho = dict(meta["rho"])
    store._objects = frozenset(objects)
    store._indexes = {}
    store._stats = None
    store._columnar = cs
    store._sharded = {}
    return store
