"""Filesystem primitives for the durable storage layer.

Everything in :mod:`repro.storage` that must survive a crash goes
through the two disciplines encoded here (and enforced by the
``STOR-ATOMIC`` lint rule):

* *no in-place durable writes* — new content is written to a ``.tmp``
  sibling, flushed, ``fsync``'d, and only then renamed over the final
  path, so a reader never observes a half-written file;
* *rename is not durable by itself* — after ``os.replace`` the
  containing directory is ``fsync``'d too, so the new directory entry
  survives power loss.

``REPRO_STORAGE_SYNC=0`` turns every ``fsync`` into a no-op.  That
trades crash-durability for speed (useful for throwaway test stores on
tmpfs); the write-ordering protocol — tmp file, rename, single-record
WAL commits — is unchanged, so *process* crashes (as opposed to kernel
crashes) still recover exactly.
"""

from __future__ import annotations

import os
from typing import Union

__all__ = [
    "SYNC_ENV",
    "atomic_write_bytes",
    "fsync_dir",
    "fsync_enabled",
    "fsync_fileobj",
    "tmp_sibling",
]

#: Environment switch: set to ``0`` to skip fsync calls (unsafe-fast mode).
SYNC_ENV = "REPRO_STORAGE_SYNC"

PathLike = Union[str, os.PathLike]


def fsync_enabled() -> bool:
    """Whether fsync calls are live (default) or elided (``REPRO_STORAGE_SYNC=0``)."""
    return os.environ.get(SYNC_ENV, "1") != "0"


def fsync_fileobj(fileobj) -> None:
    """Flush a buffered file object and fsync its descriptor."""
    fileobj.flush()
    if fsync_enabled():
        os.fsync(fileobj.fileno())


def fsync_dir(path: PathLike) -> None:
    """Fsync a directory so renames/creations inside it are durable."""
    if not fsync_enabled():
        return
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def tmp_sibling(path: PathLike) -> str:
    """The ``.tmp`` staging name next to ``path`` (same filesystem, so
    the final ``os.replace`` is atomic)."""
    return os.fspath(path) + ".tmp"


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Durably replace ``path`` with ``data``: tmp file, flush, fsync,
    rename into place, fsync the directory."""
    path = os.fspath(path)
    tmp = tmp_sibling(path)
    with open(tmp, "wb") as fp:
        fp.write(data)
        fp.flush()
        if fsync_enabled():
            os.fsync(fp.fileno())
    os.replace(tmp, path)
    fsync_dir(os.path.dirname(path) or ".")
