"""Command-line interface: query triplestore files from the shell.

All commands route through the :class:`repro.db.Database` facade —
parse → logical optimizer → cost-based physical planner → executor —
and its v2 query API (prepared statements, streaming cursors,
structured explain).

Usage (after installation, or via ``python -m repro.cli``)::

    # TriAL / TriAL* queries in the text syntax
    python -m repro.cli query store.tstore "star[1,2,3'; 3=1'](E)"
    python -m repro.cli query store.tstore "join[1,3',3; 2=1'](E, E)" --engine naive
    python -m repro.cli query store.tstore "join[1,3',3; 2=1'](E, E)" --explain

    # Parameterized queries: $name placeholders bound with --param
    python -m repro.cli query store.tstore "select[2=$label](E)" --param label=part_of

    # Other registered languages through the same front door
    python -m repro.cli query store.tstore "a/b-" --lang gxpath

    # Vectorised columnar execution of the same plans
    python -m repro.cli query store.tstore "star[1,2,3'; 3=1'](E)" --backend columnar

    # Shard-parallel execution over the k-way hash-partitioned store
    python -m repro.cli query store.tstore "join[1,2,3'; 3=1'](E, E)" --backend sharded --shards 4

    # Physical plans with cost estimates (store optional: anchors stats)
    python -m repro.cli explain "star[1,2,3'; 3=1'](E)" --physical --store store.tstore
    python -m repro.cli explain "star[1,2,3'; 3=1'](E)" --physical --backend columnar
    python -m repro.cli explain "join[1,2,3'; 3=1'](E, E)" --json --backend sharded --shards 4

    # Datalog programs (translated to TriAL(*) and planned when possible)
    python -m repro.cli datalog store.tstore program.dl --validate ReachTripleDatalog

    # Store statistics
    python -m repro.cli info store.tstore

    # Durable store directories: check, compact, export
    python -m repro.cli fsck /var/lib/repro/default
    python -m repro.cli compact /var/lib/repro/default
    python -m repro.cli dump /var/lib/repro/default -o export.tstore

    # Serve a store over HTTP/WebSocket, then query it remotely
    python -m repro.cli serve store.tstore --port 8377 --backend sharded
    python -m repro.cli serve --store-path /var/lib/repro/default --tenant eu=/var/lib/repro/eu
    python -m repro.cli connect http://127.0.0.1:8377 "star[1,2,3'; 3=1'](E)"
    python -m repro.cli connect http://127.0.0.1:8377 "E" --stream
    python -m repro.cli connect http://127.0.0.1:8377 --metrics

Store files use the :mod:`repro.triplestore.io` text format.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

from repro.api import ResultSet, explain_report
from repro.core import ENGINE_REGISTRY, NaiveEngine, ShardedEngine, VectorEngine
from repro.core.engines.sharded import SHARD_EXECUTORS
from repro.core.optimizer import optimize
from repro.core.parser import parse as parse_expr
from repro.datalog import parse_program, validate_fragment
from repro.db import BACKENDS, Database
from repro.errors import ReproError
from repro.triplestore import load_path

ENGINES = ENGINE_REGISTRY


def _print_result(result: ResultSet, limit: int | None) -> None:
    """Stream a result to stdout, decoding only the rows shown.

    ``result.limit(...)`` slices the backing packed-key array *before*
    dictionary decode on the columnar/sharded backends — ``--limit 20``
    on a million-row result decodes 20 triples, not a million.
    """
    total = result.total
    shown = result if limit is None else result.limit(limit)
    for s, p, o in shown:
        print(f"{s!r}\t{p!r}\t{o!r}")
    if limit is not None and total > limit:
        print(f"... ({total - limit} more; use --limit 0 for all)")
    print(f"# {total} triples")


def _print_pairs(pairs: frozenset, limit: int | None) -> None:
    rows = sorted(pairs, key=repr)
    shown = rows if limit is None else rows[:limit]
    for s, o in shown:
        print(f"{s!r}\t{o!r}")
    if limit is not None and len(rows) > limit:
        print(f"... ({len(rows) - limit} more; use --limit 0 for all)")
    print(f"# {len(rows)} pairs")


def _parse_bindings(raw_params: Sequence[str] | None) -> dict:
    bindings: dict[str, str] = {}
    for raw in raw_params or ():
        name, sep, value = raw.partition("=")
        if not sep or not name:
            raise ReproError(f"--param expects name=value, got {raw!r}")
        bindings[name] = value
    return bindings


#: Which engine each non-set backend request resolves to.
_BACKEND_ENGINES = {"columnar": "vector", "sharded": "sharded"}


def _make_engine(args: argparse.Namespace):
    name = args.engine
    backend = getattr(args, "backend", None)
    shards = getattr(args, "shards", None)
    executor = getattr(args, "executor", None)
    workers = getattr(args, "workers", None)
    if backend in _BACKEND_ENGINES:
        # The backend names its engine; --engine may agree or be left at
        # its default, but any other engine contradicts the request.
        target = _BACKEND_ENGINES[backend]
        if name not in ("fast", target):
            raise ReproError(
                f"--backend {backend} runs the {target} engine; "
                f"drop --engine {name} or use --backend set"
            )
        name = target
    elif backend == "set" and name in _BACKEND_ENGINES.values():
        raise ReproError(
            f"--engine {name} runs the "
            f"{'columnar' if name == 'vector' else name} backend; "
            "drop --backend set or pick another engine"
        )
    if shards is not None and name != "sharded":
        raise ReproError("--shards only applies with --backend sharded")
    if executor is not None and name != "sharded":
        raise ReproError("--executor only applies with --backend sharded")
    if workers is not None and name != "sharded":
        raise ReproError("--workers only applies with --backend sharded")
    if name in _BACKEND_ENGINES.values() and args.no_planner:
        # The planner seam *is* the columnar/sharded entry point; without
        # it the legacy set interpreter would silently run instead.
        raise ReproError(f"the {name} backend is planner-only; drop --no-planner")
    if name == "sharded":
        return ShardedEngine(
            use_planner=not args.no_planner,
            shards=shards,
            executor=executor,
            workers=workers,
        )
    engine_cls = ENGINES[name]
    if engine_cls is NaiveEngine:
        return NaiveEngine()
    return engine_cls(use_planner=not args.no_planner)


def _cmd_query(args: argparse.Namespace) -> int:
    db = Database.open(
        args.store, engine=_make_engine(args), optimize=args.optimize
    )
    bindings = _parse_bindings(args.param)
    limit = None if args.limit == 0 else args.limit
    if args.lang != "trial" and bindings:
        raise ReproError("--param only applies to TriAL queries")
    source = parse_expr(args.expression) if args.lang == "trial" else args.expression
    stmt = db.prepare(source, lang=args.lang)
    if args.optimize:
        print(f"# optimized: {stmt.expr!r}", file=sys.stderr)
    if args.explain:
        print(db.explain(stmt.expr, physical=True), file=sys.stderr)
    result = stmt.execute(**bindings)
    if args.lang != "trial":
        _print_pairs(result.pairs(), limit)
    else:
        _print_result(result, limit)
    return 0


def _cmd_datalog(args: argparse.Namespace) -> int:
    db = Database.open(args.store)
    with open(args.program, encoding="utf-8") as fp:
        program = parse_program(fp.read(), answer=args.answer)
    if args.validate:
        validate_fragment(program, args.validate)
        print(f"# program is valid {args.validate}¬", file=sys.stderr)
    from repro.datalog.validate import analyze_program

    for finding in analyze_program(program):
        print(f"# warning: {finding}", file=sys.stderr)
    result = db.query(program, lang="datalog")
    _print_result(result, None if args.limit == 0 else args.limit)
    return 0


#: Default durable-store directory for ``serve`` (``--store-path`` wins).
STORE_PATH_ENV = "REPRO_STORE_PATH"


def _open_store(path: str):
    """A triplestore from a durable directory or an ``io`` text file."""
    if os.path.isdir(path):
        from repro.storage import DurableStore

        storage = DurableStore(path)
        store = storage.open()
        storage.close()
        return store
    return load_path(path)


def _cmd_info(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    print(f"objects:   {store.n_objects}")
    print(f"triples:   {len(store)}")
    stats = store.stats()
    for name in store.relation_names:
        rel = stats.relation(name)
        d = rel.distinct
        print(
            f"  {name}: {rel.cardinality} "
            f"(distinct s/p/o: {d[0]}/{d[1]}/{d[2]})"
        )
    with_data = sum(1 for o in store.objects if store.rho(o) is not None)
    print(f"rho-assigned objects: {with_data}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.core.explain import explain, explain_physical

    expr = parse_expr(args.expression)
    if args.optimize:
        expr = optimize(expr)
    if args.shards is not None and args.backend != "sharded":
        raise ReproError("--shards only applies with --backend sharded")
    if args.executor is not None and args.backend != "sharded":
        raise ReproError("--executor only applies with --backend sharded")
    if args.workers is not None and args.backend != "sharded":
        raise ReproError("--workers only applies with --backend sharded")
    if args.json or args.physical:
        store = load_path(args.store) if args.store else None
        engine = (
            ShardedEngine(
                shards=args.shards,
                executor=args.executor,
                workers=args.workers,
            )
            if args.backend == "sharded"
            and (args.shards is not None or args.executor is not None)
            else None
        )
        if args.json:
            report = explain_report(expr, store, engine=engine, backend=args.backend)
            print(report.to_json())
        else:
            print(explain_physical(expr, store, engine=engine, backend=args.backend))
    else:
        print(explain(expr).summary())
    return 0


def _rule_ids(values):
    """Flatten repeated/comma-separated ``--select``/``--ignore`` values."""
    if not values:
        return None
    return [p.strip() for v in values for p in v.split(",") if p.strip()]


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import run_lint

    try:
        findings = run_lint(
            args.root,
            paths=args.paths or None,
            select=_rule_ids(args.select),
            ignore=_rule_ids(args.ignore),
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from None
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.semantics import analyze_expr

    expr = parse_expr(args.expression)
    if args.optimize:
        expr = optimize(expr)
    store = load_path(args.store) if args.store else None
    try:
        findings = analyze_expr(
            expr,
            store,
            select=_rule_ids(args.select),
            ignore=_rule_ids(args.ignore),
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from None
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("no findings", file=sys.stderr)
    return 0


def _lint_plan_one(expr, store, request_backend, shards, executor) -> int:
    """Compile + verify one expression for one backend; prints findings."""
    from repro.analysis.verify import verify_compiled
    from repro.core.explain import compile_for_explain
    from repro.errors import PlanVerificationError

    engine = (
        ShardedEngine(shards=shards, executor=executor)
        if request_backend == "sharded"
        and (shards is not None or executor is not None)
        else None
    )
    try:
        _, plan, _, backend, engine = compile_for_explain(
            expr, store, engine, request_backend
        )
    except PlanVerificationError as exc:
        # REPRO_PLAN_VERIFY rejected the plan inside compile itself;
        # report its violations the same way a post-hoc verify would.
        violations = exc.violations or (str(exc),)
        for violation in violations:
            print(violation)
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    violations = verify_compiled(
        expr, plan, store=store, engine=engine, backend=backend
    )
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    n_ops = sum(1 for _ in plan.walk())
    print(
        f"plan verified: {n_ops} operator(s) on the "
        f"{backend or 'set'} backend, 0 violations",
        file=sys.stderr,
    )
    return 0


def _cmd_lint_plan(args: argparse.Namespace) -> int:
    expr = parse_expr(args.expression)
    if args.optimize:
        expr = optimize(expr)
    sweep = args.backend == "all"
    if args.shards is not None and not sweep and args.backend != "sharded":
        raise ReproError("--shards only applies with --backend sharded")
    if args.executor is not None and not sweep and args.backend != "sharded":
        raise ReproError("--executor only applies with --backend sharded")
    store = load_path(args.store) if args.store else None
    backends = BACKENDS if sweep else (args.backend,)
    worst = 0
    for backend in backends:
        shards = args.shards if backend == "sharded" else None
        executor = args.executor if backend == "sharded" else None
        worst = max(worst, _lint_plan_one(expr, store, backend, shards, executor))
    return worst


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.storage import fsck_store

    findings = fsck_store(args.store)
    if args.json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding)
        status = "corrupt" if findings else "healthy"
        print(f"# {args.store}: {status}, {len(findings)} finding(s)")
    return 1 if findings else 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.storage import DurableStore

    storage = DurableStore(args.store)
    store = storage.open()  # replays any committed WAL records
    before = storage.wal.size if storage.wal is not None else 0
    storage.snapshot(store, storage.rel_versions, storage.store_version)
    storage.close()
    print(
        f"# {args.store}: compacted to generation {storage.generation} "
        f"({before} WAL bytes folded)",
        file=sys.stderr,
    )
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    from repro.triplestore.io import dump, dump_path

    store = _open_store(args.store)
    if args.output:
        dump_path(store, args.output)
        print(f"# wrote {len(store)} triples to {args.output}", file=sys.stderr)
    else:
        dump(store, sys.stdout)
    return 0


def _serve_tenants(args: argparse.Namespace) -> dict:
    """The tenant sessions a ``serve`` invocation asks for."""
    default = args.store or args.store_path or os.environ.get(STORE_PATH_ENV)
    if not default:
        raise ReproError(
            "serve needs a default store: a positional STORE argument, "
            "--store-path, or REPRO_STORE_PATH"
        )
    specs: list[tuple[str, str]] = [("default", default)]
    for raw in args.tenant or ():
        name, sep, path = raw.partition("=")
        if not sep or not name or not path:
            raise ReproError(f"--tenant expects NAME=STORE_PATH, got {raw!r}")
        specs.append((name, path))
    tenants = {}
    for name, path in specs:
        tenants[name] = Database.open(
            path,
            backend=args.backend,
            shards=args.shards if args.backend == "sharded" else None,
            executor=args.executor if args.backend == "sharded" else None,
            workers=args.workers if args.backend == "sharded" else None,
        )
    return tenants


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import QueryServer, ServiceConfig

    if args.backend != "sharded" and (
        args.shards is not None
        or args.executor is not None
        or args.workers is not None
    ):
        raise ReproError(
            "--shards/--executor/--workers only apply with --backend sharded"
        )
    config = ServiceConfig.from_env(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        query_timeout=args.timeout,
        page_size=args.page_size,
    )
    server = QueryServer(_serve_tenants(args), config)
    server.start()
    tenants = ", ".join(server.pool.names())
    print(f"serving {tenants} on {server.url}", file=sys.stderr)
    print(
        "endpoints: POST /v1/query /v1/prepare /v1/execute /v1/explain | "
        "GET /v1/ws /metrics /healthz",
        file=sys.stderr,
    )
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.stop()
    return 0


def _print_remote_rows(body: dict, limit: int | None) -> None:
    rows = body["rows"]
    for row in rows:
        print("\t".join(repr(v) for v in row))
    total = body.get("total", len(rows))
    if len(rows) < total:
        print(f"... ({total - len(rows)} more; use --limit 0 for all)")
    print(f"# {total} rows")


def _cmd_connect(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(args.url, tenant=args.tenant)
    bindings = _parse_bindings(args.param)
    if args.metrics:
        print(client.metrics(), end="")
        return 0
    if args.health:
        health = client.health()
        print(f"status: {health['status']} (tenants: {', '.join(health['tenants'])})")
        return 0
    if args.expression is None:
        raise ReproError("connect needs an expression (or --metrics/--health)")
    if args.explain:
        import json as _json

        print(_json.dumps(client.explain(args.expression, lang=args.lang), indent=2))
        return 0
    limit = None if args.limit == 0 else args.limit
    if args.stream:
        shown = 0
        total = 0
        for message in client.stream(
            args.expression,
            lang=args.lang,
            params=bindings,
            page_size=args.page_size,
        ):
            if message.get("done"):
                total = message["total"]
                print(f"# {total} rows in {message['pages']} page(s)")
                break
            for row in message["rows"]:
                if limit is None or shown < limit:
                    print("\t".join(repr(v) for v in row))
                    shown += 1
        return 0
    body = client.query(
        args.expression, lang=args.lang, params=bindings, limit=limit
    )
    _print_remote_rows(body, limit)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TriAL for RDF — query triplestores from the shell",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser("query", help="evaluate a TriAL(*) expression")
    q.add_argument("store", help="triplestore file (text format)")
    q.add_argument("expression", help="expression in the TriAL text syntax")
    q.add_argument(
        "--lang",
        choices=["trial", "gxpath", "rpq", "nre"],
        default="trial",
        help="query language (graph languages print π₁,₃ node pairs)",
    )
    q.add_argument(
        "--param",
        action="append",
        metavar="NAME=VALUE",
        help="bind a $NAME placeholder (repeatable; TriAL only)",
    )
    q.add_argument("--engine", choices=sorted(ENGINES), default="fast")
    q.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="execution backend: tuple-at-a-time sets (default), "
        "vectorised columnar arrays (--engine vector implies columnar), "
        "or shard-parallel hash-partitioned arrays",
    )
    q.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for --backend sharded (default: REPRO_SHARDS or 4)",
    )
    q.add_argument(
        "--executor",
        choices=SHARD_EXECUTORS,
        default=None,
        help="shard executor for --backend sharded: in-process threads "
        "(default) or a worker-process pool over shared memory "
        "(default: REPRO_SHARD_EXECUTOR or thread)",
    )
    q.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --executor process "
        "(default: REPRO_SHARD_WORKERS or one per shard, capped by cores)",
    )
    q.add_argument("--optimize", action="store_true", help="apply rewrites first")
    q.add_argument(
        "--no-planner",
        action="store_true",
        help="use the legacy direct interpreter instead of physical plans",
    )
    q.add_argument(
        "--explain",
        action="store_true",
        help="print the physical plan (with cost estimates) to stderr first",
    )
    q.add_argument("--limit", type=int, default=20, help="max rows (0 = all)")
    q.set_defaults(func=_cmd_query)

    d = sub.add_parser("datalog", help="run a TripleDatalog¬ program")
    d.add_argument("store")
    d.add_argument("program", help="program file")
    d.add_argument("--answer", default="Ans", help="answer predicate name")
    d.add_argument(
        "--validate",
        choices=["TripleDatalog", "ReachTripleDatalog"],
        help="require fragment membership before running",
    )
    d.add_argument("--limit", type=int, default=20)
    d.set_defaults(func=_cmd_datalog)

    i = sub.add_parser("info", help="store statistics")
    i.add_argument("store")
    i.set_defaults(func=_cmd_info)

    e = sub.add_parser("explain", help="static analysis of an expression")
    e.add_argument("expression", help="expression in the TriAL text syntax")
    e.add_argument("--optimize", action="store_true")
    e.add_argument(
        "--physical",
        action="store_true",
        help="print the compiled physical plan with cost estimates",
    )
    e.add_argument(
        "--json",
        action="store_true",
        help="print the structured explain report (logical analysis + "
        "physical plan + costs + backend strategies) as JSON",
    )
    e.add_argument(
        "--store",
        help="optional store file anchoring the plan's statistics",
    )
    e.add_argument(
        "--backend",
        choices=BACKENDS,
        default="set",
        help="with --physical: compile for this execution backend",
    )
    e.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for --backend sharded (default: REPRO_SHARDS or 4)",
    )
    e.add_argument(
        "--executor",
        choices=SHARD_EXECUTORS,
        default=None,
        help="with --backend sharded: the shard executor the plan is "
        "annotated for (thread or process)",
    )
    e.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --executor process",
    )
    e.set_defaults(func=_cmd_explain)

    an = sub.add_parser(
        "analyze",
        help="semantic analysis: satisfiability, emptiness, redundancy",
    )
    an.add_argument("expression", help="expression in the TriAL text syntax")
    an.add_argument(
        "--store",
        help="optional store file; enables the unknown-relation check",
    )
    an.add_argument(
        "--optimize",
        action="store_true",
        help="apply rewrites first (verdicts then describe the optimized "
        "query — pruning rewrites typically consume the findings)",
    )
    an.add_argument(
        "--select",
        action="append",
        metavar="RULES",
        help="comma-separated SEM-* rule IDs to report exclusively",
    )
    an.add_argument(
        "--ignore",
        action="append",
        metavar="RULES",
        help="comma-separated SEM-* rule IDs to skip",
    )
    an.set_defaults(func=_cmd_analyze)

    lt = sub.add_parser(
        "lint", help="check the repository's own coding invariants"
    )
    lt.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src, scripts, tests, "
        "benchmarks under --root)",
    )
    lt.add_argument(
        "--root",
        default=".",
        help="repository root the rule scopes resolve against (default: cwd)",
    )
    lt.add_argument(
        "--select",
        action="append",
        metavar="RULES",
        help="comma-separated rule IDs to run exclusively",
    )
    lt.add_argument(
        "--ignore",
        action="append",
        metavar="RULES",
        help="comma-separated rule IDs to skip",
    )
    lt.set_defaults(func=_cmd_lint)

    lp = sub.add_parser(
        "lint-plan",
        help="statically verify the compiled physical plan of an expression",
    )
    lp.add_argument("expression", help="expression in the TriAL text syntax")
    lp.add_argument("--optimize", action="store_true", help="apply rewrites first")
    lp.add_argument(
        "--store",
        help="optional store file anchoring the plan's statistics",
    )
    lp.add_argument(
        "--backend",
        choices=(*BACKENDS, "all"),
        default="set",
        help="compile (and verify) for this execution backend; 'all' "
        "sweeps set, columnar and sharded in one run",
    )
    lp.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for --backend sharded (default: REPRO_SHARDS or 4)",
    )
    lp.add_argument(
        "--executor",
        choices=SHARD_EXECUTORS,
        default=None,
        help="with --backend sharded: the shard executor the plan is "
        "annotated for",
    )
    lp.set_defaults(func=_cmd_lint_plan)

    s = sub.add_parser(
        "serve", help="serve stores over HTTP/WebSocket (the query service)"
    )
    s.add_argument(
        "store",
        nargs="?",
        default=None,
        help="store for the 'default' tenant: an io text file or a "
        "durable store directory",
    )
    s.add_argument(
        "--store-path",
        default=None,
        metavar="DIR",
        help="durable store directory for the 'default' tenant when no "
        "positional store is given (default: REPRO_STORE_PATH)",
    )
    s.add_argument(
        "--tenant",
        action="append",
        metavar="NAME=STORE_PATH",
        help="serve an extra isolated tenant session (repeatable)",
    )
    s.add_argument("--host", default=None, help="bind address (default: 127.0.0.1)")
    s.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port (default: REPRO_SERVICE_PORT or 8377; 0 = ephemeral)",
    )
    s.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="execution backend for every tenant (default: set)",
    )
    s.add_argument("--shards", type=int, default=None)
    s.add_argument("--executor", choices=SHARD_EXECUTORS, default=None)
    s.add_argument("--workers", type=int, default=None)
    s.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="queries executing concurrently before admission queues",
    )
    s.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        help="admission queue slots before requests are rejected (429)",
    )
    s.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-query budget in seconds (expiry answers 504)",
    )
    s.add_argument(
        "--page-size",
        type=int,
        default=None,
        help="default rows per WebSocket streaming page",
    )
    s.set_defaults(func=_cmd_serve)

    fk = sub.add_parser(
        "fsck", help="integrity-check a durable store directory"
    )
    fk.add_argument("store", help="durable store directory")
    fk.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array instead of text lines",
    )
    fk.set_defaults(func=_cmd_fsck)

    cp = sub.add_parser(
        "compact",
        help="fold a durable store's WAL into a fresh segment generation",
    )
    cp.add_argument("store", help="durable store directory")
    cp.set_defaults(func=_cmd_compact)

    dm = sub.add_parser(
        "dump",
        help="export any store (durable directory or text file) to the "
        "triplestore text format",
    )
    dm.add_argument("store", help="store to export")
    dm.add_argument(
        "-o",
        "--output",
        default=None,
        help="write to a file instead of stdout",
    )
    dm.set_defaults(func=_cmd_dump)

    c = sub.add_parser("connect", help="query a running repro serve instance")
    c.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8377")
    c.add_argument(
        "expression",
        nargs="?",
        default=None,
        help="query source text (omit with --metrics/--health)",
    )
    c.add_argument(
        "--lang",
        choices=["trial", "gxpath", "rpq", "nre"],
        default="trial",
        help="query language",
    )
    c.add_argument(
        "--param",
        action="append",
        metavar="NAME=VALUE",
        help="bind a $NAME placeholder (repeatable)",
    )
    c.add_argument("--tenant", default="default", help="tenant session name")
    c.add_argument("--limit", type=int, default=20, help="max rows (0 = all)")
    c.add_argument(
        "--stream",
        action="store_true",
        help="stream result pages over WebSocket instead of one response",
    )
    c.add_argument(
        "--page-size",
        type=int,
        default=None,
        help="rows per streamed page (with --stream)",
    )
    c.add_argument(
        "--explain",
        action="store_true",
        help="print the server's structured explain report as JSON",
    )
    c.add_argument(
        "--metrics",
        action="store_true",
        help="print the server's Prometheus metrics exposition",
    )
    c.add_argument(
        "--health", action="store_true", help="print the health summary"
    )
    c.set_defaults(func=_cmd_connect)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
