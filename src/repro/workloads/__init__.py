"""Synthetic workloads and reference (ground-truth) implementations."""

from repro.workloads.generators import (
    chain_store,
    clique_graph,
    cycle_store,
    random_graph,
    random_store,
)
from repro.workloads.knowledge_graph import (
    knowledge_graph,
    reference_affiliated_via,
)
from repro.workloads.social import (
    CONNECTION_TYPES,
    same_type_reachability_reference,
    social_network_store,
)
from repro.workloads.transport import (
    PART_OF,
    reference_query_q,
    transport_network,
)

__all__ = [
    "CONNECTION_TYPES",
    "PART_OF",
    "chain_store",
    "clique_graph",
    "cycle_store",
    "knowledge_graph",
    "random_graph",
    "random_store",
    "reference_query_q",
    "same_type_reachability_reference",
    "reference_affiliated_via",
    "social_network_store",
    "transport_network",
]
