"""Synthetic triplestore and graph workloads for tests and benchmarks.

The generators are deterministic under a seed and sized by simple knobs
so the benchmark harness can sweep |T| and |O| independently — that is
what the Theorem 3 / Proposition 4–5 scaling experiments need.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.graphdb.model import GraphDB
from repro.triplestore.model import Triple, Triplestore


def random_store(
    n_objects: int,
    n_triples: int,
    n_relations: int = 1,
    data_values: Sequence = (0, 1),
    seed: int = 0,
) -> Triplestore:
    """Uniformly random triples over ``n_objects`` objects.

    ``n_triples`` is a target; duplicates collapse, so the store may be
    slightly smaller.
    """
    rng = random.Random(seed)
    objs = [f"o{i}" for i in range(n_objects)]
    relations: dict[str, set[Triple]] = {}
    names = ["E"] if n_relations == 1 else [f"E{i}" for i in range(n_relations)]
    for name in names:
        triples = {
            (rng.choice(objs), rng.choice(objs), rng.choice(objs))
            for _ in range(n_triples // len(names))
        }
        relations[name] = triples
    rho = {o: rng.choice(list(data_values)) for o in objs}
    return Triplestore(relations, rho)


def chain_store(n: int, label_cycle: int = 1) -> Triplestore:
    """A chain o0 → o1 → … with middles cycling over ``label_cycle`` labels.

    Worst-ish case for reachability stars: the closure is quadratic in n.
    """
    triples = [
        (f"o{i}", f"l{i % label_cycle}", f"o{i + 1}") for i in range(n)
    ]
    return Triplestore(triples)


def cycle_store(n: int, label: str = "l") -> Triplestore:
    """A directed cycle of n objects with one shared middle label."""
    triples = [(f"o{i}", label, f"o{(i + 1) % n}") for i in range(n)]
    return Triplestore(triples)


def clique_graph(n: int, label: str = "a", distinct_data: bool = True) -> GraphDB:
    """A complete ``label``-graph; node data values distinct or shared."""
    nodes = [f"v{i}" for i in range(n)]
    edges = [(u, label, v) for u in nodes for v in nodes if u != v]
    rho = {v: (i if distinct_data else 0) for i, v in enumerate(nodes)}
    return GraphDB(nodes, edges, rho)


def random_graph(
    n_nodes: int,
    n_edges: int,
    labels: Sequence[str] = ("a", "b"),
    data_values: Sequence = (0, 1, 2),
    seed: int = 0,
) -> GraphDB:
    """A random edge-labelled graph with data values, no isolated nodes.

    Nodes that would be isolated are dropped (the GXPath → TriAL*
    translation sees only edge endpoints; see translations docs).
    """
    rng = random.Random(seed)
    nodes = [f"v{i}" for i in range(n_nodes)]
    edges = {
        (rng.choice(nodes), rng.choice(list(labels)), rng.choice(nodes))
        for _ in range(n_edges)
    }
    used = {u for u, _, _ in edges} | {v for _, _, v in edges}
    rho = {v: rng.choice(list(data_values)) for v in used}
    return GraphDB(used, edges, rho)
