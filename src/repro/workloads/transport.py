"""Scaled transport networks in the shape of Figure 1.

The generator produces a single relation E mixing *travel* triples
(city, service, city) and *hierarchy* triples (service, part_of, parent)
— exactly the mixed use of the middle position that motivates the paper.
``reference_query_q`` is an independent implementation of query Q
(per-company BFS) used as ground truth for the algebra.
"""

from __future__ import annotations

import random
from collections import deque

from repro.triplestore.model import Triple, Triplestore

PART_OF = "part_of"


def transport_network(
    n_cities: int,
    n_services: int,
    n_companies: int,
    hierarchy_depth: int = 2,
    extra_routes: int = 0,
    seed: int = 0,
) -> Triplestore:
    """A chain of cities plus random extra routes, serviced by a forest
    of operators.

    * cities ``c0 … c{n-1}`` are connected in a line, each hop assigned a
      random service;
    * ``extra_routes`` random (city, service, city) triples are added;
    * services group into ``n_companies`` trees of depth
      ``hierarchy_depth`` via part_of triples (with one extra cross link
      so transitivity matters, as EastCoast ⊂ NatExpress does in Fig 1).
    """
    rng = random.Random(seed)
    cities = [f"c{i}" for i in range(n_cities)]
    services = [f"s{i}" for i in range(n_services)]
    companies = [f"comp{i}" for i in range(n_companies)]

    triples: set[Triple] = set()
    for i in range(n_cities - 1):
        triples.add((cities[i], rng.choice(services), cities[i + 1]))
    for _ in range(extra_routes):
        triples.add((rng.choice(cities), rng.choice(services), rng.choice(cities)))

    # Hierarchy: service -> (chain of intermediates) -> company.
    for idx, service in enumerate(services):
        parent = service
        for level in range(hierarchy_depth - 1):
            mid = f"g{idx}_{level}"
            triples.add((parent, PART_OF, mid))
            parent = mid
        triples.add((parent, PART_OF, companies[idx % n_companies]))
    if n_companies >= 2:
        # One company is itself part of another (EastCoast ⊂ NatExpress).
        triples.add((companies[0], PART_OF, companies[1]))
    return Triplestore(triples)


def reference_query_q(store: Triplestore, relation: str = "E") -> frozenset[Triple]:
    """Ground truth for query Q, computed without the algebra.

    Q's TriAL* expression returns triples (x, y, z) such that x can reach
    z through a chain of triples (uᵢ, wᵢ, uᵢ₊₁) where each wᵢ reaches y
    through s→o hops (the operator hierarchy).  We compute it directly:

    1. ``ancestors`` — reflexive-transitive s→o closure, per object;
    2. for every y, the binary relation {(s, o) : ∃(s, w, o) ∈ E with
       y ∈ ancestors(w)} and its (non-reflexive) transitive closure.
    """
    triples = store.relation(relation)
    succ: dict = {}
    for s, _, o in triples:
        succ.setdefault(s, set()).add(o)

    reach_cache: dict = {}

    def ancestors(w) -> set:
        cached = reach_cache.get(w)
        if cached is not None:
            return cached
        seen = {w}
        queue = deque([w])
        while queue:
            node = queue.popleft()
            for nxt in succ.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        reach_cache[w] = seen
        return seen

    # Group (s, o) city-hops by each company y the hop's service rolls
    # up to.
    edges_by_company: dict = {}
    for s, w, o in triples:
        for y in ancestors(w):
            edges_by_company.setdefault(y, set()).add((s, o))

    result: set[Triple] = set()
    for y, pairs in edges_by_company.items():
        succ_y: dict = {}
        for s, o in pairs:
            succ_y.setdefault(s, set()).add(o)
        for source in {s for s, _ in pairs}:
            seen: set = set()
            frontier = set(succ_y.get(source, ()))
            while frontier:
                seen |= frontier
                frontier = {
                    n for v in frontier for n in succ_y.get(v, ()) if n not in seen
                }
            result.update((source, y, target) for target in seen)
    return frozenset(result)
