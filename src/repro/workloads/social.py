"""Social-network workloads in the style of Section 2.3.

Users and connections are both objects; ρ assigns quintuples
(name, email, age, type, created) with ``None`` for the inapplicable
components, exactly as the paper's example.  Since TriAL's η-conditions
compare whole ρ-values, the generator can also expose single attributes
(e.g. connection type) as the data value for stores aimed at
``rho(2) = rho(2')`` joins.
"""

from __future__ import annotations

import random

from repro.triplestore.model import Triple, Triplestore

CONNECTION_TYPES = ("friend", "coworker", "rival", "brother")


def social_network_store(
    n_users: int,
    n_connections: int,
    data_mode: str = "quintuple",
    seed: int = 0,
) -> Triplestore:
    """A random social network as a triplestore.

    ``data_mode``:

    * ``"quintuple"`` — the paper's (name, email, age, type, created);
    * ``"type"`` — ρ of a connection is just its type string (users get
      ``None``), convenient for same-type reachability queries.
    """
    if data_mode not in ("quintuple", "type"):
        raise ValueError(f"unknown data_mode {data_mode!r}")
    rng = random.Random(seed)
    users = [f"u{i}" for i in range(n_users)]
    triples: set[Triple] = set()
    rho: dict = {}
    for i, user in enumerate(users):
        if data_mode == "quintuple":
            rho[user] = (f"user{i}", f"user{i}@example.net", 18 + (i * 7) % 60, None, None)
    for c in range(n_connections):
        u, v = rng.sample(users, 2)
        conn = f"conn{c}"
        ctype = rng.choice(CONNECTION_TYPES)
        created = f"20{10 + c % 15:02d}-01-01"
        if data_mode == "quintuple":
            rho[conn] = (None, None, None, ctype, created)
        else:
            rho[conn] = ctype
        triples.add((u, conn, v))
    return Triplestore(triples, rho)


def same_type_reachability_reference(
    store: Triplestore, relation: str = "E"
) -> frozenset[Triple]:
    """Ground truth for "reachable through connections of one type".

    Matches the reachTA= star ``(E ✶^{1,2,3'}_{3=1', ρ(2)=ρ(2')})*``-like
    queries used in the social-network example: chains of connections
    whose ρ-values agree.  Returns triples (u, conn, v) where v is
    reachable from u starting with connection ``conn`` and continuing
    through connections with the same data value.
    """
    by_value: dict = {}
    for s, p, o in store.relation(relation):
        by_value.setdefault(store.rho(p), set()).add((s, p, o))
    result: set[Triple] = set()
    for _, triples in by_value.items():
        succ: dict = {}
        for s, _, o in triples:
            succ.setdefault(s, set()).add(o)
        for s, p, o in triples:
            seen = {o}
            frontier = {o}
            while frontier:
                frontier = {
                    n for v in frontier for n in succ.get(v, ()) if n not in seen
                }
                seen |= frontier
            result.update((s, p, target) for target in seen)
    return frozenset(result)
