"""A realistic multi-domain knowledge-graph workload.

The introduction motivates TriAL with Semantic-Web data where the same
resource plays predicate and subject roles across domains.  This
generator produces such a store: an organisational hierarchy, a
geographic containment tree and typed person–organisation affiliations
— with affiliation *types* that are themselves organised in a little
ontology (so middles become subjects, the paper's hallmark).

Relations (all folded into one E by default, mirroring RDF):

* (person, affiliation_type, org) — employment/membership edges;
* (affiliation_type, subtype_of, affiliation_type) — type ontology;
* (org, part_of, org) — organisational hierarchy;
* (org, located_in, place), (place, within, place) — geography.

``reference_affiliated_via`` independently computes "people affiliated
with an organisation under a type subsumed by T" for ground truth.
"""

from __future__ import annotations

import random
from collections import deque

from repro.triplestore.model import Triple, Triplestore

PART_OF = "part_of"
SUBTYPE_OF = "subtype_of"
LOCATED_IN = "located_in"
WITHIN = "within"

AFFILIATION_ROOTS = ("affiliated", )
AFFILIATION_LEAVES = (
    "employee", "contractor", "board_member", "volunteer", "alumni"
)


def knowledge_graph(
    n_people: int,
    n_orgs: int,
    n_places: int,
    n_affiliations: int,
    seed: int = 0,
) -> Triplestore:
    """Generate the workload; deterministic under ``seed``."""
    rng = random.Random(seed)
    people = [f"person{i}" for i in range(n_people)]
    orgs = [f"org{i}" for i in range(n_orgs)]
    places = [f"place{i}" for i in range(n_places)]

    triples: set[Triple] = set()

    # Affiliation-type ontology: leaves under intermediate groups under
    # the root.
    groups = ("staff", "external")
    for leaf in AFFILIATION_LEAVES[:3]:
        triples.add((leaf, SUBTYPE_OF, "staff"))
    for leaf in AFFILIATION_LEAVES[3:]:
        triples.add((leaf, SUBTYPE_OF, "external"))
    for group in groups:
        triples.add((group, SUBTYPE_OF, AFFILIATION_ROOTS[0]))

    # Organisational hierarchy: a forest with a couple of roots.
    for i, org in enumerate(orgs[1:], start=1):
        parent = orgs[rng.randrange(0, i)]
        triples.add((org, PART_OF, parent))

    # Geography: a containment tree, orgs located in random places.
    for i, place in enumerate(places[1:], start=1):
        triples.add((place, WITHIN, places[rng.randrange(0, i)]))
    for org in orgs:
        triples.add((org, LOCATED_IN, rng.choice(places)))

    # Affiliations.
    for _ in range(n_affiliations):
        triples.add(
            (
                rng.choice(people),
                rng.choice(AFFILIATION_LEAVES),
                rng.choice(orgs),
            )
        )

    rho = {p: ("person", i % 5) for i, p in enumerate(people)}
    rho.update({o: ("org", None) for o in orgs})
    return Triplestore(triples, rho)


def _ancestors(edges: set[tuple], label: str, store: Triplestore) -> dict:
    """Reflexive-transitive closure of (x, label, y) edges, per source."""
    succ: dict = {}
    for s, p, o in store.relation("E"):
        if p == label:
            succ.setdefault(s, set()).add(o)
    closure: dict = {}

    def reach(x):
        cached = closure.get(x)
        if cached is not None:
            return cached
        seen = {x}
        queue = deque([x])
        while queue:
            node = queue.popleft()
            for nxt in succ.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        closure[x] = seen
        return seen

    return {x: reach(x) for x in set(succ) | {o for v in succ.values() for o in v}}


def reference_affiliated_via(
    store: Triplestore, affiliation_type: str
) -> frozenset[tuple]:
    """(person, org) pairs whose affiliation's type is subsumed by
    ``affiliation_type`` (through subtype_of*), org taken up through
    part_of* — the knowledge-graph analogue of query Q's inner pattern,
    computed without the algebra."""
    type_up = _ancestors(set(), SUBTYPE_OF, store)
    org_up = _ancestors(set(), PART_OF, store)
    result = set()
    for s, p, o in store.relation("E"):
        if not str(s).startswith("person"):
            continue
        if affiliation_type in type_up.get(p, {p}):
            for org in org_up.get(o, {o}):
                result.add((s, org))
    return frozenset(result)
