"""The invariant catalog: stable IDs for everything static analysis checks.

Each entry pairs an ID with a one-line statement of the invariant.  IDs
are the contract: tests assert on them, ``repro lint``/``lint-plan``/
``repro analyze`` print them, and ARCHITECTURE.md documents them —
renaming one is a breaking change to all three.

Plan invariants (``PLAN-*``) are checked by
:func:`repro.analysis.verify.verify_plan` against compiled physical
plans.  Lint rules are checked by :mod:`repro.analysis.lint` against
the repository source itself.  Semantic rules (``SEM-*``) are checked
by :mod:`repro.analysis.semantics` against TriAL expressions (and, for
``SEM-UNSAT``/``SEM-DEAD-RULE``, Datalog programs).

All three families report through one frozen :class:`Finding` record
and share one ID namespace (:data:`RULES`), so ``--select``/``--ignore``
work uniformly across ``repro lint``, ``repro lint-plan`` and
``repro analyze``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "INVARIANTS",
    "LINT_RULES",
    "SEM_RULES",
    "STORE_RULES",
    "RULES",
    "Finding",
    "Violation",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation, from any analysis family.

    ``rule`` is an ID from :data:`RULES`.  The location fields are
    family-specific: lint findings carry a source ``path``/``line``,
    plan and semantic findings carry ``op`` — the offending operator's
    one-line label (matching ``plan.pretty()`` output for plans, the
    expression's paper-style repr for semantic findings) so a reader
    can locate the node in an explain dump.
    """

    rule: str
    message: str
    path: str = ""
    line: int = 0
    op: str = ""

    @property
    def invariant(self) -> str:
        """Alias for :attr:`rule` (the pre-unification field name)."""
        return self.rule

    def to_dict(self) -> dict[str, object]:
        """Wire form (explain reports, service warnings): only the
        location fields the finding actually carries."""
        out: dict[str, object] = {"rule": self.rule, "message": self.message}
        if self.path:
            out["path"] = self.path
            out["line"] = self.line
        if self.op:
            out["op"] = self.op
        return out

    def __str__(self) -> str:
        if self.path:
            return f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.op:
            return f"{self.rule} {self.message} (at {self.op})"
        return f"{self.rule} {self.message}"


#: Pre-unification name for plan-verifier findings; same record type.
Violation = Finding


#: Plan-verifier invariants, in the order the verifier reports them.
INVARIANTS: dict[str, str] = {
    "PLAN-ARITY": (
        "operator shapes are well-typed: output specs are three positions "
        "in 0..5, selection/filter conditions stay within a single "
        "operand (positions 0..2), and every join spec's "
        "local/cross/const condition split matches a recomputation from "
        "its condition list (cross conditions normalised left-first)"
    ),
    "PLAN-KEY": (
        "composite join keys and index access paths are consistent: "
        "index-lookup key positions are strictly increasing within 0..2 "
        "with one key value per position, and a join's store-index reuse "
        "names exactly the build-side scan's θ key positions with no "
        "build-side local filters"
    ),
    "PLAN-PARAM": (
        "parameter binding is complete: every $name Param the plan "
        "carries (condition terms, index-lookup keys) is declared by the "
        "source expression or the provided binding set, so bind_plan can "
        "always resolve it"
    ),
    "PLAN-SHARD": (
        "shard-partition propagation is sound: every join's annotated "
        "shard strategy equals the strategy recomputed from the "
        "partition states of its inputs — raw (part_pos=None) operands "
        "must be re-established by an exchange before any co-partitioned "
        "merge, set operation or fixpoint consumes them"
    ),
    "PLAN-DENSE": (
        "dense lowering is guarded: on the columnar/sharded backends "
        "every recursive operator carries a dense/sparse strategy, and "
        "'dense' appears only on ReachStarOp — the one operator whose "
        "executor re-checks the object-count guard at run time and falls "
        "back to sparse on MatrixTooLargeError"
    ),
    "PLAN-CACHE": (
        "cache dependencies are sound: the plan reads only relations in "
        "the source expression's dependency set (and touches U only if "
        "the expression does), so the LRU's per-relation version token "
        "invalidates every entry the plan could observe"
    ),
    "PLAN-COST": (
        "cost annotations are sane: row/cost estimates are finite and "
        "non-negative, and a node's cumulative cost is at least each "
        "child's (monotone, so the root prices the whole plan)"
    ),
}


#: Repo-linter rules (see :mod:`repro.analysis.lint` for the checkers).
LINT_RULES: dict[str, str] = {
    "BARE-EXCEPT": (
        "no bare 'except:' handlers — name the exception types so "
        "KeyboardInterrupt/SystemExit and genuine bugs propagate"
    ),
    "LRU-LOCK": (
        "the _LRU cache's _data dict in db.py is touched only under "
        "'with self._lock' (construction aside), and never from outside "
        "the class"
    ),
    "SHM-UNLINK": (
        "every module that creates a SharedMemory segment "
        "(SharedMemory(..., create=True)) contains an unlink() path, the "
        "triplestore/shm.py lifecycle discipline"
    ),
    "ERR-RAISE": (
        "only repro.errors types are raised across the api.py / "
        "repro.service boundary (re-raises of caught exceptions are "
        "fine), so every failure crosses the wire as a typed, "
        "status-mapped error"
    ),
    "ERR-MAP": (
        "every concrete (leaf) repro.errors exception class appears "
        "explicitly in service/protocol.py's _STATUS_MAP — no leaf may "
        "rely on the family fallthrough, so adding an error type forces "
        "a deliberate wire-status decision"
    ),
    "ERR-ORDER": (
        "_STATUS_MAP entries are ordered subclass-before-superclass; an "
        "entry preceded by one of its base classes is unreachable"
    ),
    "SHIM-CALL": (
        "no calls to the deprecated query_* shims (query_pairs, "
        "query_gxpath, query_rpq, query_nre, query_nsparql, "
        "query_datalog) outside their own definitions and "
        "pytest.warns(DeprecationWarning) blocks"
    ),
    "SPAWN-STATE": (
        "spawn-critical modules (procpool, shm, sharded) keep "
        "module-level state spawn-safe: no threads, pools, processes or "
        "shared-memory segments created at import time, and "
        "multiprocessing contexts are requested as get_context('spawn')"
    ),
    "ENV-DOC": (
        "every REPRO_* environment variable read under src/ appears in "
        "the README's environment-variable table — configuration knobs "
        "must not drift out of the documentation"
    ),
    "STOR-ATOMIC": (
        "durable writes under src/repro/storage/ follow the "
        "crash-atomicity discipline: any function that opens a file for "
        "(over)writing must fsync it and rename it into place, and any "
        "os.replace/os.rename must be preceded in the same function by a "
        "flush+fsync (directly or via the repro.storage.fsutil helpers); "
        "append/truncate handles ('ab', 'r+b') are the WAL's and exempt"
    ),
}


#: Durable-store integrity rules (see :mod:`repro.storage.fsck`).
STORE_RULES: dict[str, str] = {
    "STOR-MANIFEST": (
        "the store MANIFEST exists, parses, has a segment map, and its "
        "format version is readable by this build"
    ),
    "STOR-SEGMENT": (
        "every segment the manifest references exists, its header and "
        "payload pass their CRC32 checks, and its length and checksum "
        "match what the manifest recorded"
    ),
    "STOR-WAL": (
        "every WAL record the commit pointer covers verifies and "
        "decodes; bytes past the pointer (a torn tail) are recoverable "
        "by design and not a finding"
    ),
    "STOR-CATALOG": (
        "the warm-reopen catalog files (stats.json, plans.bin), when "
        "present, are readable — open() ignores damage, fsck reports it"
    ),
}


#: Semantic-analyzer rules (see :mod:`repro.analysis.semantics`).
SEM_RULES: dict[str, str] = {
    "SEM-UNSAT": (
        "a selection/join condition list is unsatisfiable: the "
        "union-find closure of its equalities forces two distinct "
        "constants together or contradicts one of its inequalities, so "
        "the operator provably produces no triples"
    ),
    "SEM-EMPTY": (
        "a subexpression is provably empty on every store: emptiness "
        "propagates bottom-up (unsatisfiable conditions, Diff(e, e), "
        "empty join/intersect operands, star of an empty base)"
    ),
    "SEM-TRIVIAL-STAR": (
        "a Kleene star never iterates: its step conditions are "
        "unsatisfiable (star(e) ≡ e) or its operand is the same star "
        "(closures are idempotent), so the fixpoint is the base"
    ),
    "SEM-REDUNDANT": (
        "a condition list is not a minimal core: some condition is "
        "implied by the union-find closure of the others (duplicate, "
        "constant-true, or entailed equality/inequality) and can be "
        "dropped without changing the result"
    ),
    "SEM-UNKNOWN-REL": (
        "the expression references a relation the supplied store does "
        "not define; the reference evaluates empty and is usually a "
        "typo (informational — schemas may legitimately grow later)"
    ),
    "SEM-DEAD-RULE": (
        "a Datalog rule can never contribute to the query answer: its "
        "body is unsatisfiable or its head predicate is unreachable "
        "from the answer predicate in the dependency graph"
    ),
}


#: Every analysis rule, one namespace — the ``--select``/``--ignore``
#: vocabulary shared by ``repro lint``, ``lint-plan`` and ``analyze``.
RULES: dict[str, str] = {**INVARIANTS, **LINT_RULES, **SEM_RULES, **STORE_RULES}
