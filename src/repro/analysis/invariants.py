"""The invariant catalog: stable IDs for everything static analysis checks.

Each entry pairs an ID with a one-line statement of the invariant.  IDs
are the contract: tests assert on them, ``repro lint``/``lint-plan``
print them, and ARCHITECTURE.md documents them — renaming one is a
breaking change to all three.

Plan invariants (``PLAN-*``) are checked by
:func:`repro.analysis.verify.verify_plan` against compiled physical
plans.  Lint rules (the rest) are checked by
:mod:`repro.analysis.lint` against the repository source itself.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["INVARIANTS", "LINT_RULES", "Violation"]


@dataclass(frozen=True)
class Violation:
    """One invariant breach found in a compiled plan.

    ``invariant`` is an ID from :data:`INVARIANTS`; ``op`` the offending
    operator's label (one line, matching ``plan.pretty()`` output) so a
    reader can locate the node in an explain dump.
    """

    invariant: str
    op: str
    message: str

    def __str__(self) -> str:
        return f"{self.invariant} {self.message} (at {self.op})"


#: Plan-verifier invariants, in the order the verifier reports them.
INVARIANTS: dict[str, str] = {
    "PLAN-ARITY": (
        "operator shapes are well-typed: output specs are three positions "
        "in 0..5, selection/filter conditions stay within a single "
        "operand (positions 0..2), and every join spec's "
        "local/cross/const condition split matches a recomputation from "
        "its condition list (cross conditions normalised left-first)"
    ),
    "PLAN-KEY": (
        "composite join keys and index access paths are consistent: "
        "index-lookup key positions are strictly increasing within 0..2 "
        "with one key value per position, and a join's store-index reuse "
        "names exactly the build-side scan's θ key positions with no "
        "build-side local filters"
    ),
    "PLAN-PARAM": (
        "parameter binding is complete: every $name Param the plan "
        "carries (condition terms, index-lookup keys) is declared by the "
        "source expression or the provided binding set, so bind_plan can "
        "always resolve it"
    ),
    "PLAN-SHARD": (
        "shard-partition propagation is sound: every join's annotated "
        "shard strategy equals the strategy recomputed from the "
        "partition states of its inputs — raw (part_pos=None) operands "
        "must be re-established by an exchange before any co-partitioned "
        "merge, set operation or fixpoint consumes them"
    ),
    "PLAN-DENSE": (
        "dense lowering is guarded: on the columnar/sharded backends "
        "every recursive operator carries a dense/sparse strategy, and "
        "'dense' appears only on ReachStarOp — the one operator whose "
        "executor re-checks the object-count guard at run time and falls "
        "back to sparse on MatrixTooLargeError"
    ),
    "PLAN-CACHE": (
        "cache dependencies are sound: the plan reads only relations in "
        "the source expression's dependency set (and touches U only if "
        "the expression does), so the LRU's per-relation version token "
        "invalidates every entry the plan could observe"
    ),
    "PLAN-COST": (
        "cost annotations are sane: row/cost estimates are finite and "
        "non-negative, and a node's cumulative cost is at least each "
        "child's (monotone, so the root prices the whole plan)"
    ),
}


#: Repo-linter rules (see :mod:`repro.analysis.lint` for the checkers).
LINT_RULES: dict[str, str] = {
    "BARE-EXCEPT": (
        "no bare 'except:' handlers — name the exception types so "
        "KeyboardInterrupt/SystemExit and genuine bugs propagate"
    ),
    "LRU-LOCK": (
        "the _LRU cache's _data dict in db.py is touched only under "
        "'with self._lock' (construction aside), and never from outside "
        "the class"
    ),
    "SHM-UNLINK": (
        "every module that creates a SharedMemory segment "
        "(SharedMemory(..., create=True)) contains an unlink() path, the "
        "triplestore/shm.py lifecycle discipline"
    ),
    "ERR-RAISE": (
        "only repro.errors types are raised across the api.py / "
        "repro.service boundary (re-raises of caught exceptions are "
        "fine), so every failure crosses the wire as a typed, "
        "status-mapped error"
    ),
    "ERR-MAP": (
        "every concrete (leaf) repro.errors exception class appears "
        "explicitly in service/protocol.py's _STATUS_MAP — no leaf may "
        "rely on the family fallthrough, so adding an error type forces "
        "a deliberate wire-status decision"
    ),
    "ERR-ORDER": (
        "_STATUS_MAP entries are ordered subclass-before-superclass; an "
        "entry preceded by one of its base classes is unreachable"
    ),
    "SHIM-CALL": (
        "no calls to the deprecated query_* shims (query_pairs, "
        "query_gxpath, query_rpq, query_nre, query_nsparql, "
        "query_datalog) outside their own definitions and "
        "pytest.warns(DeprecationWarning) blocks"
    ),
    "SPAWN-STATE": (
        "spawn-critical modules (procpool, shm, sharded) keep "
        "module-level state spawn-safe: no threads, pools, processes or "
        "shared-memory segments created at import time, and "
        "multiprocessing contexts are requested as get_context('spawn')"
    ),
}
