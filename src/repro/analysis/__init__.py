"""Static analysis: the plan verifier and the repo-invariant linter.

Two independent prongs share this package:

* :mod:`repro.analysis.verify` — a pass over compiled physical plans
  (:mod:`repro.core.plan`) that proves, without executing, that a plan
  respects the operator typing, parameter, partitioning, lowering and
  cache invariants catalogued in :mod:`repro.analysis.invariants`.
  Wired into ``compile_plan`` behind the ``REPRO_PLAN_VERIFY``
  environment variable and surfaced as ``repro lint-plan`` and the
  ``verified`` field of ``explain --json``.
* :mod:`repro.analysis.lint` — an ``ast``-based linter encoding the
  repository's own coding invariants (lock discipline, shared-memory
  lifecycle, error-boundary typing, deprecation hygiene, spawn
  safety).  Runnable as ``repro lint`` or ``scripts/lint.py``.
"""

from repro.analysis.invariants import INVARIANTS, LINT_RULES, Violation
from repro.analysis.verify import assert_plan_valid, verify_compiled, verify_plan

__all__ = [
    "INVARIANTS",
    "LINT_RULES",
    "Violation",
    "assert_plan_valid",
    "verify_compiled",
    "verify_plan",
]
