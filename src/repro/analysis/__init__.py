"""Static analysis: plan verifier, repo linter and semantic analyzer.

Three independent prongs share this package (and one ``Finding``
record plus one rule-ID namespace, :data:`repro.analysis.invariants.RULES`):

* :mod:`repro.analysis.verify` — a pass over compiled physical plans
  (:mod:`repro.core.plan`) that proves, without executing, that a plan
  respects the operator typing, parameter, partitioning, lowering and
  cache invariants catalogued in :mod:`repro.analysis.invariants`.
  Wired into ``compile_plan`` behind the ``REPRO_PLAN_VERIFY``
  environment variable and surfaced as ``repro lint-plan`` and the
  ``verified`` field of ``explain --json``.
* :mod:`repro.analysis.lint` — an ``ast``-based linter encoding the
  repository's own coding invariants (lock discipline, shared-memory
  lifecycle, error-boundary typing, deprecation hygiene, spawn
  safety, env-var documentation).  Runnable as ``repro lint`` or
  ``scripts/lint.py``.
* :mod:`repro.analysis.semantics` — satisfiability / emptiness /
  redundancy verdicts over TriAL(*) expressions (union-find closure of
  condition conjunctions, bottom-up emptiness).  The verdicts gate the
  optimizer's pruning rewrites and the planner's constant-empty
  short-circuit, and surface as ``repro analyze``, the ``analysis``
  field of ``explain --json`` and service-envelope warnings.
"""

from repro.analysis.invariants import (
    INVARIANTS,
    LINT_RULES,
    RULES,
    SEM_RULES,
    Finding,
    Violation,
)
from repro.analysis.verify import assert_plan_valid, verify_compiled, verify_plan

__all__ = [
    "INVARIANTS",
    "LINT_RULES",
    "RULES",
    "SEM_RULES",
    "Finding",
    "Violation",
    "assert_plan_valid",
    "verify_compiled",
    "verify_plan",
]
