"""Semantic analysis of TriAL(*) expressions.

Selections and joins carry conjunctions of (in)equalities over triple
positions, constants and parameters; whether such a conjunction is
satisfiable — and which conditions are implied by the others — is
decidable by a union-find closure.  This module runs that closure per
conjunction and propagates the verdicts bottom-up through the algebra:

* ``SEM-UNSAT`` — a selection/join condition list admits no satisfying
  triple pair: the equality closure forces two distinct constants into
  one class or contradicts one of the inequalities.
* ``SEM-EMPTY`` — a subexpression is provably empty on *every* store:
  unsatisfiable conditions, ``Diff(e, e)``, an empty join/intersect
  operand, the star of an empty base.
* ``SEM-TRIVIAL-STAR`` — a star whose fixpoint is its base: the step
  conditions are unsatisfiable (the join never fires, so
  ``star(e) ≡ e``) or the operand is the same star (idempotence).
* ``SEM-REDUNDANT`` — a condition list that is not a minimal core:
  some condition is implied by the closure of the others.
* ``SEM-UNKNOWN-REL`` — with a store supplied, a referenced relation
  the store does not define (informational; evaluates empty).

The closure keeps the paper's θ/η distinction sound: θ-equalities
(objects) also equate the positions' ρ-values (ρ is a function), but
η-equalities (data values) never propagate back to objects.  Parameters
are opaque fixed values — two occurrences of ``$p`` are equal, and no
relation between distinct parameters (or a parameter and a constant) is
ever assumed — so every verdict on a canonicalized expression is sound
for *all* bindings, which is what lets the optimizer and the plan cache
act on them.

The verdict helpers (:func:`conditions_unsat`, :func:`condition_core`,
:func:`expr_is_empty`, :func:`star_is_trivial`) gate the optimizer's
pruning rewrites; :func:`analyze_expr` renders the verdicts as
:class:`~repro.analysis.invariants.Finding` records for ``repro
analyze``, ``explain`` and the service layer.  Soundness is
differentially tested: every ``SEM-EMPTY``/``SEM-UNSAT`` verdict is
confirmed actually-empty by ``NaiveEngine`` across a seeded sweep.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.analysis.invariants import RULES, Finding
from repro.core.conditions import Cond, Conditions
from repro.core.expressions import (
    Diff,
    Expr,
    Intersect,
    Join,
    Rel,
    Select,
    Star,
    Union,
)
from repro.core.positions import Const, Pos, Term

__all__ = [
    "analyze_expr",
    "condition_core",
    "conditions_unsat",
    "expr_is_empty",
    "star_is_trivial",
]


# --------------------------------------------------------------------- #
# The union-find condition solver
# --------------------------------------------------------------------- #

#: A solver node: ``(kind, key)`` where kind encodes the value space
#: ("obj" for θ — objects — or "data" for η — ρ-values) and the term
#: sort (position / constant / parameter).
_Node = tuple[str, object]


def _node(term: Term, on_data: bool) -> _Node:
    space = "data" if on_data else "obj"
    if isinstance(term, Pos):
        return (f"{space}-pos", term.index)
    if isinstance(term, Const):
        return (f"{space}-const", term.value)
    return (f"{space}-param", term.name)


class _UnionFind:
    """Plain union-find with path compression over solver nodes."""

    __slots__ = ("_parent",)

    def __init__(self) -> None:
        self._parent: dict[_Node, _Node] = {}

    def find(self, node: _Node) -> _Node:
        parent = self._parent.setdefault(node, node)
        if parent == node:
            return node
        root = self.find(parent)
        self._parent[node] = root
        return root

    def union(self, a: _Node, b: _Node) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def nodes(self) -> Iterable[_Node]:
        return self._parent.keys()


class _Solver:
    """The equality closure of one condition conjunction.

    Construction unions all equalities (θ in the object space, η in the
    data space), then closes under ρ-congruence: positions forced to
    hold the same *object* must yield the same *data value*.  The
    reverse direction never fires — equal data values say nothing about
    the objects — matching the paper's semantics of ρ as a function
    from objects to data values.
    """

    def __init__(self, conditions: Iterable[Cond]) -> None:
        self.uf = _UnionFind()
        self.static_false: list[Cond] = []
        self.disequalities: list[Cond] = []
        positions: set[int] = set()
        for cond in conditions:
            if isinstance(cond.left, Const) and isinstance(cond.right, Const):
                # A constant boolean: no closure contribution either way.
                holds = (cond.left.value == cond.right.value) == cond.is_equality
                if not holds:
                    self.static_false.append(cond)
                continue
            positions.update(p.index for p in cond.positions())
            if cond.is_equality:
                self.uf.union(
                    _node(cond.left, cond.on_data), _node(cond.right, cond.on_data)
                )
            else:
                self.disequalities.append(cond)
        # ρ-congruence: i ≡θ j  ⇒  ρ(i) ≡η ρ(j).
        ordered = sorted(positions)
        for i in ordered:
            for j in ordered:
                if i < j and self.uf.find(("obj-pos", i)) == self.uf.find(
                    ("obj-pos", j)
                ):
                    self.uf.union(("data-pos", i), ("data-pos", j))

    # -- verdicts -------------------------------------------------------- #

    def is_unsat(self) -> bool:
        """No triple pair can satisfy the conjunction."""
        if self.static_false:
            return True
        if self._const_clash() is not None:
            return True
        for cond in self.disequalities:
            if self.uf.find(_node(cond.left, cond.on_data)) == self.uf.find(
                _node(cond.right, cond.on_data)
            ):
                return True
        return False

    def _const_clash(self) -> Optional[_Node]:
        """A class root holding two distinct constants, if any."""
        values: dict[_Node, object] = {}
        for node in list(self.uf.nodes()):
            kind, value = node
            if not kind.endswith("-const"):
                continue
            root = self.uf.find(node)
            if root in values:
                if values[root] != value:
                    return root
            else:
                values[root] = value
        return None

    def _class_const(self, node: _Node) -> Optional[tuple[object]]:
        """The constant value ``node``'s class is pinned to (boxed), if any."""
        space = node[0].split("-", 1)[0]
        root = self.uf.find(node)
        for other in list(self.uf.nodes()):
            kind, value = other
            if kind == f"{space}-const" and self.uf.find(other) == root:
                return (value,)
        return None

    def entails(self, cond: Cond) -> bool:
        """The conjunction implies ``cond`` (so ``cond`` is redundant).

        Only called on satisfiable conjunctions; an equality is entailed
        when its endpoints already share a class, an inequality when the
        endpoints' classes are pinned to distinct constants or an
        equivalent inequality is already present.
        """
        if isinstance(cond.left, Const) and isinstance(cond.right, Const):
            return (cond.left.value == cond.right.value) == cond.is_equality
        left = _node(cond.left, cond.on_data)
        right = _node(cond.right, cond.on_data)
        if cond.is_equality:
            return self.uf.find(left) == self.uf.find(right)
        lv = self._class_const(left)
        rv = self._class_const(right)
        if lv is not None and rv is not None and lv[0] != rv[0]:
            return True
        ends = {self.uf.find(left), self.uf.find(right)}
        for other in self.disequalities:
            if other.on_data != cond.on_data:
                continue
            other_ends = {
                self.uf.find(_node(other.left, other.on_data)),
                self.uf.find(_node(other.right, other.on_data)),
            }
            if other_ends == ends:
                return True
        return False


# --------------------------------------------------------------------- #
# Public verdict helpers (these gate the optimizer's rewrites)
# --------------------------------------------------------------------- #


def conditions_unsat(conditions: Iterable[Cond]) -> bool:
    """True when the conjunction admits no satisfying triple pair.

    Sound for every store and every parameter binding: parameters are
    treated as opaque fixed values, so only contradictions forced by
    the conjunction itself are reported.

    >>> from repro.core.conditions import parse_conditions
    >>> conditions_unsat(parse_conditions("1='a' & 1='b'"))
    True
    >>> conditions_unsat(parse_conditions("1='a' & 2='b'"))
    False
    >>> conditions_unsat(parse_conditions("1=2 & 2=3 & 1!=3"))
    True
    """
    return _Solver(conditions).is_unsat()


def condition_core(conditions: Conditions) -> Conditions:
    """A minimal core: drop every condition the others imply.

    Greedy left-to-right reduction; the result is equivalent to the
    input (on satisfiable inputs) and no member is entailed by the
    rest.

    >>> from repro.core.conditions import parse_conditions
    >>> condition_core(parse_conditions("1=2 & 2=1"))
    (2=1,)
    """
    kept = list(conditions)
    i = 0
    while i < len(kept):
        rest = kept[:i] + kept[i + 1 :]
        if _Solver(rest).entails(kept[i]):
            kept.pop(i)
        else:
            i += 1
    return tuple(kept)


def star_is_trivial(expr: Star) -> bool:
    """``star(e) ≡ e``: unsatisfiable step conditions or a nested star.

    With unsatisfiable conditions the closure join never produces a
    tuple, so the fixpoint accumulator stays at the base; a star over
    the *same* star is the optimizer's idempotence case.
    """
    if conditions_unsat(expr.conditions):
        return True
    inner = expr.expr
    return (
        isinstance(inner, Star)
        and inner.out == expr.out
        and frozenset(inner.conditions) == frozenset(expr.conditions)
        and inner.side == expr.side
    )


def expr_is_empty(expr: Expr) -> bool:
    """True when ``expr`` provably evaluates to zero triples on every store.

    Store-independent by design (base relations are never assumed
    empty), so the verdict is safe to bake into cached plans.
    """
    return _empty_memo(expr, {})


def _empty_memo(expr: Expr, memo: dict[Expr, bool]) -> bool:
    cached = memo.get(expr)
    if cached is not None:
        return cached
    empty = False
    if isinstance(expr, Select):
        empty = _empty_memo(expr.expr, memo) or conditions_unsat(expr.conditions)
    elif isinstance(expr, Join):
        empty = (
            _empty_memo(expr.left, memo)
            or _empty_memo(expr.right, memo)
            or conditions_unsat(expr.conditions)
        )
    elif isinstance(expr, Union):
        empty = _empty_memo(expr.left, memo) and _empty_memo(expr.right, memo)
    elif isinstance(expr, Intersect):
        empty = _empty_memo(expr.left, memo) or _empty_memo(expr.right, memo)
    elif isinstance(expr, Diff):
        empty = _empty_memo(expr.left, memo) or expr.left == expr.right
    elif isinstance(expr, Star):
        # star(e) ⊇ e (the accumulator starts from the base), so the
        # star is empty exactly when the base is.
        empty = _empty_memo(expr.expr, memo)
    memo[expr] = empty
    return empty


# --------------------------------------------------------------------- #
# Findings
# --------------------------------------------------------------------- #

_LABEL_MAX = 72


def _label(expr: Expr) -> str:
    """The expression's paper-style repr, truncated for one-line output."""
    text = repr(expr)
    if len(text) > _LABEL_MAX:
        text = text[: _LABEL_MAX - 1] + "…"
    return text


def _fmt_conds(conditions: Sequence[Cond]) -> str:
    return " & ".join(map(repr, conditions))


def _dropped(original: Conditions, core: Conditions) -> list[Cond]:
    """Multiset difference original − core, in original order."""
    remaining = list(core)
    out: list[Cond] = []
    for cond in original:
        if cond in remaining:
            remaining.remove(cond)
        else:
            out.append(cond)
    return out


def _condition_findings(node: Expr) -> Iterable[Finding]:
    """SEM-UNSAT / SEM-TRIVIAL-STAR / SEM-REDUNDANT for one operator."""
    if isinstance(node, (Select, Join)):
        if conditions_unsat(node.conditions):
            yield Finding(
                "SEM-UNSAT",
                f"conditions [{_fmt_conds(node.conditions)}] are "
                "unsatisfiable; the operator produces no triples",
                op=_label(node),
            )
            return
    elif isinstance(node, Star):
        if star_is_trivial(node):
            reason = (
                "its step conditions are unsatisfiable"
                if conditions_unsat(node.conditions)
                else "its operand is the same closure (idempotent)"
            )
            yield Finding(
                "SEM-TRIVIAL-STAR",
                f"the star never iterates ({reason}); "
                "star(e) is equivalent to e",
                op=_label(node),
            )
        if conditions_unsat(node.conditions):
            return
    else:
        return
    core = condition_core(node.conditions)
    if len(core) < len(node.conditions):
        dropped = _dropped(node.conditions, core)
        yield Finding(
            "SEM-REDUNDANT",
            f"conditions [{_fmt_conds(dropped)}] are implied by "
            f"[{_fmt_conds(core)}] and can be dropped",
            op=_label(node),
        )


def analyze_expr(
    expr: Expr,
    store=None,
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """All semantic findings for ``expr`` (deterministic order).

    ``store`` (optional) enables ``SEM-UNKNOWN-REL``; ``select`` keeps
    only the named rules, ``ignore`` drops them — both validated
    against the shared :data:`~repro.analysis.invariants.RULES`
    namespace, so a typo raises ``ValueError`` instead of silently
    analyzing nothing.
    """
    for name, ids in (("select", select), ("ignore", ignore)):
        unknown = sorted(set(ids or ()) - set(RULES))
        if unknown:
            raise ValueError(
                f"unknown {name} rule(s) {', '.join(unknown)}; known rules: "
                + ", ".join(sorted(RULES))
            )
    findings: list[Finding] = []
    memo: dict[Expr, bool] = {}

    # Per-operator condition verdicts, one per distinct subexpression.
    for node in dict.fromkeys(expr.walk()):
        findings.extend(_condition_findings(node))

    # Maximal provably-empty regions (children of an empty region are
    # suppressed: the outermost verdict is the actionable one).
    reported: set[Expr] = set()

    def report_empty(node: Expr, under_empty: bool) -> None:
        empty = _empty_memo(node, memo)
        if empty and not under_empty and node not in reported:
            reported.add(node)
            what = "the query" if node is expr else "this subexpression"
            findings.append(
                Finding(
                    "SEM-EMPTY",
                    f"{what} provably evaluates to zero triples on every "
                    "store",
                    op=_label(node),
                )
            )
        for child in node.children():
            report_empty(child, under_empty or empty)

    report_empty(expr, False)

    if store is not None:
        known = set(store.relation_names)
        for name in sorted(expr.relation_names() - known):
            findings.append(
                Finding(
                    "SEM-UNKNOWN-REL",
                    f"relation {name!r} is not defined in the store "
                    f"(known: {', '.join(sorted(known)) or 'none'}); the "
                    "reference evaluates empty",
                    op=_label(Rel(name)),
                )
            )

    if select:
        keep = set(select)
        findings = [f for f in findings if f.rule in keep]
    if ignore:
        drop = set(ignore)
        findings = [f for f in findings if f.rule not in drop]
    return findings
