"""The repo-invariant linter: ``ast``-based rules for this codebase.

Generic linters cannot know that ``_LRU._data`` is only safe under
``self._lock``, that every ``SharedMemory`` create needs an ``unlink``
path, or that the service boundary must raise only ``repro.errors``
types that the wire protocol maps to a status code.  Previous PRs
enforced those invariants by review; this module encodes them as
checkable rules (catalogued in
:data:`repro.analysis.invariants.LINT_RULES`) so they hold by CI
instead of by memory.

Run as ``repro lint``, ``python -m repro.analysis.lint`` or
``scripts/lint.py``.  Output is deterministic ``path:line: RULE-ID
message`` lines sorted by location; exit code 1 when anything fires,
0 on a clean tree.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.analysis.invariants import LINT_RULES, RULES, Finding

__all__ = ["Finding", "lint_file", "main", "run_lint"]

#: The deprecated Database query shims (each body delegates to the v2
#: ``query()`` API and warns); callable only from their own definitions
#: and from tests that assert on the DeprecationWarning itself.
SHIM_NAMES = frozenset(
    {
        "query_pairs",
        "query_gxpath",
        "query_rpq",
        "query_nre",
        "query_nsparql",
        "query_datalog",
    }
)

#: Modules whose import runs in spawned worker processes — anything the
#: import itself starts (threads, pools, shm segments) leaks per worker.
SPAWN_MODULE_SUFFIXES = (
    "repro/core/engines/procpool.py",
    "repro/core/engines/sharded.py",
    "repro/triplestore/shm.py",
    "repro/triplestore/sharded.py",
)

#: Factories that must never run at module import time in spawn-critical
#: modules (module-level locks and constants are fine; live resources
#: are not).
SPAWN_FACTORIES = frozenset(
    {
        "Thread",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "Process",
        "Pool",
        "SharedMemory",
    }
)


def _finding(path: str, line: int, rule: str, message: str) -> Finding:
    """A lint finding (source-located) on the unified analysis record."""
    return Finding(rule, message, path, line)


# --------------------------------------------------------------------- #
# Small AST helpers
# --------------------------------------------------------------------- #


def _call_name(node: ast.Call) -> Optional[str]:
    """The trailing name of a call target (``f`` in both ``f()`` and ``m.f()``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_pytest_warns_deprecation(node: ast.expr) -> bool:
    """Matches ``pytest.warns(DeprecationWarning...)`` as a with-item."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "warns"):
        return False
    if not (isinstance(func.value, ast.Name) and func.value.id == "pytest"):
        return False
    for arg in node.args:
        if isinstance(arg, ast.Name) and arg.id == "DeprecationWarning":
            return True
    return False


def _with_holds_lock(node) -> bool:
    """Matches ``with self._lock:`` (also as one of several items)."""
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Attribute) and expr.attr == "_lock":
            return True
    return False


# --------------------------------------------------------------------- #
# Per-file rules
# --------------------------------------------------------------------- #


def _check_bare_except(tree: ast.AST, rel: str) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield _finding(
                rel,
                node.lineno,
                "BARE-EXCEPT",
                "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                "name the exception types",
            )


def _check_lru_lock(tree: ast.AST, rel: str) -> Iterator[Finding]:
    """``_LRU._data`` only under ``with self._lock`` (db.py only)."""
    findings: list[Finding] = []

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.class_stack: list[str] = []
            self.func_stack: list[str] = []
            self.lock_depth = 0

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self.class_stack.append(node.name)
            self.generic_visit(node)
            self.class_stack.pop()

        def _visit_func(self, node) -> None:
            self.func_stack.append(node.name)
            self.generic_visit(node)
            self.func_stack.pop()

        visit_FunctionDef = _visit_func
        visit_AsyncFunctionDef = _visit_func

        def _visit_with(self, node) -> None:
            held = _with_holds_lock(node)
            self.lock_depth += held
            self.generic_visit(node)
            self.lock_depth -= held

        visit_With = _visit_with
        visit_AsyncWith = _visit_with

        def visit_Attribute(self, node: ast.Attribute) -> None:
            if node.attr == "_data":
                in_lru = "_LRU" in self.class_stack
                if not in_lru:
                    findings.append(
                        _finding(
                            rel,
                            node.lineno,
                            "LRU-LOCK",
                            "_LRU._data accessed from outside the class; go "
                            "through its locked get/clear/info methods",
                        )
                    )
                elif self.lock_depth == 0 and (
                    not self.func_stack or self.func_stack[-1] != "__init__"
                ):
                    findings.append(
                        _finding(
                            rel,
                            node.lineno,
                            "LRU-LOCK",
                            "_LRU._data touched outside 'with self._lock'",
                        )
                    )
            self.generic_visit(node)

    Visitor().visit(tree)
    return iter(findings)


def _check_shm_unlink(tree: ast.AST, rel: str) -> Iterator[Finding]:
    creates = [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and _call_name(node) == "SharedMemory"
        and any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )
    ]
    if not creates:
        return
    has_unlink = any(
        isinstance(node, ast.Attribute) and node.attr == "unlink"
        for node in ast.walk(tree)
    )
    if has_unlink:
        return
    for node in creates:
        yield _finding(
            rel,
            node.lineno,
            "SHM-UNLINK",
            "SharedMemory created with create=True but this module has no "
            "unlink() path; the segment outlives the process",
        )


def _check_err_raise(
    tree: ast.AST, rel: str, error_classes: frozenset[str]
) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        # Re-raising a caught variable (lowercase) and non-Name forms
        # (``raise box["error"]``) are fine: the object was already
        # typed where it was first raised.
        if name is None or not name[:1].isupper():
            continue
        if name not in error_classes:
            yield _finding(
                rel,
                node.lineno,
                "ERR-RAISE",
                f"raises {name}, not a repro.errors type; the wire protocol "
                "cannot map it to a status code",
            )


def _check_shim_calls(tree: ast.AST, rel: str) -> Iterator[Finding]:
    findings: list[Finding] = []
    is_db = rel.endswith("repro/db.py")

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.func_stack: list[str] = []
            self.warns_depth = 0

        def _visit_func(self, node) -> None:
            self.func_stack.append(node.name)
            self.generic_visit(node)
            self.func_stack.pop()

        visit_FunctionDef = _visit_func
        visit_AsyncFunctionDef = _visit_func

        def _visit_with(self, node) -> None:
            warns = any(
                _is_pytest_warns_deprecation(item.context_expr)
                for item in node.items
            )
            self.warns_depth += warns
            self.generic_visit(node)
            self.warns_depth -= warns

        visit_With = _visit_with
        visit_AsyncWith = _visit_with

        def visit_Call(self, node: ast.Call) -> None:
            name = _call_name(node)
            if (
                name in SHIM_NAMES
                and self.warns_depth == 0
                and not (is_db and name in self.func_stack)
            ):
                findings.append(
                    _finding(
                        rel,
                        node.lineno,
                        "SHIM-CALL",
                        f"calls deprecated {name}(); use the v2 query() API "
                        "(or wrap in pytest.warns(DeprecationWarning) when "
                        "testing the shim itself)",
                    )
                )
            self.generic_visit(node)

    Visitor().visit(tree)
    return iter(findings)


def _check_spawn_state(tree: ast.AST, rel: str) -> Iterator[Finding]:
    findings: list[Finding] = []

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.func_depth = 0

        def _visit_func(self, node) -> None:
            self.func_depth += 1
            self.generic_visit(node)
            self.func_depth -= 1

        visit_FunctionDef = _visit_func
        visit_AsyncFunctionDef = _visit_func
        visit_Lambda = _visit_func

        def visit_Call(self, node: ast.Call) -> None:
            name = _call_name(node)
            if name == "get_context":
                ok = (
                    len(node.args) >= 1
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value == "spawn"
                )
                if not ok:
                    findings.append(
                        _finding(
                            rel,
                            node.lineno,
                            "SPAWN-STATE",
                            "multiprocessing context must be "
                            "get_context('spawn'); fork would snapshot "
                            "live threads and locks",
                        )
                    )
            elif name in SPAWN_FACTORIES and self.func_depth == 0:
                findings.append(
                    _finding(
                        rel,
                        node.lineno,
                        "SPAWN-STATE",
                        f"{name}(...) at module import time; spawn-critical "
                        "modules re-import in every worker, so live "
                        "resources must be created lazily",
                    )
                )
            self.generic_visit(node)

    Visitor().visit(tree)
    return iter(findings)


#: Calls that prove a function flushes to stable storage (directly or
#: via the repro.storage.fsutil helpers, which fsync internally).
_FSYNC_EVIDENCE = frozenset(
    {"fsync", "fsync_fileobj", "fsync_dir", "atomic_write_bytes"}
)
#: Calls that prove new content is renamed into place, not written over
#: the final path.
_RENAME_EVIDENCE = frozenset({"replace", "rename", "atomic_write_bytes"})


def _open_write_mode(node: ast.Call) -> Optional[str]:
    """The mode string of a builtin ``open`` call, if statically known."""
    if not (isinstance(node.func, ast.Name) and node.func.id == "open"):
        return None
    mode = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _check_stor_atomic(tree: ast.AST, rel: str) -> Iterator[Finding]:
    """STOR-ATOMIC: crash-safe write discipline under repro/storage/.

    Per function: opening a file for (over)writing (``w``/``x`` modes,
    ``write_text``, ``write_bytes``) requires both fsync and
    rename-into-place evidence in the same function; an
    ``os.replace``/``os.rename`` requires fsync evidence.  Append and
    read-modify handles (``ab``, ``r+b`` — the WAL's) are exempt: their
    protocols fsync at the commit point, not per write.
    """
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        write_opens: list[tuple[int, str]] = []
        renames: list[int] = []
        evidence_fsync = False
        evidence_rename = False
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in _FSYNC_EVIDENCE:
                evidence_fsync = True
            if name in _RENAME_EVIDENCE:
                evidence_rename = True
            if name in ("replace", "rename") and isinstance(
                node.func, ast.Attribute
            ):
                renames.append(node.lineno)
            mode = _open_write_mode(node)
            if mode is not None and ("w" in mode or "x" in mode):
                write_opens.append((node.lineno, mode))
            if name in ("write_text", "write_bytes"):
                write_opens.append((node.lineno, name))
        for line, what in write_opens:
            if not (evidence_fsync and evidence_rename):
                yield _finding(
                    rel,
                    line,
                    "STOR-ATOMIC",
                    f"file opened for writing ({what!r}) without fsync + "
                    "rename-into-place in the same function; durable "
                    "writes must stage a tmp sibling, fsync it, and "
                    "os.replace it (see repro.storage.fsutil)",
                )
        for line in renames:
            if not evidence_fsync:
                yield _finding(
                    rel,
                    line,
                    "STOR-ATOMIC",
                    "os.replace/os.rename without a flush+fsync in the "
                    "same function; renaming un-synced content commits "
                    "a file whose bytes may not survive a crash",
                )


# --------------------------------------------------------------------- #
# Cross-file rules: the errors.py ↔ protocol.py contract
# --------------------------------------------------------------------- #


def _error_hierarchy(tree: ast.AST) -> dict[str, tuple[str, ...]]:
    """``{class name: direct base names}`` for every class in errors.py."""
    classes: dict[str, tuple[str, ...]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            classes[node.name] = tuple(
                b.id for b in node.bases if isinstance(b, ast.Name)
            )
    return classes


def _ancestors(name: str, classes: dict[str, tuple[str, ...]]) -> set[str]:
    out: set[str] = set()
    stack = list(classes.get(name, ()))
    while stack:
        base = stack.pop()
        if base in out or base not in classes:
            continue
        out.add(base)
        stack.extend(classes[base])
    return out


def _status_map_entries(tree: ast.AST):
    """The ``_STATUS_MAP`` assignment: ``(node, [(name, line), ...])``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names = [node.target.id]
        else:
            continue
        if "_STATUS_MAP" in names:
            entries = []
            if isinstance(node.value, (ast.Tuple, ast.List)):
                for elt in node.value.elts:
                    if (
                        isinstance(elt, (ast.Tuple, ast.List))
                        and elt.elts
                        and isinstance(elt.elts[0], ast.Name)
                    ):
                        entries.append((elt.elts[0].id, elt.lineno))
            return node, entries
    return None, []


def _check_status_map(
    errors_tree: ast.AST, protocol_tree: ast.AST, protocol_rel: str
) -> Iterator[Finding]:
    classes = _error_hierarchy(errors_tree)
    node, entries = _status_map_entries(protocol_tree)
    if node is None:
        yield _finding(
            protocol_rel,
            1,
            "ERR-MAP",
            "no _STATUS_MAP assignment found; the wire protocol has no "
            "exception→status table to check",
        )
        return
    mapped = {name for name, _ in entries}
    parents = {base for bases in classes.values() for base in bases}
    leaves = [name for name in classes if name not in parents]
    for leaf in leaves:
        if leaf not in mapped:
            yield _finding(
                protocol_rel,
                node.lineno,
                "ERR-MAP",
                f"errors.{leaf} has no explicit _STATUS_MAP entry; leaf "
                "types must not rely on the family fallthrough",
            )
    # ERR-ORDER: isinstance dispatch is first-match, so an entry preceded
    # by one of its base classes can never fire.
    for i, (name, line) in enumerate(entries):
        ancestors = _ancestors(name, classes)
        for prior, _ in entries[:i]:
            if prior in ancestors:
                yield _finding(
                    protocol_rel,
                    line,
                    "ERR-ORDER",
                    f"{name} entry is unreachable: its base class {prior} "
                    "matches first",
                )
                break


# --------------------------------------------------------------------- #
# Cross-file rule: REPRO_* env vars ↔ README documentation
# --------------------------------------------------------------------- #

#: A REPRO_* environment-variable name as it appears in a string
#: literal.  A trailing underscore (``"REPRO_SERVICE_"``) marks a
#: *prefix* under which vars are read dynamically.
_ENV_VAR_RE = re.compile(r"^REPRO_[A-Z0-9_]+$")


def _env_literals(tree: ast.AST) -> Iterator[tuple[str, int]]:
    """Every ``REPRO_*`` string literal in a module, with its line."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and _ENV_VAR_RE.match(node.value)
        ):
            yield node.value, node.lineno


def _documented_env_vars(readme_text: str) -> set[str]:
    """REPRO_* names mentioned in README table rows (lines starting '|')."""
    documented: set[str] = set()
    for line in readme_text.splitlines():
        if line.lstrip().startswith("|"):
            documented.update(re.findall(r"REPRO_[A-Z0-9_]+", line))
    return documented


def _check_env_doc(root: Path) -> Iterator[Finding]:
    """ENV-DOC: every REPRO_* var read under src/ is in the README table.

    The repo threads all configuration through ``REPRO_*`` env-var name
    constants (``_BACKEND_ENV = "REPRO_BACKEND"`` and friends), so the
    read sites are exactly the string literals matching the name shape.
    A literal ending in ``_`` is a dynamic *prefix* (the service config
    reads everything under ``REPRO_SERVICE_``); it counts as documented
    when some documented variable starts with it.
    """
    readme = root / "README.md"
    if not readme.is_file():
        return  # synthetic trees without docs have nothing to check
    documented = _documented_env_vars(readme.read_text(encoding="utf-8"))
    src = root / "src"
    if not src.is_dir():
        return
    for path in sorted(src.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        rel = _rel_path(path, root)
        for name, line in _env_literals(tree):
            if name.endswith("_"):
                ok = any(doc.startswith(name) for doc in documented)
                what = f"prefix {name}* has no documented variable under it"
            else:
                ok = name in documented
                what = f"{name} is read here but missing"
            if not ok:
                yield _finding(
                    rel,
                    line,
                    "ENV-DOC",
                    f"{what} from the README environment-variable table",
                )


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(
    path: Path, root: Path, error_classes: frozenset[str]
) -> list[Finding]:
    """All per-file findings for one source file (scoped by its path)."""
    rel = _rel_path(path, root)
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    findings: list[Finding] = []
    findings.extend(_check_bare_except(tree, rel))
    findings.extend(_check_shm_unlink(tree, rel))
    findings.extend(_check_shim_calls(tree, rel))
    if rel.endswith("repro/db.py"):
        findings.extend(_check_lru_lock(tree, rel))
    if rel.endswith("repro/api.py") or "repro/service/" in rel:
        findings.extend(_check_err_raise(tree, rel, error_classes))
    if rel.endswith(SPAWN_MODULE_SUFFIXES):
        findings.extend(_check_spawn_state(tree, rel))
    if "repro/storage/" in rel:
        findings.extend(_check_stor_atomic(tree, rel))
    return findings


def _discover(root: Path, paths: Optional[Sequence[str]]) -> list[Path]:
    if paths:
        targets = [Path(p) if Path(p).is_absolute() else root / p for p in paths]
    else:
        targets = [root / d for d in ("src", "scripts", "tests", "benchmarks")]
    files: list[Path] = []
    for target in targets:
        if target.is_file():
            files.append(target)
        elif target.is_dir():
            files.extend(
                p
                for p in sorted(target.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
    return files


def run_lint(
    root: str | Path = ".",
    *,
    paths: Optional[Sequence[str]] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Lint the tree under ``root`` and return sorted findings.

    ``paths`` restricts the walk to specific files/directories (still
    resolved against ``root`` for rule scoping); ``select`` keeps only
    the named rules, ``ignore`` drops them.  Unknown rule IDs raise
    ``ValueError`` — a typo must not silently lint nothing.
    """
    root = Path(root)
    for name, ids in (("select", select), ("ignore", ignore)):
        unknown = sorted(set(ids or ()) - set(RULES))
        if unknown:
            raise ValueError(
                f"unknown {name} rule(s) {', '.join(unknown)}; known rules: "
                + ", ".join(sorted(RULES))
            )
    errors_path = root / "src" / "repro" / "errors.py"
    error_classes: frozenset[str] = frozenset()
    errors_tree = None
    if errors_path.is_file():
        errors_tree = ast.parse(errors_path.read_text(encoding="utf-8"))
        error_classes = frozenset(_error_hierarchy(errors_tree))
    findings: list[Finding] = []
    for path in _discover(root, paths):
        findings.extend(lint_file(path, root, error_classes))
    protocol_path = root / "src" / "repro" / "service" / "protocol.py"
    if errors_tree is not None and protocol_path.is_file():
        protocol_tree = ast.parse(protocol_path.read_text(encoding="utf-8"))
        findings.extend(
            _check_status_map(
                errors_tree, protocol_tree, _rel_path(protocol_path, root)
            )
        )
    findings.extend(_check_env_doc(root))
    if select:
        keep = set(select)
        findings = [f for f in findings if f.rule in keep]
    if ignore:
        drop = set(ignore)
        findings = [f for f in findings if f.rule not in drop]
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


def _split_rules(values: Optional[Sequence[str]]) -> Optional[list[str]]:
    if not values:
        return None
    out: list[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Check the repository's own coding invariants "
        "(see repro.analysis.invariants.LINT_RULES).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src, scripts, tests, "
        "benchmarks under --root)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root the rule scopes resolve against (default: cwd)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULES",
        help="comma-separated rule IDs to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULES",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule, text in LINT_RULES.items():
            print(f"{rule}: {text}")
        return 0
    try:
        findings = run_lint(
            args.root,
            paths=args.paths or None,
            select=_split_rules(args.select),
            ignore=_split_rules(args.ignore),
        )
    except ValueError as err:
        print(str(err), file=sys.stderr)
        return 2
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
