"""Static verification of compiled physical plans.

:func:`verify_plan` walks a :class:`~repro.core.plan.PlanOp` tree and
checks every invariant in :data:`repro.analysis.invariants.INVARIANTS`
without executing anything.  Each check *recomputes* the property from
the plan structure using the same helpers the compiler used to
establish it (:func:`~repro.core.plan.split_conditions`,
:meth:`~repro.core.plan.JoinSpec.index_key_positions`,
:func:`~repro.core.plan.shard_plan_expectations`, the dense-lowering
formula), so a freshly compiled plan always verifies clean and any
mutation — hand-built plans, future rewrite passes, bugs in a join
enumerator — that breaks an executor assumption is caught before the
executor trusts it.

Three entry points:

* :func:`verify_plan` — the core pass; returns the violations.
* :func:`assert_plan_valid` — raises
  :class:`~repro.errors.PlanVerificationError` on any violation; this
  is what ``compile_plan`` calls when ``REPRO_PLAN_VERIFY`` is on.
* :func:`verify_compiled` — convenience wrapper that derives the
  backend/stats/limits from an engine + store pair the way the engine's
  own ``compile`` did; used by ``explain --json``'s ``verified`` field
  and ``repro lint-plan``.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

from repro.analysis.invariants import Finding, Violation
from repro.core.expressions import LEFT, RIGHT, Expr, Universe
from repro.core.params import expr_params, plan_params
from repro.core.plan import (
    DENSE_MATRIX_MAX_OBJECTS,
    _DENSE_MIN_AVG_DEGREE,
    FilterOp,
    HashJoinOp,
    IndexLookupOp,
    JoinSpec,
    PlanOp,
    ReachStarOp,
    ScanOp,
    StarOp,
    UniverseOp,
    shard_plan_expectations,
    split_conditions,
)
from repro.errors import PlanVerificationError

__all__ = ["assert_plan_valid", "verify_compiled", "verify_plan"]


def _unique_ops(plan: PlanOp) -> Iterator[PlanOp]:
    """Pre-order traversal visiting each shared operator exactly once.

    ``PlanOp.walk`` yields shared sub-plans once per edge (right for
    explain output); verification wants one report per operator.
    """
    seen: set[int] = set()
    for op in plan.walk():
        if id(op) not in seen:
            seen.add(id(op))
            yield op


def _violation(rule: str, op: str, message: str) -> Finding:
    """A plan-verifier finding (operator-located, no source path)."""
    return Finding(rule, message, op=op)


def _label(op: PlanOp) -> str:
    """``op.label()``, robust to mutations that break the formatter itself."""
    try:
        return op.label()
    except Exception:
        return type(op).__name__


def _local_condition_violations(
    op: PlanOp, conditions, what: str
) -> Iterator[Violation]:
    """Selection conditions must stay within one operand (positions 0..2)."""
    for cond in conditions:
        if cond.max_position() > 2:
            yield _violation(
                "PLAN-ARITY",
                _label(op),
                f"{what} condition {cond!r} references a right-operand "
                "position; single-operand filters may only use positions 1..3",
            )


def _spec_violations(op: PlanOp, spec: JoinSpec) -> Iterator[Violation]:
    """Output-spec typing plus the condition-split consistency check."""
    out = spec.out
    if (
        not isinstance(out, tuple)
        or len(out) != 3
        or not all(isinstance(i, int) and 0 <= i <= 5 for i in out)
    ):
        yield _violation(
            "PLAN-ARITY",
            _label(op),
            f"output spec {out!r} is not three positions in 1..3/1'..3'",
        )
    expected = split_conditions(spec.conditions)
    actual = (
        spec.left_local,
        spec.right_local,
        spec.cross_eq,
        spec.cross_neq,
        spec.const_only,
    )
    if actual != expected:
        names = ("left_local", "right_local", "cross_eq", "cross_neq", "const_only")
        broken = [n for n, a, e in zip(names, actual, expected) if a != e]
        yield _violation(
            "PLAN-ARITY",
            _label(op),
            "join-spec condition split disagrees with a recomputation from "
            f"its condition list ({', '.join(broken)}); the spec was mutated "
            "after construction",
        )


def _check_arity(plan: PlanOp) -> Iterator[Violation]:
    for op in _unique_ops(plan):
        if isinstance(op, HashJoinOp):
            yield from _spec_violations(op, op.spec)
            if op.build_side not in (LEFT, RIGHT):
                yield _violation(
                    "PLAN-ARITY",
                    _label(op),
                    f"build side {op.build_side!r} is neither left nor right",
                )
        elif isinstance(op, StarOp):
            yield from _spec_violations(op, op.spec)
            if op.side not in (LEFT, RIGHT):
                yield _violation(
                    "PLAN-ARITY",
                    _label(op),
                    f"star side {op.side!r} is neither left nor right",
                )
        elif isinstance(op, FilterOp):
            yield from _local_condition_violations(op, op.conditions, "filter")
        elif isinstance(op, IndexLookupOp):
            yield from _local_condition_violations(op, op.residual, "residual")


def _check_keys(plan: PlanOp) -> Iterator[Violation]:
    for op in _unique_ops(plan):
        if isinstance(op, IndexLookupOp):
            positions = op.positions
            if (
                not positions
                or any(p not in (0, 1, 2) for p in positions)
                or any(a >= b for a, b in zip(positions, positions[1:]))
            ):
                yield _violation(
                    "PLAN-KEY",
                    _label(op),
                    f"index positions {positions!r} are not strictly "
                    "increasing within 1..3",
                )
            if len(op.key) != len(positions):
                yield _violation(
                    "PLAN-KEY",
                    _label(op),
                    f"lookup key has {len(op.key)} value(s) for "
                    f"{len(positions)} indexed position(s)",
                )
        elif isinstance(op, HashJoinOp) and op.index_positions is not None:
            build = op.right if op.build_side == RIGHT else op.left
            if not isinstance(build, ScanOp):
                yield _violation(
                    "PLAN-KEY",
                    _label(op),
                    "store-index reuse requires a base-relation scan on the "
                    f"build side, found {type(build).__name__}",
                )
            locals_ = (
                op.spec.right_local if op.build_side == RIGHT else op.spec.left_local
            )
            if locals_:
                yield _violation(
                    "PLAN-KEY",
                    _label(op),
                    "store-index reuse with local conditions on the build "
                    "side; the store index holds unfiltered triples",
                )
            expected = op.spec.index_key_positions(op.build_side)
            if expected is None or op.index_positions != expected:
                yield _violation(
                    "PLAN-KEY",
                    _label(op),
                    f"store-index positions {op.index_positions!r} do not "
                    f"match the build side's θ key positions {expected!r}",
                )


def _check_params(
    plan: PlanOp, expr: Optional[Expr], params
) -> Iterator[Violation]:
    if expr is None and params is None:
        return
    declared: set[str] = set(params or ())
    if expr is not None:
        declared.update(expr_params(expr))
    carried = plan_params(plan)
    undeclared = [name for name in carried if name not in declared]
    if not undeclared:
        return
    # Attach each violation to an operator that carries the parameter.
    for op in _unique_ops(plan):
        local = set(plan_params(op)) - {
            n for c in op.children() for n in plan_params(c)
        }
        for name in undeclared:
            if name in local:
                yield _violation(
                    "PLAN-PARAM",
                    _label(op),
                    f"parameter ${name} is not declared by the source "
                    "expression or binding set; bind_plan can never resolve it",
                )


def _check_shard(plan: PlanOp, shard_key_pos: int) -> Iterator[Violation]:
    expected = shard_plan_expectations(plan, shard_key_pos)
    for op in _unique_ops(plan):
        if not isinstance(op, HashJoinOp):
            continue
        want = expected[id(op)][1]
        if op.shard_strategy != want:
            yield _violation(
                "PLAN-SHARD",
                _label(op),
                f"annotated shard strategy {op.shard_strategy!r} but the "
                f"partition states of its inputs require {want!r}; a "
                "dropped or stale exchange would merge shards that are "
                "not co-partitioned",
            )


def _check_dense(
    plan: PlanOp, stats, max_matrix_objects: Optional[int]
) -> Iterator[Violation]:
    want: Optional[str] = None
    if stats is not None:
        limit = (
            DENSE_MATRIX_MAX_OBJECTS
            if max_matrix_objects is None
            else max_matrix_objects
        )
        n = stats.n_objects
        total = stats.total_triples
        dense_ok = 0 < n <= limit and total / n >= _DENSE_MIN_AVG_DEGREE
        want = "dense" if dense_ok else "sparse"
    for op in _unique_ops(plan):
        if isinstance(op, StarOp):
            if op.vector_strategy != "sparse":
                yield _violation(
                    "PLAN-DENSE",
                    _label(op),
                    f"general star lowered to {op.vector_strategy!r}; only "
                    "ReachStarOp re-checks the dense guard at run time and "
                    "can fall back on MatrixTooLargeError",
                )
        elif isinstance(op, ReachStarOp):
            if op.vector_strategy not in ("dense", "sparse"):
                yield _violation(
                    "PLAN-DENSE",
                    _label(op),
                    f"recursive operator carries strategy "
                    f"{op.vector_strategy!r}; columnar execution requires a "
                    "dense/sparse lowering verdict",
                )
            elif want is not None and op.vector_strategy != want:
                yield _violation(
                    "PLAN-DENSE",
                    _label(op),
                    f"lowered to {op.vector_strategy!r} but the statistics "
                    f"({stats.n_objects} objects, {stats.total_triples} "
                    f"triples) dictate {want!r}",
                )


def _check_cache(plan: PlanOp, expr: Expr) -> Iterator[Violation]:
    allowed = expr.relation_names()
    uses_universe = any(isinstance(n, Universe) for n in expr.walk())
    for op in _unique_ops(plan):
        if isinstance(op, (ScanOp, IndexLookupOp)) and op.name not in allowed:
            yield _violation(
                "PLAN-CACHE",
                _label(op),
                f"plan reads relation {op.name!r} outside the expression's "
                f"dependency set {sorted(allowed)}; the cache's version "
                "tokens would never invalidate on its updates",
            )
        elif isinstance(op, UniverseOp) and not uses_universe:
            yield _violation(
                "PLAN-CACHE",
                _label(op),
                "plan materialises U but the expression never mentions it; "
                "cached results would survive domain growth",
            )


def _check_costs(plan: PlanOp) -> Iterator[Violation]:
    for op in _unique_ops(plan):
        for field in ("est_rows", "est_cost"):
            value = getattr(op, field)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                yield _violation(
                    "PLAN-COST",
                    _label(op),
                    f"{field} is {value!r}; estimates must be finite numbers",
                )
            elif value < 0:
                yield _violation(
                    "PLAN-COST",
                    _label(op),
                    f"{field} is negative ({value!r})",
                )
        for child in op.children():
            if (
                isinstance(op.est_cost, (int, float))
                and isinstance(child.est_cost, (int, float))
                and math.isfinite(op.est_cost)
                and math.isfinite(child.est_cost)
                and op.est_cost < child.est_cost
            ):
                yield _violation(
                    "PLAN-COST",
                    _label(op),
                    f"cumulative cost {op.est_cost!r} is below its child's "
                    f"{child.est_cost!r} ({_label(child)}); costs must be "
                    "monotone so the root prices the whole plan",
                )


def verify_plan(
    plan: PlanOp,
    *,
    backend: str = "set",
    expr: Optional[Expr] = None,
    params=None,
    stats=None,
    max_matrix_objects: Optional[int] = None,
    shard_key_pos: int = 0,
) -> tuple[Violation, ...]:
    """Check every plan invariant; return the violations (empty = clean).

    ``backend`` scopes the lowering checks the way ``compile_plan``'s
    lowering step does: PLAN-DENSE applies to ``"columnar"`` and
    ``"sharded"`` plans, PLAN-SHARD to ``"sharded"`` only.  ``expr`` (the
    source expression) enables PLAN-PARAM and PLAN-CACHE; ``params`` is
    an optional iterable of additionally-declared parameter names (a
    prepared statement's binding set).  ``stats`` and
    ``max_matrix_objects`` anchor the dense-lowering recomputation —
    pass the same values compilation used, or ``stats=None`` to skip
    the strategy-agreement half of PLAN-DENSE.
    """
    violations: list[Violation] = []
    violations.extend(_check_arity(plan))
    violations.extend(_check_keys(plan))
    violations.extend(_check_params(plan, expr, params))
    if backend == "sharded":
        violations.extend(_check_shard(plan, shard_key_pos))
    if backend in ("columnar", "sharded"):
        violations.extend(_check_dense(plan, stats, max_matrix_objects))
    if expr is not None:
        violations.extend(_check_cache(plan, expr))
    violations.extend(_check_costs(plan))
    return tuple(violations)


def assert_plan_valid(
    plan: PlanOp,
    *,
    backend: str = "set",
    expr: Optional[Expr] = None,
    params=None,
    stats=None,
    max_matrix_objects: Optional[int] = None,
    shard_key_pos: int = 0,
) -> None:
    """Raise :class:`PlanVerificationError` unless the plan verifies clean."""
    violations = verify_plan(
        plan,
        backend=backend,
        expr=expr,
        params=params,
        stats=stats,
        max_matrix_objects=max_matrix_objects,
        shard_key_pos=shard_key_pos,
    )
    if violations:
        detail = "; ".join(str(v) for v in violations)
        raise PlanVerificationError(
            f"compiled plan violates {len(violations)} invariant(s): {detail}",
            violations,
        )


def verify_compiled(
    expr: Expr,
    plan: PlanOp,
    *,
    store=None,
    engine=None,
    backend: Optional[str] = None,
    params=None,
) -> tuple[Violation, ...]:
    """Verify a plan the way the engine that compiled it would be checked.

    Derives ``backend``/``stats``/``max_matrix_objects``/``shard_key_pos``
    from the ``engine`` + ``store`` pair exactly as the engine's own
    ``compile`` resolved them, so the verdict matches what
    ``REPRO_PLAN_VERIFY=1`` would have enforced at compile time.
    """
    if backend is None:
        backend = getattr(engine, "backend", None) or "set"
    stats = store.stats() if store is not None else None
    if stats is None and backend in ("columnar", "sharded"):
        from repro.triplestore.stats import DEFAULT_STATS

        stats = DEFAULT_STATS
    return verify_plan(
        plan,
        backend=backend,
        expr=expr,
        params=params,
        stats=stats,
        max_matrix_objects=getattr(engine, "max_matrix_objects", None),
        shard_key_pos=getattr(engine, "key_pos", 0),
    )
