"""Tests for conjunctive graph queries (CRPQs and CNREs, §6.2)."""

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.errors import GraphError
from repro.graphdb import GraphDB, cnre, crpq
from repro.workloads.generators import random_graph


@pytest.fixture()
def g() -> GraphDB:
    return GraphDB(
        ["u", "v", "w"],
        [("u", "a", "v"), ("v", "b", "w"), ("u", "a", "w")],
    )


class TestEvaluation:
    def test_single_atom(self, g):
        q = crpq([("x", "a", "y")], free=("x", "y"))
        assert q.evaluate(g) == {("u", "v"), ("u", "w")}

    def test_join_on_shared_variable(self, g):
        q = crpq([("x", "a", "y"), ("y", "b", "z")], free=("x", "z"))
        assert q.evaluate(g) == {("u", "w")}

    def test_existential_variables_projected(self, g):
        q = crpq([("x", "a", "y"), ("y", "b", "z")], free=("x",))
        assert q.evaluate(g) == {("u",)}

    def test_cycle_pattern(self, g):
        q = crpq([("x", "a", "y"), ("x", "a", "z"), ("y", "b", "z")], free=("x",))
        assert q.evaluate(g) == {("u",)}

    def test_cnre_with_nesting(self, g):
        q = cnre([("x", "a.[b]", "y")], free=("x", "y"))
        assert q.evaluate(g) == {("u", "v")}

    def test_unsatisfiable(self, g):
        q = crpq([("x", "b.a", "y")], free=("x", "y"))
        assert q.evaluate(g) == frozenset()

    def test_free_vars_validated(self):
        with pytest.raises(GraphError):
            crpq([("x", "a", "y")], free=("zz",))

    def test_empty_atom_list_rejected(self):
        from repro.graphdb.conjunctive import ConjunctiveQuery

        with pytest.raises(GraphError):
            ConjunctiveQuery([], free=())

    def test_num_variables(self, g):
        q = crpq([("x", "a", "y"), ("y", "b", "z")], free=("x", "z"))
        assert q.num_variables() == 3


class TestMonotonicity:
    """Theorem 8 hinges on CNREs being monotone — property-tested here."""

    @given(st.integers(0, 2 ** 31 - 1), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_adding_edges_grows_answers(self, seed, extra_seed):
        g = random_graph(5, 6, seed=seed)
        bigger_edges = set(g.edges) | set(random_graph(5, 3, seed=extra_seed).edges)
        nodes = g.nodes | {u for u, _, v in bigger_edges} | {
            v for _, _, v in bigger_edges
        }
        g2 = GraphDB(nodes, bigger_edges, g.rho_map())
        queries = [
            crpq([("x", "a.b", "y")], free=("x", "y")),
            cnre([("x", "a.[b*]", "y"), ("y", "(a+b)*", "z")], free=("x", "z")),
        ]
        for q in queries:
            assert q.evaluate(g) <= q.evaluate(g2)
