"""The literal matrix Procedures 1–4 against the set-based engines."""

from hypothesis import given, settings

from repro.core import HashJoinEngine, R, join, star
from repro.core.engines import procedures
from repro.core.engines.reach import bfs_reachable, reach_star_any, reach_star_same_label
from repro.triplestore import MatrixStore, Triplestore
from tests.conftest import conditions, out_specs, stores

import hypothesis.strategies as st

HASH = HashJoinEngine()


@given(stores(max_triples=8), out_specs, conditions())
@settings(max_examples=60, deadline=None)
def test_procedure1_join_matches_hash_join(store, out, conds):
    ms = MatrixStore(store)
    r = ms.matrix("E")
    got = ms.triples_of(procedures.join_matrices(r, r, out, conds, ms))
    expr = join(R("E"), R("E"), out, conds)
    assert got == HASH.evaluate(expr, store)


@given(stores(max_triples=6), st.sampled_from(["3=1'", "3=1' & 2=2'", "2=1'"]))
@settings(max_examples=30, deadline=None)
def test_procedure2_star_matches_fixpoint(store, conds_text):
    from repro.core.conditions import parse_conditions

    conds = parse_conditions(conds_text)
    ms = MatrixStore(store)
    got = ms.triples_of(
        procedures.star_matrices(ms.matrix("E"), (0, 1, 5), conds, ms)
    )
    expr = star(R("E"), "1,2,3'", conds_text)
    assert got == HASH.evaluate(expr, store)


@given(stores(max_triples=10))
@settings(max_examples=40, deadline=None)
def test_procedure3_matches_set_based(store):
    ms = MatrixStore(store)
    got = ms.triples_of(procedures.reach_star_any(ms.matrix("E"), ms))
    assert got == frozenset(reach_star_any(store.relation("E")))


@given(stores(max_triples=10))
@settings(max_examples=40, deadline=None)
def test_procedure4_matches_set_based(store):
    ms = MatrixStore(store)
    got = ms.triples_of(procedures.reach_star_same_label(ms.matrix("E"), ms))
    assert got == frozenset(reach_star_same_label(store.relation("E")))


class TestBfs:
    def test_reachable_includes_source(self):
        assert bfs_reachable({}, "x") == {"x"}

    def test_reachable_follows_chains(self):
        succ = {"a": {"b"}, "b": {"c"}}
        assert bfs_reachable(succ, "a") == {"a", "b", "c"}

    def test_cycle(self):
        succ = {"a": {"b"}, "b": {"a"}}
        assert bfs_reachable(succ, "a") == {"a", "b"}


class TestReachStarUnits:
    def test_any_path(self):
        base = {("a", "p", "b"), ("b", "q", "c")}
        got = reach_star_any(base)
        assert ("a", "p", "c") in got
        assert ("a", "q", "c") not in got  # middle comes from the base triple

    def test_same_label_blocks_label_change(self):
        base = {("a", "l", "b"), ("b", "m", "c")}
        got = reach_star_same_label(base)
        assert ("a", "l", "c") not in got
        assert got == base | set()
