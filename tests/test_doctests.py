"""Keep module doctests honest — they are part of the documentation."""

import doctest

import pytest

import repro.automata.nfa
import repro.automata.regex
import repro.bench.runner
import repro.core.builder
import repro.core.conditions
import repro.core.explain
import repro.core.optimizer
import repro.core.parser
import repro.core.positions
import repro.datalog.parser
import repro.graphdb.gxpath_parser
import repro.graphdb.nre
import repro.graphdb.rpq
import repro.logic.parser
import repro.triplestore.model

MODULES = [
    repro.automata.nfa,
    repro.automata.regex,
    repro.bench.runner,
    repro.core.builder,
    repro.core.conditions,
    repro.core.explain,
    repro.core.optimizer,
    repro.core.parser,
    repro.core.positions,
    repro.datalog.parser,
    repro.graphdb.gxpath_parser,
    repro.graphdb.nre,
    repro.graphdb.rpq,
    repro.logic.parser,
    repro.triplestore.model,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, (
        f"{module.__name__} has no doctests (remove it from the list)"
    )
    assert result.failed == 0
