"""Edge cases across subsystems that the focused suites don't reach."""

import pytest

from repro.core import (
    FastEngine,
    HashJoinEngine,
    NaiveEngine,
    R,
    Universe,
    evaluate,
    join,
    select,
    star,
    universe_as_joins,
)
from repro.core.conditions import Cond
from repro.core.positions import Const, Pos
from repro.triplestore import Triplestore


class TestMultiRelationQueries:
    STORE = Triplestore(
        {
            "Travel": [("a", "s1", "b"), ("b", "s2", "c")],
            "Hierarchy": [("s1", "part_of", "co"), ("s2", "part_of", "co")],
        },
        rho={"a": 1, "b": 2, "c": 1},
    )

    @pytest.mark.parametrize(
        "engine", [HashJoinEngine(), NaiveEngine(), FastEngine()], ids=type
    )
    def test_cross_relation_join(self, engine):
        e = join(R("Travel"), R("Hierarchy"), "1,3',3", "2=1'")
        got = evaluate(e, self.STORE, engine)
        assert got == {("a", "co", "b"), ("b", "co", "c")}

    def test_universe_spans_all_relations(self):
        got = evaluate(Universe(), self.STORE)
        # Active domain: a,b,c,s1,s2,part_of,co = 7 objects.
        assert len(got) == 7 ** 3

    def test_universe_as_joins_multi_relation(self):
        native = evaluate(Universe(), self.STORE)
        derived = evaluate(universe_as_joins(["Travel", "Hierarchy"]), self.STORE)
        assert native == derived

    def test_star_over_multi_relation_union(self):
        e = star(R("Travel") | R("Hierarchy"), "1,2,3'", "3=1'")
        got = evaluate(e, self.STORE)
        assert ("a", "s1", "c") in got


class TestDegenerateInputs:
    def test_empty_store_everything_empty(self):
        t = Triplestore([])
        for e in (R("E"), select(R("E"), "1=2"), join(R("E"), R("E"), "1,2,3"),
                  star(R("E"), "1,2,3'", "3=1'"), Universe()):
            assert evaluate(e, t) == frozenset()

    def test_self_loop_triple(self):
        t = Triplestore([("a", "a", "a")])
        got = evaluate(star(R("E"), "1,2,3'", "3=1'"), t)
        assert got == {("a", "a", "a")}

    def test_conditions_with_none_data_values(self):
        """Objects without ρ compare as None — equal to each other."""
        t = Triplestore([("a", "p", "b")])  # nobody has a data value
        got = evaluate(
            select(R("E"), (Cond(Pos(0), Pos(2), "=", on_data=True),)), t
        )
        assert got == {("a", "p", "b")}

    def test_object_vs_data_constant_distinction(self):
        t = Triplestore([("a", "p", "b")], rho={"a": "p"})
        # θ: position 1 equals the OBJECT "p" — false (subject is "a").
        theta = select(R("E"), (Cond(Pos(0), Const("p")),))
        # η: ρ(position 1) equals the DATA VALUE "p" — true.
        eta_ = select(R("E"), (Cond(Pos(0), Const("p"), "=", True),))
        assert evaluate(theta, t) == frozenset()
        assert evaluate(eta_, t) == {("a", "p", "b")}

    def test_non_string_objects(self):
        """Objects are any hashables — integers, tuples…"""
        t = Triplestore([(1, (2, 3), frozenset({4}))])
        got = evaluate(R("E"), t)
        assert (1, (2, 3), frozenset({4})) in got

    def test_star_output_not_feeding_join_terminates(self):
        """A star whose out-spec breaks the chain still terminates."""
        t = Triplestore([("a", "p", "b"), ("b", "q", "c")])
        got = evaluate(star(R("E"), "2,2,2'", "3=1'"), t)
        assert got  # the fixpoint saturates quickly


class TestEngineInternals:
    def test_hash_join_split(self):
        from repro.core.engines.hashjoin import split_conditions
        from repro.core.conditions import parse_conditions

        conds = parse_conditions("1=2 & 1'=2' & 3=1' & 2!=3' & 'a'='a'")
        left, right, cross_eq, cross_neq, const = split_conditions(conds)
        assert len(left) == 1 and len(right) == 1
        assert len(cross_eq) == 1 and len(cross_neq) == 1 and len(const) == 1

    def test_cross_condition_normalised(self):
        from repro.core.engines.hashjoin import split_conditions

        # 1' = 2 arrives right-side-first; the splitter flips it.
        conds = (Cond(Pos(3), Pos(1)),)
        _, _, cross_eq, _, _ = split_conditions(conds)
        assert cross_eq[0].left == Pos(1)
        assert cross_eq[0].right == Pos(3)

    def test_memoisation_shares_subresults(self):
        engine = HashJoinEngine()
        t = Triplestore([("a", "p", "b")])
        shared = join(R("E"), R("E"), "1,2,3'", "3=1'")
        e = shared | join(shared, shared, "1,2,3")
        assert engine.evaluate(e, t) is not None  # smoke: no recursion blowup

    def test_fast_engine_active_domain(self):
        engine = FastEngine()
        t = Triplestore([("a", "p", "b")], extra_objects=["iso"])
        assert engine.active_domain(t) == {"a", "p", "b"}
