"""Randomized cross-engine differential-testing harness.

The library's central invariant is *one semantics*: every engine — the
paper-faithful :class:`NaiveEngine` oracle, the set-based planner engines
(:class:`HashJoinEngine`, :class:`FastEngine`, planner on and off), the
vectorised columnar :class:`VectorEngine` and the hash-partitioned
:class:`ShardedEngine` — must agree on arbitrary (expression, store)
pairs.  The hypothesis property tests in
``test_engines_agree.py`` cover one corner of that space; this harness
covers it *systematically*: seeded generators for triplestores (sweeping
density, ρ-collision rate, self-loops, multi-relation stores) and for
TriAL(*), GXPath and NRE expressions, a fixed engine matrix, greedy
shrinking of failures, and repro snippets you can paste into a test.

Used three ways:

* ``tests/test_differential.py`` runs it as part of the suite;
* ``python tests/diffcheck.py --cases 2000 --out failures/`` is the CI
  nightly entry point (failing repro snippets become artifacts);
* ``from tests.diffcheck import run_differential`` for ad-hoc hunts.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from dataclasses import dataclass
from typing import Callable, Iterable

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import (  # noqa: E402
    FastEngine,
    HashJoinEngine,
    NaiveEngine,
    ShardedEngine,
    VectorEngine,
)
from repro.core.conditions import Cond  # noqa: E402
from repro.core.expressions import (  # noqa: E402
    Diff,
    Expr,
    Intersect,
    Join,
    Rel,
    Select,
    Star,
    Union,
)
from repro.core.optimizer import optimize  # noqa: E402
from repro.core.positions import Const, Pos  # noqa: E402
from repro.errors import ReproError  # noqa: E402
from repro.graphdb import gxpath as gx  # noqa: E402
from repro.graphdb import nre as nre_mod  # noqa: E402
from repro.graphdb.model import GraphDB  # noqa: E402
from repro.translations.graph_to_trial import (  # noqa: E402
    gxpath_to_trial,
    nre_to_trial,
)
from repro.triplestore.model import Triplestore  # noqa: E402

__all__ = [
    "Failure",
    "default_engines",
    "random_expression",
    "random_gxpath",
    "random_nre",
    "random_semantic_conditions",
    "random_semantic_expression",
    "random_triplestore",
    "repro_snippet",
    "run_differential",
    "shrink_failure",
]

#: Object pool for random stores (small on purpose: collisions are where
#: join/condition bugs hide, and the naive oracle is cubic).
OBJECTS = ("a", "b", "c", "d", "e", "f")

#: ρ-value pools, from maximal collision (one class) to near-injective.
DATA_VALUE_POOLS = ((0,), (0, 1), (0, 1, 2, 3), (0, 1, 2, 3, 4, 5))

#: Edge labels for generated graphs (GXPath / NRE cases).
GRAPH_LABELS = ("a", "b")


def default_engines() -> dict[str, object]:
    """The engine matrix under test: oracle + set/columnar/sharded, planner on/off.

    The sharded engine runs with three shards (uneven splits over the
    six-object pool exercise empty and skewed shards), once with the
    partition key on the object position (so repartition joins and
    co-partitioned joins both appear), and once on the process executor
    with two workers and ``dispatch_min=0`` — the stores here are tiny,
    so the threshold must be forced down for queries to actually cross
    the worker pool and its exchange collectives.
    """
    return {
        "naive": NaiveEngine(),
        "hash": HashJoinEngine(),
        "hash-legacy": HashJoinEngine(use_planner=False),
        "fast": FastEngine(),
        "fast-legacy": FastEngine(use_planner=False),
        "vector": VectorEngine(),
        "sharded": ShardedEngine(shards=3),
        "sharded-obj": ShardedEngine(shards=2, key_pos=2),
        "sharded-proc": ShardedEngine(
            shards=3, executor="process", workers=2, dispatch_min=0
        ),
    }


# --------------------------------------------------------------------- #
# Store generators
# --------------------------------------------------------------------- #


def random_triplestore(rng: random.Random) -> Triplestore:
    """A random store with varied density, ρ-collisions and self-loops.

    Sweeps the profile knobs per draw: triple count 0..14 over 2..6
    objects (densities from empty to near-complete on the small end),
    ρ drawn from pools of 1..6 distinct values (collision-heavy to
    near-injective), forced self-loop triples half the time, and a
    second relation ``F`` a third of the time.
    """
    objects = OBJECTS[: rng.randint(2, len(OBJECTS))]
    n_triples = rng.randint(0, 14)
    triples = {
        (rng.choice(objects), rng.choice(objects), rng.choice(objects))
        for _ in range(n_triples)
    }
    if rng.random() < 0.5 and objects:
        # Self-loops exercise the o == s corner of reachability and the
        # diagonal corners of θ-conditions.
        loop_obj = rng.choice(objects)
        triples.add((loop_obj, rng.choice(objects), loop_obj))
        if rng.random() < 0.3:
            triples.add((loop_obj, loop_obj, loop_obj))
    relations = {"E": triples}
    if rng.random() < 0.33:
        relations["F"] = {
            (rng.choice(objects), rng.choice(objects), rng.choice(objects))
            for _ in range(rng.randint(0, 6))
        }
    pool = rng.choice(DATA_VALUE_POOLS)
    rho = {o: rng.choice(pool) for o in objects}
    return Triplestore(relations, rho)


def random_graph(rng: random.Random) -> GraphDB:
    """A small labelled graph with data values (for GXPath/NRE cases)."""
    nodes = [f"v{i}" for i in range(rng.randint(2, 6))]
    edges = {
        (rng.choice(nodes), rng.choice(GRAPH_LABELS), rng.choice(nodes))
        for _ in range(rng.randint(1, 10))
    }
    used = sorted({u for u, _, _ in edges} | {v for _, _, v in edges})
    pool = rng.choice(DATA_VALUE_POOLS)
    rho = {v: rng.choice(pool) for v in used}
    return GraphDB(used, edges, rho)


# --------------------------------------------------------------------- #
# Expression generators
# --------------------------------------------------------------------- #


def _random_term(rng: random.Random, max_pos: int, on_data: bool, objects):
    if rng.random() < 0.35:
        pool = (0, 1) if on_data else objects
        return Const(rng.choice(pool))
    return Pos(rng.randint(0, max_pos))


def random_condition(
    rng: random.Random, max_pos: int, objects=OBJECTS
) -> Cond:
    on_data = rng.random() < 0.5
    left = Pos(rng.randint(0, max_pos))
    right = _random_term(rng, max_pos, on_data, objects)
    return Cond(left, right, rng.choice(("=", "!=")), on_data)


def random_conditions(
    rng: random.Random, max_pos: int, max_conds: int = 2, objects=OBJECTS
) -> tuple[Cond, ...]:
    return tuple(
        random_condition(rng, max_pos, objects)
        for _ in range(rng.randint(0, max_conds))
    )


def _random_out(rng: random.Random) -> tuple[int, int, int]:
    return (rng.randint(0, 5), rng.randint(0, 5), rng.randint(0, 5))


def random_expression(
    rng: random.Random,
    max_depth: int = 3,
    allow_star: bool = True,
    relations: tuple[str, ...] = ("E",),
) -> Expr:
    """A random TriAL(*) expression (U excluded, as in the property tests).

    Star operands stay shallow so the naive oracle's full-re-join
    fixpoints do not dominate the run; every reach-shaped star the
    generator happens to produce exercises the Prop 4/5 operators.
    """
    if max_depth <= 0:
        return Rel(rng.choice(relations))
    kind = rng.choice(
        ("rel", "select", "union", "diff", "intersect", "join", "join")
        + (("star", "lstar", "reach") if allow_star else ())
    )
    if kind == "rel":
        return Rel(rng.choice(relations))
    if kind == "select":
        inner = random_expression(rng, max_depth - 1, allow_star, relations)
        return Select(inner, random_conditions(rng, max_pos=2))
    if kind in ("union", "diff", "intersect"):
        cls = {"union": Union, "diff": Diff, "intersect": Intersect}[kind]
        return cls(
            random_expression(rng, max_depth - 1, allow_star, relations),
            random_expression(rng, max_depth - 1, allow_star, relations),
        )
    if kind == "join":
        return Join(
            random_expression(rng, max_depth - 1, allow_star, relations),
            random_expression(rng, max_depth - 1, allow_star, relations),
            _random_out(rng),
            random_conditions(rng, max_pos=5),
        )
    if kind == "reach":
        # The two Proposition 5 shapes, hit on purpose (random out specs
        # almost never produce them).
        conds = "3=1'" if rng.random() < 0.5 else "3=1' & 2=2'"
        return Star(Rel(rng.choice(relations)), "1,2,3'", conds)
    inner = (
        Rel(rng.choice(relations))
        if rng.random() < 0.5
        else Select(Rel(rng.choice(relations)), random_conditions(rng, 2, 1))
    )
    side = "right" if kind == "star" else "left"
    return Star(inner, _random_out(rng), random_conditions(rng, 5), side)


def random_semantic_conditions(
    rng: random.Random, max_pos: int, objects=OBJECTS
) -> tuple[Cond, ...]:
    """Condition lists biased toward the semantic analyzer's verdicts.

    Random conditions almost never produce a contradiction or an
    entailment, so the ``SEM-UNSAT``/``SEM-REDUNDANT``-gated rewrites
    would go untested; these templates plant contradictory pairs,
    duplicates, θ-entailed η-conditions and statically-decided
    constant comparisons (plus one *satisfiable* near-miss — η-equality
    with θ-inequality — that an unsound analyzer would wrongly prune).
    """
    i, j = rng.randint(0, max_pos), rng.randint(0, max_pos)
    a, b = rng.sample(objects[:4], 2)
    templates: tuple[tuple[Cond, ...], ...] = (
        (Cond(Pos(i), Const(a)), Cond(Pos(i), Const(b))),
        (Cond(Pos(i), Pos(j)), Cond(Pos(i), Pos(j), "!=")),
        (Cond(Pos(i), Pos(j)), Cond(Pos(i), Pos(j))),
        (Cond(Pos(i), Pos(j)), Cond(Pos(i), Pos(j), "=", True)),
        (Cond(Pos(i), Pos(i)),),
        (Cond(Pos(i), Pos(i), "!="),),
        (Cond(Pos(i), Pos(j), "=", True), Cond(Pos(i), Pos(j), "!=")),
        (Cond(Const(a), Const(b)),),
        (Cond(Const(a), Const(a)),),
        (Cond(Pos(i), Const(a)), Cond(Pos(j), Const(a)), Cond(Pos(i), Pos(j))),
    )
    conds = rng.choice(templates)
    if rng.random() < 0.5:
        conds = conds + random_conditions(rng, max_pos, 1, objects)
    return tuple(dict.fromkeys(conds))


def random_semantic_expression(
    rng: random.Random, relations: tuple[str, ...] = ("E",)
) -> Expr:
    """A TriAL(*) expression seeded with analyzer-triggering shapes."""
    base = random_expression(rng, max_depth=2, relations=relations)
    shape = rng.choice(("select", "join", "star", "diff-self", "nested"))
    if shape == "select":
        return Select(base, random_semantic_conditions(rng, 2))
    if shape == "join":
        other = random_expression(rng, max_depth=1, relations=relations)
        return Join(base, other, _random_out(rng), random_semantic_conditions(rng, 5))
    if shape == "star":
        inner = Rel(rng.choice(relations))
        return Star(inner, _random_out(rng), random_semantic_conditions(rng, 5))
    if shape == "diff-self":
        # Diff(e, e) is provably empty; wrapping it exercises the
        # bottom-up emptiness propagation through an enclosing operator.
        dead = Diff(base, base)
        if rng.random() < 0.5:
            return Union(dead, random_expression(rng, 1, relations=relations))
        return Join(
            dead,
            random_expression(rng, 1, relations=relations),
            _random_out(rng),
            random_conditions(rng, 5),
        )
    return Select(
        Select(base, random_semantic_conditions(rng, 2)),
        random_semantic_conditions(rng, 2),
    )


def random_gxpath(rng: random.Random, max_depth: int = 3) -> gx.PathExpr:
    """A random GXPath path expression over :data:`GRAPH_LABELS`."""
    if max_depth <= 0:
        return gx.Axis(rng.choice(GRAPH_LABELS), forward=rng.random() < 0.7)
    kind = rng.choice(("axis", "concat", "union", "star", "test", "data"))
    if kind == "axis":
        return gx.Axis(rng.choice(GRAPH_LABELS), forward=rng.random() < 0.7)
    if kind == "concat":
        return gx.Concat(
            random_gxpath(rng, max_depth - 1), random_gxpath(rng, max_depth - 1)
        )
    if kind == "union":
        return gx.PathUnion(
            random_gxpath(rng, max_depth - 1), random_gxpath(rng, max_depth - 1)
        )
    if kind == "star":
        return gx.StarPath(random_gxpath(rng, max_depth - 1))
    if kind == "test":
        return gx.Test(gx.HasPath(random_gxpath(rng, max_depth - 1)))
    return gx.DataPathTest(
        random_gxpath(rng, max_depth - 1), equal=rng.random() < 0.5
    )


def random_nre(rng: random.Random, max_depth: int = 3) -> nre_mod.Nre:
    """A random nested regular expression over :data:`GRAPH_LABELS`."""
    if max_depth <= 0:
        return nre_mod.NLabel(rng.choice(GRAPH_LABELS), forward=rng.random() < 0.7)
    kind = rng.choice(("label", "eps", "concat", "alt", "star", "test"))
    if kind == "label":
        return nre_mod.NLabel(rng.choice(GRAPH_LABELS), forward=rng.random() < 0.7)
    if kind == "eps":
        return nre_mod.NEps()
    if kind == "concat":
        return nre_mod.NConcat(
            random_nre(rng, max_depth - 1), random_nre(rng, max_depth - 1)
        )
    if kind == "alt":
        return nre_mod.NAlt(
            random_nre(rng, max_depth - 1), random_nre(rng, max_depth - 1)
        )
    if kind == "star":
        return nre_mod.NStar(random_nre(rng, max_depth - 1))
    return nre_mod.NTest(random_nre(rng, max_depth - 1))


# --------------------------------------------------------------------- #
# Case execution, shrinking and reporting
# --------------------------------------------------------------------- #


@dataclass
class Failure:
    """One disagreement, after shrinking."""

    case_id: str
    expr: Expr
    store: Triplestore
    outcomes: dict[str, object]  # engine name -> result set or error repr

    def snippet(self) -> str:
        return repro_snippet(self.expr, self.store, self.case_id, self.outcomes)


def _evaluate(engine, expr: Expr, store: Triplestore):
    """An engine's verdict: a result set, or the error class it raised."""
    try:
        return engine.evaluate(expr, store)
    except ReproError as exc:
        return f"raised {type(exc).__name__}"


def _check(engines: dict[str, object], expr: Expr, store: Triplestore):
    """Outcomes keyed by engine, or None when everyone agrees.

    Every engine is run twice: on the raw expression and (under the
    ``+opt`` keys) on its optimized rewrite with the semantic pruning
    passes on — both must match the *raw* naive witness, so an unsound
    rewrite (e.g. a wrong unsatisfiability verdict emptying a live
    query) shows up as a disagreement even when every engine agrees on
    the rewritten expression.
    """
    outcomes = {name: _evaluate(eng, expr, store) for name, eng in engines.items()}
    rewritten = optimize(expr)
    if rewritten != expr:
        for name, eng in engines.items():
            outcomes[f"{name}+opt"] = _evaluate(eng, rewritten, store)
    witness = outcomes["naive"]
    if all(v == witness for v in outcomes.values()):
        return None
    return outcomes


def shrink_failure(
    engines: dict[str, object], expr: Expr, store: Triplestore, budget: int = 300
) -> tuple[Expr, Triplestore]:
    """Greedy shrink: drop triples and descend into sub-expressions.

    Keeps shrinking while the disagreement persists, bounded by
    ``budget`` re-evaluations — minimality of the *snippet* matters more
    than true minimality of the case.
    """
    spent = 0

    def still_fails(e: Expr, s: Triplestore) -> bool:
        nonlocal spent
        if spent >= budget:
            return False
        spent += 1
        return _check(engines, e, s) is not None

    changed = True
    while changed and spent < budget:
        changed = False
        # Try replacing the expression by one of its children.
        for child in expr.children():
            if isinstance(child, Expr) and still_fails(child, store):
                expr, changed = child, True
                break
        if changed:
            continue
        # Try dropping one triple from one relation.
        for name in store.relation_names:
            for triple in sorted(store.relation(name), key=repr):
                smaller = store.with_relation(
                    name, store.relation(name) - {triple}
                )
                if still_fails(expr, smaller):
                    store, changed = smaller, True
                    break
            if changed:
                break
    return expr, store


def repro_snippet(
    expr: Expr, store: Triplestore, case_id: str = "case", outcomes=None
) -> str:
    """An executable snippet reproducing one disagreement."""
    relations = {
        name: sorted(store.relation(name)) for name in store.relation_names
    }
    rho = {k: store.rho(k) for k in sorted(store.objects, key=repr)}
    lines = [
        f"# differential-testing failure: {case_id}",
        "from repro.core import (FastEngine, HashJoinEngine, NaiveEngine,",
        "                        ShardedEngine, VectorEngine)",
        "from repro.core.optimizer import optimize",
        "from repro.core.parser import parse",
        "from repro.triplestore.model import Triplestore",
        "",
        f"store = Triplestore({relations!r}, rho={rho!r})",
        f"expr = parse({repr(expr)!r})",
        "expected = NaiveEngine().evaluate(expr, store)",
        "for engine in (NaiveEngine(),",
        "               HashJoinEngine(), HashJoinEngine(use_planner=False),",
        "               FastEngine(), FastEngine(use_planner=False), VectorEngine(),",
        "               ShardedEngine(shards=3), ShardedEngine(shards=2, key_pos=2),",
        "               ShardedEngine(shards=3, executor='process', workers=2,",
        "                             dispatch_min=0)):",
        "    assert engine.evaluate(expr, store) == expected, type(engine).__name__",
        "    assert engine.evaluate(optimize(expr), store) == expected, \\",
        "        f'{type(engine).__name__}+opt'",
    ]
    if outcomes is not None:
        lines.insert(1, "# outcomes: " + "; ".join(
            f"{name}={_summarise(v)}" for name, v in sorted(outcomes.items())
        ))
    return "\n".join(lines) + "\n"


def _summarise(outcome) -> str:
    if isinstance(outcome, str):
        return outcome
    return f"{len(outcome)} triples"


def run_differential(
    n_cases: int = 200,
    seed: int = 0,
    engines: dict[str, object] | None = None,
    case_kinds: Iterable[str] = ("trial",),
    on_failure: Callable[[Failure], None] | None = None,
    max_failures: int = 5,
) -> list[Failure]:
    """Run ``n_cases`` seeded random cases; return (shrunk) failures.

    ``case_kinds`` picks the generators: ``"trial"`` draws raw TriAL(*)
    expressions over random triplestores; ``"gxpath"`` and ``"nre"`` draw
    graph-language expressions, translate them to TriAL* (Theorem 7 /
    Section 6.2) and run the translations over graph-encoded stores.
    Each case is independently seeded from (seed, index) so any single
    case replays without re-running the sweep.
    """
    if engines is None:
        engines = default_engines()
    kinds = tuple(case_kinds)
    failures: list[Failure] = []
    for index in range(n_cases):
        rng = random.Random(f"{seed}:{index}")
        kind = kinds[index % len(kinds)]
        if kind == "trial":
            store = random_triplestore(rng)
            names = store.relation_names
            expr = random_expression(rng, max_depth=3, relations=names)
        elif kind == "semantic":
            store = random_triplestore(rng)
            expr = random_semantic_expression(rng, store.relation_names)
        elif kind == "gxpath":
            graph = random_graph(rng)
            store = graph.to_triplestore()
            expr = gxpath_to_trial(random_gxpath(rng))
        elif kind == "nre":
            graph = random_graph(rng)
            store = graph.to_triplestore()
            expr = nre_to_trial(random_nre(rng))
        else:
            raise ValueError(f"unknown case kind {kind!r}")
        outcomes = _check(engines, expr, store)
        if outcomes is None:
            continue
        expr, store = shrink_failure(engines, expr, store)
        failure = Failure(
            f"kind={kind} seed={seed} index={index}",
            expr,
            store,
            _check(engines, expr, store) or outcomes,
        )
        failures.append(failure)
        if on_failure is not None:
            on_failure(failure)
        if len(failures) >= max_failures:
            break
    return failures


# --------------------------------------------------------------------- #
# CLI (the CI nightly entry point)
# --------------------------------------------------------------------- #


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="randomized cross-engine differential testing"
    )
    parser.add_argument("--cases", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--kinds",
        default="trial,semantic,gxpath,nre",
        help="comma-separated case kinds",
    )
    parser.add_argument(
        "--out", default=None, help="directory for failing repro snippets"
    )
    args = parser.parse_args(argv)
    failures = run_differential(
        args.cases, seed=args.seed, case_kinds=args.kinds.split(",")
    )
    if not failures:
        print(f"OK: {args.cases} cases, all engines agree")
        return 0
    for i, failure in enumerate(failures):
        print(f"--- failure {i}: {failure.case_id}")
        print(failure.snippet())
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, f"failure_{i}.py")
            with open(path, "w", encoding="utf-8") as fp:
                fp.write(failure.snippet())
            print(f"wrote {path}")
    print(f"FAIL: {len(failures)} disagreement(s) in {args.cases} cases")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
