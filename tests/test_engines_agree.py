"""Property tests: all engines implement one semantics.

The central correctness property of the library — the paper-faithful
NaiveEngine (Theorem 3 procedures), the HashJoinEngine (semi-naive
fixpoints) and the FastEngine (Prop 4/5 algorithms) must agree on every
expression/store pair.  The hash-join and fast engines run compiled
physical plans by default; their legacy direct interpreters
(``use_planner=False``) are held to the same oracle, as is the planner
applied to *optimised* expressions (plans of rewritten trees must mean
the same thing).
"""

from hypothesis import given, settings

from repro.core import FastEngine, HashJoinEngine, NaiveEngine, optimize, star, R
from tests.conftest import expressions, stores

HASH = HashJoinEngine()
NAIVE = NaiveEngine()
FAST = FastEngine()
HASH_LEGACY = HashJoinEngine(use_planner=False)
FAST_LEGACY = FastEngine(use_planner=False)


@given(expressions(max_depth=3, allow_star=False), stores())
@settings(max_examples=120, deadline=None)
def test_nonrecursive_agreement(expr, store):
    expected = HASH.evaluate(expr, store)
    assert NAIVE.evaluate(expr, store) == expected
    assert FAST.evaluate(expr, store) == expected


@given(expressions(max_depth=3, allow_star=True), stores())
@settings(max_examples=80, deadline=None)
def test_recursive_agreement(expr, store):
    expected = HASH.evaluate(expr, store)
    assert NAIVE.evaluate(expr, store) == expected
    assert FAST.evaluate(expr, store) == expected


@given(stores(min_triples=2, max_triples=14))
@settings(max_examples=60, deadline=None)
def test_reach_stars_agree_with_generic_fixpoint(store):
    """The Prop 5 BFS algorithms equal the generic fixpoint semantics."""
    for conds in ("3=1'", "3=1' & 2=2'"):
        expr = star(R("E"), "1,2,3'", conds)
        assert FAST.evaluate(expr, store) == HASH.evaluate(expr, store)


@given(expressions(max_depth=2, allow_star=True), stores())
@settings(max_examples=60, deadline=None)
def test_results_are_closed(expr, store):
    """Closure (§3): results are sets of triples over the store's objects."""
    result = HASH.evaluate(expr, store)
    for triple in result:
        assert len(triple) == 3
        assert all(obj in store.objects for obj in triple)


@given(expressions(max_depth=3, allow_star=True), stores())
@settings(max_examples=80, deadline=None)
def test_planner_agrees_with_legacy_interpreter(expr, store):
    """Planner-on and planner-off are the same engine, semantically."""
    assert HASH.evaluate(expr, store) == HASH_LEGACY.evaluate(expr, store)
    assert FAST.evaluate(expr, store) == FAST_LEGACY.evaluate(expr, store)


@given(expressions(max_depth=3, allow_star=True), stores())
@settings(max_examples=60, deadline=None)
def test_planned_optimized_expression_agrees_with_naive(expr, store):
    """optimize → compile → execute equals the oracle on the raw tree."""
    assert HASH.evaluate(optimize(expr), store) == NAIVE.evaluate(expr, store)


@given(expressions(max_depth=2, allow_star=True), stores())
@settings(max_examples=40, deadline=None)
def test_composition_property(expr, store):
    """Results can be installed as relations and queried again (§3)."""
    result = HASH.evaluate(expr, store)
    composed = store.with_relation("Out", result)
    again = HASH.evaluate(R("Out"), composed)
    assert again == result
