"""Smoke tests: every shipped example runs to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p for p in (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    sys.argv = [str(path)]
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_examples_exist():
    """The deliverable requires at least three runnable examples."""
    assert len(EXAMPLES) >= 3
