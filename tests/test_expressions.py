"""Tests for the TriAL expression AST and fragment classifiers."""

import pytest

from repro.errors import AlgebraError
from repro.core import (
    Diff,
    Intersect,
    Join,
    R,
    Rel,
    Select,
    Star,
    Union,
    Universe,
    in_reach_ta_eq,
    in_trial,
    in_trial_eq,
    is_equality_only,
    join,
    lstar,
    parse,
    reach_forward,
    select,
    star,
    star_is_reach,
)
from repro.core.expressions import REACH_COND_SAME_LABEL, REACH_OUT


class TestConstruction:
    def test_out_spec_string(self):
        j = Join(Rel("E"), Rel("E"), "1,3',3")
        assert j.out == (0, 5, 2)

    def test_bad_out_spec(self):
        with pytest.raises(AlgebraError):
            Join(Rel("E"), Rel("E"), (0, 9, 1))

    def test_select_rejects_right_positions(self):
        with pytest.raises(AlgebraError):
            Select(Rel("E"), "1=2'")

    def test_star_side_validation(self):
        with pytest.raises(AlgebraError):
            Star(Rel("E"), (0, 1, 2), (), side="middle")

    def test_operator_sugar(self):
        e = R("E")
        assert isinstance(e | e, Union)
        assert isinstance(e - e, Diff)
        assert isinstance(e & e, Intersect)


class TestTreeUtilities:
    def test_walk_and_size(self):
        e = join(R("E"), R("F") | R("E"), "1,2,3")
        assert e.size() == 5  # Join, Rel, Union, Rel, Rel
        assert {type(n).__name__ for n in e.walk()} == {"Join", "Rel", "Union"}

    def test_relation_names(self):
        e = join(R("E"), R("F"), "1,2,3") - R("G")
        assert e.relation_names() == {"E", "F", "G"}

    def test_is_recursive(self):
        assert reach_forward().is_recursive()
        assert not join(R("E"), R("E"), "1,2,3").is_recursive()

    def test_repr_parses_back(self):
        for e in (
            reach_forward(),
            select(R("E"), "2='part_of'"),
            join(R("E"), R("E"), "1,3',3", "2=1' & rho(1)!=rho(2')"),
            lstar(R("E"), "1',2',3", "1=2'"),
            (R("E") | R("F")) - Universe(),
            R("E") & R("F"),
        ):
            assert parse(repr(e)) == e


class TestFragments:
    def test_reach_star_detection(self):
        assert star_is_reach(star(R("E"), "1,2,3'", "3=1'"))
        assert star_is_reach(star(R("E"), "1,2,3'", "2=2' & 3=1'"))
        assert not star_is_reach(star(R("E"), "1,2,3'", "3=2'"))
        assert not star_is_reach(star(R("E"), "1,3',3", "2=1'"))
        assert not star_is_reach(lstar(R("E"), "1,2,3'", "3=1'"))

    def test_reach_constants_match_builder(self):
        s = star(R("E"), "1,2,3'", "3=1' & 2=2'")
        assert s.out == REACH_OUT
        assert frozenset(s.conditions) == frozenset(REACH_COND_SAME_LABEL)

    def test_equality_only(self):
        assert is_equality_only(join(R("E"), R("E"), "1,2,3", "1=2'"))
        assert not is_equality_only(select(R("E"), "1!=2"))

    def test_trial_membership(self):
        e = join(R("E"), R("E"), "1,2,3", "1=1'")
        assert in_trial(e) and in_trial_eq(e)
        assert not in_trial(reach_forward())

    def test_reach_ta_eq_membership(self):
        q_like = star(star(R("E"), "1,2,3'", "3=1'"), "1,2,3'", "3=1' & 2=2'")
        assert in_reach_ta_eq(q_like)
        assert not in_reach_ta_eq(star(R("E"), "1,3',3", "2=1'"))
        assert not in_reach_ta_eq(select(R("E"), "1!=2"))
