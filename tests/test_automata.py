"""Tests for the regex/NFA substrate and register automata."""

import pytest

from repro.automata import (
    Alt,
    Concat,
    Epsilon,
    Inverse,
    Label,
    RegCond,
    RemConcat,
    RemLetter,
    RemStar,
    RemStore,
    Star,
    compile_regex,
    compile_rem,
    evaluate_rem,
    parse_regex,
)
from repro.errors import ParseError


class TestRegexParser:
    def test_label(self):
        assert parse_regex("abc") == Label("abc")

    def test_quoted_label(self):
        assert parse_regex("'part of'") == Label("part of")

    def test_concat_union_star(self):
        assert parse_regex("a.(b+c)*") == Concat(
            Label("a"), Star(Alt(Label("b"), Label("c")))
        )

    def test_inverse(self):
        assert parse_regex("a-") == Inverse("a")
        assert parse_regex("a-.b") == Concat(Inverse("a"), Label("b"))

    def test_epsilon(self):
        assert parse_regex("()") == Epsilon()

    def test_labels_collected(self):
        assert parse_regex("a.(b+c)*.a-").labels() == {"a", "b", "c"}

    @pytest.mark.parametrize("text", ["", "a..b", "(a", "a+", "*a"])
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            parse_regex(text)


class TestNFA:
    def test_acceptance(self):
        nfa = compile_regex(parse_regex("a.b*"))
        assert nfa.accepts([("a", True)])
        assert nfa.accepts([("a", True), ("b", True), ("b", True)])
        assert not nfa.accepts([])
        assert not nfa.accepts([("b", True)])

    def test_union(self):
        nfa = compile_regex(parse_regex("a+b"))
        assert nfa.accepts([("a", True)])
        assert nfa.accepts([("b", True)])
        assert not nfa.accepts([("a", True), ("b", True)])

    def test_inverse_symbols(self):
        nfa = compile_regex(parse_regex("a-.a"))
        assert nfa.accepts([("a", False), ("a", True)])
        assert not nfa.accepts([("a", True), ("a", True)])

    def test_epsilon_regex(self):
        nfa = compile_regex(parse_regex("()"))
        assert nfa.accepts([])
        assert not nfa.accepts([("a", True)])

    def test_star_accepts_empty(self):
        nfa = compile_regex(parse_regex("a*"))
        assert nfa.accepts([])
        assert nfa.accepts([("a", True)] * 5)


class TestRegisterAutomata:
    EDGES = [("u", "a", "v"), ("v", "a", "w"), ("w", "a", "u")]
    RHO = {"u": 1, "v": 2, "w": 1}

    def test_store_then_test_neq(self):
        # ↓x . a[x≠]: move to a neighbour with a different value.
        expr = RemConcat(RemStore("x"), RemLetter("a", (RegCond("x", False),)))
        got = evaluate_rem(expr, self.EDGES, self.RHO)
        assert ("u", "v") in got  # 1 -> 2
        assert ("v", "w") in got  # 2 -> 1
        assert ("w", "u") not in got  # 1 -> 1 blocked

    def test_store_then_test_eq(self):
        expr = RemConcat(RemStore("x"), RemLetter("a", (RegCond("x", True),)))
        got = evaluate_rem(expr, self.EDGES, self.RHO)
        assert ("w", "u") in got
        assert ("u", "v") not in got

    def test_unset_register_blocks(self):
        expr = RemLetter("a", (RegCond("x", True),))
        assert evaluate_rem(expr, self.EDGES, self.RHO) == frozenset()

    def test_star_and_alt(self):
        from repro.automata import RemAlt, RemEps

        expr = RemStar(RemLetter("a"))
        got = evaluate_rem(expr, self.EDGES, self.RHO)
        assert ("u", "u") in got  # zero steps
        assert ("u", "w") in got  # two steps
        alt = RemAlt(RemEps(), RemLetter("a"))
        got2 = evaluate_rem(alt, self.EDGES, self.RHO)
        assert ("u", "u") in got2 and ("u", "v") in got2

    def test_compile_rem_structure(self):
        nfa = compile_rem(RemConcat(RemStore("x"), RemLetter("a")))
        assert nfa.start != nfa.accept
        assert nfa.transitions
