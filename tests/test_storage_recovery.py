"""Crash recovery: kill-mid-commit differential and WAL corruption fuzzing.

The differential test hard-kills a child process (``os._exit`` via the
``REPRO_STORAGE_FAULT`` hook) at every interesting point inside
``WriteAheadLog.append`` and asserts the reopened store holds *exactly*
the pre-batch or the post-batch state — never a half-applied mixture.

The fuzz test truncates or flips bytes at seeded-random offsets of a
multi-record WAL and asserts reopen either replays a consistent prefix
of the committed batches or refuses cleanly with
:class:`StoreCorruptionError`.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys

import pytest

from repro.errors import StoreCorruptionError
from repro.storage import DurableStore
from repro.storage.wal import FAULT_ENV, FAULT_POINTS

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

PRE_E = frozenset({("a", "p", "b")})
POST_E = frozenset({("a", "p", "b"), ("x", "q", "y")})
POST_R = frozenset({("r", "s", "t")})

_SETUP = """
import sys
from repro.db import Database
db = Database(path=sys.argv[1])
db.install("E", [("a", "p", "b")])
db.close()
"""

_MUTATE = """
import sys
from repro.db import Database
db = Database(path=sys.argv[1])
with db.batch():
    db.install("E", [("a", "p", "b"), ("x", "q", "y")])
    db.install("R", [("r", "s", "t")])
db.close()
"""


def _run(script: str, store: str, *, fault: str | None = None) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    env.pop(FAULT_ENV, None)
    if fault is not None:
        env[FAULT_ENV] = fault
    return subprocess.run(
        [sys.executable, "-c", script, store],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def _observed_state(store_path: str) -> tuple[frozenset, frozenset | None]:
    ds = DurableStore(store_path)
    try:
        reopened = ds.open()
        names = set(reopened.relation_names)
        e = reopened.relation("E")
        r = reopened.relation("R") if "R" in names else None
        return e, r
    finally:
        ds.close()


class TestKillMidCommit:
    @pytest.mark.parametrize("fault", sorted(FAULT_POINTS))
    def test_reopen_sees_exactly_pre_or_post_batch(self, tmp_path, fault):
        store = str(tmp_path / "store")
        setup = _run(_SETUP, store)
        assert setup.returncode == 0, setup.stderr

        mutate = _run(_MUTATE, store, fault=fault)
        assert mutate.returncode == 137, (
            f"fault {fault} did not kill the child: rc={mutate.returncode} "
            f"stderr={mutate.stderr}"
        )

        e, r = _observed_state(store)
        if e == PRE_E and r is None:
            state = "PRE"
        elif e == POST_E and r == POST_R:
            state = "POST"
        else:
            pytest.fail(f"fault {fault} left a half-applied state: E={e!r} R={r!r}")

        # Faults before the record hits disk must lose the batch; faults
        # after the fsync must preserve it (the commit pointer is only an
        # acknowledgement — durable records past it are promoted).
        expected = "PRE" if fault in ("wal-before-record", "wal-mid-record") else "POST"
        assert state == expected, f"fault {fault}: expected {expected}, saw {state}"

    def test_no_fault_control_run(self, tmp_path):
        store = str(tmp_path / "store")
        assert _run(_SETUP, store).returncode == 0
        assert _run(_MUTATE, store).returncode == 0
        e, r = _observed_state(store)
        assert e == POST_E and r == POST_R


class TestWalFuzz:
    BATCHES = [
        {"E": (("a", "p", "b"),)},
        {"E": (("a", "p", "b"), ("b", "p", "c")), "R": (("r", "s", "t"),)},
        {"S": (("s1", "s2", "s3"),)},
        {"E": (("z", "z", "z"),)},
    ]

    def _build(self, root: str) -> list[dict[str, frozenset]]:
        """Write a store whose WAL holds all batches; return prefix states."""
        ds = DurableStore(root)
        ds.open()
        for batch in self.BATCHES:
            ds.commit({k: frozenset(v) for k, v in batch.items()})
        ds.close()
        states: list[dict[str, frozenset]] = [{}]
        acc: dict[str, frozenset] = {}
        for batch in self.BATCHES:
            acc = dict(acc)
            for name, triples in batch.items():
                acc[name] = frozenset(triples)
            states.append(acc)
        return states

    @staticmethod
    def _state_of(store) -> dict[str, frozenset]:
        return {name: store.relation(name) for name in store.relation_names}

    @pytest.mark.parametrize("seed", range(24))
    def test_random_truncate_or_corrupt_never_half_applies(self, tmp_path, seed):
        root = str(tmp_path / "store")
        prefix_states = self._build(root)
        wal_log = os.path.join(root, "wal", "wal.log")
        size = os.path.getsize(wal_log)
        assert size > 0

        rng = random.Random(seed)
        offset = rng.randrange(size)
        mode = rng.choice(("truncate", "flip"))
        if mode == "truncate":
            with open(wal_log, "r+b") as fp:
                fp.truncate(offset)
        else:
            with open(wal_log, "r+b") as fp:
                fp.seek(offset)
                byte = fp.read(1)
                fp.seek(offset)
                fp.write(bytes([byte[0] ^ 0xFF]))

        ds = DurableStore(root)
        try:
            store = ds.open()
        except StoreCorruptionError:
            return  # clean refusal is an accepted outcome
        try:
            state = self._state_of(store)
            assert state in prefix_states, (
                f"seed={seed} mode={mode} offset={offset}: state {state!r} "
                f"is not a consistent prefix of the committed batches"
            )
        finally:
            ds.close()

    @pytest.mark.parametrize("seed", range(8))
    def test_random_garbage_tail_is_harmless(self, tmp_path, seed):
        root = str(tmp_path / "store")
        prefix_states = self._build(root)
        wal_log = os.path.join(root, "wal", "wal.log")
        rng = random.Random(1000 + seed)
        with open(wal_log, "ab") as fp:
            fp.write(bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64))))
        ds = DurableStore(root)
        try:
            store = ds.open()
            assert self._state_of(store) == prefix_states[-1]
        finally:
            ds.close()
