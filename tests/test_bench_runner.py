"""Tests for the benchmark harness utilities."""

import pytest

from repro.bench import Measurement, fit_loglog_slope, format_table, sweep


class TestSlopeFit:
    def test_quadratic(self):
        pts = [Measurement(n, 1e-6 * n ** 2) for n in (10, 20, 40, 80)]
        assert fit_loglog_slope(pts) == pytest.approx(2.0, abs=0.01)

    def test_linear(self):
        pts = [Measurement(n, 1e-6 * n) for n in (10, 20, 40, 80)]
        assert fit_loglog_slope(pts) == pytest.approx(1.0, abs=0.01)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([Measurement(1, 1.0)])


class TestSweep:
    def test_collects_measurements(self):
        log = []

        def run(payload):
            log.append(payload)

        points = sweep(lambda n: n, run, sizes=(1, 2, 3), repeats=1)
        assert [m.size for m in points] == [1, 2, 3]
        assert log == [1, 2, 3]
        assert all(m.seconds >= 0 for m in points)


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            [("TriAL", 1.9), ("TriAL*", 2.8)], headers=("fragment", "slope")
        )
        lines = table.splitlines()
        assert lines[0].startswith("fragment")
        assert len(lines) == 4
        assert "TriAL*" in lines[3]
