"""Repo-invariant linter tests (:mod:`repro.analysis.lint`).

The shipped tree must lint clean; each rule is then exercised against a
minimal fixture tree that plants exactly one violation, so a rule that
stops firing (or starts over-firing) fails a dedicated test.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import LINT_RULES
from repro.analysis.lint import Finding, main, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body), encoding="utf-8")
    return root


def rules_of(findings) -> list[str]:
    return [f.rule for f in findings]


# --------------------------------------------------------------------- #
# The shipped tree
# --------------------------------------------------------------------- #


def test_shipped_tree_is_clean():
    assert run_lint(REPO_ROOT) == []


def test_finding_format():
    f = Finding("BARE-EXCEPT", "bare except", "src/x.py", 12)
    assert str(f) == "src/x.py:12: BARE-EXCEPT bare except"


# --------------------------------------------------------------------- #
# One fixture tree per rule
# --------------------------------------------------------------------- #


def test_bare_except(tmp_path):
    write_tree(tmp_path, {"src/repro/x.py": """\
        try:
            pass
        except:
            pass
    """})
    findings = run_lint(tmp_path)
    assert rules_of(findings) == ["BARE-EXCEPT"]
    assert findings[0].path == "src/repro/x.py"
    assert findings[0].line == 3


def test_lru_lock(tmp_path):
    write_tree(tmp_path, {"src/repro/db.py": """\
        import threading


        class _LRU:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def get(self, key):
                with self._lock:
                    return self._data.get(key)

            def peek(self, key):
                return self._data.get(key)
    """})
    findings = run_lint(tmp_path)
    assert rules_of(findings) == ["LRU-LOCK"]
    # Only the unlocked access in peek() fires; __init__ and the
    # with-self._lock access are allowed.
    assert findings[0].line == 14


def test_lru_lock_does_not_fire_outside_db(tmp_path):
    write_tree(tmp_path, {"src/repro/other.py": """\
        class _LRU:
            def peek(self):
                return self._data
    """})
    assert run_lint(tmp_path) == []


def test_shm_unlink(tmp_path):
    write_tree(tmp_path, {"src/repro/leaky.py": """\
        from multiprocessing.shared_memory import SharedMemory


        def make():
            return SharedMemory(create=True, size=64)
    """})
    findings = run_lint(tmp_path)
    assert rules_of(findings) == ["SHM-UNLINK"]


def test_shm_unlink_satisfied_by_cleanup(tmp_path):
    write_tree(tmp_path, {"src/repro/clean.py": """\
        from multiprocessing.shared_memory import SharedMemory


        def make():
            shm = SharedMemory(create=True, size=64)
            shm.unlink()
            return shm
    """})
    assert run_lint(tmp_path) == []


def test_err_raise_in_service(tmp_path):
    write_tree(tmp_path, {
        "src/repro/errors.py": """\
            class ReproError(Exception):
                pass
        """,
        "src/repro/service/handlers.py": """\
            from repro.errors import ReproError


            def ok():
                raise ReproError("fine")


            def bad():
                raise ValueError("leaks a stdlib type across the wire")
        """,
    })
    findings = run_lint(tmp_path)
    assert rules_of(findings) == ["ERR-RAISE"]
    assert "ValueError" in findings[0].message


def test_err_raise_not_scoped_to_other_modules(tmp_path):
    write_tree(tmp_path, {
        "src/repro/errors.py": "class ReproError(Exception):\n    pass\n",
        "src/repro/internal.py": "def f():\n    raise ValueError('internal')\n",
    })
    assert run_lint(tmp_path) == []


def test_shim_call(tmp_path):
    write_tree(tmp_path, {"tests/test_old.py": """\
        import pytest
        from repro.db import query_pairs


        def test_modern():
            query_pairs("E")


        def test_shim_itself():
            with pytest.warns(DeprecationWarning):
                query_pairs("E")
    """})
    findings = run_lint(tmp_path)
    assert rules_of(findings) == ["SHIM-CALL"]
    assert findings[0].line == 6


def test_spawn_state(tmp_path):
    write_tree(tmp_path, {"src/repro/core/engines/procpool.py": """\
        from multiprocessing import get_context
        from threading import Thread

        _WATCHER = Thread(target=print)


        def pool():
            return get_context("fork").Pool()


        def good_pool():
            return get_context("spawn").Pool()
    """})
    findings = run_lint(tmp_path)
    assert rules_of(findings) == ["SPAWN-STATE", "SPAWN-STATE"]
    assert [f.line for f in findings] == [4, 8]


def test_spawn_state_not_scoped_to_other_modules(tmp_path):
    write_tree(tmp_path, {"src/repro/elsewhere.py": """\
        from threading import Thread

        _WATCHER = Thread(target=print)
    """})
    assert run_lint(tmp_path) == []


ERRORS_FIXTURE = """\
    class ReproError(Exception):
        pass


    class AlgebraError(ReproError):
        pass


    class ParseError(ReproError):
        pass
"""


def test_err_map_missing_leaf(tmp_path):
    write_tree(tmp_path, {
        "src/repro/errors.py": ERRORS_FIXTURE,
        "src/repro/service/protocol.py": """\
            from repro.errors import AlgebraError, ReproError

            _STATUS_MAP = (
                (AlgebraError, 400),
                (ReproError, 400),
            )
        """,
    })
    findings = run_lint(tmp_path)
    assert rules_of(findings) == ["ERR-MAP"]
    assert "ParseError" in findings[0].message


def test_err_order_unreachable_entry(tmp_path):
    write_tree(tmp_path, {
        "src/repro/errors.py": ERRORS_FIXTURE,
        "src/repro/service/protocol.py": """\
            from repro.errors import AlgebraError, ParseError, ReproError

            _STATUS_MAP = (
                (ParseError, 400),
                (ReproError, 400),
                (AlgebraError, 418),
            )
        """,
    })
    findings = run_lint(tmp_path)
    assert rules_of(findings) == ["ERR-ORDER"]
    assert "AlgebraError" in findings[0].message


def test_err_map_clean_fixture(tmp_path):
    write_tree(tmp_path, {
        "src/repro/errors.py": ERRORS_FIXTURE,
        "src/repro/service/protocol.py": """\
            from repro.errors import AlgebraError, ParseError, ReproError

            _STATUS_MAP = (
                (AlgebraError, 400),
                (ParseError, 400),
                (ReproError, 400),
            )
        """,
    })
    assert run_lint(tmp_path) == []


def test_stor_atomic_bare_write(tmp_path):
    write_tree(tmp_path, {"src/repro/storage/bad.py": """\
        def save(path, data):
            with open(path, "wb") as fp:
                fp.write(data)
    """})
    findings = run_lint(tmp_path)
    assert rules_of(findings) == ["STOR-ATOMIC"]
    assert findings[0].path == "src/repro/storage/bad.py"


def test_stor_atomic_bare_replace(tmp_path):
    write_tree(tmp_path, {"src/repro/storage/swap.py": """\
        import os


        def promote(tmp, final):
            os.replace(tmp, final)
    """})
    findings = run_lint(tmp_path)
    assert rules_of(findings) == ["STOR-ATOMIC"]
    assert "os.replace" in findings[0].message or "fsync" in findings[0].message


def test_stor_atomic_satisfied_by_fsync_and_rename(tmp_path):
    write_tree(tmp_path, {"src/repro/storage/good.py": """\
        import os


        def save(path, data):
            tmp = path + ".tmp"
            with open(tmp, "wb") as fp:
                fp.write(data)
                fp.flush()
                os.fsync(fp.fileno())
            os.replace(tmp, path)
    """})
    assert run_lint(tmp_path) == []


def test_stor_atomic_satisfied_by_helper(tmp_path):
    write_tree(tmp_path, {"src/repro/storage/helper.py": """\
        from repro.storage.fsutil import atomic_write_bytes


        def save(path, data):
            atomic_write_bytes(path, data)
    """})
    assert run_lint(tmp_path) == []


def test_stor_atomic_append_mode_exempt(tmp_path):
    write_tree(tmp_path, {"src/repro/storage/log.py": """\
        def append(path, data):
            with open(path, "ab") as fp:
                fp.write(data)
    """})
    assert run_lint(tmp_path) == []


def test_stor_atomic_not_scoped_outside_storage(tmp_path):
    write_tree(tmp_path, {"src/repro/elsewhere.py": """\
        def save(path, data):
            with open(path, "wb") as fp:
                fp.write(data)
    """})
    assert run_lint(tmp_path) == []


# --------------------------------------------------------------------- #
# Filtering, ordering, discovery
# --------------------------------------------------------------------- #


@pytest.fixture()
def two_rule_tree(tmp_path):
    return write_tree(tmp_path, {
        "src/repro/a.py": """\
            try:
                pass
            except:
                pass
        """,
        "src/repro/b.py": """\
            from repro.db import query_rpq

            query_rpq("a*")
        """,
    })


def test_select_and_ignore(two_rule_tree):
    assert rules_of(run_lint(two_rule_tree)) == ["BARE-EXCEPT", "SHIM-CALL"]
    assert rules_of(
        run_lint(two_rule_tree, select=["SHIM-CALL"])
    ) == ["SHIM-CALL"]
    assert rules_of(
        run_lint(two_rule_tree, ignore=["SHIM-CALL"])
    ) == ["BARE-EXCEPT"]


def test_unknown_rule_raises(two_rule_tree):
    with pytest.raises(ValueError, match="BOGUS"):
        run_lint(two_rule_tree, select=["BOGUS"])
    with pytest.raises(ValueError, match="known rules"):
        run_lint(two_rule_tree, ignore=["NOPE"])


def test_paths_restrict_the_walk(two_rule_tree):
    findings = run_lint(two_rule_tree, paths=["src/repro/b.py"])
    assert rules_of(findings) == ["SHIM-CALL"]


def test_findings_are_sorted(two_rule_tree):
    findings = run_lint(two_rule_tree)
    assert findings == sorted(
        findings, key=lambda f: (f.path, f.line, f.rule, f.message)
    )


# --------------------------------------------------------------------- #
# Entry points: repro lint, python -m, scripts/lint.py
# --------------------------------------------------------------------- #


def test_main_exit_codes(two_rule_tree, capsys):
    assert main(["--root", str(two_rule_tree)]) == 1
    out = capsys.readouterr()
    assert "BARE-EXCEPT" in out.out and "SHIM-CALL" in out.out
    assert "2 finding(s)" in out.err
    assert main(["--root", str(two_rule_tree), "--select", "LRU-LOCK"]) == 0
    assert main(["--root", str(two_rule_tree), "--select", "BOGUS"]) == 2
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr()
    assert all(rule in out.out for rule in LINT_RULES)


def test_cli_lint_subcommand(two_rule_tree):
    from repro.cli import main as cli_main

    assert cli_main(["lint", "--root", str(two_rule_tree)]) == 1
    assert cli_main(["lint", "--root", str(REPO_ROOT)]) == 0


def test_cli_lint_plan_subcommand(capsys):
    from repro.cli import main as cli_main

    rc = cli_main([
        "lint-plan", "join[1,2,3'; 3=1'](E, E)",
        "--backend", "sharded", "--shards", "3",
    ])
    assert rc == 0
    assert "plan verified" in capsys.readouterr().err


def test_scripts_lint_wrapper():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "lint.py")],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_module_runnable():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint", "--list-rules"],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0
    assert "BARE-EXCEPT" in proc.stdout
