"""The n-tuple algebra (Section 7 future work): k = 2 is relation
algebra's composition/closure, k = 3 coincides with TriAL."""

import pytest
from hypothesis import given, settings

from repro.errors import AlgebraError, TriplestoreError
from repro.core import HashJoinEngine
from repro.core.conditions import Cond
from repro.core.expressions import (
    Diff,
    Join,
    Rel,
    Select,
    Star,
    Union,
)
from repro.core.positions import Const, Pos
from repro.nary import (
    NCond,
    NDiff,
    NJoin,
    NRel,
    NSelect,
    NStar,
    NUnion,
    NaryEngine,
    NaryStore,
    composition,
    const,
    transitive_closure,
)
from tests.conftest import expressions, stores

ENGINE = NaryEngine()


class TestModel:
    def test_arity_checked(self):
        with pytest.raises(TriplestoreError):
            NaryStore(2, {"R": [("a", "b", "c")]})
        with pytest.raises(TriplestoreError):
            NaryStore(0, {})

    def test_round_trip_with_triplestore(self, small_store):
        nary = NaryStore.from_triplestore(small_store)
        assert nary.arity == 3
        assert nary.to_triplestore() == small_store

    def test_non_triple_store_cannot_convert(self):
        with pytest.raises(TriplestoreError):
            NaryStore(2, {"R": [("a", "b")]}).to_triplestore()


class TestBinaryCase:
    STORE = NaryStore(
        2,
        {"R": [("a", "b"), ("b", "c"), ("c", "d")]},
        rho={"a": 1, "b": 1, "c": 2, "d": 2},
    )

    def test_composition_is_relational_composition(self):
        got = ENGINE.evaluate(composition(NRel("R", 2), NRel("R", 2)), self.STORE)
        assert got == {("a", "c"), ("b", "d")}

    def test_transitive_closure(self):
        got = ENGINE.evaluate(transitive_closure(NRel("R", 2)), self.STORE)
        assert got == {
            ("a", "b"), ("b", "c"), ("c", "d"),
            ("a", "c"), ("b", "d"), ("a", "d"),
        }

    def test_select_on_data(self):
        sel = NSelect(NRel("R", 2), (NCond(0, 1, "=", on_data=True),))
        assert ENGINE.evaluate(sel, self.STORE) == {("a", "b"), ("c", "d")}

    def test_constant_condition(self):
        sel = NSelect(NRel("R", 2), (NCond(0, const("b")),))
        assert ENGINE.evaluate(sel, self.STORE) == {("b", "c")}

    def test_union_diff(self):
        r = NRel("R", 2)
        comp = composition(r, r)
        assert ENGINE.evaluate(NUnion(r, comp), self.STORE) >= self.STORE.relation("R")
        assert ENGINE.evaluate(NDiff(r, r), self.STORE) == frozenset()

    def test_arity_mismatch_rejected(self):
        with pytest.raises(AlgebraError):
            NJoin(NRel("R", 2), NRel("S", 3), (0, 1))
        with pytest.raises(AlgebraError):
            NJoin(NRel("R", 2), NRel("S", 2), (0, 1, 2))
        with pytest.raises(AlgebraError):
            ENGINE.evaluate(NRel("R", 3), self.STORE)


def _to_nary(expr) -> "object":
    """Translate a TriAL expression tree into the k = 3 nTA tree."""
    def conv_term(t):
        return ("const", t.value) if isinstance(t, Const) else t.index

    def conv_conds(conds):
        return tuple(
            NCond(conv_term(c.left), conv_term(c.right), c.op, c.on_data)
            for c in conds
        )

    if isinstance(expr, Rel):
        return NRel(expr.name, 3)
    if isinstance(expr, Select):
        return NSelect(_to_nary(expr.expr), conv_conds(expr.conditions))
    if isinstance(expr, Union):
        return NUnion(_to_nary(expr.left), _to_nary(expr.right))
    if isinstance(expr, Diff):
        return NDiff(_to_nary(expr.left), _to_nary(expr.right))
    if isinstance(expr, Join):
        return NJoin(
            _to_nary(expr.left), _to_nary(expr.right), expr.out, conv_conds(expr.conditions)
        )
    if isinstance(expr, Star):
        return NStar(
            _to_nary(expr.expr), expr.out, conv_conds(expr.conditions), expr.side
        )
    from repro.core.expressions import Intersect

    if isinstance(expr, Intersect):
        # nTA has no primitive intersection; use the paper's join encoding.
        return NJoin(
            _to_nary(expr.left),
            _to_nary(expr.right),
            (0, 1, 2),
            tuple(NCond(i, i + 3) for i in range(3)),
        )
    raise AssertionError(f"unhandled {type(expr).__name__}")


class TestTernaryCoincidesWithTriAL:
    @given(expressions(max_depth=3, allow_star=True), stores(max_triples=10))
    @settings(max_examples=60, deadline=None)
    def test_agreement(self, expr, store):
        """For k = 3 the n-ary engine is an independent TriAL implementation."""
        from repro.core.expressions import Universe

        if any(isinstance(n, Universe) for n in expr.walk()):
            return
        nary_store = NaryStore.from_triplestore(store)
        want = HashJoinEngine().evaluate(expr, store)
        got = ENGINE.evaluate(_to_nary(expr), nary_store)
        assert want == got


class TestHigherArity:
    STORE = NaryStore(
        4,
        {"R": [("a", "b", "c", "d"), ("d", "x", "y", "z")]},
    )

    def test_join_keeps_four_positions(self):
        # Compose on last = first, keep (0, 1, 6, 7).
        j = NJoin(NRel("R", 4), NRel("R", 4), (0, 1, 6, 7), (NCond(3, 4),))
        got = ENGINE.evaluate(j, self.STORE)
        assert got == {("a", "b", "y", "z")}

    def test_star_at_arity_4(self):
        chain = NaryStore(
            4,
            {"R": [("a", "m", "m", "b"), ("b", "m", "m", "c"), ("c", "m", "m", "d")]},
        )
        # Reach: keep (0, 1, 2, 7), join on 3 = 4'.
        s = NStar(NRel("R", 4), (0, 1, 2, 7), (NCond(3, 4),), "right")
        got = ENGINE.evaluate(s, chain)
        assert ("a", "m", "m", "d") in got
