"""The Database facade: caching, invalidation, frontend routing."""

import pytest

from repro.core import (
    FastEngine,
    HashJoinEngine,
    NaiveEngine,
    evaluate,
    parse,
    project13,
    query_q,
)
from repro.datalog import parse_program, run_program, trial_to_datalog
from repro.db import Database
from repro.errors import ReproError, UnknownRelationError
from repro.graphdb import (
    evaluate_gxpath,
    evaluate_rpq,
    graph_database,
    gxpath_pairs,
    parse_gxpath,
    parse_nre,
    rpq_pairs,
)
from repro.graphdb.nre import evaluate_nre
from repro.rdf import RDFGraph, figure1
from repro.rdf.nsparql_query import Filter, NSparqlQuery, Pattern, QVar
from repro.workloads import random_graph, transport_network


@pytest.fixture()
def db():
    return Database(figure1())


class TestQueryPath:
    def test_query_accepts_text_and_ast(self, db):
        text = "join[1,3',3; 2=1'](E, E)"
        assert db.query(text) == db.query(parse(text))

    def test_matches_direct_evaluation(self, db):
        assert db.query(query_q()) == evaluate(query_q(), figure1())

    def test_query_pairs_projects(self, db):
        assert db.query(query_q()).pairs() == project13(db.query(query_q()).to_set())

    def test_parse_errors_surface(self, db):
        with pytest.raises(ReproError):
            db.query("join[**](E)")

    def test_unknown_relation_surfaces(self, db):
        with pytest.raises(UnknownRelationError):
            db.query("Nope")

    def test_works_with_every_engine(self):
        expected = evaluate(query_q(), figure1())
        for engine in (NaiveEngine(), HashJoinEngine(), FastEngine(),
                       HashJoinEngine(use_planner=False)):
            assert Database(figure1(), engine).query(query_q()) == expected

    def test_optimize_off_still_correct(self):
        db = Database(figure1(), optimize=False)
        assert db.query(query_q()) == evaluate(query_q(), figure1())


class TestCaching:
    def test_repeated_query_hits_cache(self, db):
        q = "star[1,2,3'; 3=1'](E)"
        db.query(q)
        before = db.cache_info()["results"].hits
        db.query(q)
        assert db.cache_info()["results"].hits == before + 1

    def test_results_are_cached_by_expression_identity(self, db):
        db.query("E")
        db.query("E")  # same parse → same Expr → hit
        info = db.cache_info()["results"]
        assert info.hits == 1 and info.misses == 1

    def test_install_invalidates(self, db):
        q = "E"
        first = db.query(q)
        db.install("E", [("x", "y", "z")])
        second = db.query(q)
        assert second == {("x", "y", "z")}
        assert second != first
        # Post-install lookups are misses, not stale hits.
        assert db.cache_info()["results"].misses >= 2

    def test_install_query_result_composes(self, db):
        db.install("Q", query_q())
        assert db.query("Q") == evaluate(query_q(), figure1())

    def test_clear_cache(self, db):
        db.query("E")
        db.clear_cache()
        db.query("E")
        assert db.cache_info()["results"].misses == 2

    def test_cache_size_zero_disables(self):
        db = Database(figure1(), cache_size=0)
        db.query("E")
        db.query("E")
        info = db.cache_info()["results"]
        assert info.hits == 0 and info.size == 0

    def test_lru_evicts_oldest(self):
        db = Database(figure1(), cache_size=2)
        db.query("E")
        db.query("(E | E)")
        db.query("(E - E)")  # evicts "E"
        db.query("E")
        assert db.cache_info()["results"].hits == 0

    def test_plan_cache_counts(self, db):
        q = "join[1,2,3'; 3=1'](E, E)"
        db.plan(q)
        db.plan(q)
        info = db.cache_info()["plans"]
        assert info.hits >= 1


class TestExplain:
    def test_logical_explain(self, db):
        text = db.explain("star[1,2,3'; 3=1'](E)")
        assert "reachTA=" in text

    def test_physical_explain_shows_plan_and_costs(self, db):
        text = db.explain("join[1,3',3; 2=1'](E, E)", physical=True)
        assert "HashJoin" in text
        assert "cost≈" in text
        assert "|T|=7" in text

    def test_physical_explain_routes_reach_star(self, db):
        text = db.explain("star[1,2,3'; 3=1'](E)", physical=True)
        assert "ReachStar" in text


class TestGraphFrontends:
    def test_gxpath_agrees_with_native(self):
        g = random_graph(5, 8, seed=21)
        alpha = parse_gxpath("a/b-")
        assert gxpath_pairs(g, "a/b-") == evaluate_gxpath(g, alpha)

    def test_rpq_agrees_with_native(self):
        g = random_graph(6, 10, seed=3)
        assert rpq_pairs(g, "a.(b)*") == evaluate_rpq(g, "a.(b)*")

    def test_nre_agrees_with_native(self):
        g = random_graph(6, 10, seed=7)
        nre = parse_nre("a.[b]")
        db = graph_database(g)
        assert db.query(nre, lang="nre").pairs() == evaluate_nre(g, nre)

    def test_graph_database_session_caches_across_queries(self):
        g = random_graph(5, 8, seed=21)
        db = graph_database(g)
        db.query("a/b-", lang="gxpath")
        db.query("a/b-", lang="gxpath")
        assert db.cache_info()["results"].hits >= 1


class TestRdfAndDatalogFrontends:
    def test_nsparql_through_facade(self):
        doc = RDFGraph(figure1().relation("E"))
        q = NSparqlQuery(
            patterns=[Pattern(QVar("x"), parse_nre("next"), QVar("y"))],
            select=("x", "y"),
        )
        db = Database.from_rdf(doc)
        assert db.query(q, lang="nsparql") == q.evaluate(doc)
        # Pattern pair sets are memoised in the session.
        db.query(q, lang="nsparql")
        assert db.cache_info()["aux"].hits >= 1

    def test_nsparql_requires_rdf_session(self, db):
        q = NSparqlQuery(
            patterns=[Pattern(QVar("x"), parse_nre("next"), QVar("y"))],
            select=("x", "y"),
        )
        with pytest.raises(ReproError):
            db.query(q, lang="nsparql")

    def test_datalog_translated_path_matches_native(self):
        store = transport_network(n_cities=8, n_services=2, n_companies=2, seed=9)
        program = trial_to_datalog(query_q())
        db = Database(store)
        assert db.query(program, lang="datalog") == run_program(program, store)

    def test_datalog_text_input(self, db):
        result = db.query(
            "R(x,y,z) :- E(x,y,z).\nAns(x,y,z) :- R(x,y,z).\n", lang="datalog"
        )
        assert result == figure1().relation("E")

    def test_datalog_fallback_outside_fragment(self, db):
        # Binary predicates have no triple encoding — translation refuses,
        # the native stratified evaluator answers.
        program = parse_program(
            "P(x,z) :- E(x,y,z).\nAns(x,y,z) :- E(x,y,z), P(x, z).\n"
        )
        assert db.query(program, lang="datalog") == run_program(program, figure1())


class TestDeprecatedShims:
    """The pre-v2 query_* surface: still correct, but warns."""

    def test_query_pairs_shim(self, db):
        with pytest.warns(DeprecationWarning, match="query_pairs"):
            pairs = db.query_pairs(query_q())
        assert pairs == db.query(query_q()).pairs()

    def test_graph_language_shims(self):
        g = random_graph(5, 8, seed=21)
        db = graph_database(g)
        with pytest.warns(DeprecationWarning, match="gxpath"):
            assert db.query_gxpath("a/b-") == db.query("a/b-", lang="gxpath").pairs()
        with pytest.warns(DeprecationWarning, match="rpq"):
            assert db.query_rpq("a.(b)*") == db.query("a.(b)*", lang="rpq").pairs()
        nre = parse_nre("a.[b]")
        with pytest.warns(DeprecationWarning, match="nre"):
            assert db.query_nre(nre) == db.query(nre, lang="nre").pairs()

    def test_datalog_shim(self, db):
        text = "R(x,y,z) :- E(x,y,z).\nAns(x,y,z) :- R(x,y,z).\n"
        with pytest.warns(DeprecationWarning, match="datalog"):
            assert db.query_datalog(text) == figure1().relation("E")

    def test_nsparql_shim(self):
        doc = RDFGraph(figure1().relation("E"))
        q = NSparqlQuery(
            patterns=[Pattern(QVar("x"), parse_nre("next"), QVar("y"))],
            select=("x", "y"),
        )
        db = Database.from_rdf(doc)
        with pytest.warns(DeprecationWarning, match="nsparql"):
            assert db.query_nsparql(q) == q.evaluate(doc)


class TestConstructors:
    def test_open_round_trips(self, tmp_path):
        from repro.triplestore import dump_path

        path = tmp_path / "s.tstore"
        dump_path(figure1(), str(path))
        assert Database.open(str(path)).query("E") == figure1().relation("E")

    def test_from_triples(self):
        db = Database.from_triples([("a", "p", "b")])
        assert db.query("E") == {("a", "p", "b")}

    def test_repr_mentions_engine(self, db):
        # The default engine depends on the session backend (REPRO_BACKEND).
        assert type(db.engine).__name__ in repr(db)
        assert f"backend={db.backend}" in repr(db)


class TestClose:
    def test_double_close_is_noop(self, db):
        db.close()
        db.close()

    def test_close_runs_hooks_once(self, db):
        calls = []
        db.add_close_hook(lambda _db: calls.append(1))
        db.close()
        db.close()
        assert calls == [1]

    def test_close_after_failed_init_is_noop(self):
        # A Database that never finished __init__ (e.g. bad arguments)
        # must still close without raising — __del__-style cleanup paths
        # call close() on partially-constructed objects.
        shell = object.__new__(Database)
        shell.close()

    def test_close_after_failed_open_is_noop(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Database.open(str(tmp_path / "missing.tstore"))
        # Nothing leaked: a fresh in-memory database still works.
        db = Database(figure1())
        db.query("E")
        db.close()
