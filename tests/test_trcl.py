"""Tests for transitive-closure logic (TrCl)."""

import pytest

from repro.errors import LogicError
from repro.logic import (
    Eq,
    Exists,
    Not,
    RelAtom,
    Sim,
    Trcl,
    Var,
    answers_trcl,
    satisfies_trcl,
)
from repro.triplestore import Triplestore

CHAIN = Triplestore(
    [("a", "p", "b"), ("b", "p", "c"), ("c", "q", "d")],
    rho={"a": 1, "b": 1, "c": 2, "d": 2},
)

EDGE = RelAtom("E", (Var("x"), Var("w"), Var("y")))
STEP = Exists("w", EDGE)  # x steps to y via any middle


class TestTrclSemantics:
    def test_reachability(self):
        tr = Trcl(("x",), ("y",), STEP, ("x",), ("y",))
        assert satisfies_trcl(tr, CHAIN, {"x": "a", "y": "d"})
        assert not satisfies_trcl(tr, CHAIN, {"x": "d", "y": "a"})

    def test_at_least_one_step(self):
        """Our TrCl is ≥1-step (matches the Thm 6 translations)."""
        tr = Trcl(("x",), ("y",), STEP, ("x",), ("y",))
        assert not satisfies_trcl(tr, CHAIN, {"x": "a", "y": "a"})

    def test_parameterised_closure(self):
        # Edges restricted to middle w = z (a free parameter).
        edge_z = RelAtom("E", (Var("x"), Var("z"), Var("y")))
        tr = Trcl(("x",), ("y",), edge_z, ("x",), ("y",))
        assert satisfies_trcl(tr, CHAIN, {"x": "a", "y": "c", "z": "p"})
        assert not satisfies_trcl(tr, CHAIN, {"x": "a", "y": "d", "z": "p"})

    def test_unbound_parameter_raises(self):
        edge_z = RelAtom("E", (Var("x"), Var("z"), Var("y")))
        tr = Trcl(("x",), ("y",), edge_z, ("x",), ("y",))
        with pytest.raises(LogicError):
            satisfies_trcl(tr, CHAIN, {"x": "a", "y": "c"})

    def test_pair_closure(self):
        """Closures over pairs (n = 2) work too."""
        # (x1,x2) -> (y1,y2) when E(x1, x2... ) — use a simple shift.
        phi = RelAtom("E", (Var("x1"), Var("x2"), Var("y1")))
        phi = Exists("q", RelAtom("E", (Var("x1"), Var("q"), Var("y1"))))
        from repro.logic.fo import And
        step = And(phi, Eq(Var("y2"), Var("x2")))
        tr = Trcl(("x1", "x2"), ("y1", "y2"), step, ("x1", "x2"), ("y1", "y2"))
        assert satisfies_trcl(
            tr, CHAIN, {"x1": "a", "x2": "p", "y1": "c", "y2": "p"}
        )

    def test_boolean_combination(self):
        tr = Trcl(("x",), ("y",), STEP, ("x",), ("y",))
        assert satisfies_trcl(Not(tr), CHAIN, {"x": "d", "y": "a"})

    def test_arity_mismatch_rejected(self):
        with pytest.raises(LogicError):
            Trcl(("x",), ("y", "z"), STEP, ("x",), ("y",))

    def test_shared_closure_vars_rejected(self):
        with pytest.raises(LogicError):
            Trcl(("x",), ("x",), STEP, ("x",), ("x",))


class TestAnswers:
    def test_answers_trcl_enumerates(self):
        tr = Trcl(("x",), ("y",), STEP, ("x",), ("y",))
        got = answers_trcl(tr, CHAIN, ("x", "y"))
        assert ("a", "d") in got
        assert ("a", "a") not in got

    def test_trcl_free_formula_uses_fast_path(self):
        got = answers_trcl(Sim(Var("x"), Var("y")), CHAIN, ("x", "y"))
        assert ("a", "b") in got and ("a", "c") not in got

    def test_variable_counting_includes_closure_vars(self):
        tr = Trcl(("x",), ("y",), STEP, ("x",), ("y",))
        assert tr.num_variables() == 3  # x, y, w
